/**
 * @file
 * Entry point of the `chaos` command-line tool.
 */
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    // runCli() reports recoverable errors itself; this catch is the
    // process boundary where anything that slips through becomes the
    // classic fatal() exit. Library code never exits on user data.
    try {
        return chaos::runCli(args, std::cout, std::cerr);
    } catch (const chaos::RecoverableError &e) {
        chaos::fatal(e.message());
    }
}
