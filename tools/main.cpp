/**
 * @file
 * Entry point of the `chaos` command-line tool.
 */
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return chaos::runCli(args, std::cout, std::cerr);
}
