/**
 * @file
 * Continuous telemetry export for the monitored serving path.
 *
 * TelemetryExporter flushes the three observability surfaces — fleet
 * power snapshots, per-machine model-quality snapshots, and the
 * chaos.* metrics registry — to one JSONL file (one self-describing
 * JSON object per line) that downstream collectors can tail. Every
 * record carries the record type, the replay/serve tick it was taken
 * at, and a wall-clock timestamp in milliseconds:
 *
 *   {"type": "fleet",   "tick": 12, "ts_ms": ..., "fleet": {...}}
 *   {"type": "quality", "tick": 12, "ts_ms": ..., "quality": {...}}
 *   {"type": "metrics", "tick": 12, "ts_ms": ...,
 *    "events_dropped": 0, "metrics": {...}}
 *
 * Metrics records also carry the EventLog's dropped count, so a
 * collector tailing only this stream can tell when the event ring
 * overflowed (and flight-recorder bundles may be missing context).
 *
 * Each line is validated with the shared obs JSON checker before it is
 * written; I/O or validation failures raise RecoverableError (this
 * layer sits above chaos_util, unlike the bool-API obs::JsonlWriter it
 * wraps).
 */
#ifndef CHAOS_MONITOR_EXPORTER_HPP
#define CHAOS_MONITOR_EXPORTER_HPP

#include <cstdint>
#include <string>

#include "monitor/fleet_monitor.hpp"
#include "obs/jsonl.hpp"
#include "serve/server.hpp"

namespace chaos::monitor {

/** JSONL telemetry sink (see file comment). */
class TelemetryExporter
{
  public:
    /**
     * Open (truncate) @p path for writing. Raises RecoverableError
     * when the file cannot be opened.
     */
    explicit TelemetryExporter(const std::string &path);

    /**
     * Stream records to @p sink instead of a file — e.g. a socket
     * stream from net::connectLineSink, so a downstream collector can
     * consume the telemetry live over TCP. @p label names the sink in
     * errors and path(). Raises RecoverableError on a null/bad sink.
     */
    TelemetryExporter(std::unique_ptr<std::ostream> sink,
                      const std::string &label);

    /** Append one fleet power snapshot record. */
    void writeFleet(const serve::FleetSnapshot &snapshot,
                    std::uint64_t tick);

    /** Append one model-quality snapshot record. */
    void writeQuality(const QualitySnapshot &snapshot,
                      std::uint64_t tick);

    /**
     * Append the current metrics-registry snapshot (Stable and
     * Scheduling sections) as one record, with the EventLog's
     * dropped count alongside it.
     */
    void writeMetrics(std::uint64_t tick);

    /** Flush buffered lines to the file. */
    void flush();

    /** Records written so far. */
    std::uint64_t records() const { return writer_.linesWritten(); }

    /** The path records are written to. */
    const std::string &path() const { return writer_.path(); }

  private:
    void writeRecord(const std::string &type, std::uint64_t tick,
                     std::uint64_t tsMs, const std::string &key,
                     const std::string &payloadJson);

    obs::JsonlWriter writer_;
};

} // namespace chaos::monitor

#endif // CHAOS_MONITOR_EXPORTER_HPP
