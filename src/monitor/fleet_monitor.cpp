#include "monitor/fleet_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace chaos::monitor {

namespace {

/**
 * chaos.monitor.* registry metrics. The drift-event counter and the
 * publish-time histograms are Stable: per-machine residual streams
 * are processed in arrival order regardless of thread count, so for a
 * fixed trace and publish cadence their values are bit-identical.
 * Fleet-level level gauges are Scheduling (point-in-time readings).
 */
struct MonitorMetrics
{
    obs::Counter &driftEventsTotal;
    obs::Counter &publishes;
    obs::Histogram &rollingDre;
    obs::Histogram &windowRmseW;
    obs::Histogram &absBiasW;
    obs::Gauge &driftingMachines;
    obs::Gauge &warmingMachines;
    obs::Gauge &referenceSamples;

    static MonitorMetrics &
    get()
    {
        auto &registry = obs::Registry::instance();
        static MonitorMetrics m{
            registry.counter("chaos.monitor.drift_events"),
            registry.counter("chaos.monitor.publishes"),
            registry.histogram("chaos.monitor.rolling_dre",
                               {0.01, 0.02, 0.05, 0.10, 0.20, 0.50}),
            registry.histogram("chaos.monitor.window_rmse_w",
                               {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}),
            registry.histogram("chaos.monitor.abs_bias_w",
                               {0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0}),
            registry.gauge("chaos.monitor.drifting_machines"),
            registry.gauge("chaos.monitor.warming_machines"),
            registry.gauge("chaos.monitor.reference_samples"),
        };
        return m;
    }
};

/** %.17g rendering, with NaN/inf mapped to null for JSON safety. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::size_t
QualitySnapshot::driftingCount() const
{
    std::size_t n = 0;
    for (const MachineQualityReport &m : machines) {
        if (m.quality == ModelQuality::Drifting)
            ++n;
    }
    return n;
}

std::string
QualitySnapshot::toJson() const
{
    std::ostringstream out;
    out << "{\"ts_ms\": " << tsMs << ", \"drifting\": "
        << driftingCount() << ", \"machines\": [";
    for (std::size_t i = 0; i < machines.size(); ++i) {
        const MachineQualityReport &m = machines[i];
        if (i > 0)
            out << ", ";
        out << "{\"id\": \"" << obs::jsonEscape(m.id)
            << "\", \"quality\": \"" << modelQualityName(m.quality)
            << "\", \"reference_samples\": " << m.referenceSamples
            << ", \"window_fill\": " << m.windowFill
            << ", \"window_rmse_w\": " << jsonNumber(m.windowRmseW)
            << ", \"rolling_dre\": " << jsonNumber(m.rollingDre)
            << ", \"bias_w\": " << jsonNumber(m.biasW)
            << ", \"drift_statistic\": "
            << jsonNumber(m.driftStatistic) << ", \"drifted\": "
            << (m.drifted ? "true" : "false") << "}";
    }
    out << "]}";
    return out.str();
}

FleetMonitor::FleetMonitor(QualityMonitorConfig config)
    : config_(config)
{}

FleetMonitor::~FleetMonitor()
{
    detach();
}

void
FleetMonitor::attach(serve::FleetServer &server)
{
    raiseIf(server_ != nullptr && server_ != &server,
            "monitor: already attached to a different server");
    detach();
    slots_.clear();
    for (const std::string &id : server.machineIds()) {
        serve::MachineEntry *entry = server.machine(id);
        raiseIf(entry == nullptr,
                "monitor: machine '" + id +
                    "' vanished during attach");
        QualityMonitorConfig machineConfig = config_;
        if (!machineConfig.hasEnvelope()) {
            entry->withEstimator([&](OnlinePowerEstimator &est) {
                machineConfig.idlePowerW =
                    est.configuration().idlePowerW;
                machineConfig.maxPowerW =
                    est.configuration().maxPowerW;
            });
        }
        slots_.push_back(
            std::make_unique<Slot>(entry, id, machineConfig));
        // Cache the slot on the entry (under its mutex) so onSample
        // reaches the tracker without any lookup.
        Slot *slot = slots_.back().get();
        entry->withEstimator([&](OnlinePowerEstimator &) {
            entry->setObserverState(slot);
        });
    }
    server_ = &server;
    server.setSampleObserver(this);
}

void
FleetMonitor::detach()
{
    if (server_ == nullptr)
        return;
    server_->setSampleObserver(nullptr);
    for (const auto &slot : slots_) {
        slot->entry->withEstimator([&](OnlinePowerEstimator &) {
            slot->entry->setObserverState(nullptr);
        });
    }
    server_ = nullptr;
}

void
FleetMonitor::onSample(serve::MachineEntry &entry,
                       OnlinePowerEstimator &estimator,
                       double estimateW, double meteredW)
{
    if (!std::isfinite(meteredW))
        return;
    // Machines registered after attach() carry no slot: unmonitored.
    Slot *slotPtr = static_cast<Slot *>(entry.observerState());
    if (slotPtr == nullptr)
        return;
    Slot &slot = *slotPtr;
    const bool fired = slot.rolling.addResidual(meteredW - estimateW);
    const ModelQuality verdict = slot.rolling.quality();
    if (verdict != estimator.modelQuality())
        estimator.setModelQuality(verdict);
    if (fired) {
        // Cold path: a detector fires at most once per deployment.
        driftEvents_.fetch_add(1, std::memory_order_relaxed);
        MonitorMetrics::get().driftEventsTotal.add();
        std::ostringstream detail;
        detail << std::setprecision(4)
               << "model drift detected: rolling DRE "
               << slot.rolling.rollingDre() << ", bias "
               << slot.rolling.biasW() << " W after "
               << slot.rolling.samples() << " reference samples";
        obs::EventLog::instance().emit(obs::EventKind::ModelDrift,
                                       slot.id, detail.str());
        if (driftListener_)
            driftListener_(slot.id);
    }
}

void
FleetMonitor::setDriftListener(
    std::function<void(const std::string &)> fn)
{
    driftListener_ = std::move(fn);
}

FleetMonitor::Slot *
FleetMonitor::findSlot(const std::string &id) const
{
    for (const auto &slot : slots_) {
        if (slot->id == id)
            return slot.get();
    }
    return nullptr;
}

void
FleetMonitor::acknowledgeDrift(const std::string &id)
{
    Slot *slot = findSlot(id);
    if (slot == nullptr)
        return;
    slot->entry->withEstimator([&](OnlinePowerEstimator &est) {
        slot->rolling.acknowledge();
        est.setModelQuality(slot->rolling.quality());
    });
}

void
FleetMonitor::resetMachine(const std::string &id)
{
    Slot *slot = findSlot(id);
    if (slot == nullptr)
        return;
    slot->entry->withEstimator([&](OnlinePowerEstimator &est) {
        slot->rolling.reset();
        est.setModelQuality(slot->rolling.quality());
    });
}

bool
FleetMonitor::machineDrifted(const std::string &id) const
{
    Slot *slot = findSlot(id);
    if (slot == nullptr)
        return false;
    bool drifted = false;
    slot->entry->withEstimator([&](OnlinePowerEstimator &) {
        drifted = slot->rolling.drifted();
    });
    return drifted;
}

void
FleetMonitor::onModelSwap(const std::string &machineId)
{
    for (const auto &slot : slots_) {
        if (slot->id != machineId)
            continue;
        // Under the entry mutex so the reset cannot interleave with a
        // concurrent onSample for the same machine.
        slot->entry->withEstimator(
            [&](OnlinePowerEstimator &) { slot->rolling.reset(); });
        return;
    }
}

QualitySnapshot
FleetMonitor::snapshot() const
{
    QualitySnapshot snap;
    snap.tsMs = obs::wallClockMs();
    snap.machines.reserve(slots_.size());
    for (const auto &slot : slots_) {
        MachineQualityReport report;
        report.id = slot->id;
        slot->entry->withEstimator([&](OnlinePowerEstimator &) {
            const RollingQuality &rolling = slot->rolling;
            report.quality = rolling.quality();
            report.referenceSamples = rolling.samples();
            report.windowFill = rolling.windowFill();
            report.windowRmseW = rolling.windowRmseW();
            report.rollingDre = rolling.rollingDre();
            report.biasW = rolling.biasW();
            report.driftStatistic = rolling.driftStatistic();
            report.drifted = rolling.drifted();
        });
        snap.machines.push_back(std::move(report));
    }
    return snap;
}

QualitySnapshot
FleetMonitor::publishMetrics() const
{
    QualitySnapshot snap = snapshot();
    auto &metrics = MonitorMetrics::get();
    metrics.publishes.add();
    std::int64_t warming = 0;
    std::int64_t references = 0;
    for (const MachineQualityReport &m : snap.machines) {
        if (m.quality == ModelQuality::Unknown)
            ++warming;
        references += static_cast<std::int64_t>(m.referenceSamples);
        if (m.windowFill == 0)
            continue;
        if (std::isfinite(m.rollingDre))
            metrics.rollingDre.observe(m.rollingDre);
        metrics.windowRmseW.observe(m.windowRmseW);
        metrics.absBiasW.observe(std::abs(m.biasW));
    }
    metrics.driftingMachines.set(
        static_cast<std::int64_t>(snap.driftingCount()));
    metrics.warmingMachines.set(warming);
    metrics.referenceSamples.set(references);
    return snap;
}

std::uint64_t
FleetMonitor::driftEvents() const
{
    return driftEvents_.load(std::memory_order_relaxed);
}

} // namespace chaos::monitor
