#include "monitor/exporter.hpp"

#include <sstream>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace chaos::monitor {

namespace {

/**
 * Collapse a pretty-printed JSON value onto one line. Newlines in
 * JSON are pure inter-token whitespace (string literals escape them
 * as \n), so replacing them with spaces preserves the value.
 */
std::string
oneLine(const std::string &json)
{
    std::string flat = json;
    for (char &c : flat) {
        if (c == '\n' || c == '\r')
            c = ' ';
    }
    // Trim trailing whitespace left by the final newline.
    while (!flat.empty() && flat.back() == ' ')
        flat.pop_back();
    return flat;
}

} // namespace

TelemetryExporter::TelemetryExporter(const std::string &path)
    : writer_(path)
{
    raiseIf(!writer_.ok(), "telemetry: " + writer_.error());
}

TelemetryExporter::TelemetryExporter(
    std::unique_ptr<std::ostream> sink, const std::string &label)
    : writer_(std::move(sink), label)
{
    raiseIf(!writer_.ok(), "telemetry: " + writer_.error());
}

void
TelemetryExporter::writeFleet(const serve::FleetSnapshot &snapshot,
                              std::uint64_t tick)
{
    writeRecord("fleet", tick, snapshot.tsMs, "fleet",
                snapshot.toJson());
}

void
TelemetryExporter::writeQuality(const QualitySnapshot &snapshot,
                                std::uint64_t tick)
{
    writeRecord("quality", tick, snapshot.tsMs, "quality",
                snapshot.toJson());
}

void
TelemetryExporter::writeMetrics(std::uint64_t tick)
{
    // events_dropped rides every metrics record so a collector that
    // only tails telemetry can see event-ring overflow — lost events
    // mean a diagnostic bundle may be missing context.
    std::ostringstream line;
    line << "{\"type\": \"metrics\", \"tick\": " << tick
         << ", \"ts_ms\": " << obs::wallClockMs()
         << ", \"events_dropped\": "
         << obs::EventLog::instance().dropped() << ", \"metrics\": "
         << oneLine(obs::Registry::instance().snapshotJson(
                /*includeScheduling=*/true))
         << "}";
    raiseIf(!writer_.writeLine(line.str()),
            "telemetry: " + writer_.error());
}

void
TelemetryExporter::flush()
{
    writer_.flush();
    raiseIf(!writer_.ok(), "telemetry: " + writer_.error());
}

void
TelemetryExporter::writeRecord(const std::string &type,
                               std::uint64_t tick, std::uint64_t tsMs,
                               const std::string &key,
                               const std::string &payloadJson)
{
    std::ostringstream line;
    line << "{\"type\": \"" << type << "\", \"tick\": " << tick
         << ", \"ts_ms\": " << tsMs << ", \"" << key
         << "\": " << payloadJson << "}";
    raiseIf(!writer_.writeLine(line.str()),
            "telemetry: " + writer_.error());
}

} // namespace chaos::monitor
