/**
 * @file
 * Per-machine rolling model-quality statistics and drift detection.
 *
 * The paper's accuracy claim is stated in DRE = rMSE / (Pmax − Pidle)
 * (Eq. 6), measured offline by cross-validation. A deployed model has
 * no folds — only the stream of (estimate, metered reference) pairs —
 * so this layer recomputes the same metric *online* over a rolling
 * window of residuals, alongside the window bias (mean residual), and
 * runs a two-sided Page-Hinkley detector over standardized residuals
 * to flag the moment the residual distribution shifts away from the
 * calibration baseline (model drift).
 *
 * RollingQuality is pure arithmetic: no locks, no metrics, no events
 * — a handful of flops per sample, cheap enough for the serving hot
 * path. FleetMonitor (fleet_monitor.hpp) owns one per machine and
 * layers the observability on top.
 *
 * Drift math: after a warmup of W residuals fixes the baseline
 * (mu0, sigma0), each residual r is standardized to z = (r−mu0)/sigma0
 * and two cumulative Page-Hinkley statistics are updated:
 *
 *   up:   mUp  += z − delta;  excursion = mUp − min(mUp so far)
 *   down: mDn  += z + delta;  excursion = max(mDn so far) − mDn
 *
 * Either excursion exceeding lambda latches the Drifting state. delta
 * absorbs small drifts that are not worth flagging; lambda trades
 * detection delay against false positives (both in standardized
 * units, so one set of defaults works across platforms with very
 * different absolute residual scales).
 */
#ifndef CHAOS_MONITOR_QUALITY_HPP
#define CHAOS_MONITOR_QUALITY_HPP

#include <cstddef>
#include <vector>

#include "core/online.hpp"

namespace chaos::monitor {

/** Knobs for one machine's rolling-quality tracker. */
struct QualityMonitorConfig
{
    /** Residuals in the rolling rMSE/DRE/bias window. */
    std::size_t windowSamples = 60;

    /**
     * Reference samples used to fix the standardization baseline
     * before drift detection arms. Until warmup completes the model
     * quality stays Unknown. Size this to span a full workload cycle:
     * a baseline taken from one phase flags every later phase whose
     * residual bias differs, even when the model is healthy (600
     * samples = 10 minutes at the 1 Hz collector cadence).
     */
    std::size_t warmupSamples = 600;

    /**
     * Page-Hinkley drift tolerance, standardized units. Mean shifts
     * below delta·sigma0 are absorbed; workload-dependent residual
     * bias of a healthy fleet model sits around 0.3–0.5 sigma, so the
     * default tolerates it while a telemetry fault (many sigma) still
     * accumulates almost at full speed.
     */
    double driftDelta = 0.5;

    /** Page-Hinkley drift threshold, standardized units. */
    double driftLambda = 60.0;

    /**
     * Floor on the baseline standard deviation (watts): protects the
     * standardization against a pathologically quiet warmup window.
     */
    double minSigmaW = 0.25;

    /**
     * Power envelope [idlePowerW, maxPowerW] supplying the DRE
     * denominator (Eq. 6). When unset (max <= idle) rollingDre()
     * reports NaN; FleetMonitor fills the envelope in from each
     * estimator's own configuration.
     */
    double idlePowerW = 0.0;
    double maxPowerW = 0.0;

    /** True when a DRE denominator is available. */
    bool hasEnvelope() const { return maxPowerW > idlePowerW; }
};

/** Rolling residual window + drift detector for one machine. */
class RollingQuality
{
  public:
    explicit RollingQuality(QualityMonitorConfig config = {});

    /**
     * Feed one residual (metered minus estimated watts). Non-finite
     * residuals are ignored (meter dropouts are a telemetry-health
     * concern, not a model-quality one).
     *
     * @return True exactly once: on the sample whose Page-Hinkley
     *         excursion first crosses the threshold.
     */
    bool addResidual(double residualW);

    /** Reference samples consumed so far. */
    std::size_t samples() const { return total; }

    /** Residuals currently in the rolling window. */
    std::size_t windowFill() const { return fill; }

    /** Rolling root-mean-square residual, watts (0 when empty). */
    double windowRmseW() const;

    /** Rolling DRE = windowRmseW / (Pmax − Pidle); NaN w/o envelope. */
    double rollingDre() const;

    /** Rolling mean residual (estimator bias), watts (0 when empty). */
    double biasW() const;

    /** True once the standardization baseline is fixed. */
    bool warmedUp() const { return total >= config_.warmupSamples; }

    /** True once the drift detector has fired (latched). */
    bool drifted() const { return driftedFlag; }

    /** Largest current Page-Hinkley excursion, standardized units. */
    double driftStatistic() const;

    /** Baseline mean fixed at warmup (0 before warmup completes). */
    double baselineMeanW() const { return mu0; }

    /** Baseline standard deviation fixed at warmup (after flooring). */
    double baselineSigmaW() const { return sigma0; }

    /**
     * The quality-state lattice: Unknown (still warming up) → Ok →
     * Drifting (latched until reset). Inline: read once per sample
     * on the serving hot path.
     */
    ModelQuality
    quality() const
    {
        if (driftedFlag)
            return ModelQuality::Drifting;
        return warmedUp() ? ModelQuality::Ok : ModelQuality::Unknown;
    }

    /** Forget everything (a new model was deployed). */
    void reset();

    /**
     * Clear the latched drift verdict but keep the calibration
     * baseline and rolling window. Used when a remediation decided to
     * keep the incumbent model (rollback): the detector re-arms
     * immediately, so a genuinely persisting drift refires within a
     * bounded number of samples instead of being latched forever,
     * while a transient one stays quiet. Deploying a *new* model
     * calls reset() instead.
     */
    void acknowledge();

    /** The configuration this tracker was built with. */
    const QualityMonitorConfig &config() const { return config_; }

  private:
    QualityMonitorConfig config_;

    // Rolling window (ring buffer) with incremental sums.
    std::vector<double> ring;
    std::size_t head = 0;
    std::size_t fill = 0;
    double sumR = 0.0;
    double sumR2 = 0.0;

    // Warmup accumulation (Welford) and the frozen baseline.
    std::size_t total = 0;
    double warmMean = 0.0;
    double warmM2 = 0.0;
    double mu0 = 0.0;
    double sigma0 = 0.0;

    // Two-sided Page-Hinkley state.
    double cumUp = 0.0;
    double minUp = 0.0;
    double cumDown = 0.0;
    double maxDown = 0.0;
    bool driftedFlag = false;
};

} // namespace chaos::monitor

#endif // CHAOS_MONITOR_QUALITY_HPP
