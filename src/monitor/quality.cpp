#include "monitor/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace chaos::monitor {

RollingQuality::RollingQuality(QualityMonitorConfig config)
    : config_(config)
{
    ring.resize(std::max<std::size_t>(config_.windowSamples, 1), 0.0);
}

bool
RollingQuality::addResidual(double residualW)
{
    if (!std::isfinite(residualW))
        return false;

    // Rolling window: replace the oldest residual, keep the sums
    // incremental so the update is O(1).
    if (fill == ring.size()) {
        const double evicted = ring[head];
        sumR -= evicted;
        sumR2 -= evicted * evicted;
    } else {
        ++fill;
    }
    ring[head] = residualW;
    if (++head == ring.size())
        head = 0;
    sumR += residualW;
    sumR2 += residualW * residualW;

    ++total;
    if (total <= config_.warmupSamples) {
        // Welford accumulation for the baseline.
        const double delta = residualW - warmMean;
        warmMean += delta / static_cast<double>(total);
        warmM2 += delta * (residualW - warmMean);
        if (total == config_.warmupSamples) {
            mu0 = warmMean;
            const double var =
                total > 1 ? warmM2 / static_cast<double>(total - 1)
                          : 0.0;
            sigma0 = std::max(std::sqrt(std::max(var, 0.0)),
                              config_.minSigmaW);
        }
        return false;
    }

    if (driftedFlag)
        return false;

    const double z = (residualW - mu0) / sigma0;
    cumUp += z - config_.driftDelta;
    minUp = std::min(minUp, cumUp);
    cumDown += z + config_.driftDelta;
    maxDown = std::max(maxDown, cumDown);
    if (driftStatistic() > config_.driftLambda) {
        driftedFlag = true;
        return true;
    }
    return false;
}

double
RollingQuality::windowRmseW() const
{
    if (fill == 0)
        return 0.0;
    return std::sqrt(std::max(sumR2, 0.0) /
                     static_cast<double>(fill));
}

double
RollingQuality::rollingDre() const
{
    if (!config_.hasEnvelope())
        return std::numeric_limits<double>::quiet_NaN();
    return windowRmseW() / (config_.maxPowerW - config_.idlePowerW);
}

double
RollingQuality::biasW() const
{
    if (fill == 0)
        return 0.0;
    return sumR / static_cast<double>(fill);
}

double
RollingQuality::driftStatistic() const
{
    return std::max(cumUp - minUp, maxDown - cumDown);
}

void
RollingQuality::reset()
{
    std::fill(ring.begin(), ring.end(), 0.0);
    head = 0;
    fill = 0;
    sumR = 0.0;
    sumR2 = 0.0;
    total = 0;
    warmMean = 0.0;
    warmM2 = 0.0;
    mu0 = 0.0;
    sigma0 = 0.0;
    cumUp = 0.0;
    minUp = 0.0;
    cumDown = 0.0;
    maxDown = 0.0;
    driftedFlag = false;
}

void
RollingQuality::acknowledge()
{
    cumUp = 0.0;
    minUp = 0.0;
    cumDown = 0.0;
    maxDown = 0.0;
    driftedFlag = false;
}

} // namespace chaos::monitor
