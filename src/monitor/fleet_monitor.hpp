/**
 * @file
 * Fleet-wide online model-quality monitoring for the serving path.
 *
 * FleetMonitor plugs into a FleetServer through the SampleObserver
 * hook: for every evaluated sample that carried a metered reference,
 * the machine's RollingQuality tracker is updated (rolling rMSE,
 * rolling DRE, bias, Page-Hinkley drift detection) and the verdict is
 * written back onto the machine's OnlinePowerEstimator so fleet
 * snapshots report model quality alongside telemetry health.
 *
 * The hot path is deliberately minimal: the per-machine tracker is
 * reached through a slot pointer cached on the MachineEntry itself
 * (no map lookup), and the update is O(1) arithmetic with no atomics
 * and no registry traffic — the
 * chaos.monitor.* gauges and histograms are refreshed at snapshot /
 * publish cadence instead of per sample, which keeps the serving
 * throughput cost under the 1% budget.
 *
 * Threading: onSample runs under the machine's entry mutex (see
 * SampleObserver), so per-machine state needs no extra lock; the
 * machine table itself is immutable after attach(). snapshot() takes
 * each entry mutex briefly to read a consistent per-machine view.
 *
 * Drift firings emit a ModelDrift event into the process EventLog and
 * bump chaos.monitor.drift_events; both are deterministic for a given
 * trace because per-machine evaluation order equals arrival order
 * regardless of thread count.
 */
#ifndef CHAOS_MONITOR_FLEET_MONITOR_HPP
#define CHAOS_MONITOR_FLEET_MONITOR_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "monitor/quality.hpp"
#include "serve/server.hpp"

namespace chaos::monitor {

/** One machine's slice of a quality snapshot. */
struct MachineQualityReport
{
    std::string id;
    ModelQuality quality = ModelQuality::Unknown;
    std::uint64_t referenceSamples = 0; ///< Residuals consumed.
    std::uint64_t windowFill = 0;       ///< Residuals in the window.
    double windowRmseW = 0.0;
    double rollingDre = 0.0;            ///< NaN without an envelope.
    double biasW = 0.0;
    double driftStatistic = 0.0;        ///< Page-Hinkley excursion.
    bool drifted = false;
};

/** Point-in-time model-quality view of the whole fleet. */
struct QualitySnapshot
{
    std::uint64_t tsMs = 0;                    ///< Wall clock, ms.
    std::vector<MachineQualityReport> machines; ///< Sorted by id.

    /** Machines currently flagged Drifting. */
    std::size_t driftingCount() const;

    /** Serialize as one single-line JSON object. */
    std::string toJson() const;
};

/** The fleet-wide monitor (see file comment). */
class FleetMonitor : public serve::SampleObserver
{
  public:
    explicit FleetMonitor(QualityMonitorConfig config = {});

    /** Detaches from the server if still attached. */
    ~FleetMonitor() override;

    FleetMonitor(const FleetMonitor &) = delete;
    FleetMonitor &operator=(const FleetMonitor &) = delete;

    /**
     * Track every machine currently registered with @p server and
     * install this monitor as the server's sample observer. Machines
     * with no envelope in the monitor config inherit the DRE
     * denominator from their estimator's own configuration. Call
     * after the fleet is registered and before serving starts;
     * machines added later are not monitored until re-attach.
     */
    void attach(serve::FleetServer &server);

    /** Remove this monitor from the attached server (idempotent). */
    void detach();

    /** True while installed on a server. */
    bool attached() const { return server_ != nullptr; }

    // SampleObserver:
    void onSample(serve::MachineEntry &entry,
                  OnlinePowerEstimator &estimator, double estimateW,
                  double meteredW) override;
    void onModelSwap(const std::string &machineId) override;

    /** Consistent per-machine quality view (locks each entry). */
    QualitySnapshot snapshot() const;

    /**
     * Refresh the chaos.monitor.* registry metrics from the current
     * state: per-machine rolling DRE / window rMSE / |bias| histogram
     * observations plus fleet-level gauges. Returns the snapshot the
     * metrics were derived from. Deterministic for a fixed call
     * pattern (histogram counts grow once per publish).
     */
    QualitySnapshot publishMetrics() const;

    /** ModelDrift events emitted so far. */
    std::uint64_t driftEvents() const;

    /**
     * Install a callback invoked right after a drift firing (after
     * the ModelDrift event is emitted), with the machine id. Runs on
     * the drain thread UNDER that machine's entry mutex: the callback
     * must only touch leaf state (e.g. append to its own queue) and
     * must never take entry or registry locks. Set before serving
     * starts; pass nullptr to remove.
     */
    void setDriftListener(std::function<void(const std::string &)> fn);

    /**
     * Clear machine @p id's latched drift verdict while keeping its
     * calibration baseline (RollingQuality::acknowledge), and write
     * the fresh verdict back to the estimator. Used when remediation
     * keeps the incumbent model. No-op for unknown ids.
     */
    void acknowledgeDrift(const std::string &id);

    /**
     * Fully reset machine @p id's tracker (new warmup) and write the
     * Unknown verdict back to the estimator. No-op for unknown ids.
     */
    void resetMachine(const std::string &id);

    /** True when machine @p id's detector is currently latched. */
    bool machineDrifted(const std::string &id) const;

    /** Number of monitored machines. */
    std::size_t numMachines() const { return slots_.size(); }

    /** The configuration the monitor was built with. */
    const QualityMonitorConfig &config() const { return config_; }

  private:
    struct Slot
    {
        serve::MachineEntry *entry = nullptr;
        std::string id;
        RollingQuality rolling;
        Slot(serve::MachineEntry *e, std::string machineId,
             QualityMonitorConfig cfg)
            : entry(e), id(std::move(machineId)), rolling(cfg)
        {}
    };

    /** Slot for @p id, or nullptr when the machine is unmonitored. */
    Slot *findSlot(const std::string &id) const;

    QualityMonitorConfig config_;
    serve::FleetServer *server_ = nullptr;
    std::vector<std::unique_ptr<Slot>> slots_; ///< Sorted by id.
    std::atomic<std::uint64_t> driftEvents_{0};
    std::function<void(const std::string &)> driftListener_;
};

} // namespace chaos::monitor

#endif // CHAOS_MONITOR_FLEET_MONITOR_HPP
