#include "cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <optional>
#include <thread>

#include "autopilot/autopilot.hpp"
#include "core/chaos.hpp"
#include "core/pooling.hpp"
#include "faults/scenarios.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "core/model_store.hpp"
#include "linalg/matrix.hpp"
#include "models/linear.hpp"
#include "monitor/exporter.hpp"
#include "net/ingest_server.hpp"
#include "net/loadgen.hpp"
#include "net/socket.hpp"
#include "monitor/fleet_monitor.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "rollup/feed.hpp"
#include "rollup/synthetic.hpp"
#include "sim/fleet_topology.hpp"
#include "oscounters/counter_catalog.hpp"
#include "oscounters/etw_session.hpp"
#include "serve/fleet_store.hpp"
#include "serve/replay.hpp"
#include "serve/server.hpp"
#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"
#include "trace/trace_io.hpp"
#include "util/result.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace chaos {

namespace {

/** Parsed flags: positionals plus --key value pairs. */
struct ParsedArgs
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    std::string flagOr(const std::string &key,
                       const std::string &fallback) const
    {
        const auto it = flags.find(key);
        return it != flags.end() ? it->second : fallback;
    }
};

// Defined with the dispatch plumbing below.
void writeTextFile(const std::string &path,
                   const std::string &content);

// Defined with the autopilot plumbing below.
Dataset injectStuckCounters(const Dataset &data,
                            const std::vector<std::string> &targets,
                            std::size_t onsetTick,
                            std::size_t staggerTicks,
                            std::uint64_t seed);

/** Split args into positionals and --key value flags. */
std::optional<ParsedArgs>
parseArgs(const std::vector<std::string> &args, std::ostream &err)
{
    ParsedArgs parsed;
    for (size_t i = 0; i < args.size(); ++i) {
        if (startsWith(args[i], "--")) {
            if (i + 1 >= args.size()) {
                err << "error: flag " << args[i]
                    << " needs a value\n";
                return std::nullopt;
            }
            parsed.flags[args[i].substr(2)] = args[i + 1];
            ++i;
        } else {
            parsed.positional.push_back(args[i]);
        }
    }
    return parsed;
}

ModelType
modelTypeFromString(const std::string &name, std::ostream &err,
                    bool &ok)
{
    ok = true;
    if (name == "linear")
        return ModelType::Linear;
    if (name == "piecewise")
        return ModelType::PiecewiseLinear;
    if (name == "quadratic")
        return ModelType::Quadratic;
    if (name == "switching")
        return ModelType::Switching;
    err << "error: unknown model type '" << name
        << "' (linear|piecewise|quadratic|switching)\n";
    ok = false;
    return ModelType::Linear;
}

int
cmdHelp(std::ostream &out)
{
    out << "chaos — OS-counter power models (CHAOS, IISWC 2012)\n\n"
        << "subcommands:\n"
        << "  list-platforms                     supported machine "
           "classes\n"
        << "  list-counters [--category C]       the counter catalog\n"
        << "  probe <platform>                   idle/max power of "
           "one machine\n"
        << "  collect <platform> --out F.csv     run the workload "
           "campaign, save dataset\n"
        << "      [--machines N] [--runs N] [--seed S] [--scale F]\n"
        << "  select <data.csv>                  run Algorithm 1 "
           "feature selection\n"
        << "  train <data.csv> --out model.txt   fit a deployable "
           "model\n"
        << "      [--type T] [--features \"a;b\"] [--seed S]\n"
        << "  evaluate <data.csv>                cross-validated "
           "accuracy\n"
        << "      [--type T] [--folds K] [--seed S]\n"
        << "  predict <model.txt> <data.csv>     apply a saved model\n"
        << "  serve --replay <data.csv>          stream a recorded "
           "trace through the fleet server\n"
        << "      (--model M.txt | --fleet manifest.txt) [--speed X] "
           "[--platform P]\n"
        << "      [--shards N] [--queue-capacity N] "
           "[--snapshot-every N] [--snapshots-out F]\n"
        << "  serve --listen PORT                accept wire-protocol "
           "samples over TCP (0 = ephemeral)\n"
        << "      [--machines N] [--model M.txt | --fleet F] "
           "[--platform P] [--port-file F]\n"
        << "      [--ingest-max-samples N] [--ingest-idle-ms MS] "
           "[--credit-batch N] [--stats-out F]\n"
        << "      [--monitor 1 [--window N] [--warmup N] "
           "[--drift-lambda L] [--drift-delta D]]\n"
        << "      [--flight-dir DIR [--flight-window-ms MS] "
           "[--flight-rate-limit-ms MS]]\n"
        << "  loadgen --target host:port         drive an ingest "
           "server with concurrent connections\n"
        << "      [--connections N] [--samples N] [--machines N] "
           "[--rate R] [--jsonl 1]\n"
        << "      [--window N] [--workers N] [--metered-every N] "
           "[--report-json F]\n"
        << "      [--replay data.csv [--inject-stuck \"id;id\"] "
           "[--inject-at T] [--inject-stagger N]]\n"
        << "  top --target host:port             live dashboard over "
           "a serving `chaos serve --listen`\n"
        << "      [--json 1] [--interval-ms MS] [--count N] "
           "[--timeout-ms MS]\n"
        << "  monitor --replay <data.csv>        replay with online "
           "model-quality monitoring\n"
        << "      (--model M.txt | --fleet manifest.txt) "
           "[--platform P] [--speed X]\n"
        << "      [--window N] [--warmup N] [--drift-lambda L] "
           "[--drift-delta D]\n"
        << "      [--telemetry-out F.jsonl|tcp://h:p] [--telemetry-every N] "
           "[--dashboard-every N]\n"
        << "  autopilot --replay <data.csv>      replay with "
           "self-healing remediation\n"
        << "      (--model M.txt | --fleet manifest.txt) "
           "[--platform P] [--speed X]\n"
        << "      [--window N] [--warmup N] [--drift-lambda L] "
           "[--drift-delta D]\n"
        << "      [--substitute pooled|lastgood] [--retrain-type T] "
           "[--canary-samples N]\n"
        << "      [--cooldown N] [--max-retrains N] "
           "[--reference-window N] [--min-retrain-samples N]\n"
        << "      [--inject-stuck \"id;id\"] [--inject-at T] "
           "[--inject-stagger N]\n"
        << "      [--telemetry-out F.jsonl|tcp://h:p] [--telemetry-every N] "
           "[--dashboard-every N]\n"
        << "  fleetview                          hierarchical "
           "quality roll-up dashboard\n"
        << "      (--synthetic N | --telemetry F.jsonl | --replay "
           "data.csv (--model M | --fleet F))\n"
        << "      [--ticks N] [--seed S] [--worst N] [--path "
           "dc0/row1] [--rollup-out F.jsonl]\n"
        << "      [--group-size N] [--platform P]\n"
        << "  report <data.csv>                  markdown dataset "
           "summary\n"
        << "\nglobal flags (any subcommand):\n"
        << "  --log-level L      debug|info|warn|error|silent\n"
        << "  --trace-out F      write a Chrome trace-event JSON "
           "(chrome://tracing)\n"
        << "  --trace-summary F  write the human-readable phase-tree "
           "summary\n"
        << "  --metrics-out F    write the metrics registry snapshot "
           "as JSON\n";
    return 0;
}

int
cmdListPlatforms(std::ostream &out)
{
    TextTable table({"Platform", "Cores", "P-states", "Disks",
                     "Power range (W)"});
    for (MachineClass mc : extendedMachineClasses()) {
        const MachineSpec spec = machineSpecFor(mc);
        table.addRow({spec.name, std::to_string(spec.numCores),
                      std::to_string(spec.pStatesMhz.size()),
                      std::to_string(spec.numDisks),
                      formatDouble(spec.idlePowerW, 0) + "-" +
                          formatDouble(spec.maxPowerW, 0)});
    }
    out << table.render();
    return 0;
}

int
cmdListCounters(const ParsedArgs &args, std::ostream &out,
                std::ostream &err)
{
    const std::string wanted = args.flagOr("category", "");
    const auto &catalog = CounterCatalog::instance();
    size_t shown = 0;
    for (const auto &def : catalog.all()) {
        const std::string category =
            counterCategoryName(def.category);
        if (!wanted.empty() && toLower(category) != toLower(wanted))
            continue;
        out << category << "\t" << def.name << "\n";
        ++shown;
    }
    if (shown == 0) {
        err << "error: no counters in category '" << wanted << "'\n";
        return 2;
    }
    out << "(" << shown << " counters)\n";
    return 0;
}

int
cmdProbe(const ParsedArgs &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() != 2) {
        err << "usage: chaos probe <platform>\n";
        return 2;
    }
    const MachineClass mc = machineClassFromName(args.positional[1]);
    const MachineSpec spec = machineSpecFor(mc);

    Machine machine(spec, 0, 12345);
    PowerMeter meter{Rng(54321)};
    EtwSession session(machine, meter, 99);

    RunningStats idle;
    for (int t = 0; t < 30; ++t) {
        const auto &record = session.tick(ActivityDemand{});
        if (t >= 10)
            idle.add(record.measuredPowerW);
    }
    ActivityDemand full;
    full.cpuCoreSeconds = static_cast<double>(spec.numCores);
    full.diskReadBytes = spec.numDisks * spec.diskBandwidthMBs * 1e6;
    full.netRxBytes = 125e6;
    full.netTxBytes = 125e6;
    full.memIntensity = 1.0;
    RunningStats busy;
    for (int t = 0; t < 30; ++t) {
        const auto &record = session.tick(full);
        if (t >= 10)
            busy.add(record.measuredPowerW);
    }
    out << spec.name << ": idle " << formatDouble(idle.mean(), 1)
        << " W, max " << formatDouble(busy.mean(), 1)
        << " W (spec " << formatDouble(spec.idlePowerW, 0) << "-"
        << formatDouble(spec.maxPowerW, 0) << " W)\n";
    return 0;
}

int
cmdCollect(const ParsedArgs &args, std::ostream &out,
           std::ostream &err)
{
    if (args.positional.size() != 2 || !args.flags.count("out")) {
        err << "usage: chaos collect <platform> --out <data.csv>\n";
        return 2;
    }
    CampaignConfig config;
    config.numMachines = static_cast<size_t>(
        std::stoul(args.flagOr("machines", "5")));
    config.runsPerWorkload = static_cast<size_t>(
        std::stoul(args.flagOr("runs", "5")));
    config.seed = std::stoull(args.flagOr("seed", "2012"));
    config.run.durationScale = std::stod(args.flagOr("scale", "1.0"));

    const MachineClass mc = machineClassFromName(args.positional[1]);
    out << "collecting " << machineClassName(mc) << " x"
        << config.numMachines << ", 4 workloads x "
        << config.runsPerWorkload << " runs...\n";
    const ClusterCampaign campaign = collectClusterData(mc, config);
    saveDataset(args.flags.at("out"), campaign.data);
    out << "wrote " << campaign.data.numRows() << " machine-seconds x "
        << campaign.data.numFeatures() << " counters to "
        << args.flags.at("out") << "\n";
    return 0;
}

int
cmdSelect(const ParsedArgs &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() != 2) {
        err << "usage: chaos select <data.csv>\n";
        return 2;
    }
    const Dataset data = loadDataset(args.positional[1]);
    FeatureSelectionConfig config;
    Rng rng(std::stoull(args.flagOr("seed", "1")));
    const FeatureSelectionResult selection =
        selectClusterFeatures(data, config, rng);

    out << "funnel: " << selection.catalogSize << " -> "
        << selection.afterConstantDrop << " -> "
        << selection.afterCorrelation << " -> "
        << selection.afterCoDependency << " -> "
        << selection.selected.size() << " (threshold "
        << selection.finalThreshold << ")\n";
    for (const auto &name : selection.selected)
        out << "  " << name << "\n";
    return 0;
}

/** Resolve the feature set for train/evaluate. */
FeatureSet
featureSetFor(const ParsedArgs &args, const Dataset &data,
              std::ostream &out)
{
    const std::string explicit_features =
        args.flagOr("features", "");
    if (!explicit_features.empty()) {
        FeatureSet set{"custom", {}};
        for (const auto &name : split(explicit_features, ';')) {
            const std::string trimmed = trim(name);
            if (!trimmed.empty())
                set.counters.push_back(trimmed);
        }
        return set;
    }
    out << "running Algorithm 1 feature selection...\n";
    FeatureSelectionConfig config;
    Rng rng(std::stoull(args.flagOr("seed", "1")));
    return clusterFeatureSet(selectClusterFeatures(data, config, rng));
}

int
cmdTrain(const ParsedArgs &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() != 2 || !args.flags.count("out")) {
        err << "usage: chaos train <data.csv> --out <model.txt>\n";
        return 2;
    }
    bool ok = true;
    const ModelType type = modelTypeFromString(
        args.flagOr("type", "quadratic"), err, ok);
    if (!ok)
        return 2;

    const Dataset data = loadDataset(args.positional[1]);
    const FeatureSet features = featureSetFor(args, data, out);
    const MachinePowerModel model =
        MachinePowerModel::fit(data, features, type, MarsConfig());
    saveMachineModelFile(args.flags.at("out"), model);
    out << "trained " << modelTypeName(type) << " model on "
        << features.counters.size() << " counters ("
        << model.model().numParameters() << " parameters) -> "
        << args.flags.at("out") << "\n";
    return 0;
}

int
cmdEvaluate(const ParsedArgs &args, std::ostream &out,
            std::ostream &err)
{
    if (args.positional.size() != 2) {
        err << "usage: chaos evaluate <data.csv>\n";
        return 2;
    }
    bool ok = true;
    const ModelType type = modelTypeFromString(
        args.flagOr("type", "quadratic"), err, ok);
    if (!ok)
        return 2;

    const Dataset data = loadDataset(args.positional[1]);
    const FeatureSet features = featureSetFor(args, data, out);

    // DRE denominators from the observed per-machine power range.
    EnvelopeMap envelopes;
    std::map<int, std::pair<double, double>> ranges;
    for (size_t r = 0; r < data.numRows(); ++r) {
        auto &range = ranges
                          .try_emplace(data.machineIds()[r],
                                       1e300, -1e300)
                          .first->second;
        range.first = std::min(range.first, data.powerW()[r]);
        range.second = std::max(range.second, data.powerW()[r]);
    }
    for (const auto &[machine, range] : ranges)
        envelopes[machine] = {range.first, range.second};

    EvaluationConfig config;
    config.folds = static_cast<size_t>(
        std::stoul(args.flagOr("folds", "5")));
    config.seed = std::stoull(args.flagOr("seed", "12345"));
    const EvaluationOutcome outcome =
        evaluateTechnique(data, features, type, envelopes, config);
    if (!outcome.valid) {
        err << "error: model/feature combination is undefined for "
               "this dataset\n";
        return 2;
    }
    out << modelTypeName(type) << " on "
        << features.counters.size() << " counters, "
        << outcome.foldsRun << " folds:\n"
        << "  avg machine DRE (observed range): "
        << formatPercent(outcome.avgDre, 1) << "\n"
        << "  avg rMSE: " << formatDouble(outcome.avgRmse, 2)
        << " W\n"
        << "  median relative error: "
        << formatPercent(outcome.medianRelErr, 2) << "\n"
        << "  R^2: " << formatDouble(outcome.r2, 3) << "\n";
    return 0;
}

int
cmdPredict(const ParsedArgs &args, std::ostream &out,
           std::ostream &err)
{
    if (args.positional.size() != 3) {
        err << "usage: chaos predict <model.txt> <data.csv>\n";
        return 2;
    }
    const MachinePowerModel model =
        loadMachineModelFile(args.positional[1]);
    const Dataset data = loadDataset(args.positional[2]);

    std::vector<double> estimates;
    estimates.reserve(data.numRows());
    for (size_t r = 0; r < data.numRows(); ++r) {
        estimates.push_back(
            model.predictFromCatalogRow(data.features().row(r)));
    }
    const auto &metered = data.powerW();
    out << "predicted " << estimates.size() << " samples\n";
    out << "  mean estimate: "
        << formatDouble(mean(estimates), 2) << " W (metered "
        << formatDouble(mean(metered), 2) << " W)\n";
    out << "  rMSE vs meter: "
        << formatDouble(rootMeanSquaredError(estimates, metered), 2)
        << " W\n";
    out << "  median relative error: "
        << formatPercent(medianRelativeError(estimates, metered), 2)
        << "\n";
    return 0;
}

/**
 * Surface the serving path's silent loss at summary time: drop-oldest
 * keeps the fleet live under overload, but an operator reading only
 * the final table would never know which machines paid for it.
 */
void
warnDroppedMachines(const serve::FleetSnapshot &snapshot,
                    std::ostream &err)
{
    for (const serve::MachineSnapshot &machine : snapshot.machines) {
        if (machine.dropped == 0)
            continue;
        err << "warning: machine '" << machine.id << "' dropped "
            << machine.dropped
            << " queued samples under backpressure (drop-oldest); "
               "raise --queue-capacity or --shards, or feed it over "
               "the network ingest path for explicit NACKs\n";
    }
}

/**
 * Fit the same cheap two-counter linear model the serving tests use
 * (~ baseW + 0.1*u0 + 0.08*u1 W over the processor-time counters), so
 * listen mode can register machines without shipping a dataset.
 */
MachinePowerModel
syntheticServeModel(uint64_t seed, double baseW)
{
    Rng rng(seed);
    const size_t n = 200;
    Matrix x(n, 2);
    std::vector<double> y(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 100.0);
        x(i, 1) = rng.uniform(0.0, 100.0);
        y[i] = baseW + 0.1 * x(i, 0) + 0.08 * x(i, 1) +
               rng.normal(0.0, 0.05);
    }
    auto model = std::make_shared<LinearModel>();
    model->fit(x, y);
    return MachinePowerModel::fromParts(
        FeatureSet{"serve-listen",
                   {"Processor(0)\\% Processor Time",
                    "Processor(1)\\% Processor Time"}},
        std::move(model));
}

/**
 * `chaos serve --listen`: run the fleet server as a real network
 * server — a ChaosIngestServer accepting wire-protocol connections
 * (binary or JSONL) and feeding the shard queues, until a sample
 * budget or an idle window ends the run. `chaos loadgen` is the
 * matching client.
 */
int
cmdServeListen(const ParsedArgs &args, std::ostream &out,
               std::ostream &err)
{
    serve::FleetServerConfig config;
    config.numShards = static_cast<size_t>(
        std::stoul(args.flagOr("shards", "4")));
    config.queueCapacity = static_cast<size_t>(
        std::stoul(args.flagOr("queue-capacity", "8192")));
    config.snapshotEverySamples = static_cast<size_t>(
        std::stoul(args.flagOr("snapshot-every", "0")));
    serve::FleetServer server(config);

    OnlineEstimatorConfig estimatorConfig;
    const std::string platform = args.flagOr("platform", "");
    if (!platform.empty()) {
        estimatorConfig = OnlineEstimatorConfig::forSpec(
            machineSpecFor(machineClassFromName(platform)));
    }

    const std::string modelPath = args.flagOr("model", "");
    const std::string fleetPath = args.flagOr("fleet", "");
    const size_t machines = static_cast<size_t>(
        std::stoul(args.flagOr("machines", "8")));
    if (!fleetPath.empty()) {
        for (serve::FleetMachine &machine :
             serve::loadFleetModels(fleetPath)) {
            server.addMachine(machine.id, std::move(machine.model),
                              estimatorConfig);
        }
    } else {
        const MachinePowerModel model =
            modelPath.empty() ? syntheticServeModel(7, 25.0)
                              : loadMachineModelFile(modelPath);
        for (size_t i = 0; i < machines; ++i)
            server.addMachine("machine" + std::to_string(i), model,
                              estimatorConfig);
    }

    net::IngestServerConfig ingestConfig;
    ingestConfig.port = static_cast<uint16_t>(
        std::stoul(args.flagOr("listen", "0")));
    ingestConfig.creditBatch = static_cast<size_t>(
        std::stoul(args.flagOr("credit-batch", "0")));
    net::ChaosIngestServer ingest(server, ingestConfig);

    // Optional online quality monitoring: drift verdicts over the
    // metered references the wire samples carry — the trigger the
    // flight recorder below freezes on.
    std::optional<monitor::FleetMonitor> fleetMonitor;
    if (args.flagOr("monitor", "0") == "1" ||
        args.flagOr("monitor", "0") == "true") {
        monitor::QualityMonitorConfig qualityConfig;
        qualityConfig.windowSamples = static_cast<size_t>(
            std::stoul(args.flagOr("window", "60")));
        qualityConfig.warmupSamples = static_cast<size_t>(
            std::stoul(args.flagOr("warmup", "600")));
        qualityConfig.driftLambda =
            std::stod(args.flagOr("drift-lambda", "60"));
        qualityConfig.driftDelta =
            std::stod(args.flagOr("drift-delta", "0.5"));
        fleetMonitor.emplace(qualityConfig);
        fleetMonitor->attach(server);
    }

    // Optional flight recorder: keep rings of recent spans / events /
    // metric deltas and dump a diagnostic bundle when an anomaly
    // (ModelDrift, Backpressure, ConnectionDrop, Rollback) fires.
    const std::string flightDir = args.flagOr("flight-dir", "");
    if (!flightDir.empty()) {
        obs::FlightConfig flightConfig;
        flightConfig.outDir = flightDir;
        flightConfig.windowMs = std::stoull(
            args.flagOr("flight-window-ms", "10000"));
        flightConfig.rateLimitMs = std::stoull(
            args.flagOr("flight-rate-limit-ms", "30000"));
        auto &flight = obs::FlightRecorder::instance();
        flight.configure(flightConfig);
        flight.setEnabled(true);
    }

    server.start();
    ingest.start();
    out << "listening on " << ingest.config().bindAddress << ":"
        << ingest.port() << " (" << server.numMachines()
        << " machines, " << config.numShards << " shards)"
        << std::endl;

    // Scripts poll this file instead of parsing stdout (the port is
    // ephemeral when --listen 0).
    const std::string portFile = args.flagOr("port-file", "");
    if (!portFile.empty()) {
        std::ofstream file(portFile);
        raiseIf(!file, "cannot write " + portFile);
        file << ingest.port() << "\n";
        file.flush();
        raiseIf(!file.good(), "failed writing " + portFile);
    }

    // Run until the sample budget is met or ingest goes idle (both
    // optional; with neither, serve until the process is killed).
    const uint64_t maxSamples = std::stoull(
        args.flagOr("ingest-max-samples", "0"));
    const uint64_t idleMs =
        std::stoull(args.flagOr("ingest-idle-ms", "0"));
    auto lastChange = std::chrono::steady_clock::now();
    uint64_t lastSeen = 0;
    while (true) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const uint64_t processed = server.processed();
        const auto now = std::chrono::steady_clock::now();
        if (processed != lastSeen) {
            lastSeen = processed;
            lastChange = now;
        }
        if (maxSamples > 0 && processed >= maxSamples)
            break;
        if (idleMs > 0 &&
            now - lastChange >= std::chrono::milliseconds(idleMs))
            break;
    }
    ingest.stop();
    server.stop();

    const net::IngestStats stats = ingest.stats();
    out << "ingest: " << stats.connectionsAccepted << " connections ("
        << stats.connectionsDropped << " dropped), "
        << stats.samplesAccepted << " samples accepted, "
        << stats.rejectedBackpressure << " rejected (backpressure), "
        << stats.rejectedUnknown << " rejected (unknown machine), "
        << stats.badFrames << " bad frames\n";

    const serve::FleetSnapshot snapshot = server.snapshot();
    out << "cluster power: " << formatDouble(snapshot.clusterW, 1)
        << " W over " << snapshot.samplesProcessed
        << " processed samples\n";
    warnDroppedMachines(snapshot, err);

    if (fleetMonitor) {
        out << "monitor: " << fleetMonitor->driftEvents()
            << " drift events\n";
    }
    if (!flightDir.empty()) {
        auto &flight = obs::FlightRecorder::instance();
        flight.setEnabled(false);
        out << "flight: " << flight.bundlesWritten()
            << " bundles written";
        if (!flight.lastBundlePath().empty())
            out << ", last " << flight.lastBundlePath();
        out << "\n";
    }

    const std::string statsOut = args.flagOr("stats-out", "");
    if (!statsOut.empty()) {
        std::ofstream file(statsOut);
        raiseIf(!file, "cannot write " + statsOut);
        file << "{\"ingest\": " << stats.toJson()
             << ", \"fleet\": " << snapshot.toJson() << "}\n";
        file.flush();
        raiseIf(!file.good(), "failed writing " + statsOut);
        out << "wrote ingest stats to " << statsOut << "\n";
    }
    return 0;
}

// Defined with the introspection plumbing below.
int loadgenReplay(const ParsedArgs &args, const std::string &target,
                  std::ostream &out, std::ostream &err);

/**
 * Drive an ingest server with paced concurrent connections — the
 * client half of `chaos serve --listen`, for smoke tests and load
 * experiments. Machine ids default to the machine0..machineN-1 names
 * listen mode registers. --replay switches to trace mode: send a
 * recorded (optionally fault-injected) dataset instead of synthetic
 * rows.
 */
int
cmdLoadgen(const ParsedArgs &args, std::ostream &out,
           std::ostream &err)
{
    std::string target = args.flagOr("target", "");
    if (target.empty()) {
        err << "usage: chaos loadgen --target host:port "
               "[--connections N] [--samples N]\n"
               "    [--machines N | --machine-ids \"a;b\"] [--rate "
               "R/conn/sec] [--row-size N]\n"
               "    [--window N] [--workers N] [--jsonl 1] "
               "[--metered-every N] [--seed S]\n"
               "    [--report-json F]\n"
               "    [--replay data.csv [--inject-stuck \"id;id\"] "
               "[--inject-at T] [--inject-stagger N]]\n";
        return 2;
    }
    if (net::isSocketTarget(target))
        target = target.substr(6);
    if (!args.flagOr("replay", "").empty())
        return loadgenReplay(args, target, out, err);

    net::LoadGenConfig config;
    const auto [host, port] = net::parseHostPort(target);
    config.host = host;
    config.port = port;
    config.connections = static_cast<size_t>(
        std::stoul(args.flagOr("connections", "8")));
    config.workers = static_cast<size_t>(
        std::stoul(args.flagOr("workers", "0")));
    config.samplesPerConnection = static_cast<size_t>(
        std::stoul(args.flagOr("samples", "1000")));
    config.ratePerConnection = std::stod(args.flagOr("rate", "0"));
    config.rowSize = static_cast<size_t>(std::stoul(args.flagOr(
        "row-size",
        std::to_string(CounterCatalog::instance().size()))));
    config.window = static_cast<size_t>(
        std::stoul(args.flagOr("window", "1024")));
    config.jsonl = args.flagOr("jsonl", "0") == "1" ||
                   args.flagOr("jsonl", "0") == "true";
    config.meteredEvery = static_cast<size_t>(
        std::stoul(args.flagOr("metered-every", "0")));
    config.seed = std::stoull(args.flagOr("seed", "42"));

    const std::string idList = args.flagOr("machine-ids", "");
    if (!idList.empty()) {
        for (const std::string &id : split(idList, ';'))
            if (!id.empty())
                config.machineIds.push_back(id);
    } else {
        const size_t machines = static_cast<size_t>(
            std::stoul(args.flagOr("machines", "8")));
        for (size_t i = 0; i < machines; ++i)
            config.machineIds.push_back("machine" +
                                        std::to_string(i));
    }

    net::LoadGenerator generator(config);
    const net::LoadGenReport report = generator.run();

    out << "loadgen: " << report.sent << " sent = "
        << report.accepted << " accepted + " << report.rejected
        << " rejected over " << config.connections
        << " connections in "
        << formatDouble(report.elapsedSec, 2) << " s ("
        << formatDouble(report.sentPerSec, 0) << " samples/sec)\n";
    out << "  ack latency: p50 "
        << formatDouble(report.p50LatencyMs, 2) << " ms, p99 "
        << formatDouble(report.p99LatencyMs, 2) << " ms, max "
        << formatDouble(report.maxLatencyMs, 2) << " ms\n";
    if (report.backpressureNacks > 0 || report.unknownNacks > 0) {
        out << "  nacks: " << report.backpressureNacks
            << " backpressure, " << report.unknownNacks
            << " unknown machine\n";
    }
    if (report.connectionsFailed > 0) {
        err << "error: " << report.connectionsFailed
            << " connections failed: " << report.firstError << "\n";
    }

    const std::string reportJson = args.flagOr("report-json", "");
    if (!reportJson.empty()) {
        std::ofstream file(reportJson);
        raiseIf(!file, "cannot write " + reportJson);
        file << report.toJson() << "\n";
        file.flush();
        raiseIf(!file.good(), "failed writing " + reportJson);
        out << "wrote report to " << reportJson << "\n";
    }
    return report.connectionsFailed == 0 ? 0 : 1;
}

/** @return @p root[section][key] as a number (0 when absent). */
double
topNumber(const obs::JsonValue &root, const char *section,
          const char *key)
{
    const obs::JsonValue *sec = root.find(section);
    if (sec == nullptr || !sec->isObject())
        return 0.0;
    const obs::JsonValue *value = sec->find(key);
    return value != nullptr && value->isNumber() ? value->asNumber()
                                                 : 0.0;
}

/** Render one parsed introspection snapshot as a text dashboard. */
void
renderTop(const obs::JsonValue &snap, const std::string &target,
          std::ostream &out)
{
    out << "chaos top — " << target << " (ts "
        << static_cast<std::uint64_t>(
               topNumber(snap, "fleet", "ts_ms"))
        << " ms)\n\n";

    out << "fleet:  "
        << formatDouble(topNumber(snap, "fleet", "cluster_w"), 1)
        << " W cluster, "
        << static_cast<std::uint64_t>(
               topNumber(snap, "fleet", "processed"))
        << " processed, "
        << static_cast<std::uint64_t>(
               topNumber(snap, "fleet", "dropped"))
        << " dropped, drifting "
        << static_cast<std::uint64_t>(
               topNumber(snap, "fleet", "drifting"))
        << ", quarantined "
        << static_cast<std::uint64_t>(
               topNumber(snap, "fleet", "quarantined"))
        << "\n";
    out << "ingest: "
        << static_cast<std::uint64_t>(
               topNumber(snap, "ingest", "connections_open"))
        << " connections open, "
        << static_cast<std::uint64_t>(
               topNumber(snap, "ingest", "samples_accepted"))
        << " accepted, "
        << static_cast<std::uint64_t>(
               topNumber(snap, "ingest", "rejected_backpressure"))
        << " backpressured, "
        << static_cast<std::uint64_t>(
               topNumber(snap, "ingest", "bad_frames"))
        << " bad frames\n";
    out << "flight: "
        << static_cast<std::uint64_t>(
               topNumber(snap, "flight", "bundles_written"))
        << " bundles, "
        << static_cast<std::uint64_t>(
               topNumber(snap, "flight", "triggers_seen"))
        << " triggers\n\n";

    const obs::JsonValue *stages = snap.find("stage_latency");
    TextTable table({"Stage", "p50 (us)", "p99 (us)", "Samples"});
    if (stages != nullptr && stages->isObject()) {
        for (const auto &[name, stage] : stages->members()) {
            if (!stage.isObject())
                continue;
            const obs::JsonValue *p50 = stage.find("p50");
            const obs::JsonValue *p99 = stage.find("p99");
            const obs::JsonValue *count = stage.find("count");
            table.addRow(
                {name,
                 formatDouble(
                     p50 != nullptr ? p50->asNumber() : 0.0, 2),
                 formatDouble(
                     p99 != nullptr ? p99->asNumber() : 0.0, 2),
                 std::to_string(static_cast<std::uint64_t>(
                     count != nullptr ? count->asNumber() : 0.0))});
        }
    }
    out << table.render();
}

/**
 * `chaos top`: live introspection of a running `chaos serve
 * --listen` — poll the server's Introspect frame and render fleet
 * power, ingest accounting, per-stage latency percentiles, and the
 * flight-recorder state. --json 1 prints the raw snapshot JSON once
 * (the scriptable mode tier-1 validates); the default refreshes a
 * dashboard every --interval-ms until --count polls were shown.
 */
int
cmdTop(const ParsedArgs &args, std::ostream &out, std::ostream &err)
{
    std::string target = args.flagOr("target", "");
    if (target.empty() && args.positional.size() > 1)
        target = args.positional[1];
    if (target.empty()) {
        err << "usage: chaos top --target host:port [--json 1]\n"
               "    [--interval-ms MS] [--count N] [--timeout-ms MS]\n";
        return 2;
    }
    if (net::isSocketTarget(target))
        target = target.substr(6);
    const auto [host, port] = net::parseHostPort(target);

    const bool jsonMode = args.flagOr("json", "0") == "1" ||
                          args.flagOr("json", "0") == "true";
    const int timeoutMs =
        std::stoi(args.flagOr("timeout-ms", "5000"));
    const int intervalMs =
        std::stoi(args.flagOr("interval-ms", "1000"));
    // --json is one-shot unless --count says otherwise; the
    // dashboard refreshes until interrupted by default.
    const std::uint64_t count = std::stoull(
        args.flagOr("count", jsonMode ? "1" : "0"));

    for (std::uint64_t poll = 0; count == 0 || poll < count; ++poll) {
        if (poll > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(intervalMs));
        }
        const std::string json =
            net::fetchSnapshot(host, port, poll + 1, timeoutMs);
        if (jsonMode) {
            out << json << "\n";
            continue;
        }
        obs::JsonValue snap;
        raiseIf(!obs::jsonParse(json, snap),
                "top: server sent malformed snapshot JSON");
        if (poll > 0)
            out << "\x1b[2J\x1b[H"; // Clear + home between refreshes.
        renderTop(snap, target, out);
        out.flush();
    }
    return 0;
}

/**
 * `chaos loadgen --replay`: send a recorded trace (optionally fault-
 * injected with stuck counters, same flags as `chaos autopilot`)
 * through the wire protocol to a live ingest server, one connection,
 * metered references attached. This is how tier-1 provokes a real
 * ModelDrift — and therefore a flight-recorder bundle — on a
 * network-fed server from a clean recording.
 */
int
loadgenReplay(const ParsedArgs &args, const std::string &target,
              std::ostream &out, std::ostream &err)
{
    (void)err;
    Dataset data = loadDataset(args.flagOr("replay", ""));

    const std::string injectIds = args.flagOr("inject-stuck", "");
    if (!injectIds.empty()) {
        std::vector<std::string> targets;
        for (const std::string &part : split(injectIds, ';')) {
            const std::string id = trim(part);
            if (!id.empty())
                targets.push_back(id);
        }
        data = injectStuckCounters(
            data, targets,
            std::stoul(args.flagOr("inject-at", "0")),
            std::stoul(args.flagOr("inject-stagger", "0")),
            std::stoull(args.flagOr("seed", "2012")));
    }

    net::IngestClientConfig config;
    const auto [host, port] = net::parseHostPort(target);
    config.host = host;
    config.port = port;
    config.window = static_cast<size_t>(
        std::stoul(args.flagOr("window", "1024")));
    config.jsonl = args.flagOr("jsonl", "0") == "1" ||
                   args.flagOr("jsonl", "0") == "true";
    net::IngestClient client(config);
    client.connect();

    // Metered references ride every Nth sample (default: every one —
    // the monitor's drift detector needs them).
    const size_t meteredEvery = static_cast<size_t>(
        std::stoul(args.flagOr("metered-every", "1")));
    std::map<int, std::uint64_t> tickOf;
    for (size_t r = 0; r < data.numRows(); ++r) {
        const int machine = data.machineIds()[r];
        const std::uint64_t tick = tickOf[machine]++;
        const std::vector<double> row = data.features().row(r);
        const double metered =
            meteredEvery != 0 && tick % meteredEvery == 0
                ? data.powerW()[r]
                : std::numeric_limits<double>::quiet_NaN();
        client.send(tick, "machine" + std::to_string(machine),
                    row.data(), row.size(), metered);
    }
    const bool drained = client.drain();
    client.close();

    out << "replayed " << client.sent() << " samples over the wire: "
        << client.accepted() << " accepted, " << client.rejected()
        << " rejected"
        << (drained ? "" : " (server closed before full drain)")
        << "\n";
    return drained ? 0 : 1;
}

/**
 * Replay a recorded counter trace through the streaming fleet server
 * (paper Eq. 5 as a service): every machine in the trace gets an
 * online estimator, samples are enqueued tick by tick at the chosen
 * speed, and the server drains them through the thread pool while
 * emitting periodic fleet-power snapshots.
 */
int
cmdServe(const ParsedArgs &args, std::ostream &out, std::ostream &err)
{
    if (args.flags.count("listen") != 0)
        return cmdServeListen(args, out, err);
    const std::string replayPath = args.flagOr("replay", "");
    const std::string modelPath = args.flagOr("model", "");
    const std::string fleetPath = args.flagOr("fleet", "");
    if (replayPath.empty() || (modelPath.empty() == fleetPath.empty())) {
        err << "usage: chaos serve --replay <data.csv> "
               "(--model <model.txt> | --fleet <manifest.txt>)\n"
               "    [--speed X] [--platform P] [--shards N] "
               "[--queue-capacity N]\n"
               "    [--snapshot-every N] [--snapshots-out F]\n";
        return 2;
    }

    const Dataset data = loadDataset(replayPath);
    serve::TraceReplayer replayer(data);

    serve::FleetServerConfig config;
    config.numShards = static_cast<size_t>(
        std::stoul(args.flagOr("shards", "4")));
    config.queueCapacity = static_cast<size_t>(
        std::stoul(args.flagOr("queue-capacity", "8192")));
    config.snapshotEverySamples = static_cast<size_t>(
        std::stoul(args.flagOr("snapshot-every", "0")));
    serve::FleetServer server(config);

    OnlineEstimatorConfig estimatorConfig;
    const std::string platform = args.flagOr("platform", "");
    if (!platform.empty()) {
        estimatorConfig = OnlineEstimatorConfig::forSpec(
            machineSpecFor(machineClassFromName(platform)));
    }

    if (!modelPath.empty()) {
        // One shared model deployed to every machine in the trace.
        const MachinePowerModel model = loadMachineModelFile(modelPath);
        for (const std::string &id : replayer.machineIds())
            server.addMachine(id, model, estimatorConfig);
    } else {
        for (serve::FleetMachine &machine :
             serve::loadFleetModels(fleetPath)) {
            server.addMachine(machine.id, std::move(machine.model),
                              estimatorConfig);
        }
    }

    serve::ReplayConfig replayConfig;
    replayConfig.speed = std::stod(args.flagOr("speed", "0"));

    server.start();
    const serve::ReplayStats stats =
        replayer.replayInto(server, replayConfig);
    server.stop();

    const serve::FleetSnapshot final_snapshot = server.snapshot();
    out << "replayed " << stats.ticks << " ticks x "
        << server.numMachines() << " machines: " << stats.submitted
        << " samples submitted, " << server.processed()
        << " processed, " << server.dropped() << " dropped\n";
    out << "cluster power: "
        << formatDouble(final_snapshot.clusterW, 1) << " W (healthy "
        << final_snapshot.healthy << ", degraded "
        << final_snapshot.degraded << ", stale "
        << final_snapshot.stale << ", lost " << final_snapshot.lost
        << ")\n";
    TextTable table({"Machine", "Watts", "Health", "Samples"});
    for (const serve::MachineSnapshot &machine :
         final_snapshot.machines) {
        table.addRow({machine.id, formatDouble(machine.watts, 1),
                      machineHealthName(machine.health),
                      std::to_string(machine.samples)});
    }
    out << table.render();
    warnDroppedMachines(final_snapshot, err);

    const std::string snapshotsOut = args.flagOr("snapshots-out", "");
    if (!snapshotsOut.empty()) {
        std::ofstream file(snapshotsOut);
        raiseIf(!file, "cannot write " + snapshotsOut);
        file << "[\n";
        for (const serve::FleetSnapshot &snap : server.snapshots())
            file << "  " << snap.toJson() << ",\n";
        file << "  " << final_snapshot.toJson() << "\n]\n";
        file.flush();
        raiseIf(!file.good(), "failed writing " + snapshotsOut);
        out << "wrote " << server.snapshots().size() + 1
            << " snapshots to " << snapshotsOut << "\n";
    }
    return 0;
}

/**
 * Replay a recorded trace through a monitored fleet: every evaluated
 * sample updates the per-machine rolling model-quality statistics
 * (windowed rMSE, rolling DRE, bias) and the Page-Hinkley drift
 * detector, a periodic text dashboard shows the fleet converging (or
 * drifting), and --telemetry-out streams fleet/quality/metrics
 * records as JSONL for downstream collectors.
 *
 * The replay is synchronous: instead of the background drainer
 * thread, every tick's samples are drained on the calling thread via
 * the replay onTick hook, so dashboard lines and telemetry records
 * are in lockstep with the trace (and deterministic for a fixed
 * trace).
 */
int
cmdMonitor(const ParsedArgs &args, std::ostream &out,
           std::ostream &err)
{
    const std::string replayPath = args.flagOr("replay", "");
    const std::string modelPath = args.flagOr("model", "");
    const std::string fleetPath = args.flagOr("fleet", "");
    if (replayPath.empty() || (modelPath.empty() == fleetPath.empty())) {
        err << "usage: chaos monitor --replay <data.csv> "
               "(--model <model.txt> | --fleet <manifest.txt>)\n"
               "    [--platform P] [--speed X] [--window N] "
               "[--warmup N]\n"
               "    [--drift-lambda L] [--drift-delta D]\n"
               "    [--telemetry-out F.jsonl|tcp://h:p] [--telemetry-every N] "
               "[--dashboard-every N]\n";
        return 2;
    }

    const Dataset data = loadDataset(replayPath);
    serve::TraceReplayer replayer(data);

    serve::FleetServer server;

    OnlineEstimatorConfig estimatorConfig;
    const std::string platform = args.flagOr("platform", "");
    if (!platform.empty()) {
        estimatorConfig = OnlineEstimatorConfig::forSpec(
            machineSpecFor(machineClassFromName(platform)));
    }

    if (!modelPath.empty()) {
        const MachinePowerModel model = loadMachineModelFile(modelPath);
        for (const std::string &id : replayer.machineIds())
            server.addMachine(id, model, estimatorConfig);
    } else {
        for (serve::FleetMachine &machine :
             serve::loadFleetModels(fleetPath)) {
            server.addMachine(machine.id, std::move(machine.model),
                              estimatorConfig);
        }
    }

    monitor::QualityMonitorConfig qualityConfig;
    qualityConfig.windowSamples = static_cast<size_t>(
        std::stoul(args.flagOr("window", "60")));
    qualityConfig.warmupSamples = static_cast<size_t>(
        std::stoul(args.flagOr("warmup", "600")));
    qualityConfig.driftLambda =
        std::stod(args.flagOr("drift-lambda", "60"));
    qualityConfig.driftDelta =
        std::stod(args.flagOr("drift-delta", "0.5"));
    monitor::FleetMonitor fleetMonitor(qualityConfig);
    fleetMonitor.attach(server);

    std::optional<monitor::TelemetryExporter> telemetry;
    const std::string telemetryOut = args.flagOr("telemetry-out", "");
    if (!telemetryOut.empty()) {
        // "tcp://host:port" streams records to a live collector over
        // a socket; anything else is a JSONL file path.
        if (net::isSocketTarget(telemetryOut))
            telemetry.emplace(net::connectLineSink(telemetryOut),
                              telemetryOut);
        else
            telemetry.emplace(telemetryOut);
    }
    const size_t telemetryEvery = static_cast<size_t>(
        std::stoul(args.flagOr("telemetry-every", "10")));
    const size_t dashboardEvery = static_cast<size_t>(
        std::stoul(args.flagOr("dashboard-every", "0")));

    serve::ReplayConfig replayConfig;
    replayConfig.speed = std::stod(args.flagOr("speed", "0"));
    replayConfig.onTick = [&](size_t tick) {
        // Synchronous lockstep: drain this tick's samples here.
        while (server.processed() + server.dropped() <
               server.submitted())
            server.drainOnce();
        const bool lastTick = tick + 1 == replayer.numTicks();
        if (telemetry &&
            (tick % telemetryEvery == 0 || lastTick)) {
            const monitor::QualitySnapshot quality =
                fleetMonitor.publishMetrics();
            telemetry->writeFleet(server.snapshot(), tick);
            telemetry->writeQuality(quality, tick);
            telemetry->writeMetrics(tick);
        }
        if (dashboardEvery != 0 &&
            (tick % dashboardEvery == 0 || lastTick)) {
            const monitor::QualitySnapshot quality =
                fleetMonitor.snapshot();
            double worstDre = 0.0;
            for (const auto &machine : quality.machines) {
                if (std::isfinite(machine.rollingDre))
                    worstDre =
                        std::max(worstDre, machine.rollingDre);
            }
            out << "tick " << tick << ": cluster "
                << formatDouble(server.snapshot().clusterW, 1)
                << " W, worst rolling DRE "
                << formatPercent(worstDre, 1) << ", drifting "
                << quality.driftingCount() << "/"
                << quality.machines.size() << "\n";
        }
    };

    const serve::ReplayStats stats =
        replayer.replayInto(server, replayConfig);

    const monitor::QualitySnapshot quality =
        fleetMonitor.publishMetrics();
    out << "monitored " << stats.ticks << " ticks x "
        << fleetMonitor.numMachines() << " machines: "
        << stats.submitted << " samples, " << server.processed()
        << " processed, " << server.dropped() << " dropped\n";
    TextTable table({"Machine", "Quality", "rMSE (W)", "DRE", "Bias (W)",
                     "Drift stat"});
    for (const monitor::MachineQualityReport &machine :
         quality.machines) {
        table.addRow(
            {machine.id, modelQualityName(machine.quality),
             formatDouble(machine.windowRmseW, 2),
             std::isfinite(machine.rollingDre)
                 ? formatPercent(machine.rollingDre, 1)
                 : "n/a",
             formatDouble(machine.biasW, 2),
             formatDouble(machine.driftStatistic, 1)});
    }
    out << table.render();
    out << "drift events: " << fleetMonitor.driftEvents() << "\n";

    if (telemetry) {
        telemetry->flush();
        out << "wrote " << telemetry->records()
            << " telemetry records to " << telemetry->path() << "\n";
    }
    return 0;
}

/** "12.3%" for finite ratios, "n/a" otherwise (empty sketches). */
std::string
formatRatioCell(double ratio)
{
    return std::isfinite(ratio) ? formatPercent(ratio, 1) : "n/a";
}

/** "3.21" for finite watts, "n/a" otherwise. */
std::string
formatWattsCell(double watts, int decimals)
{
    return std::isfinite(watts) ? formatDouble(watts, decimals)
                                : "n/a";
}

/** Render one roll-up node: children, platforms, worst machines. */
void
renderFleetview(const rollup::NodeSummary &node, std::ostream &out)
{
    const rollup::RollupStats &s = node.stats;
    out << "fleetview "
        << (node.path.empty() ? std::string("(root)") : node.path)
        << ": " << s.machines << " machines (" << s.metered
        << " metered), " << formatDouble(s.watts, 1) << " W, drifting "
        << s.qualityDrifting << " (" << formatPercent(s.driftRate(), 1)
        << " of metered), quarantined " << s.quarantined << "\n";

    if (!node.children.empty()) {
        TextTable groups({"Group", "Machines", "Metered", "Watts",
                          "Healthy", "Drifting", "Drift rate",
                          "DRE p50", "DRE p99", "rMSE p99 (W)"});
        for (const rollup::NodeSummary &child : node.children) {
            const rollup::RollupStats &c = child.stats;
            groups.addRow(
                {child.name, std::to_string(c.machines),
                 std::to_string(c.metered), formatDouble(c.watts, 1),
                 std::to_string(c.healthy),
                 std::to_string(c.qualityDrifting),
                 formatRatioCell(c.driftRate()),
                 formatRatioCell(c.dre.quantile(0.5)),
                 formatRatioCell(c.dre.quantile(0.99)),
                 formatWattsCell(c.rmseW.quantile(0.99), 2)});
        }
        out << groups.render();
    }

    if (!s.platforms.empty()) {
        TextTable platforms({"Platform", "Machines", "Metered",
                             "Drifting", "Drift rate", "Watts"});
        for (const auto &[name, p] : s.platforms) {
            platforms.addRow({name, std::to_string(p.machines),
                              std::to_string(p.metered),
                              std::to_string(p.drifting),
                              formatRatioCell(p.driftRate()),
                              formatDouble(p.watts, 1)});
        }
        out << platforms.render();
    }

    if (!s.worst.empty()) {
        TextTable worst({"Worst machine", "Group", "DRE", "rMSE (W)",
                         "Drifted"});
        for (const rollup::MachineRank &r : s.worst) {
            worst.addRow({r.id, r.path,
                          formatRatioCell(r.rollingDre),
                          formatWattsCell(r.windowRmseW, 2),
                          r.drifted ? "yes" : "no"});
        }
        out << worst.render();
    }
}

/** Pre-order JSONL dump of a summary tree (one node per line). */
void
appendRollupLines(const rollup::NodeSummary &node, std::string &out)
{
    out += node.toJson();
    out += "\n";
    for (const rollup::NodeSummary &child : node.children)
        appendRollupLines(child, out);
}

/**
 * Place sorted machine ids into synthetic "fleet<K>" groups of
 * @p groupSize. Telemetry and replay streams carry no topology, so
 * the fleetview groups them deterministically by id order; real
 * deployments would feed real placement metadata instead.
 */
template <typename Feed>
void
placeSequentially(Feed &feed, const std::vector<std::string> &ids,
                  std::size_t groupSize, const std::string &platform)
{
    for (std::size_t i = 0; i < ids.size(); ++i) {
        feed.place(ids[i],
                   "fleet" + std::to_string(i / groupSize),
                   platform);
    }
}

/**
 * The datacenter-scale observability dashboard: aggregate per-machine
 * quality into the hierarchical roll-up tree and render any level of
 * it. Three feeds — a synthetic topology (scale demos), an offline
 * telemetry JSONL replay (post-hoc analysis of a monitor/autopilot
 * run), and a live lockstep trace replay through a real FleetServer +
 * FleetMonitor — all land in the same RollupTree, so the rendering
 * and the JSONL roll-up export are identical across them.
 */
int
cmdFleetview(const ParsedArgs &args, std::ostream &out,
             std::ostream &err)
{
    const std::string syntheticCount = args.flagOr("synthetic", "");
    const std::string telemetryPath = args.flagOr("telemetry", "");
    const std::string replayPath = args.flagOr("replay", "");
    const int modes = (syntheticCount.empty() ? 0 : 1) +
                      (telemetryPath.empty() ? 0 : 1) +
                      (replayPath.empty() ? 0 : 1);
    if (modes != 1) {
        err << "usage: chaos fleetview (--synthetic N | --telemetry "
               "F.jsonl | --replay data.csv (--model M | --fleet F))\n"
               "    [--ticks N] [--seed S] [--worst N] [--path "
               "dc0/row1] [--rollup-out F.jsonl]\n"
               "    [--group-size N] [--platform P]\n";
        return 2;
    }

    rollup::RollupConfig rollupConfig;
    rollupConfig.worstN = static_cast<std::size_t>(
        std::stoul(args.flagOr("worst", "5")));
    rollup::RollupTree tree(rollupConfig);

    const std::size_t groupSize = static_cast<std::size_t>(
        std::stoul(args.flagOr("group-size", "8")));
    const std::string platform = args.flagOr("platform", "");

    if (!syntheticCount.empty()) {
        FleetTopologyConfig topoConfig;
        topoConfig.machines = static_cast<std::size_t>(
            std::stoul(syntheticCount));
        topoConfig.seed = std::stoull(args.flagOr("seed", "42"));
        const FleetTopology topology(topoConfig);
        rollup::SyntheticRollupFeed feed(tree, topology);
        const std::uint64_t ticks =
            std::stoull(args.flagOr("ticks", "30"));
        for (std::uint64_t t = 0; t < ticks; ++t)
            feed.tick(t);
        out << "synthetic fleet: " << topology.size()
            << " machines, " << ticks << " ticks, ground-truth "
            << "drifting " << topology.driftTruthTotal() << "\n";
    } else if (!telemetryPath.empty()) {
        // Pass 1: discover machine ids so grouping covers everyone.
        std::vector<std::string> ids;
        {
            std::set<std::string> seen;
            std::ifstream in(telemetryPath);
            raiseIf(!in.is_open(),
                    "cannot open telemetry: " + telemetryPath);
            std::string line;
            while (std::getline(in, line)) {
                if (line.empty())
                    continue;
                obs::JsonValue record;
                if (!obs::jsonParse(line, record))
                    continue; // Replay will report the bad line.
                const obs::JsonValue *payload = record.find("fleet");
                if (!payload)
                    payload = record.find("quality");
                if (!payload || !payload->isObject())
                    continue;
                const obs::JsonValue *machines =
                    payload->find("machines");
                if (!machines || !machines->isArray())
                    continue;
                for (const obs::JsonValue &m : machines->items()) {
                    const std::string id = m.stringOr("id", "");
                    if (!id.empty())
                        seen.insert(id);
                }
            }
            ids.assign(seen.begin(), seen.end());
        }
        rollup::JsonlRollupFeed feed(tree);
        placeSequentially(feed, ids, groupSize,
                          platform.empty() ? "unknown" : platform);
        const rollup::JsonlReplayStats stats =
            feed.replayFile(telemetryPath);
        out << "telemetry replay: " << stats.lines << " lines, "
            << stats.fleetRecords << " fleet + "
            << stats.qualityRecords << " quality records ("
            << stats.skipped << " skipped), last tick "
            << stats.lastTick << "\n";
    } else {
        const std::string modelPath = args.flagOr("model", "");
        const std::string fleetPath = args.flagOr("fleet", "");
        if (modelPath.empty() == fleetPath.empty()) {
            err << "error: fleetview --replay needs exactly one of "
                   "--model or --fleet\n";
            return 2;
        }
        const Dataset data = loadDataset(replayPath);
        serve::TraceReplayer replayer(data);
        serve::FleetServer server;

        OnlineEstimatorConfig estimatorConfig;
        if (!platform.empty()) {
            estimatorConfig = OnlineEstimatorConfig::forSpec(
                machineSpecFor(machineClassFromName(platform)));
        }
        if (!modelPath.empty()) {
            const MachinePowerModel model =
                loadMachineModelFile(modelPath);
            for (const std::string &id : replayer.machineIds())
                server.addMachine(id, model, estimatorConfig);
        } else {
            for (serve::FleetMachine &machine :
                 serve::loadFleetModels(fleetPath)) {
                server.addMachine(machine.id,
                                  std::move(machine.model),
                                  estimatorConfig);
            }
        }

        monitor::QualityMonitorConfig qualityConfig;
        qualityConfig.windowSamples = static_cast<size_t>(
            std::stoul(args.flagOr("window", "60")));
        qualityConfig.warmupSamples = static_cast<size_t>(
            std::stoul(args.flagOr("warmup", "600")));
        monitor::FleetMonitor fleetMonitor(qualityConfig);
        fleetMonitor.attach(server);

        rollup::LiveRollupFeed feed(tree);
        placeSequentially(feed, server.machineIds(), groupSize,
                          platform.empty() ? "unknown" : platform);

        serve::ReplayConfig replayConfig;
        replayConfig.speed = std::stod(args.flagOr("speed", "0"));
        const std::uint64_t observeEvery =
            std::stoull(args.flagOr("ticks", "10"));
        replayConfig.onTick = [&](size_t tick) {
            // Synchronous lockstep, like cmdMonitor: drain this
            // tick's samples, then join the snapshots into the tree.
            while (server.processed() + server.dropped() <
                   server.submitted())
                server.drainOnce();
            const bool lastTick = tick + 1 == replayer.numTicks();
            if (observeEvery != 0 &&
                (tick % observeEvery == 0 || lastTick)) {
                feed.observe(server.snapshot(),
                             fleetMonitor.snapshot());
            }
        };
        const serve::ReplayStats stats =
            replayer.replayInto(server, replayConfig);
        out << "live replay: " << stats.ticks << " ticks x "
            << server.numMachines() << " machines, "
            << feed.observed() << " roll-up joins\n";
    }

    const rollup::NodeSummary summary = tree.aggregate();
    const std::string drillPath = args.flagOr("path", "");
    const rollup::NodeSummary *node = summary.find(drillPath);
    if (!node) {
        err << "error: no roll-up group '" << drillPath << "'\n";
        return 2;
    }
    renderFleetview(*node, out);

    const std::string rollupOut = args.flagOr("rollup-out", "");
    if (!rollupOut.empty()) {
        std::string lines;
        appendRollupLines(summary, lines);
        writeTextFile(rollupOut, lines);
        out << "wrote " << tree.numNodes() << " roll-up nodes to "
            << rollupOut << "\n";
    }
    return 0;
}

/**
 * Rebuild @p data with the listed machines' counter vectors passed
 * through a stuck-counter DriftStorm from @p onsetTick on (metered
 * power stays true — that divergence is what the monitor detects).
 * @p targets holds replay-style ids ("machine<N>"); rows keep their
 * recorded order, with a per-machine tick counter driving the storm.
 */
Dataset
injectStuckCounters(const Dataset &data,
                    const std::vector<std::string> &targets,
                    std::size_t onsetTick, std::size_t staggerTicks,
                    std::uint64_t seed)
{
    DriftStormConfig stormConfig;
    stormConfig.machines = targets.size();
    stormConfig.onsetTick = onsetTick;
    stormConfig.staggerTicks = staggerTicks;
    stormConfig.seed = seed;
    DriftStorm storm(stormConfig);

    Dataset faulted(data.featureNames());
    std::map<int, std::size_t> tickOf;
    for (size_t r = 0; r < data.numRows(); ++r) {
        const int machine = data.machineIds()[r];
        const std::size_t tick = tickOf[machine]++;
        std::vector<double> row = data.features().row(r);
        const auto target =
            std::find(targets.begin(), targets.end(),
                      "machine" + std::to_string(machine));
        if (target != targets.end()) {
            row = storm.apply(
                static_cast<std::size_t>(target - targets.begin()),
                tick, std::move(row));
        }
        faulted.addRow(
            row, data.powerW()[r], data.runIds()[r], machine,
            data.workloadNames()[data.workloadIds()[r]]);
    }
    return faulted;
}

/**
 * Replay a recorded trace through the full self-healing loop: fleet
 * server + quality monitor + remediation autopilot. Drift verdicts
 * quarantine the machine behind a substitute model, a retrain on the
 * live reference window produces a candidate, and a canary-gated swap
 * either promotes it or rolls back. --inject-stuck fault-injects the
 * trace itself (stuck counters under a moving workload) so the whole
 * loop can be demonstrated from a clean recording.
 *
 * Replay is synchronous and single-threaded (samples drain and the
 * autopilot ticks inside the replay onTick hook, retrains run inline)
 * so a fixed trace and seed reproduce the same remediation story.
 */
int
cmdAutopilot(const ParsedArgs &args, std::ostream &out,
             std::ostream &err)
{
    const std::string replayPath = args.flagOr("replay", "");
    const std::string modelPath = args.flagOr("model", "");
    const std::string fleetPath = args.flagOr("fleet", "");
    if (replayPath.empty() || (modelPath.empty() == fleetPath.empty())) {
        err << "usage: chaos autopilot --replay <data.csv> "
               "(--model <model.txt> | --fleet <manifest.txt>)\n"
               "    [--platform P] [--speed X] [--window N] "
               "[--warmup N]\n"
               "    [--drift-lambda L] [--drift-delta D]\n"
               "    [--substitute pooled|lastgood] [--retrain-type T]\n"
               "    [--canary-samples N] [--cooldown N] "
               "[--max-retrains N]\n"
               "    [--reference-window N] [--min-retrain-samples N]\n"
               "    [--inject-stuck \"machine0;machine1\"] "
               "[--inject-at T] [--inject-stagger N]\n"
               "    [--telemetry-out F.jsonl|tcp://h:p] [--telemetry-every N] "
               "[--dashboard-every N]\n";
        return 2;
    }

    Dataset data = loadDataset(replayPath);

    // The pooled quarantine substitute is fit on the clean recording;
    // faults are injected afterwards, into the replayed copy only.
    const std::string substituteMode =
        args.flagOr("substitute", "pooled");
    if (substituteMode != "pooled" && substituteMode != "lastgood") {
        err << "error: --substitute must be pooled or lastgood\n";
        return 2;
    }
    const Dataset cleanData = data;

    const std::string injectIds = args.flagOr("inject-stuck", "");
    if (!injectIds.empty()) {
        std::vector<std::string> targets;
        for (const std::string &part : split(injectIds, ';')) {
            const std::string id = trim(part);
            if (!id.empty())
                targets.push_back(id);
        }
        data = injectStuckCounters(
            data, targets,
            std::stoul(args.flagOr("inject-at", "0")),
            std::stoul(args.flagOr("inject-stagger", "0")),
            std::stoull(args.flagOr("seed", "2012")));
    }

    serve::TraceReplayer replayer(data);
    serve::FleetServer server;

    OnlineEstimatorConfig estimatorConfig;
    const std::string platform = args.flagOr("platform", "");
    if (!platform.empty()) {
        estimatorConfig = OnlineEstimatorConfig::forSpec(
            machineSpecFor(machineClassFromName(platform)));
    }

    FeatureSet substituteFeatures;
    if (!modelPath.empty()) {
        const MachinePowerModel model = loadMachineModelFile(modelPath);
        substituteFeatures = model.featureSet();
        for (const std::string &id : replayer.machineIds())
            server.addMachine(id, model, estimatorConfig);
    } else {
        std::vector<serve::FleetMachine> fleet =
            serve::loadFleetModels(fleetPath);
        raiseIf(fleet.empty(), "empty fleet manifest " + fleetPath);
        substituteFeatures = fleet.front().model.featureSet();
        for (serve::FleetMachine &machine : fleet) {
            server.addMachine(machine.id, std::move(machine.model),
                              estimatorConfig);
        }
    }

    monitor::QualityMonitorConfig qualityConfig;
    qualityConfig.windowSamples = static_cast<size_t>(
        std::stoul(args.flagOr("window", "60")));
    qualityConfig.warmupSamples = static_cast<size_t>(
        std::stoul(args.flagOr("warmup", "600")));
    qualityConfig.driftLambda =
        std::stod(args.flagOr("drift-lambda", "60"));
    qualityConfig.driftDelta =
        std::stod(args.flagOr("drift-delta", "0.5"));
    monitor::FleetMonitor fleetMonitor(qualityConfig);
    fleetMonitor.attach(server);

    autopilot::AutopilotConfig pilotConfig;
    pilotConfig.backgroundRetrain = false; // Deterministic replay.
    pilotConfig.maxConcurrentRetrains = static_cast<size_t>(
        std::stoul(args.flagOr("max-retrains", "2")));
    pilotConfig.referenceWindowSamples = static_cast<size_t>(
        std::stoul(args.flagOr("reference-window", "256")));
    pilotConfig.retrainMinSamples = static_cast<size_t>(
        std::stoul(args.flagOr("min-retrain-samples", "64")));
    pilotConfig.canaryMinSamples = static_cast<size_t>(
        std::stoul(args.flagOr("canary-samples", "32")));
    pilotConfig.cooldownTicks = static_cast<size_t>(
        std::stoul(args.flagOr("cooldown", "60")));
    const std::string retrainType = args.flagOr("retrain-type", "");
    if (!retrainType.empty()) {
        bool ok = false;
        pilotConfig.fallbackRetrainType =
            modelTypeFromString(retrainType, err, ok);
        if (!ok)
            return 2;
    }
    autopilot::AutopilotController pilot(server, fleetMonitor,
                                         pilotConfig);
    if (substituteMode == "pooled") {
        pilot.setSubstituteModel(
            fitPooledSubstitute(cleanData, substituteFeatures));
    }
    pilot.start();

    std::optional<monitor::TelemetryExporter> telemetry;
    const std::string telemetryOut = args.flagOr("telemetry-out", "");
    if (!telemetryOut.empty()) {
        // "tcp://host:port" streams records to a live collector over
        // a socket; anything else is a JSONL file path.
        if (net::isSocketTarget(telemetryOut))
            telemetry.emplace(net::connectLineSink(telemetryOut),
                              telemetryOut);
        else
            telemetry.emplace(telemetryOut);
    }
    const size_t telemetryEvery = static_cast<size_t>(
        std::stoul(args.flagOr("telemetry-every", "10")));
    const size_t dashboardEvery = static_cast<size_t>(
        std::stoul(args.flagOr("dashboard-every", "0")));

    serve::ReplayConfig replayConfig;
    replayConfig.speed = std::stod(args.flagOr("speed", "0"));
    replayConfig.onTick = [&](size_t tick) {
        // Synchronous lockstep: drain, then advance the autopilot.
        while (server.processed() + server.dropped() <
               server.submitted())
            server.drainOnce();
        pilot.tick();
        const bool lastTick = tick + 1 == replayer.numTicks();
        if (telemetry &&
            (tick % telemetryEvery == 0 || lastTick)) {
            const monitor::QualitySnapshot quality =
                fleetMonitor.publishMetrics();
            telemetry->writeFleet(server.snapshot(), tick);
            telemetry->writeQuality(quality, tick);
            telemetry->writeMetrics(tick);
        }
        if (dashboardEvery != 0 &&
            (tick % dashboardEvery == 0 || lastTick)) {
            const serve::FleetSnapshot snap = server.snapshot();
            size_t remediating = 0;
            for (const autopilot::MachineRemediation &machine :
                 pilot.status()) {
                if (machine.state !=
                    autopilot::RemediationState::Serving)
                    ++remediating;
            }
            out << "tick " << tick << ": cluster "
                << formatDouble(snap.clusterW, 1) << " W, quarantined "
                << snap.quarantined << "/" << snap.machines.size()
                << ", remediating " << remediating << "\n";
        }
    };

    const serve::ReplayStats stats =
        replayer.replayInto(server, replayConfig);
    pilot.stop();

    const monitor::QualitySnapshot quality = fleetMonitor.snapshot();
    out << "replayed " << stats.ticks << " ticks x "
        << server.numMachines() << " machines: " << stats.submitted
        << " samples, " << server.processed() << " processed, "
        << server.dropped() << " dropped\n";

    std::map<std::string, const monitor::MachineQualityReport *>
        reportById;
    for (const monitor::MachineQualityReport &machine :
         quality.machines)
        reportById[machine.id] = &machine;
    TextTable table({"Machine", "State", "Quality", "Quar", "Promo",
                     "Rollb", "Canary rMSE (W)"});
    for (const autopilot::MachineRemediation &machine :
         pilot.status()) {
        const auto report = reportById.find(machine.id);
        const std::string qualityName =
            report != reportById.end()
                ? modelQualityName(report->second->quality)
                : "n/a";
        const std::string canary =
            machine.promotions + machine.rollbacks > 0
                ? formatDouble(machine.lastCandidateRmseW, 2) +
                      " vs " +
                      formatDouble(machine.lastIncumbentRmseW, 2)
                : "n/a";
        table.addRow({machine.id,
                      autopilot::remediationStateName(machine.state),
                      qualityName, std::to_string(machine.quarantines),
                      std::to_string(machine.promotions),
                      std::to_string(machine.rollbacks), canary});
    }
    out << table.render();

    const autopilot::AutopilotStats pilotStats = pilot.stats();
    out << "autopilot summary: quarantines=" << pilotStats.quarantines
        << " retrains=" << pilotStats.retrainsStarted
        << " promotions=" << pilotStats.promotions
        << " rollbacks=" << pilotStats.rollbacks
        << " failures=" << pilotStats.retrainFailures << "\n";
    out << "drift events: " << fleetMonitor.driftEvents() << "\n";

    if (telemetry) {
        telemetry->flush();
        out << "wrote " << telemetry->records()
            << " telemetry records to " << telemetry->path() << "\n";
    }
    return 0;
}

int
cmdReport(const ParsedArgs &args, std::ostream &out,
          std::ostream &err)
{
    if (args.positional.size() != 2) {
        err << "usage: chaos report <data.csv>\n";
        return 2;
    }
    const Dataset data = loadDataset(args.positional[1]);
    if (data.numRows() == 0) {
        err << "error: empty dataset\n";
        return 2;
    }

    out << "# CHAOS dataset report\n\n";
    out << "- samples: " << data.numRows() << " machine-seconds\n";
    out << "- counters: " << data.numFeatures() << "\n";
    std::set<int> machines(data.machineIds().begin(),
                           data.machineIds().end());
    std::set<int> runs(data.runIds().begin(), data.runIds().end());
    out << "- machines: " << machines.size() << ", runs: "
        << runs.size() << "\n\n";

    out << "| workload | samples | min W | mean W | max W | "
           "energy/run (kJ) |\n";
    out << "|---|---|---|---|---|---|\n";
    for (const auto &workload : data.workloadNames()) {
        std::vector<double> watts;
        std::set<int> workload_runs;
        for (size_t r = 0; r < data.numRows(); ++r) {
            if (data.workloadNames()[data.workloadIds()[r]] ==
                workload) {
                watts.push_back(data.powerW()[r]);
                workload_runs.insert(data.runIds()[r]);
            }
        }
        if (watts.empty())
            continue;
        double total = 0.0;
        for (double w : watts)
            total += w;
        out << "| " << workload << " | " << watts.size() << " | "
            << formatDouble(minValue(watts), 1) << " | "
            << formatDouble(total / watts.size(), 1) << " | "
            << formatDouble(maxValue(watts), 1) << " | "
            << formatDouble(total / 1000.0 /
                                static_cast<double>(
                                    workload_runs.size()),
                            1)
            << " |\n";
    }
    return 0;
}

} // namespace

namespace {

/** Dispatch one parsed subcommand; may raise RecoverableError. */
int
dispatch(const std::string &command, const ParsedArgs &parsed,
         std::ostream &out, std::ostream &err)
{
    if (command == "list-platforms")
        return cmdListPlatforms(out);
    if (command == "list-counters")
        return cmdListCounters(parsed, out, err);
    if (command == "probe")
        return cmdProbe(parsed, out, err);
    if (command == "collect")
        return cmdCollect(parsed, out, err);
    if (command == "select")
        return cmdSelect(parsed, out, err);
    if (command == "train")
        return cmdTrain(parsed, out, err);
    if (command == "evaluate")
        return cmdEvaluate(parsed, out, err);
    if (command == "predict")
        return cmdPredict(parsed, out, err);
    if (command == "serve")
        return cmdServe(parsed, out, err);
    if (command == "loadgen")
        return cmdLoadgen(parsed, out, err);
    if (command == "top")
        return cmdTop(parsed, out, err);
    if (command == "monitor")
        return cmdMonitor(parsed, out, err);
    if (command == "autopilot")
        return cmdAutopilot(parsed, out, err);
    if (command == "fleetview")
        return cmdFleetview(parsed, out, err);
    if (command == "report")
        return cmdReport(parsed, out, err);

    err << "error: unknown subcommand '" << command
        << "' (try 'chaos help')\n";
    return 2;
}

/** Write @p content to @p path, raising RecoverableError on failure. */
void
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream file(path);
    raiseIf(!file, "cannot write " + path);
    file << content;
    file.flush();
    raiseIf(!file.good(), "failed writing " + path);
}

/**
 * Observability flags shared by every subcommand. Tracing is enabled
 * only when a trace output was requested; the export itself happens
 * after the subcommand ran.
 */
struct ObsOptions
{
    std::string traceOutPath;
    std::string traceSummaryPath;
    std::string metricsOutPath;

    static std::optional<ObsOptions> fromArgs(const ParsedArgs &args,
                                              std::ostream &err)
    {
        const std::string level_name = args.flagOr("log-level", "");
        if (!level_name.empty()) {
            LogLevel level;
            if (!logLevelFromName(level_name, level)) {
                err << "error: unknown log level '" << level_name
                    << "' (debug|info|warn|error|silent)\n";
                return std::nullopt;
            }
            setLogLevel(level);
        }
        ObsOptions options;
        options.traceOutPath = args.flagOr("trace-out", "");
        options.traceSummaryPath = args.flagOr("trace-summary", "");
        options.metricsOutPath = args.flagOr("metrics-out", "");
        if (!options.traceOutPath.empty() ||
            !options.traceSummaryPath.empty())
            obs::setTraceEnabled(true);
        return options;
    }

    /** Export whatever was requested; raises on unwritable paths. */
    void exportAll() const
    {
        if (!traceOutPath.empty())
            writeTextFile(traceOutPath, obs::chromeTraceJson());
        if (!traceSummaryPath.empty())
            writeTextFile(traceSummaryPath, obs::phaseSummary());
        if (!metricsOutPath.empty()) {
            writeTextFile(metricsOutPath,
                          obs::Registry::instance().snapshotJson(
                              /*includeScheduling=*/true));
        }
    }
};

} // namespace

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    if (args.empty() || args[0] == "help" || args[0] == "--help")
        return cmdHelp(out);

    const auto parsed = parseArgs(args, err);
    if (!parsed)
        return 2;

    const auto obs_options = ObsOptions::fromArgs(*parsed, err);
    if (!obs_options)
        return 2;

    const std::string &command = parsed->positional.empty()
                                     ? args[0]
                                     : parsed->positional[0];
    // The library raises RecoverableError on malformed user data
    // (bad dataset CSV, corrupt model file, unknown names); the CLI
    // is the process boundary where that becomes an error message
    // and a nonzero exit code.
    int code;
    try {
        code = dispatch(command, *parsed, out, err);
    } catch (const RecoverableError &e) {
        err << "error: " << e.message() << "\n";
        code = 2;
    }
    // Trace/metrics exports also cover failed runs: observability is
    // most valuable exactly when a run went wrong.
    try {
        obs_options->exportAll();
    } catch (const RecoverableError &e) {
        err << "error: " << e.message() << "\n";
        return 2;
    }
    return code;
}

} // namespace chaos
