/**
 * @file
 * The `chaos` command-line interface.
 *
 * Wraps the library's pipeline in subcommands so the full
 * collect -> select -> train -> evaluate -> predict flow can be
 * driven from a shell, with datasets and models persisted as files:
 *
 *   chaos list-platforms
 *   chaos list-counters [--category <name>]
 *   chaos probe <platform>
 *   chaos collect <platform> --out data.csv [--machines N]
 *       [--runs N] [--seed S] [--scale F]
 *   chaos select data.csv
 *   chaos train data.csv --out model.txt [--type quadratic]
 *       [--features "a;b;c"] [--seed S]
 *   chaos evaluate data.csv [--type quadratic] [--folds K] [--seed S]
 *   chaos predict model.txt data.csv
 *
 * Implemented as a library function so tests can drive it directly.
 */
#ifndef CHAOS_CLI_CLI_HPP
#define CHAOS_CLI_CLI_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace chaos {

/**
 * Run one CLI invocation.
 *
 * @param args Arguments EXCLUDING the program name.
 * @param out Stream for normal output.
 * @param err Stream for usage errors and diagnostics.
 * @return Process exit code (0 success, 2 usage error).
 */
int runCli(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err);

} // namespace chaos

#endif // CHAOS_CLI_CLI_HPP
