/**
 * @file
 * WattsUp? Pro-style wall power meter.
 *
 * The paper instruments every machine with a WattsUp? Pro sampling
 * once per second with 1.5% accuracy. We model that as a fixed
 * per-meter gain error (calibration) drawn within +/-1.5%, small
 * per-sample noise, and 0.1 W display quantization.
 */
#ifndef CHAOS_SIM_POWER_METER_HPP
#define CHAOS_SIM_POWER_METER_HPP

#include "util/random.hpp"

namespace chaos {

/** One wall power meter attached to one machine. */
class PowerMeter
{
  public:
    /**
     * @param rng Private stream; the calibration gain is drawn here.
     * @param accuracy Full-scale gain accuracy (default 1.5%).
     */
    explicit PowerMeter(Rng rng, double accuracy = 0.015);

    /**
     * Measure the given true power: apply gain error, per-sample
     * noise, and quantization.
     *
     * @param truePowerW Ground-truth AC watts this second.
     * @return Metered watts.
     */
    double sample(double truePowerW);

    /** The realized calibration gain of this meter (for tests). */
    double gain() const { return calibrationGain; }

  private:
    Rng rng;
    double calibrationGain;
    double sampleNoiseRel;
};

} // namespace chaos

#endif // CHAOS_SIM_POWER_METER_HPP
