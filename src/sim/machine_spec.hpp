/**
 * @file
 * Platform specifications for the six machine classes of the paper's
 * Table I, plus derived simulation parameters (P-states, disk
 * bandwidths, power budget split across components).
 */
#ifndef CHAOS_SIM_MACHINE_SPEC_HPP
#define CHAOS_SIM_MACHINE_SPEC_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace chaos {

/** The six platform classes evaluated in the paper (Table I). */
enum class MachineClass
{
    Atom,       ///< Embedded: Intel Atom, 2 cores, no DVFS, SSD.
    Core2,      ///< Mobile: Intel Core 2 Duo, 2 cores, package DVFS.
    Athlon,     ///< Desktop: AMD Athlon, 2 cores, package DVFS.
    Opteron,    ///< Server: AMD Opteron, 8 cores, per-core P-states.
    XeonSata,   ///< Server: Intel Xeon, 8 cores, 4x 7.2K SATA disks.
    XeonSas,    ///< Server: Intel Xeon, 8 cores, 6x 15K SAS disks.
    /**
     * Hypothetical next-generation server with FULLY independent
     * per-core DVFS (the paper's discussion predicts such systems
     * will have core-frequency correlations below 80% and require
     * individual core frequencies as model features). Not part of
     * the paper's Table I; used by the future-platform ablation.
     */
    FutureServer,
};

/** The paper's six machine classes, in Table I order. */
const std::vector<MachineClass> &allMachineClasses();

/** Table I classes plus the hypothetical FutureServer. */
const std::vector<MachineClass> &extendedMachineClasses();

/** Human-readable name ("Atom", "Core2", ...). */
std::string machineClassName(MachineClass mc);

/**
 * Parse a class name produced by machineClassName(); raises
 * RecoverableError otherwise.
 */
MachineClass machineClassFromName(const std::string &name);

/** Storage technology of a platform's disks. */
enum class DiskType
{
    Ssd,        ///< Micron SSD (Atom/Core2/Athlon).
    Sata10k,    ///< 10K RPM SATA (Opteron).
    Sata72k,    ///< 7.2K RPM SATA (Xeon SATA).
    Sas15k,     ///< 15K RPM SAS (Xeon SAS).
};

/**
 * Static description of one platform; power envelope numbers follow
 * Table I of the paper.
 */
struct MachineSpec
{
    MachineClass machineClass = MachineClass::Atom;
    std::string name;           ///< Class name for reports.

    // --- CPU ---
    size_t numCores = 2;        ///< Hardware threads modeled.
    bool hasDvfs = false;       ///< Any frequency scaling at all.
    bool perCoreDvfs = false;   ///< Cores may sit in different P-states.
    /**
     * Cores govern their P-states fully independently (future-style
     * platforms); when false, per-core capability only shows up as
     * transient divergence blips around a shared machine decision.
     */
    bool independentDvfs = false;
    /**
     * Number of trailing "efficiency" cores whose frequency is
     * capped at the middle P-state (big.LITTLE-style asymmetry on
     * future platforms). At equal machine utilization, power then
     * depends on WHICH cores are busy — information only the
     * per-core frequency counters carry.
     */
    size_t efficiencyCores = 0;
    bool hasC1 = false;         ///< Deep idle when all cores idle.
    /** Available operating frequencies in MHz, ascending. */
    std::vector<double> pStatesMhz;
    /**
     * Probability that a core's P-state diverges from core 0 in a
     * given second (paper: up to 12% Opteron, 20% Xeon).
     */
    double pStateDivergence = 0.0;

    // --- Power envelope (AC watts, Table I "Power Range") ---
    double idlePowerW = 0.0;    ///< Bottom of the dynamic range.
    double maxPowerW = 0.0;     ///< Top of the dynamic range.

    // --- Dynamic power budget split (fractions of max-idle) ---
    double cpuPowerShare = 0.6;   ///< CPU portion of dynamic power.
    double memPowerShare = 0.1;   ///< Memory portion.
    double diskPowerShare = 0.1;  ///< Disk portion (all disks).
    double netPowerShare = 0.05;  ///< NIC portion.
    /** Convexity of the AC power curve (PSU + voltage scaling). */
    double psuConvexity = 0.3;
    /**
     * Absolute floor of the unmodelable per-second power noise in
     * watts (background OS activity, regulator ripple). Dominates on
     * platforms with tiny dynamic ranges — it is why the Atom's DRE
     * is large even when its percent error is small (Table III).
     */
    double basalNoiseW = 0.5;

    // --- Storage ---
    size_t numDisks = 1;
    DiskType diskType = DiskType::Ssd;
    double diskBandwidthMBs = 250.0;  ///< Per-disk streaming MB/s.

    // --- Memory ---
    double memoryGB = 4.0;

    /** Dynamic power range in watts (max - idle). */
    double dynamicRangeW() const { return maxPowerW - idlePowerW; }

    /** Highest available frequency in MHz. */
    double maxFrequencyMhz() const { return pStatesMhz.back(); }

    /** Lowest available frequency in MHz. */
    double minFrequencyMhz() const { return pStatesMhz.front(); }
};

/** Canonical spec for a machine class (Table I parameters). */
MachineSpec machineSpecFor(MachineClass mc);

} // namespace chaos

#endif // CHAOS_SIM_MACHINE_SPEC_HPP
