/**
 * @file
 * Resource demand a workload places on one machine for one second.
 *
 * This is the interface between the workload layer and the machine
 * simulator: workloads produce ActivityDemand streams, the machine
 * turns them into component states, counters, and power.
 */
#ifndef CHAOS_SIM_ACTIVITY_HPP
#define CHAOS_SIM_ACTIVITY_HPP

namespace chaos {

/** Per-second resource demand for a single machine. */
struct ActivityDemand
{
    /**
     * CPU demand in core-seconds per second; may exceed the core
     * count (the machine saturates at numCores).
     */
    double cpuCoreSeconds = 0.0;

    /** Streaming disk reads requested, bytes/second. */
    double diskReadBytes = 0.0;
    /** Streaming disk writes requested, bytes/second. */
    double diskWriteBytes = 0.0;
    /**
     * Fraction of disk accesses that are random rather than
     * sequential; random access costs HDDs extra seek power and
     * reduces achieved bandwidth.
     */
    double diskRandomFraction = 0.0;

    /** Network receive demand, bytes/second. */
    double netRxBytes = 0.0;
    /** Network transmit demand, bytes/second. */
    double netTxBytes = 0.0;

    /** Target working-set size, bytes (drives Committed Bytes). */
    double workingSetBytes = 0.0;
    /**
     * Memory access intensity in [0, 1]: how hard the resident set
     * is being churned (drives page/cache fault counters and memory
     * power).
     */
    double memIntensity = 0.0;

    /** File-system cache operations per second (mapped reads etc.). */
    double fsCacheOps = 0.0;

    /** Sum two demands (machine runs both task sets). */
    ActivityDemand &operator+=(const ActivityDemand &other)
    {
        cpuCoreSeconds += other.cpuCoreSeconds;
        diskReadBytes += other.diskReadBytes;
        diskWriteBytes += other.diskWriteBytes;
        // Blend random fractions weighted by traffic volume.
        const double mine = diskReadBytes + diskWriteBytes -
                            other.diskReadBytes - other.diskWriteBytes;
        const double theirs = other.diskReadBytes + other.diskWriteBytes;
        if (mine + theirs > 0.0) {
            diskRandomFraction =
                (diskRandomFraction * mine +
                 other.diskRandomFraction * theirs) / (mine + theirs);
        }
        netRxBytes += other.netRxBytes;
        netTxBytes += other.netTxBytes;
        workingSetBytes += other.workingSetBytes;
        memIntensity =
            memIntensity + other.memIntensity -
            memIntensity * other.memIntensity;  // Union of pressures.
        fsCacheOps += other.fsCacheOps;
        return *this;
    }
};

} // namespace chaos

#endif // CHAOS_SIM_ACTIVITY_HPP
