/**
 * @file
 * Ground-truth full-system power model ("the physics").
 *
 * This class plays the role of the physical machine: it converts
 * component states into AC wall power. It is intentionally nonlinear
 * (sub-linear utilization exponent, voltage/frequency scaling on the
 * CPU term, a convex PSU curve) and carries per-machine coefficient
 * variation and slowly-wandering hidden state, so that:
 *
 *  - linear models underpredict the top of the dynamic range (Fig. 5),
 *  - frequency interacts multiplicatively with utilization, which
 *    rewards quadratic/switching models on DVFS platforms (Fig. 4),
 *  - identical machines differ by up to ~10% (paper Section III-B),
 *  - no model reaches zero error (hidden state + process noise).
 *
 * The modeling stack never sees this class; it sees OS counters and
 * metered watts only.
 */
#ifndef CHAOS_SIM_TRUTH_POWER_HPP
#define CHAOS_SIM_TRUTH_POWER_HPP

#include "sim/machine_spec.hpp"
#include "sim/machine_state.hpp"
#include "util/random.hpp"

namespace chaos {

/** Hidden ground-truth power function of one machine instance. */
class TruthPowerModel
{
  public:
    /**
     * @param spec Platform description.
     * @param rng Private stream; draws the per-machine coefficient
     *            variation at construction and noise during stepping.
     */
    TruthPowerModel(const MachineSpec &spec, Rng rng);

    /**
     * AC wall power for one second in the given state.
     * Advances the hidden workload-mix state and draws process noise,
     * so consecutive calls with the same state differ slightly.
     */
    double step(const MachineState &state);

    /** Deterministic power with hidden state/noise frozen (tests). */
    double deterministicPower(const MachineState &state) const;

    /** This instance's idle power (after machine variation). */
    double idlePowerW() const { return idleW; }

    /** This instance's maximum power (after machine variation). */
    double maxPowerW() const { return idleW + dynamicW; }

  private:
    /** Normalized CPU activity in [0, ~1]; nonlinear in u and f. */
    double cpuActivity(const MachineState &state) const;
    /** Normalized memory-subsystem activity in [0, 1]. */
    double memActivity(const MachineState &state) const;
    /** Normalized disk activity in [0, 1]. */
    double diskActivity(const MachineState &state) const;
    /** Normalized NIC activity in [0, 1]. */
    double netActivity(const MachineState &state) const;

    const MachineSpec spec;
    Rng rng;

    // Per-machine realized parameters (drawn at construction).
    double idleW = 0.0;        ///< Realized idle power.
    double dynamicW = 0.0;     ///< Realized dynamic range.
    double cpuShare = 0.0;     ///< Realized component shares...
    double memShare = 0.0;
    double diskShare = 0.0;
    double netShare = 0.0;
    double convexity = 0.0;    ///< Realized PSU convexity.
    double c1SavingsW = 0.0;   ///< Extra savings in C1.

    // Hidden state: slowly wandering CPU efficiency multiplier
    // (instruction-mix effects invisible to OS counters).
    double hiddenMix = 1.0;
    double noiseStdW = 0.0;    ///< Process noise magnitude.
};

} // namespace chaos

#endif // CHAOS_SIM_TRUTH_POWER_HPP
