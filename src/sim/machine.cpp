#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace chaos {

Machine::Machine(MachineSpec spec_, size_t machineId_, uint64_t seed)
    : machineSpec(std::move(spec_)), machineId(machineId_), rng(seed),
      governor(machineSpec, rng.fork(1)),
      truth(machineSpec, rng.fork(2))
{
    resetRunState();
}

void
Machine::resetRunState()
{
    timeSeconds = 0.0;
    // A freshly booted/settled OS commits a baseline working set.
    committedBytes = 0.35e9 + 0.02e9 * rng.uniform();
    pageFilePeak = committedBytes;
    cachePressure = 0.05;
}

std::vector<double>
Machine::scheduleCores(double cpuCoreSeconds)
{
    const size_t n = machineSpec.numCores;
    std::vector<double> utils(n, 0.0);
    double remaining = std::clamp(cpuCoreSeconds, 0.0,
                                  static_cast<double>(n));

    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    rng.shuffle(order);

    if (machineSpec.independentDvfs) {
        // An energy-aware OS on a per-core-DVFS platform packs work
        // onto as few cores as possible so idle cores can drop to
        // deep P-states — the very behaviour that decorrelates core
        // frequencies (paper discussion).
        for (size_t i = 0; i < n && remaining > 0.0; ++i) {
            const double share = std::min(1.0, remaining);
            utils[order[i]] = share;
            remaining -= share;
        }
    } else {
        // The OS spreads runnable work over cores but not perfectly:
        // a random imbalance makes some cores hotter than others.
        const double even = remaining / static_cast<double>(n);
        for (size_t i = 0; i < n; ++i) {
            const double imbalance = rng.uniform(-0.15, 0.15) * even;
            utils[order[i]] = std::clamp(even + imbalance, 0.0, 1.0);
        }
    }
    // OS housekeeping adds a little background utilization.
    for (auto &u : utils) {
        u = std::clamp(u + std::max(0.0, rng.normal(0.004, 0.003)),
                       0.0, 1.0);
    }
    return utils;
}

std::vector<DiskState>
Machine::scheduleDisks(const ActivityDemand &demand)
{
    const size_t n = machineSpec.numDisks;
    std::vector<DiskState> disks(n);
    if (n == 0)
        return disks;

    const double bandwidth = machineSpec.diskBandwidthMBs * 1e6;
    // Random access degrades achieved bandwidth, HDDs far more than
    // SSDs (seek time dominates).
    const bool is_ssd = machineSpec.diskType == DiskType::Ssd;
    const double random_penalty = is_ssd ? 0.25 : 0.70;
    const double effective_bw =
        bandwidth *
        (1.0 - random_penalty * std::clamp(demand.diskRandomFraction,
                                           0.0, 1.0));

    // Traffic stripes across spindles with mild imbalance.
    double read_left = demand.diskReadBytes;
    double write_left = demand.diskWriteBytes;
    const double per_disk_read = read_left / static_cast<double>(n);
    const double per_disk_write = write_left / static_cast<double>(n);

    for (size_t d = 0; d < n; ++d) {
        const double jitter = rng.uniform(0.85, 1.15);
        DiskState &disk = disks[d];
        disk.readBytes =
            std::min(per_disk_read * jitter, effective_bw);
        disk.writeBytes = std::min(per_disk_write * jitter,
                                   effective_bw - disk.readBytes);
        const double traffic = disk.readBytes + disk.writeBytes;
        disk.utilization =
            std::clamp(traffic / std::max(effective_bw, 1.0), 0.0, 1.0);
        // Seeks: random ops at ~64 KiB granularity.
        disk.seekRate = demand.diskRandomFraction * traffic / 65536.0;
        if (!is_ssd)
            disk.seekRate = std::min(disk.seekRate, 400.0);
        else
            disk.seekRate = 0.0;
    }
    return disks;
}

void
Machine::fillOsState(const ActivityDemand &demand, MachineState &state)
{
    auto noisy = [this](double value, double rel_noise) {
        return std::max(0.0, value * rng.normal(1.0, rel_noise));
    };

    const double disk_bytes = state.totalDiskBytes();
    const double net_bytes = state.netRxBytes + state.netTxBytes;
    const double mean_util = state.meanUtilization();

    // --- Virtual memory ---
    // Committed bytes track the demanded working set with first-order
    // lag (the OS does not instantly release memory).
    const double target =
        0.35e9 + std::max(0.0, demand.workingSetBytes);
    committedBytes += 0.25 * (target - committedBytes);
    state.committedBytes = noisy(committedBytes, 0.002);
    pageFilePeak = std::max(pageFilePeak, committedBytes * 1.12);
    state.pageFileBytesPeak = pageFilePeak;

    // Hard paging: driven by memory pressure relative to RAM size.
    const double ram = machineSpec.memoryGB * 1e9;
    const double pressure =
        std::clamp(committedBytes / (0.9 * ram), 0.0, 1.5);
    const double hard_paging =
        pressure > 0.8 ? (pressure - 0.8) * 6000.0 : 0.0;
    state.pagesPerSec =
        noisy(hard_paging + disk_bytes / 2.5e5 +
                  600.0 * demand.memIntensity,
              0.08);
    state.pageReadsPerSec = noisy(0.35 * state.pagesPerSec, 0.10);

    // Soft faults: scale with CPU work and memory churn.
    state.pageFaultsPerSec =
        noisy(2500.0 * mean_util + 1500.0 * demand.memIntensity +
                  0.2 * state.pagesPerSec,
              0.07);
    state.cacheFaultsPerSec =
        noisy(1200.0 * demand.memIntensity + disk_bytes / 1.0e6 +
                  400.0 * mean_util,
              0.08);
    state.poolNonpagedAllocs =
        noisy(9000.0 + 2200.0 * mean_util + net_bytes / 2.0e5, 0.03);
    state.memIntensity = demand.memIntensity;

    // --- File system cache ---
    // Cache pressure rises with read traffic, decays when quiet.
    const double read_load =
        std::clamp(demand.diskReadBytes / 1.0e8, 0.0, 1.0);
    cachePressure += 0.3 * (read_load - cachePressure);
    cachePressure = std::clamp(cachePressure, 0.0, 1.0);

    state.dataMapPinsPerSec =
        noisy(demand.fsCacheOps * 0.45 + 30.0 * mean_util, 0.10);
    state.pinReadsPerSec = noisy(demand.fsCacheOps * 0.55, 0.10);
    state.pinReadHitPct = std::clamp(
        noisy(99.0 - 14.0 * cachePressure, 0.01), 60.0, 100.0);
    state.copyReadsPerSec =
        noisy(demand.fsCacheOps * 0.8 + disk_bytes / 6.0e5, 0.10);
    state.fastReadsNotPossiblePerSec =
        noisy(demand.fsCacheOps * 0.12 * cachePressure, 0.15);
    state.lazyWriteFlushesPerSec =
        noisy(demand.diskWriteBytes / 4.0e6 + 2.0, 0.12);

    // --- Process / interrupts ---
    state.processPageFaultsPerSec =
        noisy(0.9 * state.pageFaultsPerSec, 0.05);
    state.processIoDataBytesPerSec =
        noisy(disk_bytes + 0.5 * net_bytes, 0.04);
    state.interruptsPerSec =
        noisy(900.0 + net_bytes / 8000.0 + disk_bytes / 5.0e5 +
                  1200.0 * mean_util,
              0.05);
    state.dpcTimePct = std::clamp(
        noisy(0.3 + 6.0 * net_bytes / 2.5e8 + 2.0 * mean_util, 0.10),
        0.0, 100.0);

    // Kernel share of CPU time: loosely I/O-driven (interrupts,
    // syscalls) but noisy — kernel time is a blunt proxy for device
    // activity, not a measurement of it.
    const double io_bytes = disk_bytes + 0.5 * net_bytes;
    state.privilegedShare = std::clamp(
        noisy(0.10 + io_bytes / 3.0e9, 0.25), 0.04, 0.40);
}

MachineTick
Machine::step(const ActivityDemand &demand)
{
    MachineState state;
    state.timeSeconds = timeSeconds;
    state.uptimeSeconds = bootSeconds;

    state.coreUtilization = scheduleCores(demand.cpuCoreSeconds);
    state.coreFrequencyMhz = governor.step(state.coreUtilization);
    state.inC1 = governor.inC1();

    state.disks = scheduleDisks(demand);

    // NIC traffic is achieved up to line rate.
    const double line_rate = 125e6;  // 1 GbE per direction.
    state.netRxBytes = std::min(demand.netRxBytes, line_rate);
    state.netTxBytes = std::min(demand.netTxBytes, line_rate);

    fillOsState(demand, state);

    MachineTick tick;
    tick.truePowerW = truth.step(state);
    tick.state = std::move(state);
    timeSeconds += 1.0;
    bootSeconds += 1.0;
    return tick;
}

} // namespace chaos
