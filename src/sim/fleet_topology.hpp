/**
 * @file
 * Synthetic datacenter topology generator for the roll-up layer.
 *
 * Builds a machine → fleet → rack → row → datacenter hierarchy of
 * configurable arity over the paper's Table I platform classes
 * (fleets are platform-homogeneous, like real procurement waves) and
 * synthesizes per-machine quality observations — watts, rolling
 * rMSE/DRE, health, drift verdicts — as a pure deterministic function
 * of (seed, machine, tick). No serving loop, no estimators: this is
 * the scale rig for exercising hierarchical aggregation at 10k–100k
 * machines, where running real FleetServers would measure the wrong
 * thing.
 *
 * Ground truth is explicit: each machine knows whether it is metered
 * (carries reference readings) and whether its model truly drifts
 * (and from which tick). Only metered machines can *detect* their
 * drift, so sweeping meteredFraction against the roll-up's reported
 * drift rates reproduces the paper's pooling trade-off at fleet
 * scale: fewer metered references per class, weaker verdicts.
 *
 * Determinism: construction consumes one Rng stream in machine-index
 * order; observations fork a fresh stream per (machine, tick).
 * Identical configs produce identical fleets and identical
 * observation sequences on every platform and thread count.
 */
#ifndef CHAOS_SIM_FLEET_TOPOLOGY_HPP
#define CHAOS_SIM_FLEET_TOPOLOGY_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "sim/machine_spec.hpp"
#include "util/random.hpp"

namespace chaos {

/** Shape and statistics of the synthetic fleet. */
struct FleetTopologyConfig
{
    /** Total machines; the tree is filled fleet by fleet. */
    std::size_t machines = 1000;
    std::size_t machinesPerFleet = 40;
    std::size_t fleetsPerRack = 4;
    std::size_t racksPerRow = 8;
    std::size_t rowsPerDatacenter = 4;
    std::uint64_t seed = 42;
    /** Platform classes, assigned round-robin per fleet; empty means
     *  the paper's six Table I classes. */
    std::vector<MachineClass> platforms;
    /** Fraction of machines with metered references. */
    double meteredFraction = 0.25;
    /** Fraction of machines whose model truly drifts. */
    double driftFraction = 0.05;
    /** Ticks before a metered machine's verdict leaves Unknown. */
    std::uint64_t warmupTicks = 3;
};

/** One generated machine with its ground truth. */
struct SyntheticMachine
{
    std::string id;          ///< "m0000042", unique fleet-wide.
    std::string groupPath;   ///< "dc0/row1/rack2/fleet3".
    MachineClass machineClass = MachineClass::Atom;
    bool metered = false;    ///< Receives reference readings.
    bool driftTruth = false; ///< Model truly drifts (ground truth).
    std::uint64_t driftStartTick = 0; ///< First drifting tick.
    double baseWatts = 0.0;  ///< Operating point, watts.
    double baseRmseW = 0.0;  ///< Pre-drift rolling rMSE, watts.
};

/** One machine's synthesized state at a tick. */
struct SyntheticObservation
{
    double watts = 0.0;
    double windowRmseW = 0.0;
    /** NaN for unmetered machines (no references, no DRE). */
    double rollingDre = 0.0;
    double biasW = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t referenceSamples = 0;
    std::uint64_t dropped = 0;
    MachineHealth health = MachineHealth::Healthy;
    ModelQuality quality = ModelQuality::Unknown;
    bool quarantined = false;
    bool drifted = false;
};

/** The generated topology (see file comment). */
class FleetTopology
{
  public:
    explicit FleetTopology(FleetTopologyConfig config = {});

    std::size_t size() const { return machines_.size(); }

    const FleetTopologyConfig &config() const { return cfg_; }

    /** All machines, in id order. */
    const std::vector<SyntheticMachine> &machines() const
    {
        return machines_;
    }

    /**
     * Machine @p index's state at @p tick — a pure function of
     * (config.seed, index, tick), safe to call concurrently.
     */
    SyntheticObservation observe(std::size_t index,
                                 std::uint64_t tick) const;

    /**
     * Ground-truth drifting machines per platform-class name; the
     * oracle for verdict-quality sweeps.
     */
    std::map<std::string, std::size_t> driftTruthByPlatform() const;

    /** Ground-truth drifting machines, fleet-wide. */
    std::size_t driftTruthTotal() const;

  private:
    FleetTopologyConfig cfg_;
    std::vector<SyntheticMachine> machines_;
    /** Dynamic range per machine, aligned with machines_. */
    std::vector<double> dynamicRangeW_;
};

} // namespace chaos

#endif // CHAOS_SIM_FLEET_TOPOLOGY_HPP
