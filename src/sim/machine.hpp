/**
 * @file
 * One simulated machine: demand in, component state and wall power
 * out, one second at a time.
 */
#ifndef CHAOS_SIM_MACHINE_HPP
#define CHAOS_SIM_MACHINE_HPP

#include <string>

#include "sim/activity.hpp"
#include "sim/dvfs.hpp"
#include "sim/machine_spec.hpp"
#include "sim/machine_state.hpp"
#include "sim/truth_power.hpp"
#include "util/random.hpp"

namespace chaos {

/** Result of one simulated second on one machine. */
struct MachineTick
{
    MachineState state;     ///< Component snapshot.
    double truePowerW = 0.0;///< Ground-truth AC wall power.
};

/**
 * A single machine instance.
 *
 * Identical machines constructed with different seeds realize
 * different ground-truth power coefficients (machine-to-machine
 * variation), different OS noise, and different DVFS tie-breaking —
 * the variability CHAOS's pooled feature selection must absorb.
 */
class Machine
{
  public:
    /**
     * @param spec Platform description.
     * @param machineId Stable identifier within its cluster.
     * @param seed Seed for all of this machine's private streams.
     */
    Machine(MachineSpec spec, size_t machineId, uint64_t seed);

    /**
     * Advance one second under the given demand.
     * Updates internal OS state (committed bytes, page-file peak,
     * FS cache dynamics) and returns the snapshot plus true power.
     */
    MachineTick step(const ActivityDemand &demand);

    /** Reset per-run OS state (page-file peak, caches, time). */
    void resetRunState();

    /** Platform description. */
    const MachineSpec &spec() const { return machineSpec; }
    /** Identifier within the cluster. */
    size_t id() const { return machineId; }
    /** This instance's realized idle power. */
    double idlePowerW() const { return truth.idlePowerW(); }
    /** This instance's realized max power. */
    double maxPowerW() const { return truth.maxPowerW(); }

  private:
    /** Spread total CPU demand over cores (OS scheduler effects). */
    std::vector<double> scheduleCores(double cpuCoreSeconds);
    /** Spread disk traffic over spindles and compute utilizations. */
    std::vector<DiskState> scheduleDisks(const ActivityDemand &demand);
    /** Fill VM, FS-cache, process and interrupt counters. */
    void fillOsState(const ActivityDemand &demand, MachineState &state);

    MachineSpec machineSpec;
    size_t machineId;
    Rng rng;
    DvfsGovernor governor;
    TruthPowerModel truth;

    double timeSeconds = 0.0;
    double bootSeconds = 0.0;   ///< Uptime; survives run resets.
    double committedBytes = 0.0;
    double pageFilePeak = 0.0;
    double cachePressure = 0.0;  ///< FS cache churn state in [0, 1].
};

} // namespace chaos

#endif // CHAOS_SIM_MACHINE_HPP
