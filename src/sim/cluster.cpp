#include "sim/cluster.hpp"

#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

Cluster
Cluster::homogeneous(MachineClass mc, size_t numMachines, uint64_t seed)
{
    raiseIf(numMachines == 0, "cluster needs at least one machine");
    Cluster cluster;
    cluster.clusterName = machineClassName(mc) + " x" +
                          std::to_string(numMachines);
    Rng root(seed);
    for (size_t i = 0; i < numMachines; ++i) {
        InstrumentedMachine node;
        node.machine = std::make_unique<Machine>(
            machineSpecFor(mc), i, root.fork(100 + i).nextU64());
        node.meter =
            std::make_unique<PowerMeter>(root.fork(200 + i));
        cluster.nodes.push_back(std::move(node));
    }
    return cluster;
}

Cluster
Cluster::heterogeneous(
    const std::vector<std::pair<MachineClass, size_t>> &groups,
    uint64_t seed)
{
    raiseIf(groups.empty(), "heterogeneous cluster needs groups");
    Cluster cluster;
    Rng root(seed);
    size_t next_id = 0;
    for (const auto &[mc, count] : groups) {
        raiseIf(count == 0, "heterogeneous group with zero machines");
        if (!cluster.clusterName.empty())
            cluster.clusterName += "+";
        cluster.clusterName +=
            machineClassName(mc) + "x" + std::to_string(count);
        for (size_t i = 0; i < count; ++i) {
            InstrumentedMachine node;
            node.machine = std::make_unique<Machine>(
                machineSpecFor(mc), next_id,
                root.fork(100 + next_id).nextU64());
            node.meter =
                std::make_unique<PowerMeter>(root.fork(200 + next_id));
            cluster.nodes.push_back(std::move(node));
            ++next_id;
        }
    }
    return cluster;
}

Machine &
Cluster::machine(size_t i)
{
    panicIf(i >= nodes.size(), "Cluster::machine out of range");
    return *nodes[i].machine;
}

const Machine &
Cluster::machine(size_t i) const
{
    panicIf(i >= nodes.size(), "Cluster::machine out of range");
    return *nodes[i].machine;
}

PowerMeter &
Cluster::meter(size_t i)
{
    panicIf(i >= nodes.size(), "Cluster::meter out of range");
    return *nodes[i].meter;
}

void
Cluster::resetRunState()
{
    for (auto &node : nodes)
        node.machine->resetRunState();
}

double
Cluster::totalIdlePowerW() const
{
    double acc = 0.0;
    for (const auto &node : nodes)
        acc += node.machine->idlePowerW();
    return acc;
}

double
Cluster::totalMaxPowerW() const
{
    double acc = 0.0;
    for (const auto &node : nodes)
        acc += node.machine->maxPowerW();
    return acc;
}

} // namespace chaos
