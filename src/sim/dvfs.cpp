#include "sim/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace chaos {

DvfsGovernor::DvfsGovernor(const MachineSpec &spec_, Rng rng_)
    : spec(spec_), rng(std::move(rng_)),
      pStateIndex(spec_.numCores, spec_.pStatesMhz.size() - 1)
{
}

size_t
DvfsGovernor::targetPState(double utilization, size_t currentIndex) const
{
    const size_t top = spec.pStatesMhz.size() - 1;
    if (!spec.hasDvfs)
        return top;

    // Ondemand-style: jump to max above the up-threshold, step down
    // one level when under-utilized at the current speed.
    if (utilization > 0.65)
        return top;
    if (utilization < 0.35)
        return currentIndex > 0 ? currentIndex - 1 : 0;
    return currentIndex;
}

std::vector<double>
DvfsGovernor::step(const std::vector<double> &coreUtilization)
{
    panicIf(coreUtilization.size() != spec.numCores,
            "DvfsGovernor: wrong core count");

    const size_t top = spec.pStatesMhz.size() - 1;

    // Governed (persistent) P-states.
    std::vector<size_t> output;
    if (!spec.perCoreDvfs) {
        // Package-wide: govern on the busiest core.
        const double max_util = *std::max_element(
            coreUtilization.begin(), coreUtilization.end());
        const size_t target = targetPState(max_util, pStateIndex[0]);
        for (auto &idx : pStateIndex)
            idx = target;
    } else if (spec.independentDvfs) {
        // Future-style platform: every core governs itself from its
        // own utilization, with no machine-level coupling — and it
        // ramps GRADUALLY (one P-state per second in either
        // direction, for voltage-transition efficiency). Frequency
        // therefore depends on each core's utilization HISTORY, so
        // the per-core frequency counters carry information the
        // utilization counters alone cannot provide. Trailing
        // efficiency cores cap at the middle P-state (big.LITTLE-
        // style asymmetry).
        const size_t cap = spec.pStatesMhz.size() / 2;
        for (size_t c = 0; c < spec.numCores; ++c) {
            size_t target = pStateIndex[c];
            if (coreUtilization[c] > 0.65 && target < top)
                ++target;
            else if (coreUtilization[c] < 0.35 && target > 0)
                --target;
            if (spec.efficiencyCores > 0 &&
                c >= spec.numCores - spec.efficiencyCores) {
                target = std::min(target, cap);
            }
            pStateIndex[c] = target;
        }
    } else {
        // Per-core capable, but the OS power manager drives all
        // cores from the machine-level load (real per-core traces
        // are so correlated that the paper uses core 0 as a proxy
        // for the whole machine); the per-core capability shows up
        // as the transient divergence blips below.
        double mean_util = 0.0;
        for (double u : coreUtilization)
            mean_util += u;
        mean_util /= static_cast<double>(spec.numCores);
        const size_t target = targetPState(mean_util, pStateIndex[0]);
        for (auto &idx : pStateIndex)
            idx = target;
    }

    // Transient divergence blips: with the platform's probability a
    // sibling core spends THIS second one P-state away from its
    // governed state (the paper observes core 0 differing from a
    // sibling in 0.2% of seconds on mobile parts and 12-20% on the
    // servers). The governed state itself is untouched, so blips do
    // not accumulate.
    // spec.pStateDivergence is the MACHINE-level rate ("core 0
    // differed from at least one sibling in d of seconds"), so the
    // per-sibling blip probability q satisfies 1-(1-q)^(k-1) = d.
    const double siblings =
        static_cast<double>(spec.numCores > 1 ? spec.numCores - 1 : 1);
    const double per_core = 1.0 - std::pow(1.0 - spec.pStateDivergence,
                                           1.0 / siblings);
    output = pStateIndex;
    for (size_t c = 1; c < spec.numCores; ++c) {
        if (rng.bernoulli(per_core)) {
            output[c] = output[c] > 0 ? output[c] - 1
                                      : std::min<size_t>(1, top);
        }
    }

    // C1: all-idle deep sleep on server platforms.
    double total_util = 0.0;
    for (double u : coreUtilization)
        total_util += u;
    c1Active = spec.hasC1 && total_util < 0.01;

    std::vector<double> freqs(spec.numCores);
    for (size_t c = 0; c < spec.numCores; ++c)
        freqs[c] = c1Active ? 0.0 : spec.pStatesMhz[output[c]];
    return freqs;
}

} // namespace chaos
