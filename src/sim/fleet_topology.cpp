#include "sim/fleet_topology.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace chaos {

namespace {

/** Group path for machine @p index under the configured arities. */
std::string
groupPathFor(const FleetTopologyConfig &cfg, std::size_t index)
{
    const std::size_t fleet = index / cfg.machinesPerFleet;
    const std::size_t rack = fleet / cfg.fleetsPerRack;
    const std::size_t row = rack / cfg.racksPerRow;
    const std::size_t dc = row / cfg.rowsPerDatacenter;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "dc%zu/row%zu/rack%zu/fleet%zu",
                  dc, row % cfg.rowsPerDatacenter,
                  rack % cfg.racksPerRow, fleet % cfg.fleetsPerRack);
    return buf;
}

} // namespace

FleetTopology::FleetTopology(FleetTopologyConfig config)
    : cfg_(std::move(config))
{
    if (cfg_.machinesPerFleet == 0)
        cfg_.machinesPerFleet = 1;
    if (cfg_.fleetsPerRack == 0)
        cfg_.fleetsPerRack = 1;
    if (cfg_.racksPerRow == 0)
        cfg_.racksPerRow = 1;
    if (cfg_.rowsPerDatacenter == 0)
        cfg_.rowsPerDatacenter = 1;
    if (cfg_.platforms.empty())
        cfg_.platforms = allMachineClasses();

    machines_.reserve(cfg_.machines);
    dynamicRangeW_.reserve(cfg_.machines);
    Rng rng(cfg_.seed);
    for (std::size_t i = 0; i < cfg_.machines; ++i) {
        const std::size_t fleet = i / cfg_.machinesPerFleet;
        SyntheticMachine m;
        char id[32];
        std::snprintf(id, sizeof(id), "m%07zu", i);
        m.id = id;
        m.groupPath = groupPathFor(cfg_, i);
        m.machineClass = cfg_.platforms[fleet % cfg_.platforms.size()];

        const MachineSpec spec = machineSpecFor(m.machineClass);
        const double range = spec.dynamicRangeW();
        // Operating point and pre-drift accuracy: a steady utilization
        // draw and a window rMSE a few percent of the dynamic range,
        // the regime Table III reports for healthy models.
        m.baseWatts =
            spec.idlePowerW + rng.uniform(0.2, 0.8) * range;
        m.baseRmseW = rng.uniform(0.01, 0.05) * range;
        m.metered = rng.bernoulli(cfg_.meteredFraction);
        m.driftTruth = rng.bernoulli(cfg_.driftFraction);
        // Drift onsets spread over early ticks so short replays still
        // see ramps begin, long ones see them all latched.
        m.driftStartTick =
            cfg_.warmupTicks + 1 + rng.uniformInt(20);

        machines_.push_back(std::move(m));
        dynamicRangeW_.push_back(range);
    }
}

SyntheticObservation
FleetTopology::observe(std::size_t index, std::uint64_t tick) const
{
    const SyntheticMachine &m = machines_[index];
    const double range = dynamicRangeW_[index];

    // Private stream per (machine, tick): observations need no shared
    // generator state, so any subset may be synthesized in any order
    // (or concurrently) with identical results.
    Rng rng = Rng(cfg_.seed)
                  .fork(0x0b5e7ULL + static_cast<std::uint64_t>(index))
                  .fork(tick);

    SyntheticObservation out;
    out.watts = m.baseWatts + rng.normal(0.0, 0.02 * range);
    out.samples = (tick + 1) * 60; // One machine-second per second.

    // Health mix: rare, uncorrelated degradations.
    const double h = rng.uniform();
    if (h < 0.0005)
        out.health = MachineHealth::Lost;
    else if (h < 0.002)
        out.health = MachineHealth::Stale;
    else if (h < 0.012)
        out.health = MachineHealth::Degraded;
    out.dropped = out.health == MachineHealth::Degraded
                      ? rng.uniformInt(50)
                      : 0;

    if (!m.metered) {
        // No references: no residuals, no DRE, verdict stays Unknown.
        out.rollingDre = std::numeric_limits<double>::quiet_NaN();
        return out;
    }

    out.referenceSamples = (tick + 1) * 4; // Sparse metering cadence.
    out.windowRmseW = m.baseRmseW * rng.uniform(0.9, 1.1);

    const bool drifting = m.driftTruth && tick >= m.driftStartTick;
    if (drifting) {
        // Residual error ramps to roughly 3x the healthy level over
        // ten ticks after onset — comfortably past the detector's
        // threshold, like a real calibration break.
        const double ramp = std::min(
            1.0, static_cast<double>(tick - m.driftStartTick + 1) /
                     10.0);
        out.windowRmseW *= 1.0 + 2.0 * ramp;
        out.drifted = ramp >= 0.3; // Detection lag: a few ticks.
        out.biasW = 0.5 * out.windowRmseW;
    }
    out.rollingDre = range > 0.0 ? out.windowRmseW / range : 0.0;

    if (tick < cfg_.warmupTicks)
        out.quality = ModelQuality::Unknown;
    else if (out.drifted)
        out.quality = ModelQuality::Drifting;
    else
        out.quality = ModelQuality::Ok;
    // The autopilot quarantines a slice of confirmed drifters.
    out.quarantined = out.drifted && index % 4 == 0;
    return out;
}

std::map<std::string, std::size_t>
FleetTopology::driftTruthByPlatform() const
{
    std::map<std::string, std::size_t> out;
    for (const SyntheticMachine &m : machines_) {
        if (m.driftTruth)
            ++out[machineClassName(m.machineClass)];
    }
    return out;
}

std::size_t
FleetTopology::driftTruthTotal() const
{
    std::size_t n = 0;
    for (const SyntheticMachine &m : machines_) {
        if (m.driftTruth)
            ++n;
    }
    return n;
}

} // namespace chaos
