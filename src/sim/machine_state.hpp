/**
 * @file
 * Snapshot of a machine's component states after one simulated second.
 *
 * The OS counter sampler reads this struct to synthesize performance
 * counters; the ground-truth power model reads it to compute watts.
 * Power models never see this struct directly.
 */
#ifndef CHAOS_SIM_MACHINE_STATE_HPP
#define CHAOS_SIM_MACHINE_STATE_HPP

#include <cstddef>
#include <vector>

namespace chaos {

/** Per-disk state for one second. */
struct DiskState
{
    double utilization = 0.0;   ///< Busy fraction in [0, 1].
    double readBytes = 0.0;     ///< Achieved read bytes/second.
    double writeBytes = 0.0;    ///< Achieved write bytes/second.
    double seekRate = 0.0;      ///< Random accesses per second.
};

/** Component states of one machine for one simulated second. */
struct MachineState
{
    double timeSeconds = 0.0;       ///< Time within the current run.
    double uptimeSeconds = 0.0;     ///< Since machine boot (never
                                    ///< reset between runs).

    // --- CPU ---
    std::vector<double> coreUtilization;    ///< Per-core, [0, 1].
    std::vector<double> coreFrequencyMhz;   ///< Per-core P-state.
    bool inC1 = false;              ///< All-idle deep sleep state.

    // --- Storage ---
    std::vector<DiskState> disks;   ///< Per-disk activity.

    // --- Network ---
    double netRxBytes = 0.0;        ///< Achieved receive bytes/s.
    double netTxBytes = 0.0;        ///< Achieved transmit bytes/s.

    // --- Memory / VM subsystem ---
    double committedBytes = 0.0;    ///< Committed virtual memory.
    double pagesPerSec = 0.0;       ///< Hard page I/O per second.
    double pageFaultsPerSec = 0.0;  ///< All faults (mostly soft).
    double cacheFaultsPerSec = 0.0; ///< FS cache misses per second.
    double pageReadsPerSec = 0.0;   ///< Hard fault read ops.
    double poolNonpagedAllocs = 0.0;///< Kernel pool allocations.
    double memIntensity = 0.0;      ///< Access intensity, [0, 1].

    // --- File system cache ---
    double dataMapPinsPerSec = 0.0;
    double pinReadsPerSec = 0.0;
    double pinReadHitPct = 100.0;
    double copyReadsPerSec = 0.0;
    double fastReadsNotPossiblePerSec = 0.0;
    double lazyWriteFlushesPerSec = 0.0;

    // --- Process / job object ---
    double processPageFaultsPerSec = 0.0;
    double processIoDataBytesPerSec = 0.0;
    double pageFileBytesPeak = 0.0; ///< Monotone within a run.
    double interruptsPerSec = 0.0;
    double dpcTimePct = 0.0;
    /** Kernel share of CPU time this second, in [0, 1]. */
    double privilegedShare = 0.1;

    /** Mean utilization over all cores, in [0, 1]. */
    double meanUtilization() const
    {
        if (coreUtilization.empty())
            return 0.0;
        double acc = 0.0;
        for (double u : coreUtilization)
            acc += u;
        return acc / static_cast<double>(coreUtilization.size());
    }

    /** Total achieved disk traffic, bytes/second. */
    double totalDiskBytes() const
    {
        double acc = 0.0;
        for (const auto &d : disks)
            acc += d.readBytes + d.writeBytes;
        return acc;
    }

    /** Mean disk utilization in [0, 1] (0 with no disks). */
    double meanDiskUtilization() const
    {
        if (disks.empty())
            return 0.0;
        double acc = 0.0;
        for (const auto &d : disks)
            acc += d.utilization;
        return acc / static_cast<double>(disks.size());
    }
};

} // namespace chaos

#endif // CHAOS_SIM_MACHINE_STATE_HPP
