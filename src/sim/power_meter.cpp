#include "sim/power_meter.hpp"

#include <algorithm>
#include <cmath>

namespace chaos {

PowerMeter::PowerMeter(Rng rng_, double accuracy)
    : rng(std::move(rng_)),
      // The accuracy spec bounds the gain error; the paper verified
      // meter calibration and cross-compared readings between
      // machines, so the realized inter-meter spread is well inside
      // the spec (sd = accuracy/5, clamped at the spec bound).
      calibrationGain(1.0 + rng.clampedNormal(0.0, accuracy / 5.0,
                                              2.5)),
      sampleNoiseRel(0.003)
{
}

double
PowerMeter::sample(double truePowerW)
{
    double reading = truePowerW * calibrationGain;
    reading *= 1.0 + rng.normal(0.0, sampleNoiseRel);
    // WattsUp? Pro reports tenths of a watt.
    reading = std::round(reading * 10.0) / 10.0;
    return std::max(0.0, reading);
}

} // namespace chaos
