#include "sim/truth_power.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace chaos {

TruthPowerModel::TruthPowerModel(const MachineSpec &spec_, Rng rng_)
    : spec(spec_), rng(std::move(rng_))
{
    // Machine-to-machine variation: jitter the envelope and the
    // component shares. Within one cluster the spread is small
    // (~1-2%, consistent with the paper's pooled models absorbing
    // it); the paper's "up to 10%" refers to fleet-wide extremes.
    idleW = spec.idlePowerW * rng.clampedNormal(1.0, 0.004, 2.5);
    dynamicW = spec.dynamicRangeW() * rng.clampedNormal(1.0, 0.010, 2.5);

    cpuShare = spec.cpuPowerShare * rng.clampedNormal(1.0, 0.015, 2.0);
    memShare = spec.memPowerShare * rng.clampedNormal(1.0, 0.015, 2.0);
    diskShare = spec.diskPowerShare * rng.clampedNormal(1.0, 0.015, 2.0);
    netShare = spec.netPowerShare * rng.clampedNormal(1.0, 0.015, 2.0);
    const double total = cpuShare + memShare + diskShare + netShare;
    cpuShare /= total;
    memShare /= total;
    diskShare /= total;
    netShare /= total;

    convexity = std::clamp(
        spec.psuConvexity * rng.clampedNormal(1.0, 0.08, 2.0), 0.0, 0.8);
    c1SavingsW = spec.hasC1 ? 0.04 * dynamicW : 0.0;

    // Unmodelable per-second process noise: ~2% of the dynamic
    // range, floored at the platform's absolute basal noise
    // (together with the hidden-mix wander and meter noise it sets
    // the accuracy floor models cannot cross).
    noiseStdW = std::max(0.020 * dynamicW, spec.basalNoiseW);
}

double
TruthPowerModel::cpuActivity(const MachineState &state) const
{
    panicIf(state.coreUtilization.size() != spec.numCores,
            "TruthPowerModel: wrong core count");
    const double f_max = spec.maxFrequencyMhz();
    double acc = 0.0;
    for (size_t c = 0; c < spec.numCores; ++c) {
        const double util = std::clamp(state.coreUtilization[c], 0.0, 1.0);
        const double f_rel =
            std::clamp(state.coreFrequencyMhz[c] / f_max, 0.0, 1.0);
        // Linear-in-utilization dynamic power times a strong
        // frequency (voltage-squared) scaling, plus a frequency-
        // proportional uncore component. The convexity of the AC
        // response comes from the PSU/voltage shaping downstream.
        const double dyn =
            util * (0.18 + 0.82 * std::pow(f_rel, 2.5));
        const double uncore = 0.06 * f_rel;
        acc += std::min(1.0, dyn + uncore);
    }
    return acc / static_cast<double>(spec.numCores);
}

double
TruthPowerModel::memActivity(const MachineState &state) const
{
    // Memory power follows access intensity; hard paging and cache
    // faults indicate DRAM traffic beyond the CPU-driven component.
    const double paging = std::min(1.0, state.pagesPerSec / 3000.0);
    const double faults =
        std::min(1.0, state.cacheFaultsPerSec / 8000.0);
    return std::min(1.0, 0.70 * state.memIntensity +
                             0.20 * paging + 0.10 * faults);
}

double
TruthPowerModel::diskActivity(const MachineState &state) const
{
    if (state.disks.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &disk : state.disks) {
        const double seek = std::min(1.0, disk.seekRate / 300.0);
        acc += 0.75 * std::clamp(disk.utilization, 0.0, 1.0) +
               0.25 * seek;
    }
    return std::min(1.0, acc / static_cast<double>(state.disks.size()));
}

double
TruthPowerModel::netActivity(const MachineState &state) const
{
    // Gigabit-class NIC: ~125 MB/s each direction.
    const double cap = 125e6;
    const double used = (state.netRxBytes + state.netTxBytes) / (2 * cap);
    return std::clamp(used, 0.0, 1.0);
}

double
TruthPowerModel::deterministicPower(const MachineState &state) const
{
    const double z = cpuShare * cpuActivity(state) * hiddenMix +
                     memShare * memActivity(state) +
                     diskShare * diskActivity(state) +
                     netShare * netActivity(state);
    const double z_clamped = std::clamp(z, 0.0, 1.0);
    // Convex AC response: linear blend of z and z^2 (PSU efficiency
    // falls off toward full load; CPU voltage scaling compounds).
    const double shaped = (1.0 - convexity) * z_clamped +
                          convexity * z_clamped * z_clamped;
    double power = idleW + dynamicW * shaped;
    if (state.inC1)
        power -= c1SavingsW;
    return power;
}

double
TruthPowerModel::step(const MachineState &state)
{
    // Ornstein-Uhlenbeck wander of the hidden instruction-mix factor.
    hiddenMix += 0.1 * (1.0 - hiddenMix) + rng.normal(0.0, 0.02);
    hiddenMix = std::clamp(hiddenMix, 0.88, 1.12);

    return deterministicPower(state) + rng.normal(0.0, noiseStdW);
}

} // namespace chaos
