#include "sim/machine_spec.hpp"

#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

const std::vector<MachineClass> &
allMachineClasses()
{
    static const std::vector<MachineClass> classes = {
        MachineClass::Atom,    MachineClass::Core2,
        MachineClass::Athlon,  MachineClass::Opteron,
        MachineClass::XeonSata, MachineClass::XeonSas,
    };
    return classes;
}

const std::vector<MachineClass> &
extendedMachineClasses()
{
    static const std::vector<MachineClass> classes = {
        MachineClass::Atom,     MachineClass::Core2,
        MachineClass::Athlon,   MachineClass::Opteron,
        MachineClass::XeonSata, MachineClass::XeonSas,
        MachineClass::FutureServer,
    };
    return classes;
}

std::string
machineClassName(MachineClass mc)
{
    switch (mc) {
      case MachineClass::Atom:     return "Atom";
      case MachineClass::Core2:    return "Core2";
      case MachineClass::Athlon:   return "Athlon";
      case MachineClass::Opteron:  return "Opteron";
      case MachineClass::XeonSata: return "XeonSATA";
      case MachineClass::XeonSas:  return "XeonSAS";
      case MachineClass::FutureServer: return "FutureServer";
    }
    panic("unknown machine class");
}

MachineClass
machineClassFromName(const std::string &name)
{
    for (MachineClass mc : extendedMachineClasses()) {
        if (machineClassName(mc) == name)
            return mc;
    }
    raise("unknown machine class name: " + name);
}

MachineSpec
machineSpecFor(MachineClass mc)
{
    MachineSpec spec;
    spec.machineClass = mc;
    spec.name = machineClassName(mc);

    switch (mc) {
      case MachineClass::Atom:
        // Intel Atom N330, 2 cores, 1.6 GHz, no DVFS, 1 SSD, 22-26 W.
        spec.numCores = 2;
        spec.hasDvfs = false;
        spec.perCoreDvfs = false;
        spec.hasC1 = false;
        spec.pStatesMhz = {1600.0};
        spec.idlePowerW = 22.0;
        spec.maxPowerW = 26.0;
        spec.cpuPowerShare = 0.62;
        spec.memPowerShare = 0.14;
        spec.diskPowerShare = 0.12;
        spec.netPowerShare = 0.12;
        spec.psuConvexity = 0.12;   // Nearly linear: tiny range.
        spec.basalNoiseW = 0.45;
        spec.numDisks = 1;
        spec.diskType = DiskType::Ssd;
        spec.diskBandwidthMBs = 200.0;
        spec.memoryGB = 4.0;
        break;

      case MachineClass::Core2:
        // Intel Core 2 Duo, 2 cores, 2.26 GHz, package DVFS, 25-46 W.
        spec.numCores = 2;
        spec.hasDvfs = true;
        spec.perCoreDvfs = false;   // Cores agree 99.8% of the time.
        spec.hasC1 = false;
        spec.pStatesMhz = {800.0, 1600.0, 2260.0};
        spec.pStateDivergence = 0.002;
        spec.idlePowerW = 25.0;
        spec.maxPowerW = 46.0;
        spec.cpuPowerShare = 0.66;
        spec.memPowerShare = 0.12;
        spec.diskPowerShare = 0.10;
        spec.netPowerShare = 0.12;
        spec.psuConvexity = 0.42;
        spec.basalNoiseW = 0.5;
        spec.numDisks = 1;
        spec.diskType = DiskType::Ssd;
        spec.diskBandwidthMBs = 250.0;
        spec.memoryGB = 4.0;
        break;

      case MachineClass::Athlon:
        // AMD Athlon, 2 cores, 2.8 GHz, package DVFS, 54-104 W.
        spec.numCores = 2;
        spec.hasDvfs = true;
        spec.perCoreDvfs = false;
        spec.hasC1 = false;
        spec.pStatesMhz = {800.0, 1800.0, 2800.0};
        spec.pStateDivergence = 0.002;
        spec.idlePowerW = 54.0;
        spec.maxPowerW = 104.0;
        spec.cpuPowerShare = 0.70;
        spec.memPowerShare = 0.12;
        spec.diskPowerShare = 0.08;
        spec.netPowerShare = 0.10;
        spec.psuConvexity = 0.45;
        spec.basalNoiseW = 1.0;
        spec.numDisks = 1;
        spec.diskType = DiskType::Ssd;
        spec.diskBandwidthMBs = 250.0;
        spec.memoryGB = 8.0;
        break;

      case MachineClass::Opteron:
        // AMD Opteron, 2 sockets x 4 cores, 2.0 GHz, per-core
        // P-states + C1, 2x 10K SATA, 135-190 W.
        spec.numCores = 8;
        spec.hasDvfs = true;
        spec.perCoreDvfs = true;
        spec.hasC1 = true;
        spec.pStatesMhz = {1000.0, 1500.0, 2000.0};
        spec.pStateDivergence = 0.12;
        spec.idlePowerW = 135.0;
        spec.maxPowerW = 190.0;
        spec.cpuPowerShare = 0.58;
        spec.memPowerShare = 0.16;
        spec.diskPowerShare = 0.16;
        spec.netPowerShare = 0.10;
        spec.psuConvexity = 0.42;
        spec.basalNoiseW = 1.2;
        spec.numDisks = 2;
        spec.diskType = DiskType::Sata10k;
        spec.diskBandwidthMBs = 120.0;
        spec.memoryGB = 32.0;
        break;

      case MachineClass::XeonSata:
        // Intel Xeon, 2 sockets x 4 cores, 2.33 GHz, per-core
        // P-states + C1, 4x 7.2K SATA, 250-375 W.
        spec.numCores = 8;
        spec.hasDvfs = true;
        spec.perCoreDvfs = true;
        spec.hasC1 = true;
        spec.pStatesMhz = {1167.0, 1750.0, 2330.0};
        spec.pStateDivergence = 0.20;
        spec.idlePowerW = 250.0;
        spec.maxPowerW = 375.0;
        spec.cpuPowerShare = 0.48;
        spec.memPowerShare = 0.14;
        spec.diskPowerShare = 0.28;   // Significant storage power.
        spec.netPowerShare = 0.10;
        spec.psuConvexity = 0.40;
        spec.basalNoiseW = 1.8;
        spec.numDisks = 4;
        spec.diskType = DiskType::Sata72k;
        spec.diskBandwidthMBs = 90.0;
        spec.memoryGB = 16.0;
        break;

      case MachineClass::XeonSas:
        // Intel Xeon, 2 sockets x 4 cores, 2.67 GHz, per-core
        // P-states + C1, 6x 15K SAS, 260-380 W.
        spec.numCores = 8;
        spec.hasDvfs = true;
        spec.perCoreDvfs = true;
        spec.hasC1 = true;
        spec.pStatesMhz = {1333.0, 2000.0, 2670.0};
        spec.pStateDivergence = 0.20;
        spec.idlePowerW = 260.0;
        spec.maxPowerW = 380.0;
        spec.cpuPowerShare = 0.46;
        spec.memPowerShare = 0.14;
        spec.diskPowerShare = 0.30;   // Six 15K spindles.
        spec.netPowerShare = 0.10;
        spec.psuConvexity = 0.40;
        spec.basalNoiseW = 1.8;
        spec.numDisks = 6;
        spec.diskType = DiskType::Sas15k;
        spec.diskBandwidthMBs = 170.0;
        spec.memoryGB = 16.0;
        break;

      case MachineClass::FutureServer:
        // Hypothetical energy-proportional server: 8 cores with
        // FULLY independent per-core DVFS across five P-states and a
        // large dynamic range (paper discussion / future work).
        spec.numCores = 8;
        spec.hasDvfs = true;
        spec.perCoreDvfs = true;
        spec.independentDvfs = true;
        spec.efficiencyCores = 4;   // Cores 4-7 cap at 2.0 GHz.
        spec.hasC1 = true;
        spec.pStatesMhz = {1200.0, 1600.0, 2000.0, 2400.0, 2800.0};
        spec.pStateDivergence = 0.0;    // Independence needs no blips.
        spec.idlePowerW = 120.0;
        spec.maxPowerW = 320.0;
        spec.cpuPowerShare = 0.62;
        spec.memPowerShare = 0.14;
        spec.diskPowerShare = 0.12;
        spec.netPowerShare = 0.12;
        spec.psuConvexity = 0.40;
        spec.basalNoiseW = 1.5;
        spec.numDisks = 2;
        spec.diskType = DiskType::Ssd;
        spec.diskBandwidthMBs = 500.0;
        spec.memoryGB = 64.0;
        break;
    }

    panicIf(spec.pStatesMhz.empty(), "spec without P-states");
    panicIf(spec.maxPowerW <= spec.idlePowerW,
            "spec with non-positive dynamic range");
    return spec;
}

} // namespace chaos
