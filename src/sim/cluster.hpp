/**
 * @file
 * A cluster of instrumented machines (homogeneous or heterogeneous).
 */
#ifndef CHAOS_SIM_CLUSTER_HPP
#define CHAOS_SIM_CLUSTER_HPP

#include <memory>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "sim/power_meter.hpp"

namespace chaos {

/** One machine plus its wall power meter. */
struct InstrumentedMachine
{
    std::unique_ptr<Machine> machine;   ///< The machine itself.
    std::unique_ptr<PowerMeter> meter;  ///< Its WattsUp-style meter.
};

/**
 * A named collection of instrumented machines.
 *
 * The paper's six clusters are 5 machines of one class each; the
 * heterogeneous experiment combines 5 Core 2 Duo and 5 Opteron
 * machines into a 10-machine cluster.
 */
class Cluster
{
  public:
    /**
     * Build a homogeneous cluster.
     *
     * @param mc Machine class for every node.
     * @param numMachines Node count (paper uses 5).
     * @param seed Base seed; each node derives a distinct stream.
     */
    static Cluster homogeneous(MachineClass mc, size_t numMachines,
                               uint64_t seed);

    /**
     * Build a heterogeneous cluster from (class, count) groups.
     * Node ids are assigned consecutively across groups.
     */
    static Cluster heterogeneous(
        const std::vector<std::pair<MachineClass, size_t>> &groups,
        uint64_t seed);

    /** Number of machines. */
    size_t size() const { return nodes.size(); }

    /** Mutable access to node @p i. */
    Machine &machine(size_t i);
    /** Const access to node @p i. */
    const Machine &machine(size_t i) const;
    /** Meter attached to node @p i. */
    PowerMeter &meter(size_t i);

    /** Reset per-run OS state on every node. */
    void resetRunState();

    /** Descriptive name, e.g. "Opteron x5". */
    const std::string &name() const { return clusterName; }

    /** Sum of the nodes' realized idle powers. */
    double totalIdlePowerW() const;
    /** Sum of the nodes' realized max powers. */
    double totalMaxPowerW() const;

  private:
    Cluster() = default;

    std::string clusterName;
    std::vector<InstrumentedMachine> nodes;
};

} // namespace chaos

#endif // CHAOS_SIM_CLUSTER_HPP
