/**
 * @file
 * Demand-driven DVFS governor.
 *
 * Models the ondemand-style behaviour the paper's platforms exhibit:
 * no scaling on the Atom, package-wide P-states on Core 2 / Athlon
 * (cores agree 99.8% of the time), per-core P-states plus a C1 deep
 * idle state on the Opteron/Xeon servers (cores diverge up to 12-20%
 * of seconds).
 */
#ifndef CHAOS_SIM_DVFS_HPP
#define CHAOS_SIM_DVFS_HPP

#include <vector>

#include "sim/machine_spec.hpp"
#include "util/random.hpp"

namespace chaos {

/** Per-core P-state selection with hysteresis. */
class DvfsGovernor
{
  public:
    /**
     * @param spec Platform description (P-states, divergence).
     * @param rng Private random stream for divergence decisions.
     */
    DvfsGovernor(const MachineSpec &spec, Rng rng);

    /**
     * Choose per-core frequencies for the next second.
     *
     * @param coreUtilization Demanded per-core utilization in [0, 1].
     * @return Frequency in MHz for each core.
     */
    std::vector<double> step(const std::vector<double> &coreUtilization);

    /**
     * True if the platform would enter C1 given the utilizations of
     * the last step() call (all cores idle and C1 supported).
     */
    bool inC1() const { return c1Active; }

  private:
    /** Map one core's utilization to a P-state index. */
    size_t targetPState(double utilization, size_t currentIndex) const;

    const MachineSpec spec;
    Rng rng;
    std::vector<size_t> pStateIndex;  ///< Current per-core P-state.
    bool c1Active = false;
};

} // namespace chaos

#endif // CHAOS_SIM_DVFS_HPP
