#include "models/stepwise.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "linalg/cholesky.hpp"
#include "linalg/solve.hpp"
#include "models/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/distributions.hpp"
#include "util/logging.hpp"

namespace chaos {

namespace {

/** Count of features eliminated, across both stepwise paths. */
obs::Counter &
stepwiseDropCounter()
{
    static auto &drops =
        obs::Registry::instance().counter("chaos.stepwise.drops");
    return drops;
}

/**
 * Incremental elimination: the Gram matrix of the full intercept-
 * augmented design is computed once, and each elimination step drops
 * one column from the running Cholesky factorization (O(k^2)) rather
 * than rebuilding the design matrix and re-factoring X'X (O(n k^2 +
 * k^3) per step). Gram entries of a column subset are independent of
 * the other columns, so coefficients match the reference refit
 * bit-for-bit whenever no stabilizing ridge fires; RSS is evaluated
 * through the quadratic form yty - 2 b'g + b'Gb instead of explicit
 * residuals, which only perturbs the Wald statistics at round-off
 * level.
 */
StepwiseResult
eliminateReusingGram(const Matrix &x, const std::vector<double> &y,
                     const StepwiseConfig &config)
{
    const Matrix design = withIntercept(x);
    panicIf(design.rows() < design.cols(),
            "stepwise: fewer observations than parameters");
    std::vector<double> xty;
    const Matrix gram = design.transposeTimesSelf(y, xty);
    double yty = 0.0;
    for (double v : y)
        yty += v * v;

    // Active design columns; index 0 is the intercept and immortal.
    std::vector<size_t> active(design.cols());
    for (size_t i = 0; i < active.size(); ++i)
        active[i] = i;

    auto subGram = [&](const std::vector<size_t> &cols) {
        Matrix sub(cols.size(), cols.size());
        for (size_t a = 0; a < cols.size(); ++a) {
            for (size_t b = 0; b < cols.size(); ++b)
                sub(a, b) = gram(cols[a], cols[b]);
        }
        return sub;
    };

    std::optional<Cholesky> chol = Cholesky::factorRidged(subGram(active));

    StepwiseResult result;
    for (size_t iter = 0; iter < config.maxIterations; ++iter) {
        const size_t k = active.size();
        std::vector<double> rhs(k);
        for (size_t i = 0; i < k; ++i)
            rhs[i] = xty[active[i]];
        const auto b = chol->solve(rhs);

        // RSS via the Gram quadratic form (no residual pass).
        const Matrix sub = subGram(active);
        const auto gb = sub.multiply(b);
        double rss = yty;
        for (size_t i = 0; i < k; ++i)
            rss += b[i] * (gb[i] - 2.0 * rhs[i]);
        rss = std::max(0.0, rss);
        const double dof = static_cast<double>(x.rows()) -
                           static_cast<double>(k);
        const double sigma2 = dof > 0.0 ? rss / dof : 0.0;
        const auto inv_diag = chol->inverseDiagonal();

        // Wald statistic per feature column (skip the intercept).
        std::vector<double> p_values(k - 1);
        size_t worst = k;
        double worst_p = -1.0;
        for (size_t i = 0; i + 1 < k; ++i) {
            const double se = std::sqrt(
                std::max(0.0, sigma2 * inv_diag[i + 1]));
            const double coef = b[i + 1];
            double p;
            if (se <= 1e-300) {
                // Zero standard error with a zero coefficient means
                // a degenerate (e.g. constant) column: drop first.
                p = std::fabs(coef) <= 1e-12 ? 1.0 : 0.0;
            } else {
                p = waldPValue(coef / se);
            }
            p_values[i] = p;
            if (p > worst_p) {
                worst_p = p;
                worst = i;
            }
        }

        const bool can_remove = k - 1 > config.minFeatures;
        if (!can_remove || worst_p <= config.alpha) {
            result.keptFeatures.resize(k - 1);
            for (size_t i = 0; i + 1 < k; ++i)
                result.keptFeatures[i] = active[i + 1] - 1;
            result.coefficients = b;
            result.pValues = p_values;
            return result;
        }
        result.removedFeatures.push_back(active[worst + 1] - 1);
        active.erase(active.begin() + static_cast<long>(worst + 1));
        stepwiseDropCounter().add();
        if (chol->appliedRidge() > 0.0) {
            // A stabilizing ridge is tied to the column set it was
            // computed for; re-factor rather than carry it along.
            chol = Cholesky::factorRidged(subGram(active));
        } else {
            chol = chol->dropColumn(worst + 1);
        }
    }
    panic("stepwiseEliminate failed to converge");
}

} // namespace

StepwiseResult
stepwiseEliminate(const Matrix &x, const std::vector<double> &y,
                  const StepwiseConfig &config)
{
    panicIf(x.rows() != y.size(), "stepwise shape mismatch");
    panicIf(x.cols() == 0, "stepwise: no features");

    obs::Span span("stepwise.eliminate");
    static auto &runs =
        obs::Registry::instance().counter("chaos.stepwise.runs");
    runs.add();

    if (config.reuseGram)
        return eliminateReusingGram(x, y, config);

    StepwiseResult result;
    std::vector<size_t> kept(x.cols());
    for (size_t i = 0; i < kept.size(); ++i)
        kept[i] = i;

    for (size_t iter = 0; iter < config.maxIterations; ++iter) {
        const Matrix design = withIntercept(x.selectColumns(kept));
        const auto ls = leastSquares(design, y, true);

        // Wald statistic per feature column (skip the intercept).
        std::vector<double> p_values(kept.size());
        size_t worst = kept.size();
        double worst_p = -1.0;
        for (size_t i = 0; i < kept.size(); ++i) {
            const double se = ls.stdErrors[i + 1];
            const double coef = ls.coefficients[i + 1];
            double p;
            if (se <= 1e-300) {
                // Zero standard error with a zero coefficient means
                // a degenerate (e.g. constant) column: drop first.
                p = std::fabs(coef) <= 1e-12 ? 1.0 : 0.0;
            } else {
                p = waldPValue(coef / se);
            }
            p_values[i] = p;
            if (p > worst_p) {
                worst_p = p;
                worst = i;
            }
        }

        const bool can_remove = kept.size() > config.minFeatures;
        if (!can_remove || worst_p <= config.alpha) {
            result.keptFeatures = kept;
            result.coefficients = ls.coefficients;
            result.pValues = p_values;
            return result;
        }
        result.removedFeatures.push_back(kept[worst]);
        kept.erase(kept.begin() + static_cast<long>(worst));
        stepwiseDropCounter().add();
    }
    panic("stepwiseEliminate failed to converge");
}

} // namespace chaos
