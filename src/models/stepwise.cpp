#include "models/stepwise.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/solve.hpp"
#include "models/model.hpp"
#include "stats/distributions.hpp"
#include "util/logging.hpp"

namespace chaos {

StepwiseResult
stepwiseEliminate(const Matrix &x, const std::vector<double> &y,
                  const StepwiseConfig &config)
{
    panicIf(x.rows() != y.size(), "stepwise shape mismatch");
    panicIf(x.cols() == 0, "stepwise: no features");

    StepwiseResult result;
    std::vector<size_t> kept(x.cols());
    for (size_t i = 0; i < kept.size(); ++i)
        kept[i] = i;

    for (size_t iter = 0; iter < config.maxIterations; ++iter) {
        const Matrix design = withIntercept(x.selectColumns(kept));
        const auto ls = leastSquares(design, y, true);

        // Wald statistic per feature column (skip the intercept).
        std::vector<double> p_values(kept.size());
        size_t worst = kept.size();
        double worst_p = -1.0;
        for (size_t i = 0; i < kept.size(); ++i) {
            const double se = ls.stdErrors[i + 1];
            const double coef = ls.coefficients[i + 1];
            double p;
            if (se <= 1e-300) {
                // Zero standard error with a zero coefficient means
                // a degenerate (e.g. constant) column: drop first.
                p = std::fabs(coef) <= 1e-12 ? 1.0 : 0.0;
            } else {
                p = waldPValue(coef / se);
            }
            p_values[i] = p;
            if (p > worst_p) {
                worst_p = p;
                worst = i;
            }
        }

        const bool can_remove = kept.size() > config.minFeatures;
        if (!can_remove || worst_p <= config.alpha) {
            result.keptFeatures = kept;
            result.coefficients = ls.coefficients;
            result.pValues = p_values;
            return result;
        }
        result.removedFeatures.push_back(kept[worst]);
        kept.erase(kept.begin() + static_cast<long>(worst));
    }
    panic("stepwiseEliminate failed to converge");
}

} // namespace chaos
