#include "models/serialize.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "models/linear.hpp"
#include "models/mars.hpp"
#include "models/switching.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

namespace serialize_detail {

void
writeVector(std::ostream &out, const std::string &key,
            const std::vector<double> &values)
{
    out << key << ' ' << values.size();
    out << std::setprecision(17);
    for (double v : values)
        out << ' ' << v;
    out << '\n';
}

std::vector<double>
readVector(std::istream &in, const std::string &expected_key)
{
    std::string key;
    size_t count = 0;
    raiseIf(!(in >> key >> count) || key != expected_key,
            "model file: expected vector '" + expected_key + "'");
    std::vector<double> values(count);
    for (double &v : values) {
        raiseIf(!(in >> v), "model file: truncated vector " + key);
        // A fitted model never contains NaN/inf; accepting one here
        // would poison every later prediction instead of failing at
        // the load boundary.
        raiseIf(!std::isfinite(v),
                "model file: non-finite value in vector " + key);
    }
    return values;
}

void
expectToken(std::istream &in, const std::string &expected)
{
    std::string token;
    raiseIf(!(in >> token) || token != expected,
            "model file: expected token '" + expected + "'");
}

} // namespace serialize_detail

void
saveModel(std::ostream &out, const PowerModel &model)
{
    // Version 2 adds the trailing "end" marker: a payload truncated
    // anywhere (even inside the digits of the last coefficient, which
    // would still parse as a valid double) fails loudly on load
    // instead of producing a silently different model.
    out << "chaos-model 2\n";
    switch (model.type()) {
      case ModelType::Linear:
        out << "linear\n";
        static_cast<const LinearModel &>(model).save(out);
        break;
      case ModelType::PiecewiseLinear:
      case ModelType::Quadratic:
        out << "mars\n";
        static_cast<const MarsModel &>(model).save(out);
        break;
      case ModelType::Switching:
        out << "switching\n";
        static_cast<const SwitchingModel &>(model).save(out);
        break;
    }
    out << "end\n";
}

void
saveModelFile(const std::string &path, const PowerModel &model)
{
    std::ofstream out(path);
    raiseIf(!out, "cannot open model file for writing: " + path);
    saveModel(out, model);
    raiseIf(!out.good(), "I/O error writing model file: " + path);
}

std::unique_ptr<PowerModel>
loadModel(std::istream &in)
{
    std::string magic;
    int version = 0;
    raiseIf(!(in >> magic >> version) || magic != "chaos-model",
            "not a chaos model file");
    raiseIf(version != 1 && version != 2,
            "unsupported chaos model file version " +
                std::to_string(version));

    std::string kind;
    raiseIf(!(in >> kind), "model file: missing model kind");
    std::unique_ptr<PowerModel> model;
    if (kind == "linear")
        model = std::make_unique<LinearModel>(LinearModel::load(in));
    else if (kind == "mars")
        model = std::make_unique<MarsModel>(MarsModel::load(in));
    else if (kind == "switching") {
        model = std::make_unique<SwitchingModel>(
            SwitchingModel::load(in));
    } else {
        raise("model file: unknown model kind '" + kind + "'");
    }
    // Version 1 files predate the end marker and are accepted as-is.
    if (version >= 2)
        serialize_detail::expectToken(in, "end");
    return model;
}

std::unique_ptr<PowerModel>
loadModelFile(const std::string &path)
{
    std::ifstream in(path);
    raiseIf(!in, "cannot open model file for reading: " + path);
    try {
        return loadModel(in);
    } catch (const RecoverableError &e) {
        raise(path + ": " + e.message());
    }
}

Result<std::unique_ptr<PowerModel>>
tryLoadModelFile(const std::string &path)
{
    return tryInvoke([&] { return loadModelFile(path); });
}

} // namespace chaos
