/**
 * @file
 * Internal helpers shared by the model save/load implementations.
 * Not part of the public API; include from model .cpp files only.
 */
#ifndef CHAOS_MODELS_SERIALIZE_DETAIL_HPP
#define CHAOS_MODELS_SERIALIZE_DETAIL_HPP

#include <iostream>
#include <string>
#include <vector>

namespace chaos {
namespace serialize_detail {

/** Write "key count v1 v2 ..." on one line, full precision. */
void writeVector(std::ostream &out, const std::string &key,
                 const std::vector<double> &values);

/**
 * Read a vector written by writeVector(); raises RecoverableError on
 * mismatch.
 */
std::vector<double> readVector(std::istream &in,
                               const std::string &expected_key);

/** Consume one token; raises RecoverableError unless it matches. */
void expectToken(std::istream &in, const std::string &expected);

} // namespace serialize_detail
} // namespace chaos

#endif // CHAOS_MODELS_SERIALIZE_DETAIL_HPP
