#include "models/switching.hpp"

#include <cmath>

#include <iomanip>

#include "models/serialize_detail.hpp"
#include "stats/descriptive.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"
#include "util/string_utils.hpp"

namespace chaos {

SwitchingModel::SwitchingModel(SwitchingConfig config) : cfg(config) {}

void
SwitchingModel::fit(const Matrix &x, const std::vector<double> &y)
{
    panicIf(x.rows() != y.size(), "SwitchingModel::fit shape mismatch");
    panicIf(cfg.frequencyFeature >= x.cols(),
            "SwitchingModel: frequency feature out of range");

    // Discover frequency states (P-states are discrete; merge values
    // within tolerance).
    std::vector<double> freqs = x.column(cfg.frequencyFeature);
    states = distinctSorted(freqs, cfg.stateMergeTolerance);
    panicIf(states.empty(), "SwitchingModel: no frequency states");

    fallback.fit(x, y);

    perState.assign(states.size(), LinearModel());
    hasOwnModel.assign(states.size(), false);

    for (size_t s = 0; s < states.size(); ++s) {
        std::vector<size_t> rows;
        for (size_t r = 0; r < x.rows(); ++r) {
            if (nearestState(x(r, cfg.frequencyFeature)) == s)
                rows.push_back(r);
        }
        // A state needs enough rows to support its own regression
        // (the switching model's parameter count is what makes it
        // "rigid" in the paper's terms).
        if (rows.size() >= cfg.minRowsPerState &&
            rows.size() > x.cols() + 2) {
            std::vector<double> ys;
            ys.reserve(rows.size());
            for (size_t r : rows)
                ys.push_back(y[r]);
            perState[s].fit(x.selectRows(rows), ys);
            hasOwnModel[s] = true;
        }
    }
    rebuildPlan();
}

void
SwitchingModel::rebuildPlan()
{
    plan = CompiledPredictor::compile(*this);
}

void
SwitchingModel::predictBatch(const double *rows, size_t n,
                             size_t stride, double *out) const
{
    panicIf(!plan.valid(), "SwitchingModel::predictBatch before fit");
    plan.predictBatch(rows, n, stride, out);
}

size_t
SwitchingModel::nearestState(double freq) const
{
    size_t best = 0;
    double best_dist = std::fabs(states[0] - freq);
    for (size_t s = 1; s < states.size(); ++s) {
        const double dist = std::fabs(states[s] - freq);
        if (dist < best_dist) {
            best_dist = dist;
            best = s;
        }
    }
    return best;
}

double
SwitchingModel::predict(const std::vector<double> &row) const
{
    panicIf(states.empty(), "SwitchingModel::predict before fit");
    panicIf(cfg.frequencyFeature >= row.size(),
            "SwitchingModel::predict width mismatch");
    const size_t s = nearestState(row[cfg.frequencyFeature]);
    return hasOwnModel[s] ? perState[s].predict(row)
                          : fallback.predict(row);
}

std::string
SwitchingModel::describe() const
{
    std::string out = "switching on feature " +
                      std::to_string(cfg.frequencyFeature) + ": " +
                      std::to_string(states.size()) + " states (";
    for (size_t s = 0; s < states.size(); ++s) {
        out += formatDouble(states[s], 0) + "MHz" +
               (hasOwnModel[s] ? "" : "[fallback]");
        if (s + 1 < states.size())
            out += ", ";
    }
    return out + ")";
}

size_t
SwitchingModel::numParameters() const
{
    size_t count = fallback.numParameters();
    for (size_t s = 0; s < states.size(); ++s) {
        if (hasOwnModel[s])
            count += perState[s].numParameters();
    }
    return count;
}

void
SwitchingModel::save(std::ostream &out) const
{
    panicIf(states.empty(), "SwitchingModel::save before fit");
    out << "freq_feature " << cfg.frequencyFeature << '\n';
    out << "min_rows " << cfg.minRowsPerState << '\n';
    out << std::setprecision(17);
    out << "merge_tol " << cfg.stateMergeTolerance << '\n';
    serialize_detail::writeVector(out, "states", states);
    for (size_t s = 0; s < states.size(); ++s) {
        out << "state_model " << s << ' '
            << (hasOwnModel[s] ? 1 : 0) << '\n';
        if (hasOwnModel[s])
            perState[s].save(out);
    }
    out << "fallback\n";
    fallback.save(out);
}

SwitchingModel
SwitchingModel::load(std::istream &in)
{
    SwitchingConfig cfg;
    serialize_detail::expectToken(in, "freq_feature");
    raiseIf(!(in >> cfg.frequencyFeature),
            "model file: bad switching header");
    serialize_detail::expectToken(in, "min_rows");
    raiseIf(!(in >> cfg.minRowsPerState),
            "model file: bad switching header");
    serialize_detail::expectToken(in, "merge_tol");
    raiseIf(!(in >> cfg.stateMergeTolerance),
            "model file: bad switching header");

    SwitchingModel model(cfg);
    model.states = serialize_detail::readVector(in, "states");
    model.perState.assign(model.states.size(), LinearModel());
    model.hasOwnModel.assign(model.states.size(), false);
    for (size_t s = 0; s < model.states.size(); ++s) {
        serialize_detail::expectToken(in, "state_model");
        size_t index = 0;
        int own = 0;
        raiseIf(!(in >> index >> own) || index != s,
                "model file: bad switching state record");
        if (own != 0) {
            model.perState[s] = LinearModel::load(in);
            model.hasOwnModel[s] = true;
        }
    }
    serialize_detail::expectToken(in, "fallback");
    model.fallback = LinearModel::load(in);
    raiseIf(model.cfg.frequencyFeature >= model.fallback.inputWidth(),
            "model file: switching frequency feature out of range");
    // Per-state models must agree with the fallback on row width, or
    // the compiled guard would read rows past the caller's buffer.
    for (size_t s = 0; s < model.states.size(); ++s) {
        raiseIf(model.hasOwnModel[s] &&
                    model.perState[s].inputWidth() !=
                        model.fallback.inputWidth(),
                "model file: switching state width mismatch");
    }
    model.rebuildPlan();
    return model;
}

} // namespace chaos
