#include "models/compiled.hpp"

#include <algorithm>
#include <cmath>

#include "models/linear.hpp"
#include "models/mars.hpp"
#include "models/switching.hpp"
#include "util/logging.hpp"

namespace chaos {

namespace {

/**
 * Stack buffer for the standardized MARS row; batches fall back to a
 * heap buffer (allocated once per batch, never per row) only for
 * implausibly wide feature sets.
 */
constexpr std::size_t kStackWidth = 64;

/** Lower one fitted LinearModel into a dense plan. */
DensePlan
lowerLinear(const LinearModel &model)
{
    DensePlan plan;
    plan.coef = model.rawCoefficients();
    plan.mu = model.means();
    plan.sigma = model.scales();
    panicIf(plan.coef.empty(), "CompiledPredictor: linear before fit");
    return plan;
}

} // namespace

double
MarsPlan::evaluate(const double *row, double *zscratch) const
{
    const std::size_t p = mu.size();
    // Same standardize-then-clamp arithmetic as the scalar path:
    // division first, then std::clamp to the training box.
    for (std::size_t c = 0; c < p; ++c) {
        const double value = (row[c] - mu[c]) / sigma[c];
        zscratch[c] = std::clamp(value, zmin[c], zmax[c]);
    }
    double acc = 0.0;
    const std::size_t terms = coef.size();
    for (std::size_t t = 0; t < terms; ++t) {
        double value = 1.0;
        const std::uint32_t begin = termStart[t];
        const std::uint32_t end = termStart[t + 1];
        for (std::uint32_t h = begin; h < end; ++h) {
            const PlanHinge &hinge = hinges[h];
            const double x = zscratch[hinge.feature];
            const double v =
                hinge.sign > 0.0 ? x - hinge.knot : hinge.knot - x;
            value *= v > 0.0 ? v : 0.0;
            if (value == 0.0)
                break;
        }
        acc += coef[t] * value;
    }
    return acc;
}

double
SwitchingPlan::evaluate(const double *row) const
{
    // Nearest-state scan, operation for operation the scalar
    // SwitchingModel::nearestState (strict < keeps the first of two
    // equidistant states, matching the scalar tie-break).
    const double freq = row[frequencyFeature];
    std::size_t best = 0;
    double best_dist = std::fabs(states[0] - freq);
    for (std::size_t s = 1; s < states.size(); ++s) {
        const double dist = std::fabs(states[s] - freq);
        if (dist < best_dist) {
            best_dist = dist;
            best = s;
        }
    }
    const std::int32_t branch = branchOf[best];
    return branch >= 0
               ? branches[static_cast<std::size_t>(branch)].evaluate(row)
               : fallback.evaluate(row);
}

CompiledPredictor
CompiledPredictor::compile(const PowerModel &model)
{
    CompiledPredictor plan;
    plan.type = model.type();
    switch (plan.type) {
      case ModelType::Linear: {
        const auto &linear = dynamic_cast<const LinearModel &>(model);
        plan.kind = Kind::Dense;
        plan.dense = lowerLinear(linear);
        plan.width = plan.dense.mu.size();
        break;
      }
      case ModelType::PiecewiseLinear:
      case ModelType::Quadratic: {
        const auto &marsModel = dynamic_cast<const MarsModel &>(model);
        panicIf(marsModel.coefficients().empty(),
                "CompiledPredictor: MARS before fit");
        plan.kind = Kind::Mars;
        MarsPlan &mp = plan.mars;
        mp.mu = marsModel.means();
        mp.sigma = marsModel.scales();
        mp.zmin = marsModel.clampMin();
        mp.zmax = marsModel.clampMax();
        mp.coef = marsModel.coefficients();
        const auto &terms = marsModel.terms();
        mp.termStart.reserve(terms.size() + 1);
        mp.termStart.push_back(0);
        for (const BasisTerm &term : terms) {
            for (const Hinge &hinge : term.hinges) {
                PlanHinge ph;
                ph.feature = static_cast<std::uint32_t>(hinge.feature);
                ph.knot = hinge.knot;
                ph.sign = hinge.direction > 0 ? 1.0 : -1.0;
                mp.hinges.push_back(ph);
            }
            mp.termStart.push_back(
                static_cast<std::uint32_t>(mp.hinges.size()));
        }
        plan.width = mp.mu.size();
        break;
      }
      case ModelType::Switching: {
        const auto &sw = dynamic_cast<const SwitchingModel &>(model);
        panicIf(sw.numStates() == 0,
                "CompiledPredictor: switching before fit");
        plan.kind = Kind::Switching;
        SwitchingPlan &sp = plan.switching;
        sp.frequencyFeature = sw.configuration().frequencyFeature;
        sp.states = sw.stateFrequencies();
        sp.branchOf.assign(sp.states.size(), -1);
        for (std::size_t s = 0; s < sp.states.size(); ++s) {
            if (sw.stateHasOwnModel(s)) {
                sp.branchOf[s] =
                    static_cast<std::int32_t>(sp.branches.size());
                sp.branches.push_back(lowerLinear(sw.stateModel(s)));
            }
        }
        sp.fallback = lowerLinear(sw.fallbackModel());
        plan.width = sp.fallback.mu.size();
        break;
      }
    }
    panicIf(plan.kind == Kind::None,
            "CompiledPredictor: unknown model type");
    plan.compiled = true;
    return plan;
}

void
CompiledPredictor::predictBatch(const double *rows, std::size_t n,
                                std::size_t stride, double *out) const
{
    panicIf(!compiled, "CompiledPredictor used before compile");
    panicIf(n > 0 && stride < width,
            "CompiledPredictor: stride narrower than the plan");
    switch (kind) {
      case Kind::Dense:
        for (std::size_t r = 0; r < n; ++r)
            out[r] = dense.evaluate(rows + r * stride);
        break;
      case Kind::Mars: {
        double stack[kStackWidth];
        std::vector<double> heap;
        double *z = stack;
        if (width > kStackWidth) {
            heap.resize(width);
            z = heap.data();
        }
        for (std::size_t r = 0; r < n; ++r)
            out[r] = mars.evaluate(rows + r * stride, z);
        break;
      }
      case Kind::Switching:
        for (std::size_t r = 0; r < n; ++r)
            out[r] = switching.evaluate(rows + r * stride);
        break;
      case Kind::None:
        panic("CompiledPredictor: empty plan");
    }
}

double
CompiledPredictor::predictOne(const double *row) const
{
    double out;
    predictBatch(row, 1, width == 0 ? 1 : width, &out);
    return out;
}

} // namespace chaos
