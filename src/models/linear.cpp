#include "models/linear.hpp"

#include <cmath>

#include "linalg/solve.hpp"
#include "models/serialize_detail.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"
#include "util/string_utils.hpp"

namespace chaos {

namespace {

/**
 * Column means and scales for internal standardization. Counters
 * span ~10 orders of magnitude (utilization percentages next to
 * committed bytes); solving the normal equations on raw columns
 * would be catastrophically ill-conditioned.
 */
void
computeMoments(const Matrix &x, std::vector<double> &mu,
               std::vector<double> &sigma)
{
    const size_t n = x.rows();
    const size_t p = x.cols();
    mu.assign(p, 0.0);
    sigma.assign(p, 0.0);
    for (size_t r = 0; r < n; ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < p; ++c)
            mu[c] += row[c];
    }
    for (double &m : mu)
        m /= static_cast<double>(n);
    for (size_t r = 0; r < n; ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < p; ++c) {
            const double d = row[c] - mu[c];
            sigma[c] += d * d;
        }
    }
    for (double &s : sigma) {
        s = std::sqrt(s / static_cast<double>(n));
        if (s < 1e-12)
            s = 1.0;    // Constant column: coefficient will be ~0.
    }
}

} // namespace

void
LinearModel::fit(const Matrix &x, const std::vector<double> &y)
{
    computeMoments(x, mu, sigma);

    Matrix z(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        const double *src = x.rowPtr(r);
        double *dst = z.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c)
            dst[c] = (src[c] - mu[c]) / sigma[c];
    }
    const Matrix design = withIntercept(z);
    coef = leastSquares(design, y).coefficients;
    rebuildPlan();
}

void
LinearModel::rebuildPlan()
{
    plan = CompiledPredictor::compile(*this);
}

void
LinearModel::predictBatch(const double *rows, size_t n, size_t stride,
                          double *out) const
{
    panicIf(!plan.valid(), "LinearModel::predictBatch before fit");
    plan.predictBatch(rows, n, stride, out);
}

double
LinearModel::predict(const std::vector<double> &row) const
{
    panicIf(coef.empty(), "LinearModel::predict before fit");
    panicIf(row.size() + 1 != coef.size(),
            "LinearModel::predict width mismatch");
    double acc = coef[0];
    for (size_t i = 0; i < row.size(); ++i)
        acc += coef[i + 1] * (row[i] - mu[i]) / sigma[i];
    return acc;
}

double
LinearModel::intercept() const
{
    if (coef.empty())
        return 0.0;
    double a0 = coef[0];
    for (size_t i = 1; i < coef.size(); ++i)
        a0 -= coef[i] * mu[i - 1] / sigma[i - 1];
    return a0;
}

std::string
LinearModel::describe() const
{
    std::string out = "linear: y = " + formatDouble(intercept(), 3);
    for (size_t i = 1; i < coef.size(); ++i) {
        out += (coef[i] >= 0 ? " + " : " - ") +
               formatDouble(std::abs(coef[i]), 4) + "*z" +
               std::to_string(i - 1);
    }
    return out + "  (z = standardized features)";
}

size_t
LinearModel::numParameters() const
{
    return coef.size();
}

std::vector<double>
LinearModel::featureCoefficients() const
{
    if (coef.empty())
        return {};
    // Back-transform to the original feature scale.
    std::vector<double> out(coef.size() - 1);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = coef[i + 1] / sigma[i];
    return out;
}

void
LinearModel::save(std::ostream &out) const
{
    panicIf(coef.empty(), "LinearModel::save before fit");
    serialize_detail::writeVector(out, "coef", coef);
    serialize_detail::writeVector(out, "mu", mu);
    serialize_detail::writeVector(out, "sigma", sigma);
}

LinearModel
LinearModel::load(std::istream &in)
{
    LinearModel model;
    model.coef = serialize_detail::readVector(in, "coef");
    model.mu = serialize_detail::readVector(in, "mu");
    model.sigma = serialize_detail::readVector(in, "sigma");
    raiseIf(model.coef.size() != model.mu.size() + 1 ||
                model.mu.size() != model.sigma.size(),
            "model file: inconsistent linear model");
    model.rebuildPlan();
    return model;
}

} // namespace chaos
