#include "models/model.hpp"

#include "util/logging.hpp"

namespace chaos {

std::string
modelTypeCode(ModelType type)
{
    switch (type) {
      case ModelType::Linear:          return "L";
      case ModelType::PiecewiseLinear: return "P";
      case ModelType::Quadratic:       return "Q";
      case ModelType::Switching:       return "S";
    }
    panic("unknown model type");
}

std::string
modelTypeName(ModelType type)
{
    switch (type) {
      case ModelType::Linear:          return "linear";
      case ModelType::PiecewiseLinear: return "piecewise-linear";
      case ModelType::Quadratic:       return "quadratic";
      case ModelType::Switching:       return "switching";
    }
    panic("unknown model type");
}

std::vector<double>
PowerModel::predictAll(const Matrix &x) const
{
    std::vector<double> out;
    out.reserve(x.rows());
    for (size_t r = 0; r < x.rows(); ++r)
        out.push_back(predict(x.row(r)));
    return out;
}

Matrix
withIntercept(const Matrix &x)
{
    Matrix out(x.rows(), x.cols() + 1);
    for (size_t r = 0; r < x.rows(); ++r) {
        out(r, 0) = 1.0;
        const double *src = x.rowPtr(r);
        double *dst = out.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c)
            dst[c + 1] = src[c];
    }
    return out;
}

} // namespace chaos
