#include "models/model.hpp"

#include "util/logging.hpp"

namespace chaos {

std::string
modelTypeCode(ModelType type)
{
    switch (type) {
      case ModelType::Linear:          return "L";
      case ModelType::PiecewiseLinear: return "P";
      case ModelType::Quadratic:       return "Q";
      case ModelType::Switching:       return "S";
    }
    panic("unknown model type");
}

std::string
modelTypeName(ModelType type)
{
    switch (type) {
      case ModelType::Linear:          return "linear";
      case ModelType::PiecewiseLinear: return "piecewise-linear";
      case ModelType::Quadratic:       return "quadratic";
      case ModelType::Switching:       return "switching";
    }
    panic("unknown model type");
}

void
PowerModel::predictBatch(const double *rows, size_t n, size_t stride,
                         double *out) const
{
    const size_t width = inputWidth();
    panicIf(n > 0 && stride < width,
            "predictBatch: stride narrower than the model");
    std::vector<double> row(width);
    for (size_t r = 0; r < n; ++r) {
        const double *src = rows + r * stride;
        row.assign(src, src + width);
        out[r] = predict(row);
    }
}

std::vector<double>
PowerModel::predictAll(const Matrix &x) const
{
    std::vector<double> out(x.rows());
    if (x.rows() > 0) {
        panicIf(x.cols() != inputWidth(),
                "predictAll: matrix width mismatch");
        predictBatch(x.rowPtr(0), x.rows(), x.cols(), out.data());
    }
    return out;
}

Matrix
withIntercept(const Matrix &x)
{
    Matrix out(x.rows(), x.cols() + 1);
    for (size_t r = 0; r < x.rows(); ++r) {
        out(r, 0) = 1.0;
        const double *src = x.rowPtr(r);
        double *dst = out.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c)
            dst[c + 1] = src[c];
    }
    return out;
}

} // namespace chaos
