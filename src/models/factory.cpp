#include "models/factory.hpp"

#include "models/linear.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

std::unique_ptr<PowerModel>
makeModel(ModelType type, const ModelOptions &options)
{
    switch (type) {
      case ModelType::Linear:
        return std::make_unique<LinearModel>();
      case ModelType::PiecewiseLinear: {
        MarsConfig cfg = options.mars;
        cfg.maxDegree = 1;
        return std::make_unique<MarsModel>(cfg);
      }
      case ModelType::Quadratic: {
        MarsConfig cfg = options.mars;
        cfg.maxDegree = 2;
        return std::make_unique<MarsModel>(cfg);
      }
      case ModelType::Switching: {
        raiseIf(!options.frequencyFeature.has_value(),
                "switching model requires a frequency feature");
        SwitchingConfig cfg;
        cfg.frequencyFeature = *options.frequencyFeature;
        return std::make_unique<SwitchingModel>(cfg);
      }
    }
    panic("unknown model type");
}

const std::vector<ModelType> &
allModelTypes()
{
    static const std::vector<ModelType> types = {
        ModelType::Linear,
        ModelType::PiecewiseLinear,
        ModelType::Quadratic,
        ModelType::Switching,
    };
    return types;
}

} // namespace chaos
