/**
 * @file
 * Text serialization of trained power models.
 *
 * The paper's deployment story separates training (a characterization
 * phase on an instrumented cluster) from online use (meter-free
 * production machines); persisting trained models is what connects
 * the two in practice. The format is a line-oriented text format:
 * human-inspectable, diff-able, and stable across platforms.
 */
#ifndef CHAOS_MODELS_SERIALIZE_HPP
#define CHAOS_MODELS_SERIALIZE_HPP

#include <iosfwd>
#include <memory>
#include <string>

#include "models/model.hpp"
#include "util/result.hpp"

namespace chaos {

/** Serialize a trained model to a stream; panic()s on unfitted. */
void saveModel(std::ostream &out, const PowerModel &model);

/**
 * Serialize a trained model to a file; raises RecoverableError on
 * I/O errors.
 */
void saveModelFile(const std::string &path, const PowerModel &model);

/**
 * Deserialize a model written by saveModel(). Raises
 * RecoverableError on malformed input. The returned model is ready
 * to predict.
 */
std::unique_ptr<PowerModel> loadModel(std::istream &in);

/**
 * Deserialize from a file; raises RecoverableError on I/O or format
 * errors.
 */
std::unique_ptr<PowerModel> loadModelFile(const std::string &path);

/** loadModelFile() with value-style error handling. */
Result<std::unique_ptr<PowerModel>> tryLoadModelFile(
    const std::string &path);

} // namespace chaos

#endif // CHAOS_MODELS_SERIALIZE_HPP
