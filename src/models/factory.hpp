/**
 * @file
 * Model construction by technique.
 */
#ifndef CHAOS_MODELS_FACTORY_HPP
#define CHAOS_MODELS_FACTORY_HPP

#include <memory>
#include <optional>

#include "models/mars.hpp"
#include "models/model.hpp"
#include "models/switching.hpp"

namespace chaos {

/** Options shared by makeModel(). */
struct ModelOptions
{
    /** MARS knobs for piecewise/quadratic models. */
    MarsConfig mars;
    /**
     * Frequency feature column for the switching model; required
     * when type == Switching.
     */
    std::optional<size_t> frequencyFeature;
};

/**
 * Create an unfitted model of the given technique.
 * fatal()s if a switching model is requested without a frequency
 * feature.
 */
std::unique_ptr<PowerModel> makeModel(ModelType type,
                                      const ModelOptions &options = {});

/** All four techniques in paper order (L, P, Q, S). */
const std::vector<ModelType> &allModelTypes();

} // namespace chaos

#endif // CHAOS_MODELS_FACTORY_HPP
