/**
 * @file
 * Compiled model plans: a fitted PowerModel lowered into a contiguous
 * struct-of-arrays evaluation plan so a batch of rows evaluates as
 * tight loops over flat memory instead of per-row virtual dispatch.
 *
 * The lowering is exact, not approximate: every plan replicates the
 * scalar predict() arithmetic operation for operation (same operand
 * order, same clamping, same early-outs), so compiled and scalar
 * outputs are bit-identical on every input. The scalar virtual path
 * stays in place as the regression oracle; property tests and the
 * golden suite enforce the equivalence to the last ulp.
 *
 * Plan shapes (one per ModelType):
 *  - Dense (linear): flat [intercept, a1..ap] + standardization
 *    moments; a batch is a dense dot-product loop per row.
 *  - Hinge table (MARS degree 1/2): terms flattened into a
 *    topologically ordered SoA table — per-term coefficient +
 *    (start,count) into flat hinge arrays (feature, knot, sign) — so
 *    evaluation is two tight loops (standardize+clamp, then
 *    accumulate hinge products) with no per-row allocation and no
 *    recursion through BasisTerm objects.
 *  - Guarded dense (switching): the frequency-state guard plus one
 *    dense plan per owned state and the fallback dense plan; a row
 *    resolves its state with the same nearest-state scan as the
 *    scalar path, then evaluates that branch's dense plan.
 */
#ifndef CHAOS_MODELS_COMPILED_HPP
#define CHAOS_MODELS_COMPILED_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "models/model.hpp"

namespace chaos {

/** Flat dense (linear) evaluation plan: y = c0 + sum ci*z(xi). */
struct DensePlan
{
    std::vector<double> coef;   ///< [intercept, a1..ap].
    std::vector<double> mu;     ///< Standardization means, size p.
    std::vector<double> sigma;  ///< Standardization scales, size p.

    /** Evaluate one row of at least mu.size() values. */
    double evaluate(const double *row) const
    {
        double acc = coef[0];
        const std::size_t p = mu.size();
        for (std::size_t i = 0; i < p; ++i)
            acc += coef[i + 1] * (row[i] - mu[i]) / sigma[i];
        return acc;
    }
};

/** One flattened hinge factor of a MARS basis term. */
struct PlanHinge
{
    std::uint32_t feature = 0; ///< Standardized-feature index.
    double knot = 0.0;         ///< Threshold on the z-score scale.
    double sign = 1.0;         ///< +1: max(0,x-t); -1: max(0,t-x).
};

/**
 * Flattened MARS plan: standardize+clamp each consumed feature once
 * per row, then accumulate coefficient-weighted hinge products from
 * the flat term table (terms are stored in the fitted model's order,
 * which is already topological: every term's factors reference only
 * raw features, never other terms).
 */
struct MarsPlan
{
    std::vector<double> mu;
    std::vector<double> sigma;
    std::vector<double> zmin;
    std::vector<double> zmax;
    std::vector<double> coef;            ///< Per-term coefficient.
    std::vector<std::uint32_t> termStart;///< Size terms+1; hinge range.
    std::vector<PlanHinge> hinges;       ///< All hinges, term-major.

    /**
     * Evaluate one row using @p zscratch (>= mu.size() doubles) as
     * the standardized-row buffer.
     */
    double evaluate(const double *row, double *zscratch) const;
};

/**
 * Switching plan: nearest-state guard over per-state dense branches
 * with a shared fallback branch.
 */
struct SwitchingPlan
{
    std::size_t frequencyFeature = 0;
    std::vector<double> states;        ///< State center frequencies.
    /** Index into branches per state; negative means fallback. */
    std::vector<std::int32_t> branchOf;
    std::vector<DensePlan> branches;   ///< Owned per-state branches.
    DensePlan fallback;                ///< Global branch.

    /** Evaluate one row (width > frequencyFeature). */
    double evaluate(const double *row) const;
};

/**
 * A fitted PowerModel lowered to a flat evaluation plan. Immutable
 * after compile(); evaluation is const and thread-safe (per-call
 * scratch only), so one plan can serve concurrent batch evaluations.
 */
class CompiledPredictor
{
  public:
    /** Empty (invalid) plan; evaluate panics until compiled. */
    CompiledPredictor() = default;

    /**
     * Lower @p model into a plan. The model must be fitted; raises
     * a panic when it is not (same contract as scalar predict).
     */
    static CompiledPredictor compile(const PowerModel &model);

    /** True once compile() produced a usable plan. */
    bool valid() const { return compiled; }

    /** Technique of the compiled model. */
    ModelType modelType() const { return type; }

    /** Feature-row width the plan consumes. */
    std::size_t numFeatures() const { return width; }

    /**
     * Evaluate @p n rows laid out with @p stride doubles between
     * consecutive row starts (stride >= numFeatures()) into @p out.
     * Bit-identical to calling the source model's scalar predict on
     * each row.
     */
    void predictBatch(const double *rows, std::size_t n,
                      std::size_t stride, double *out) const;

    /** Evaluate a single row of numFeatures() values. */
    double predictOne(const double *row) const;

  private:
    enum class Kind { None, Dense, Mars, Switching };

    Kind kind = Kind::None;
    bool compiled = false;
    ModelType type = ModelType::Linear;
    std::size_t width = 0;

    DensePlan dense;
    MarsPlan mars;
    SwitchingPlan switching;
};

} // namespace chaos

#endif // CHAOS_MODELS_COMPILED_HPP
