/**
 * @file
 * Multivariate Adaptive Regression Splines (Friedman 1991).
 *
 * Implements the paper's piecewise linear model (Eq. 2, hinge bases,
 * degree 1) and quadratic model (Eq. 3, degree-2 interactions between
 * bases) with the classic forward pass / GCV backward pruning
 * structure. Hinges are B+(x,t) = max(0, x-t) and B-(x,t) =
 * max(0, t-x); knots t are chosen from training-data quantiles.
 */
#ifndef CHAOS_MODELS_MARS_HPP
#define CHAOS_MODELS_MARS_HPP

#include <iosfwd>

#include "models/compiled.hpp"
#include "models/model.hpp"

namespace chaos {

/** One hinge function over a feature. */
struct Hinge
{
    size_t feature = 0;     ///< Feature (column) index.
    double knot = 0.0;      ///< Threshold t.
    int direction = +1;     ///< +1: max(0, x-t); -1: max(0, t-x).

    /** Evaluate the hinge at feature value @p x. */
    double evaluate(double x) const
    {
        const double v = direction > 0 ? x - knot : knot - x;
        return v > 0.0 ? v : 0.0;
    }
};

/** A basis term: a product of hinges (empty product = intercept). */
struct BasisTerm
{
    std::vector<Hinge> hinges;

    /** Interaction degree (number of hinge factors). */
    size_t degree() const { return hinges.size(); }

    /** True if the term already involves @p feature. */
    bool usesFeature(size_t feature) const;

    /** Evaluate the product at one feature row. */
    double evaluate(const std::vector<double> &row) const;
};

/** MARS fitting knobs. */
struct MarsConfig
{
    /** 1 = piecewise linear (Eq. 2), 2 = quadratic (Eq. 3). */
    size_t maxDegree = 1;
    /** Maximum basis terms including the intercept. */
    size_t maxTerms = 15;
    /** Candidate knots per feature (interior quantiles). */
    size_t knotCandidates = 7;
    /** GCV complexity penalty per knot (Friedman's d). */
    double gcvPenalty = 3.0;
    /** Subsample cap for the forward search (speed); the final
     *  coefficients are refit on all rows. */
    size_t maxSearchRows = 1200;
    /** Stop the forward pass when the relative RSS improvement of
     *  the best candidate falls below this. */
    double minRssImprovement = 1e-4;
    /**
     * Minimum nonzero training observations each new basis column
     * must have, as a fraction of the (subsampled) training rows.
     * Rejecting thinly-supported columns prevents the classic MARS
     * failure mode of huge coefficients on nearly-empty corners of
     * the feature space.
     */
    double minBasisSupport = 0.03;
    /**
     * Use the incremental forward search: per-(parent, feature) knot
     * sweeps with prefix sums share one pass over the rows across all
     * knots, candidates reuse a single equilibrated Cholesky
     * factorization of the current Gram through bordered rank-2
     * solves, and chains are scored in parallel. False restores the
     * reference search that rebuilds and re-factors the extended
     * Gram system per candidate — kept as the perf-benchmark
     * baseline and as a cross-check oracle in tests.
     */
    bool incrementalSearch = true;
};

/** MARS power model (degree 1 or 2). */
class MarsModel : public PowerModel
{
  public:
    /** @param config Fitting knobs; degree selects Eq. 2 vs Eq. 3. */
    explicit MarsModel(MarsConfig config = MarsConfig());

    void fit(const Matrix &x, const std::vector<double> &y) override;
    double predict(const std::vector<double> &row) const override;
    size_t inputWidth() const override { return mu.size(); }
    void predictBatch(const double *rows, size_t n, size_t stride,
                      double *out) const override;
    std::string describe() const override;
    size_t numParameters() const override;
    ModelType type() const override
    {
        return cfg.maxDegree >= 2 ? ModelType::Quadratic
                                  : ModelType::PiecewiseLinear;
    }

    /** Fitted basis terms (post-fit; index 0 is the intercept). */
    const std::vector<BasisTerm> &terms() const { return basis; }

    /** Fitted coefficients, aligned with terms(). */
    const std::vector<double> &coefficients() const { return coef; }

    /** Standardization means, one per feature (for lowering). */
    const std::vector<double> &means() const { return mu; }

    /** Standardization scales, one per feature (for lowering). */
    const std::vector<double> &scales() const { return sigma; }

    /** Training-box lower clamp per standardized feature. */
    const std::vector<double> &clampMin() const { return zmin; }

    /** Training-box upper clamp per standardized feature. */
    const std::vector<double> &clampMax() const { return zmax; }

    /** Write fitted state as text (see models/serialize.hpp). */
    void save(std::ostream &out) const;

    /** Read fitted state written by save(). */
    static MarsModel load(std::istream &in);

  private:
    /** Rebuild the compiled plan after fit()/load(). */
    void rebuildPlan();

    MarsConfig cfg;
    std::vector<BasisTerm> basis;
    std::vector<double> coef;
    CompiledPredictor plan; ///< Flat batch-evaluation plan.
    // Internal standardization: knots live on the z-score scale so
    // byte-magnitude counters and percentage counters coexist.
    std::vector<double> mu;
    std::vector<double> sigma;
    // Training range per (standardized) feature; prediction inputs
    // are clamped to it so hinge products never extrapolate.
    std::vector<double> zmin;
    std::vector<double> zmax;
};

} // namespace chaos

#endif // CHAOS_MODELS_MARS_HPP
