/**
 * @file
 * Baseline linear power model (paper Eq. 1): the form used by most
 * prior work and the reference point for every accuracy comparison.
 */
#ifndef CHAOS_MODELS_LINEAR_HPP
#define CHAOS_MODELS_LINEAR_HPP

#include <iosfwd>

#include "models/compiled.hpp"
#include "models/model.hpp"

namespace chaos {

/** Ordinary-least-squares linear model with intercept. */
class LinearModel : public PowerModel
{
  public:
    LinearModel() = default;

    void fit(const Matrix &x, const std::vector<double> &y) override;
    double predict(const std::vector<double> &row) const override;
    size_t inputWidth() const override { return mu.size(); }
    void predictBatch(const double *rows, size_t n, size_t stride,
                      double *out) const override;
    std::string describe() const override;
    size_t numParameters() const override;
    ModelType type() const override { return ModelType::Linear; }

    /** Intercept a0 on the original feature scale (post-fit). */
    double intercept() const;

    /** Per-feature coefficients a1..an (post-fit). */
    std::vector<double> featureCoefficients() const;

    /** Standardized-scale coefficients [a0, a1..an] (for lowering). */
    const std::vector<double> &rawCoefficients() const { return coef; }

    /** Standardization means, one per feature (for lowering). */
    const std::vector<double> &means() const { return mu; }

    /** Standardization scales, one per feature (for lowering). */
    const std::vector<double> &scales() const { return sigma; }

    /** Write fitted state as text (see models/serialize.hpp). */
    void save(std::ostream &out) const;

    /** Read fitted state written by save(). */
    static LinearModel load(std::istream &in);

  private:
    /** Rebuild the compiled plan after fit()/load(). */
    void rebuildPlan();

    std::vector<double> coef;   ///< [intercept, a1, ..., an].
    std::vector<double> mu;     ///< Column means (standardization).
    std::vector<double> sigma;  ///< Column scales (standardization).
    CompiledPredictor plan;     ///< Flat batch-evaluation plan.
};

} // namespace chaos

#endif // CHAOS_MODELS_LINEAR_HPP
