#include "models/mars.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include <iomanip>

#include "linalg/cholesky.hpp"
#include "models/serialize_detail.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/result.hpp"
#include "util/string_utils.hpp"

namespace chaos {

bool
BasisTerm::usesFeature(size_t feature) const
{
    for (const auto &hinge : hinges) {
        if (hinge.feature == feature)
            return true;
    }
    return false;
}

double
BasisTerm::evaluate(const std::vector<double> &row) const
{
    double value = 1.0;
    for (const auto &hinge : hinges) {
        value *= hinge.evaluate(row[hinge.feature]);
        if (value == 0.0)
            return 0.0;
    }
    return value;
}

MarsModel::MarsModel(MarsConfig config) : cfg(config)
{
    panicIf(cfg.maxDegree < 1 || cfg.maxDegree > 2,
            "MarsModel supports degree 1 or 2");
    panicIf(cfg.maxTerms < 3, "MarsModel needs maxTerms >= 3");
}

namespace {

/** Column-major basis evaluation workspace for the forward pass. */
struct ForwardState
{
    // Basis columns evaluated on the search rows.
    std::vector<std::vector<double>> columns;
    // Gram matrix of the columns and their dot with y.
    Matrix gram;
    std::vector<double> bty;
    double yty = 0.0;
    size_t numRows = 0;
};

/**
 * Solve the (ridged) normal equations on a diagonally-equilibrated
 * Gram system. Equilibration makes the small ridge meaningful per
 * column, so thin basis columns cannot earn explosive coefficients.
 */
std::vector<double>
equilibratedSolve(const Matrix &gram, const std::vector<double> &bty)
{
    const size_t m = gram.rows();
    std::vector<double> scale(m);
    for (size_t i = 0; i < m; ++i)
        scale[i] = gram(i, i) > 1e-30 ? std::sqrt(gram(i, i)) : 1.0;

    Matrix eq(m, m);
    std::vector<double> rhs(m);
    for (size_t i = 0; i < m; ++i) {
        rhs[i] = bty[i] / scale[i];
        for (size_t j = 0; j < m; ++j)
            eq(i, j) = gram(i, j) / (scale[i] * scale[j]);
    }
    const Cholesky chol = Cholesky::factorRidged(eq, 1e-5);
    auto b = chol.solve(rhs);
    for (size_t i = 0; i < m; ++i)
        b[i] /= scale[i];
    return b;
}

/** RSS of least squares on the given Gram system. */
double
gramRss(const Matrix &gram, const std::vector<double> &bty, double yty)
{
    const auto b = equilibratedSolve(gram, bty);
    double fit = 0.0;
    for (size_t i = 0; i < b.size(); ++i)
        fit += b[i] * bty[i];
    return std::max(0.0, yty - fit);
}

/** Evaluate RSS if two candidate columns join the current basis. */
double
candidateRss(const ForwardState &st, const std::vector<double> &c1,
             const std::vector<double> &c2,
             const std::vector<double> &y)
{
    const size_t m = st.columns.size();
    Matrix gram(m + 2, m + 2);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < m; ++j)
            gram(i, j) = st.gram(i, j);
    }

    std::vector<double> bty(m + 2);
    for (size_t i = 0; i < m; ++i)
        bty[i] = st.bty[i];

    const size_t n = st.numRows;
    double c1y = 0.0, c2y = 0.0, c11 = 0.0, c22 = 0.0, c12 = 0.0;
    for (size_t r = 0; r < n; ++r) {
        c1y += c1[r] * y[r];
        c2y += c2[r] * y[r];
        c11 += c1[r] * c1[r];
        c22 += c2[r] * c2[r];
        c12 += c1[r] * c2[r];
    }
    for (size_t i = 0; i < m; ++i) {
        const auto &col = st.columns[i];
        double d1 = 0.0, d2 = 0.0;
        for (size_t r = 0; r < n; ++r) {
            d1 += col[r] * c1[r];
            d2 += col[r] * c2[r];
        }
        gram(i, m) = gram(m, i) = d1;
        gram(i, m + 1) = gram(m + 1, i) = d2;
    }
    gram(m, m) = c11;
    gram(m + 1, m + 1) = c22;
    gram(m, m + 1) = gram(m + 1, m) = c12;
    bty[m] = c1y;
    bty[m + 1] = c2y;

    return gramRss(gram, bty, st.yty);
}

/**
 * Per-iteration factorization of the equilibrated forward-state Gram
 * matrix, shared (read-only) by every candidate in that iteration and
 * consumed through bordered rank-2 solves instead of re-factorizing
 * the extended system per candidate.
 */
struct EquilibratedFactor
{
    std::vector<double> scale;         ///< sqrt(diag) equilibration.
    std::optional<Cholesky> chol;      ///< Factor of the scaled Gram.
    double diagAdd = 0.0;              ///< Ridge added per diagonal.
    std::vector<double> ztilde;        ///< L^{-1} (scaled bty).
    double zz = 0.0;                   ///< |ztilde|^2: explained energy.
};

EquilibratedFactor
factorForwardState(const Matrix &gram, const std::vector<double> &bty)
{
    const size_t m = gram.rows();
    EquilibratedFactor out;
    out.scale.resize(m);
    for (size_t i = 0; i < m; ++i)
        out.scale[i] = gram(i, i) > 1e-30 ? std::sqrt(gram(i, i)) : 1.0;

    Matrix eq(m, m);
    std::vector<double> rhs(m);
    for (size_t i = 0; i < m; ++i) {
        rhs[i] = bty[i] / out.scale[i];
        for (size_t j = 0; j < m; ++j)
            eq(i, j) = gram(i, j) / (out.scale[i] * out.scale[j]);
    }
    out.chol = Cholesky::factorRidged(eq, 1e-5);
    // Recover the diagonal addition factorRidged actually applied;
    // the bordered candidate diagonal must carry the same ridge.
    double trace = 0.0;
    for (size_t i = 0; i < m; ++i)
        trace += std::fabs(eq(i, i));
    const double tscale = m > 0 ? trace / static_cast<double>(m) : 1.0;
    out.diagAdd = out.chol->appliedRidge() * std::max(tscale, 1.0);

    out.ztilde = out.chol->forwardSolve(rhs);
    for (double v : out.ztilde)
        out.zz += v * v;
    return out;
}

/** Best candidate found along one (parent, feature) knot chain. */
struct ChainBest
{
    double rss = std::numeric_limits<double>::infinity();
    size_t knot = 0;     ///< Index into the chain's knot list.
    bool valid = false;
};

/**
 * Score every knot of one (parent, feature) chain.
 *
 * Instead of materializing hinge columns and re-computing O(n*m) dot
 * products per knot, two sweeps over the rows (sorted by feature
 * value) maintain prefix sums from which every knot's cross products
 * follow in O(m). For the up hinge u_i = a_i * max(0, x_i - t) over
 * rows with x > t:
 *
 *   sum c_j u  = P1_j - t P0_j     with P_k(j) = sum c_j a x^k
 *   sum u^2    = S2 - 2t S1 + t^2 S0    S_k = sum a^2 x^k
 *   sum u y    = Q1 - t Q0              Q_k = sum a y x^k
 *
 * and symmetrically for the down hinge over rows with x < t. Each
 * knot is then evaluated against the shared equilibrated factor L of
 * the current Gram via a bordered solve: with W = L^{-1} Vtilde the
 * 2x2 Schur complement is diag-dominant because the two hinges have
 * disjoint support (their cross product is exactly zero), and
 *
 *   RSS = yty - (|z|^2 + d' S^{-1} d),  d = ctilde_y - W' z.
 *
 * Pure function of read-only state; chains run in parallel and the
 * result is deterministic for any thread count.
 */
ChainBest
scoreChain(const Matrix &colsRM, const EquilibratedFactor &ef,
           const std::vector<double> &xv,
           const std::vector<size_t> &asc,
           const std::vector<double> &knots,
           const std::vector<double> &ys,
           const std::vector<double> &parentCol, size_t minSupport,
           double yty)
{
    const size_t n = colsRM.rows();
    const size_t m = colsRM.cols();
    const size_t numKnots = knots.size();

    // Up-side sweep: knots descending, accumulating rows with x > t.
    std::vector<double> upV(numKnots * m), upC11(numKnots),
        upC1y(numKnots);
    std::vector<size_t> upCnt(numKnots);
    {
        std::vector<double> p0(m, 0.0), p1(m, 0.0);
        double s0 = 0, s1 = 0, s2 = 0, q0 = 0, q1 = 0;
        size_t cnt = 0, pos = n;
        for (size_t kk = numKnots; kk-- > 0;) {
            const double t = knots[kk];
            while (pos > 0 && xv[asc[pos - 1]] > t) {
                const size_t i = asc[--pos];
                const double a = parentCol[i];
                if (a == 0.0)
                    continue;
                ++cnt;
                const double x = xv[i];
                const double ax = a * x;
                s0 += a * a;
                s1 += a * ax;
                s2 += ax * ax;
                q0 += a * ys[i];
                q1 += ax * ys[i];
                const double *crow = colsRM.rowPtr(i);
                for (size_t j = 0; j < m; ++j) {
                    p0[j] += crow[j] * a;
                    p1[j] += crow[j] * ax;
                }
            }
            upCnt[kk] = cnt;
            upC11[kk] = s2 - t * (2.0 * s1 - t * s0);
            upC1y[kk] = q1 - t * q0;
            double *dst = &upV[kk * m];
            for (size_t j = 0; j < m; ++j)
                dst[j] = p1[j] - t * p0[j];
        }
    }
    // Down-side sweep: knots ascending, accumulating rows with x < t.
    std::vector<double> downV(numKnots * m), downC22(numKnots),
        downC2y(numKnots);
    std::vector<size_t> downCnt(numKnots);
    {
        std::vector<double> r0(m, 0.0), r1(m, 0.0);
        double u0 = 0, u1 = 0, u2 = 0, q0 = 0, q1 = 0;
        size_t cnt = 0, pos = 0;
        for (size_t kk = 0; kk < numKnots; ++kk) {
            const double t = knots[kk];
            while (pos < n && xv[asc[pos]] < t) {
                const size_t i = asc[pos++];
                const double a = parentCol[i];
                if (a == 0.0)
                    continue;
                ++cnt;
                const double x = xv[i];
                const double ax = a * x;
                u0 += a * a;
                u1 += a * ax;
                u2 += ax * ax;
                q0 += a * ys[i];
                q1 += ax * ys[i];
                const double *crow = colsRM.rowPtr(i);
                for (size_t j = 0; j < m; ++j) {
                    r0[j] += crow[j] * a;
                    r1[j] += crow[j] * ax;
                }
            }
            downCnt[kk] = cnt;
            downC22[kk] = u2 - t * (2.0 * u1 - t * u0);
            downC2y[kk] = t * q0 - q1;
            double *dst = &downV[kk * m];
            for (size_t j = 0; j < m; ++j)
                dst[j] = t * r0[j] - r1[j];
        }
    }

    ChainBest best;
    std::vector<double> v1(m), v2(m);
    for (size_t k = 0; k < numKnots; ++k) {
        // Reject thinly-supported corners outright.
        if (upCnt[k] < minSupport || downCnt[k] < minSupport)
            continue;
        const double c11 = upC11[k], c22 = downC22[k];
        if (!(c11 > 0.0) || !(c22 > 0.0))
            continue;
        const double sc1 = std::sqrt(c11), sc2 = std::sqrt(c22);
        for (size_t j = 0; j < m; ++j) {
            v1[j] = upV[k * m + j] / (ef.scale[j] * sc1);
            v2[j] = downV[k * m + j] / (ef.scale[j] * sc2);
        }
        const auto w1 = ef.chol->forwardSolve(v1);
        const auto w2 = ef.chol->forwardSolve(v2);
        double w11 = 0, w22 = 0, w12 = 0, w1z = 0, w2z = 0;
        for (size_t j = 0; j < m; ++j) {
            w11 += w1[j] * w1[j];
            w22 += w2[j] * w2[j];
            w12 += w1[j] * w2[j];
            w1z += w1[j] * ef.ztilde[j];
            w2z += w2[j] * ef.ztilde[j];
        }
        const double s11 = 1.0 + ef.diagAdd - w11;
        const double s22 = 1.0 + ef.diagAdd - w22;
        const double s12 = -w12;
        // Candidates overlapping the current basis span are routine,
        // not exceptional: a second hinge pair on an already-split
        // feature satisfies up - down = x - t, which is linear in x
        // and hence in-span, leaving the Schur complement rank-1
        // singular. Mirror the reference path's escalating ridge
        // instead of rejecting: the in-span direction carries no
        // residual correlation, so the ridge merely suppresses it
        // while the genuinely new direction (the kink) survives.
        double s11r = s11, s22r = s22;
        double det = s11r * s22r - s12 * s12;
        double ridge = 0.0;
        for (int attempt = 0;
             attempt < 12 && (!(s11r > 0.0) || !(det > 1e-12));
             ++attempt) {
            ridge = ridge == 0.0 ? 1e-5 : ridge * 10.0;
            s11r = s11 + ridge;
            s22r = s22 + ridge;
            det = s11r * s22r - s12 * s12;
        }
        if (!(s11r > 0.0) || !(det > 0.0))
            continue;
        const double d1 = upC1y[k] / sc1 - w1z;
        const double d2 = downC2y[k] / sc2 - w2z;
        const double g1 = (s22r * d1 - s12 * d2) / det;
        const double g2 = (s11r * d2 - s12 * d1) / det;
        const double fit = ef.zz + d1 * g1 + d2 * g2;
        const double rss = std::max(0.0, yty - fit);
        if (rss < best.rss) {
            best.rss = rss;
            best.knot = k;
            best.valid = true;
        }
    }
    return best;
}

/** Generalized cross validation score. */
double
gcvScore(double rss, size_t numRows, size_t numTerms, double penalty)
{
    const double n = static_cast<double>(numRows);
    const double m = static_cast<double>(numTerms);
    const double complexity = m + penalty * (m - 1.0) / 2.0;
    if (complexity >= n)
        return std::numeric_limits<double>::infinity();
    const double denom = 1.0 - complexity / n;
    return rss / n / (denom * denom);
}

} // namespace

void
MarsModel::fit(const Matrix &x, const std::vector<double> &y)
{
    panicIf(x.rows() != y.size(), "MarsModel::fit shape mismatch");
    panicIf(x.rows() < 10, "MarsModel::fit needs at least 10 rows");

    obs::Span fit_span("mars.fit");
    static auto &fits =
        obs::Registry::instance().counter("chaos.mars.fits");
    static auto &forward_iters =
        obs::Registry::instance().counter("chaos.mars.forward_iterations");
    static auto &chains_scored =
        obs::Registry::instance().counter("chaos.mars.chains_scored");
    static auto &knots_scored =
        obs::Registry::instance().counter("chaos.mars.knots_scored");
    fits.add();

    // --- Standardize features: counters span ~10 orders of
    // magnitude, and degree-2 products of raw byte counts would
    // destroy the Gram matrix conditioning. ---
    mu.assign(x.cols(), 0.0);
    sigma.assign(x.cols(), 0.0);
    for (size_t r = 0; r < x.rows(); ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c)
            mu[c] += row[c];
    }
    for (double &m : mu)
        m /= static_cast<double>(x.rows());
    for (size_t r = 0; r < x.rows(); ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c) {
            const double d = row[c] - mu[c];
            sigma[c] += d * d;
        }
    }
    for (double &s : sigma) {
        s = std::sqrt(s / static_cast<double>(x.rows()));
        if (s < 1e-12)
            s = 1.0;
    }
    Matrix z(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        const double *src = x.rowPtr(r);
        double *dst = z.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c)
            dst[c] = (src[c] - mu[c]) / sigma[c];
    }
    zmin.assign(x.cols(), 0.0);
    zmax.assign(x.cols(), 0.0);
    for (size_t c = 0; c < x.cols(); ++c) {
        double lo = z(0, c), hi = z(0, c);
        for (size_t r = 1; r < x.rows(); ++r) {
            lo = std::min(lo, z(r, c));
            hi = std::max(hi, z(r, c));
        }
        zmin[c] = lo;
        zmax[c] = hi;
    }

    // --- Subsample search rows deterministically (uniform stride). ---
    std::vector<size_t> search_rows;
    if (x.rows() > cfg.maxSearchRows) {
        const double stride = static_cast<double>(x.rows()) /
                              static_cast<double>(cfg.maxSearchRows);
        for (size_t i = 0; i < cfg.maxSearchRows; ++i) {
            search_rows.push_back(
                static_cast<size_t>(i * stride));
        }
    } else {
        search_rows.resize(x.rows());
        for (size_t i = 0; i < x.rows(); ++i)
            search_rows[i] = i;
    }
    const size_t n = search_rows.size();
    const size_t p = x.cols();

    std::vector<double> ys(n);
    for (size_t i = 0; i < n; ++i)
        ys[i] = y[search_rows[i]];

    // --- Candidate knots per feature: interior quantiles. Feature
    // values over the search rows are cached once and shared by knot
    // selection, the candidate sweeps, and winner materialization. ---
    std::vector<std::vector<double>> featVals(p);
    std::vector<std::vector<double>> knots(p);
    for (size_t f = 0; f < p; ++f) {
        featVals[f].resize(n);
        for (size_t i = 0; i < n; ++i)
            featVals[f][i] = z(search_rows[i], f);
        knots[f] = quantileKnots(featVals[f], cfg.knotCandidates);
    }

    // Rows sorted by feature value (ascending, stable), computed once
    // per feature: the incremental search sweeps them per knot chain.
    std::vector<std::vector<size_t>> featOrder(p);
    if (cfg.incrementalSearch) {
        for (size_t f = 0; f < p; ++f) {
            if (knots[f].empty())
                continue;
            auto &ord = featOrder[f];
            ord.resize(n);
            for (size_t i = 0; i < n; ++i)
                ord[i] = i;
            const auto &vals = featVals[f];
            std::stable_sort(ord.begin(), ord.end(),
                             [&vals](size_t a, size_t b) {
                                 return vals[a] < vals[b];
                             });
        }
    }

    // --- Forward pass. ---
    basis.clear();
    basis.push_back(BasisTerm{});   // Intercept.

    ForwardState st;
    st.numRows = n;
    st.columns.push_back(std::vector<double>(n, 1.0));
    st.gram = Matrix(1, 1);
    st.gram(0, 0) = static_cast<double>(n);
    st.bty.assign(1, 0.0);
    for (size_t i = 0; i < n; ++i) {
        st.bty[0] += ys[i];
        st.yty += ys[i] * ys[i];
    }
    double current_rss = gramRss(st.gram, st.bty, st.yty);

    const size_t min_support = std::max<size_t>(
        5, static_cast<size_t>(cfg.minBasisSupport *
                               static_cast<double>(n)));

    obs::Span forward_span("mars.forward");
    std::vector<double> cand1(n), cand2(n);
    while (basis.size() + 2 <= cfg.maxTerms) {
        obs::Span iter_span("mars.forward_iter");
        forward_iters.add();
        double best_rss = current_rss;
        size_t best_parent = 0, best_feature = 0;
        double best_knot = 0.0;
        bool found = false;
        std::vector<double> best_c1, best_c2;

        if (cfg.incrementalSearch) {
            // Flatten eligible (parent, feature) chains in the legacy
            // parent -> feature enumeration order.
            struct Chain
            {
                size_t parent;
                size_t feature;
            };
            std::vector<Chain> chains;
            for (size_t parent = 0; parent < basis.size(); ++parent) {
                if (basis[parent].degree() + 1 > cfg.maxDegree)
                    continue;
                for (size_t f = 0; f < p; ++f) {
                    if (knots[f].empty() ||
                        basis[parent].usesFeature(f))
                        continue;
                    chains.push_back({parent, f});
                }
            }

            // Row-major snapshot of the basis columns: the sweeps
            // read every column of one row at a time.
            obs::Span factor_span("mars.cholesky_factor");
            const size_t m = st.columns.size();
            Matrix colsRM(n, m);
            for (size_t i = 0; i < n; ++i) {
                double *dst = colsRM.rowPtr(i);
                for (size_t j = 0; j < m; ++j)
                    dst[j] = st.columns[j][i];
            }
            const EquilibratedFactor ef =
                factorForwardState(st.gram, st.bty);
            factor_span.end();

            // Workers score chains against shared read-only state;
            // each writes only its own result slot.
            obs::Span sweep_span("mars.knot_sweep");
            const auto results = parallelMap<ChainBest>(
                chains.size(), [&](size_t c) {
                    const auto &ch = chains[c];
                    return scoreChain(colsRM, ef,
                                      featVals[ch.feature],
                                      featOrder[ch.feature],
                                      knots[ch.feature], ys,
                                      st.columns[ch.parent],
                                      min_support, st.yty);
                });
            sweep_span.end();
            chains_scored.add(chains.size());
            {
                std::uint64_t total_knots = 0;
                for (const auto &ch : chains)
                    total_knots += knots[ch.feature].size();
                knots_scored.add(total_knots);
            }
            // Serial reduction in enumeration order; strict < keeps
            // the earliest winner on ties like the reference scan.
            for (size_t c = 0; c < chains.size(); ++c) {
                if (results[c].valid && results[c].rss < best_rss) {
                    best_rss = results[c].rss;
                    best_parent = chains[c].parent;
                    best_feature = chains[c].feature;
                    best_knot =
                        knots[chains[c].feature][results[c].knot];
                    found = true;
                }
            }
            if (found) {
                // Materialize the winning pair hinge-exact (not via
                // prefix sums): the committed state must match what
                // the reference path would have built.
                const auto &parent_col = st.columns[best_parent];
                const auto &xvw = featVals[best_feature];
                best_c1.resize(n);
                best_c2.resize(n);
                for (size_t i = 0; i < n; ++i) {
                    const double up = xvw[i] - best_knot;
                    best_c1[i] =
                        parent_col[i] * (up > 0.0 ? up : 0.0);
                    best_c2[i] =
                        parent_col[i] * (up < 0.0 ? -up : 0.0);
                }
            }
        } else {
            obs::Span sweep_span("mars.knot_sweep");
            for (size_t parent = 0; parent < basis.size(); ++parent) {
                if (basis[parent].degree() + 1 > cfg.maxDegree)
                    continue;
                const auto &parent_col = st.columns[parent];
                for (size_t f = 0; f < p; ++f) {
                    if (knots[f].empty() ||
                        basis[parent].usesFeature(f))
                        continue;
                    chains_scored.add();
                    knots_scored.add(knots[f].size());
                    for (double t : knots[f]) {
                        size_t support1 = 0, support2 = 0;
                        for (size_t i = 0; i < n; ++i) {
                            const double up = featVals[f][i] - t;
                            cand1[i] =
                                parent_col[i] * (up > 0.0 ? up : 0.0);
                            cand2[i] =
                                parent_col[i] * (up < 0.0 ? -up : 0.0);
                            support1 += cand1[i] != 0.0;
                            support2 += cand2[i] != 0.0;
                        }
                        // Reject thinly-supported corners outright.
                        if (support1 < min_support ||
                            support2 < min_support) {
                            continue;
                        }
                        const double rss =
                            candidateRss(st, cand1, cand2, ys);
                        if (rss < best_rss) {
                            best_rss = rss;
                            best_parent = parent;
                            best_feature = f;
                            best_knot = t;
                            best_c1 = cand1;
                            best_c2 = cand2;
                            found = true;
                        }
                    }
                }
            }
        }

        if (!found ||
            current_rss - best_rss <
                cfg.minRssImprovement * std::max(current_rss, 1e-12)) {
            break;
        }

        // Commit the winning pair: extend basis, columns, and Gram.
        for (int dir : {+1, -1}) {
            BasisTerm term = basis[best_parent];
            term.hinges.push_back(Hinge{best_feature, best_knot, dir});
            basis.push_back(std::move(term));
        }
        const size_t m = st.columns.size();
        st.columns.push_back(best_c1);
        st.columns.push_back(best_c2);
        Matrix gram(m + 2, m + 2);
        for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < m; ++j)
                gram(i, j) = st.gram(i, j);
        }
        st.bty.resize(m + 2, 0.0);
        for (size_t a = m; a < m + 2; ++a) {
            const auto &col_a = st.columns[a];
            double ay = 0.0;
            for (size_t i = 0; i < n; ++i)
                ay += col_a[i] * ys[i];
            st.bty[a] = ay;
            for (size_t b = 0; b <= a; ++b) {
                const auto &col_b = st.columns[b];
                double dot = 0.0;
                for (size_t i = 0; i < n; ++i)
                    dot += col_a[i] * col_b[i];
                gram(a, b) = gram(b, a) = dot;
            }
        }
        st.gram = std::move(gram);
        current_rss = best_rss;
    }
    forward_span.end();

    obs::Span backward_span("mars.backward");
    static auto &backward_drops =
        obs::Registry::instance().counter("chaos.mars.backward_drops");

    // --- Backward pruning by GCV. ---
    // Work with term indices into `basis`; index 0 (intercept) is
    // never removed.
    std::vector<size_t> active(basis.size());
    for (size_t i = 0; i < active.size(); ++i)
        active[i] = i;

    auto subset_rss = [&](const std::vector<size_t> &subset) {
        const size_t m = subset.size();
        Matrix gram(m, m);
        std::vector<double> bty(m);
        for (size_t a = 0; a < m; ++a) {
            bty[a] = st.bty[subset[a]];
            for (size_t b = 0; b < m; ++b)
                gram(a, b) = st.gram(subset[a], subset[b]);
        }
        return gramRss(gram, bty, st.yty);
    };

    std::vector<size_t> best_subset = active;
    double best_gcv = gcvScore(subset_rss(active), n, active.size(),
                               cfg.gcvPenalty);

    while (active.size() > 1) {
        double round_best_gcv =
            std::numeric_limits<double>::infinity();
        size_t round_drop = 0;
        for (size_t k = 1; k < active.size(); ++k) {
            std::vector<size_t> trial = active;
            trial.erase(trial.begin() + static_cast<long>(k));
            const double gcv = gcvScore(subset_rss(trial), n,
                                        trial.size(), cfg.gcvPenalty);
            if (gcv < round_best_gcv) {
                round_best_gcv = gcv;
                round_drop = k;
            }
        }
        active.erase(active.begin() + static_cast<long>(round_drop));
        backward_drops.add();
        if (round_best_gcv < best_gcv) {
            best_gcv = round_best_gcv;
            best_subset = active;
        }
    }

    backward_span.end();

    // --- Refit the surviving terms on ALL rows. ---
    obs::Span refit_span("mars.refit");
    std::vector<BasisTerm> final_terms;
    final_terms.reserve(best_subset.size());
    for (size_t idx : best_subset)
        final_terms.push_back(basis[idx]);
    basis = std::move(final_terms);

    const size_t full_n = x.rows();

    // Observed target range, for the influence bound below.
    double y_lo = y[0], y_hi = y[0];
    for (double v : y) {
        y_lo = std::min(y_lo, v);
        y_hi = std::max(y_hi, v);
    }
    const double y_range = std::max(y_hi - y_lo, 1e-6);

    // Refit on ALL rows, then prune terms whose worst-case swing
    // inside the (clamped) training box exceeds a multiple of the
    // target range: such terms live on thin corners of the feature
    // space and would dominate predictions on data that populates
    // those corners. Iterate until every term is physically bounded.
    for (;;) {
        const size_t m = basis.size();
        Matrix design(full_n, m);
        // Rows are independent (disjoint writes), so the design
        // matrix builds in parallel deterministically.
        parallelFor(full_n, [&](size_t r) {
            const auto row = z.row(r);
            double *dst = design.rowPtr(r);
            for (size_t c = 0; c < m; ++c)
                dst[c] = basis[c].evaluate(row);
        });
        std::vector<double> bty;
        const Matrix gram = design.transposeTimesSelf(y, bty);
        coef = equilibratedSolve(gram, bty);

        // Worst-case contribution of each non-intercept term over
        // the clamped box: product of per-hinge maxima.
        size_t worst = 0;
        double worst_bound = 0.0;
        for (size_t c = 0; c < m; ++c) {
            if (basis[c].hinges.empty())
                continue;
            double swing = std::fabs(coef[c]);
            for (const auto &hinge : basis[c].hinges) {
                const double top =
                    hinge.direction > 0
                        ? std::max(0.0, zmax[hinge.feature] - hinge.knot)
                        : std::max(0.0,
                                   hinge.knot - zmin[hinge.feature]);
                swing *= top;
            }
            if (swing > worst_bound) {
                worst_bound = swing;
                worst = c;
            }
        }
        if (worst_bound <= 3.0 * y_range || m <= 1)
            break;
        basis.erase(basis.begin() + static_cast<long>(worst));
    }
    rebuildPlan();
}

void
MarsModel::rebuildPlan()
{
    plan = CompiledPredictor::compile(*this);
}

void
MarsModel::predictBatch(const double *rows, size_t n, size_t stride,
                        double *out) const
{
    panicIf(!plan.valid(), "MarsModel::predictBatch before fit");
    plan.predictBatch(rows, n, stride, out);
}

double
MarsModel::predict(const std::vector<double> &row) const
{
    panicIf(coef.empty(), "MarsModel::predict before fit");
    panicIf(row.size() != mu.size(),
            "MarsModel::predict width mismatch");
    std::vector<double> zrow(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
        const double value = (row[c] - mu[c]) / sigma[c];
        zrow[c] = std::clamp(value, zmin[c], zmax[c]);
    }
    double acc = 0.0;
    for (size_t i = 0; i < basis.size(); ++i)
        acc += coef[i] * basis[i].evaluate(zrow);
    return acc;
}

std::string
MarsModel::describe() const
{
    std::string out = modelTypeName(type()) + " (MARS degree " +
                      std::to_string(cfg.maxDegree) + "): " +
                      std::to_string(basis.size()) + " terms;";
    for (size_t i = 0; i < basis.size(); ++i) {
        out += " " + formatDouble(coef[i], 3);
        for (const auto &hinge : basis[i].hinges) {
            out += std::string("*") +
                   (hinge.direction > 0 ? "max(0,x" : "max(0,-x") +
                   std::to_string(hinge.feature) +
                   (hinge.direction > 0 ? "-" : "+") +
                   formatDouble(hinge.knot, 2) + ")";
        }
        if (i + 1 < basis.size())
            out += " +";
    }
    return out;
}

size_t
MarsModel::numParameters() const
{
    // Each non-intercept term has a coefficient and a knot.
    return coef.size() + (basis.empty() ? 0 : basis.size() - 1);
}

void
MarsModel::save(std::ostream &out) const
{
    panicIf(coef.empty(), "MarsModel::save before fit");
    out << "degree " << cfg.maxDegree << '\n';
    out << "terms " << basis.size() << '\n';
    out << std::setprecision(17);
    for (const auto &term : basis) {
        out << "term " << term.hinges.size();
        for (const auto &hinge : term.hinges) {
            out << ' ' << hinge.feature << ' ' << hinge.knot << ' '
                << hinge.direction;
        }
        out << '\n';
    }
    serialize_detail::writeVector(out, "coef", coef);
    serialize_detail::writeVector(out, "mu", mu);
    serialize_detail::writeVector(out, "sigma", sigma);
    serialize_detail::writeVector(out, "zmin", zmin);
    serialize_detail::writeVector(out, "zmax", zmax);
}

MarsModel
MarsModel::load(std::istream &in)
{
    serialize_detail::expectToken(in, "degree");
    size_t degree = 0;
    raiseIf(!(in >> degree), "model file: missing MARS degree");
    MarsConfig cfg;
    cfg.maxDegree = degree;
    MarsModel model(cfg);

    serialize_detail::expectToken(in, "terms");
    size_t num_terms = 0;
    raiseIf(!(in >> num_terms), "model file: missing MARS term count");
    for (size_t t = 0; t < num_terms; ++t) {
        serialize_detail::expectToken(in, "term");
        size_t num_hinges = 0;
        raiseIf(!(in >> num_hinges), "model file: bad MARS term");
        BasisTerm term;
        for (size_t h = 0; h < num_hinges; ++h) {
            Hinge hinge;
            raiseIf(!(in >> hinge.feature >> hinge.knot >>
                      hinge.direction),
                    "model file: truncated MARS hinge");
            term.hinges.push_back(hinge);
        }
        model.basis.push_back(std::move(term));
    }
    model.coef = serialize_detail::readVector(in, "coef");
    model.mu = serialize_detail::readVector(in, "mu");
    model.sigma = serialize_detail::readVector(in, "sigma");
    model.zmin = serialize_detail::readVector(in, "zmin");
    model.zmax = serialize_detail::readVector(in, "zmax");
    raiseIf(model.coef.size() != model.basis.size(),
            "model file: inconsistent MARS model");
    // Hinges index the standardized row; an out-of-range feature in a
    // damaged file would read (or, compiled, write) out of bounds.
    for (const BasisTerm &term : model.basis) {
        for (const Hinge &hinge : term.hinges) {
            raiseIf(hinge.feature >= model.mu.size(),
                    "model file: MARS hinge feature out of range");
        }
    }
    model.rebuildPlan();
    return model;
}

} // namespace chaos
