#include "models/mars.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include <iomanip>

#include "linalg/cholesky.hpp"
#include "models/serialize_detail.hpp"
#include "stats/descriptive.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"
#include "util/string_utils.hpp"

namespace chaos {

bool
BasisTerm::usesFeature(size_t feature) const
{
    for (const auto &hinge : hinges) {
        if (hinge.feature == feature)
            return true;
    }
    return false;
}

double
BasisTerm::evaluate(const std::vector<double> &row) const
{
    double value = 1.0;
    for (const auto &hinge : hinges) {
        value *= hinge.evaluate(row[hinge.feature]);
        if (value == 0.0)
            return 0.0;
    }
    return value;
}

MarsModel::MarsModel(MarsConfig config) : cfg(config)
{
    panicIf(cfg.maxDegree < 1 || cfg.maxDegree > 2,
            "MarsModel supports degree 1 or 2");
    panicIf(cfg.maxTerms < 3, "MarsModel needs maxTerms >= 3");
}

namespace {

/** Column-major basis evaluation workspace for the forward pass. */
struct ForwardState
{
    // Basis columns evaluated on the search rows.
    std::vector<std::vector<double>> columns;
    // Gram matrix of the columns and their dot with y.
    Matrix gram;
    std::vector<double> bty;
    double yty = 0.0;
    size_t numRows = 0;
};

/**
 * Solve the (ridged) normal equations on a diagonally-equilibrated
 * Gram system. Equilibration makes the small ridge meaningful per
 * column, so thin basis columns cannot earn explosive coefficients.
 */
std::vector<double>
equilibratedSolve(const Matrix &gram, const std::vector<double> &bty)
{
    const size_t m = gram.rows();
    std::vector<double> scale(m);
    for (size_t i = 0; i < m; ++i)
        scale[i] = gram(i, i) > 1e-30 ? std::sqrt(gram(i, i)) : 1.0;

    Matrix eq(m, m);
    std::vector<double> rhs(m);
    for (size_t i = 0; i < m; ++i) {
        rhs[i] = bty[i] / scale[i];
        for (size_t j = 0; j < m; ++j)
            eq(i, j) = gram(i, j) / (scale[i] * scale[j]);
    }
    const Cholesky chol = Cholesky::factorRidged(eq, 1e-5);
    auto b = chol.solve(rhs);
    for (size_t i = 0; i < m; ++i)
        b[i] /= scale[i];
    return b;
}

/** RSS of least squares on the given Gram system. */
double
gramRss(const Matrix &gram, const std::vector<double> &bty, double yty)
{
    const auto b = equilibratedSolve(gram, bty);
    double fit = 0.0;
    for (size_t i = 0; i < b.size(); ++i)
        fit += b[i] * bty[i];
    return std::max(0.0, yty - fit);
}

/** Evaluate RSS if two candidate columns join the current basis. */
double
candidateRss(const ForwardState &st, const std::vector<double> &c1,
             const std::vector<double> &c2,
             const std::vector<double> &y)
{
    const size_t m = st.columns.size();
    Matrix gram(m + 2, m + 2);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < m; ++j)
            gram(i, j) = st.gram(i, j);
    }

    std::vector<double> bty(m + 2);
    for (size_t i = 0; i < m; ++i)
        bty[i] = st.bty[i];

    const size_t n = st.numRows;
    double c1y = 0.0, c2y = 0.0, c11 = 0.0, c22 = 0.0, c12 = 0.0;
    for (size_t r = 0; r < n; ++r) {
        c1y += c1[r] * y[r];
        c2y += c2[r] * y[r];
        c11 += c1[r] * c1[r];
        c22 += c2[r] * c2[r];
        c12 += c1[r] * c2[r];
    }
    for (size_t i = 0; i < m; ++i) {
        const auto &col = st.columns[i];
        double d1 = 0.0, d2 = 0.0;
        for (size_t r = 0; r < n; ++r) {
            d1 += col[r] * c1[r];
            d2 += col[r] * c2[r];
        }
        gram(i, m) = gram(m, i) = d1;
        gram(i, m + 1) = gram(m + 1, i) = d2;
    }
    gram(m, m) = c11;
    gram(m + 1, m + 1) = c22;
    gram(m, m + 1) = gram(m + 1, m) = c12;
    bty[m] = c1y;
    bty[m + 1] = c2y;

    return gramRss(gram, bty, st.yty);
}

/** Generalized cross validation score. */
double
gcvScore(double rss, size_t numRows, size_t numTerms, double penalty)
{
    const double n = static_cast<double>(numRows);
    const double m = static_cast<double>(numTerms);
    const double complexity = m + penalty * (m - 1.0) / 2.0;
    if (complexity >= n)
        return std::numeric_limits<double>::infinity();
    const double denom = 1.0 - complexity / n;
    return rss / n / (denom * denom);
}

} // namespace

void
MarsModel::fit(const Matrix &x, const std::vector<double> &y)
{
    panicIf(x.rows() != y.size(), "MarsModel::fit shape mismatch");
    panicIf(x.rows() < 10, "MarsModel::fit needs at least 10 rows");

    // --- Standardize features: counters span ~10 orders of
    // magnitude, and degree-2 products of raw byte counts would
    // destroy the Gram matrix conditioning. ---
    mu.assign(x.cols(), 0.0);
    sigma.assign(x.cols(), 0.0);
    for (size_t r = 0; r < x.rows(); ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c)
            mu[c] += row[c];
    }
    for (double &m : mu)
        m /= static_cast<double>(x.rows());
    for (size_t r = 0; r < x.rows(); ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c) {
            const double d = row[c] - mu[c];
            sigma[c] += d * d;
        }
    }
    for (double &s : sigma) {
        s = std::sqrt(s / static_cast<double>(x.rows()));
        if (s < 1e-12)
            s = 1.0;
    }
    Matrix z(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        const double *src = x.rowPtr(r);
        double *dst = z.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c)
            dst[c] = (src[c] - mu[c]) / sigma[c];
    }
    zmin.assign(x.cols(), 0.0);
    zmax.assign(x.cols(), 0.0);
    for (size_t c = 0; c < x.cols(); ++c) {
        double lo = z(0, c), hi = z(0, c);
        for (size_t r = 1; r < x.rows(); ++r) {
            lo = std::min(lo, z(r, c));
            hi = std::max(hi, z(r, c));
        }
        zmin[c] = lo;
        zmax[c] = hi;
    }

    // --- Subsample search rows deterministically (uniform stride). ---
    std::vector<size_t> search_rows;
    if (x.rows() > cfg.maxSearchRows) {
        const double stride = static_cast<double>(x.rows()) /
                              static_cast<double>(cfg.maxSearchRows);
        for (size_t i = 0; i < cfg.maxSearchRows; ++i) {
            search_rows.push_back(
                static_cast<size_t>(i * stride));
        }
    } else {
        search_rows.resize(x.rows());
        for (size_t i = 0; i < x.rows(); ++i)
            search_rows[i] = i;
    }
    const size_t n = search_rows.size();
    const size_t p = x.cols();

    std::vector<double> ys(n);
    for (size_t i = 0; i < n; ++i)
        ys[i] = y[search_rows[i]];

    // --- Candidate knots per feature: interior quantiles. ---
    std::vector<std::vector<double>> knots(p);
    for (size_t f = 0; f < p; ++f) {
        std::vector<double> values(n);
        for (size_t i = 0; i < n; ++i)
            values[i] = z(search_rows[i], f);
        const auto distinct = distinctSorted(values);
        if (distinct.size() < 2)
            continue;  // Constant feature: no knots.
        if (distinct.size() <= cfg.knotCandidates + 1) {
            // Discrete feature (e.g. P-state): every interior level.
            knots[f].assign(distinct.begin(), distinct.end() - 1);
        } else {
            for (size_t k = 1; k <= cfg.knotCandidates; ++k) {
                const double q =
                    static_cast<double>(k) /
                    static_cast<double>(cfg.knotCandidates + 1);
                knots[f].push_back(quantile(values, q));
            }
            knots[f] = distinctSorted(std::move(knots[f]));
        }
    }

    // --- Forward pass. ---
    basis.clear();
    basis.push_back(BasisTerm{});   // Intercept.

    ForwardState st;
    st.numRows = n;
    st.columns.push_back(std::vector<double>(n, 1.0));
    st.gram = Matrix(1, 1);
    st.gram(0, 0) = static_cast<double>(n);
    st.bty.assign(1, 0.0);
    for (size_t i = 0; i < n; ++i) {
        st.bty[0] += ys[i];
        st.yty += ys[i] * ys[i];
    }
    double current_rss = gramRss(st.gram, st.bty, st.yty);

    std::vector<double> cand1(n), cand2(n);
    while (basis.size() + 2 <= cfg.maxTerms) {
        double best_rss = current_rss;
        size_t best_parent = 0, best_feature = 0;
        double best_knot = 0.0;
        bool found = false;
        std::vector<double> best_c1, best_c2;

        for (size_t parent = 0; parent < basis.size(); ++parent) {
            if (basis[parent].degree() + 1 > cfg.maxDegree)
                continue;
            const auto &parent_col = st.columns[parent];
            for (size_t f = 0; f < p; ++f) {
                if (knots[f].empty() || basis[parent].usesFeature(f))
                    continue;
                const size_t min_support = std::max<size_t>(
                    5, static_cast<size_t>(cfg.minBasisSupport *
                                           static_cast<double>(n)));
                for (double t : knots[f]) {
                    size_t support1 = 0, support2 = 0;
                    for (size_t i = 0; i < n; ++i) {
                        const double v = z(search_rows[i], f);
                        const double up = v - t;
                        cand1[i] =
                            parent_col[i] * (up > 0.0 ? up : 0.0);
                        cand2[i] =
                            parent_col[i] * (up < 0.0 ? -up : 0.0);
                        support1 += cand1[i] != 0.0;
                        support2 += cand2[i] != 0.0;
                    }
                    // Reject thinly-supported corners outright.
                    if (support1 < min_support ||
                        support2 < min_support) {
                        continue;
                    }
                    const double rss =
                        candidateRss(st, cand1, cand2, ys);
                    if (rss < best_rss) {
                        best_rss = rss;
                        best_parent = parent;
                        best_feature = f;
                        best_knot = t;
                        best_c1 = cand1;
                        best_c2 = cand2;
                        found = true;
                    }
                }
            }
        }

        if (!found ||
            current_rss - best_rss <
                cfg.minRssImprovement * std::max(current_rss, 1e-12)) {
            break;
        }

        // Commit the winning pair: extend basis, columns, and Gram.
        for (int dir : {+1, -1}) {
            BasisTerm term = basis[best_parent];
            term.hinges.push_back(Hinge{best_feature, best_knot, dir});
            basis.push_back(std::move(term));
        }
        const size_t m = st.columns.size();
        st.columns.push_back(best_c1);
        st.columns.push_back(best_c2);
        Matrix gram(m + 2, m + 2);
        for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < m; ++j)
                gram(i, j) = st.gram(i, j);
        }
        st.bty.resize(m + 2, 0.0);
        for (size_t a = m; a < m + 2; ++a) {
            const auto &col_a = st.columns[a];
            double ay = 0.0;
            for (size_t i = 0; i < n; ++i)
                ay += col_a[i] * ys[i];
            st.bty[a] = ay;
            for (size_t b = 0; b <= a; ++b) {
                const auto &col_b = st.columns[b];
                double dot = 0.0;
                for (size_t i = 0; i < n; ++i)
                    dot += col_a[i] * col_b[i];
                gram(a, b) = gram(b, a) = dot;
            }
        }
        st.gram = std::move(gram);
        current_rss = best_rss;
    }

    // --- Backward pruning by GCV. ---
    // Work with term indices into `basis`; index 0 (intercept) is
    // never removed.
    std::vector<size_t> active(basis.size());
    for (size_t i = 0; i < active.size(); ++i)
        active[i] = i;

    auto subset_rss = [&](const std::vector<size_t> &subset) {
        const size_t m = subset.size();
        Matrix gram(m, m);
        std::vector<double> bty(m);
        for (size_t a = 0; a < m; ++a) {
            bty[a] = st.bty[subset[a]];
            for (size_t b = 0; b < m; ++b)
                gram(a, b) = st.gram(subset[a], subset[b]);
        }
        return gramRss(gram, bty, st.yty);
    };

    std::vector<size_t> best_subset = active;
    double best_gcv = gcvScore(subset_rss(active), n, active.size(),
                               cfg.gcvPenalty);

    while (active.size() > 1) {
        double round_best_gcv =
            std::numeric_limits<double>::infinity();
        size_t round_drop = 0;
        for (size_t k = 1; k < active.size(); ++k) {
            std::vector<size_t> trial = active;
            trial.erase(trial.begin() + static_cast<long>(k));
            const double gcv = gcvScore(subset_rss(trial), n,
                                        trial.size(), cfg.gcvPenalty);
            if (gcv < round_best_gcv) {
                round_best_gcv = gcv;
                round_drop = k;
            }
        }
        active.erase(active.begin() + static_cast<long>(round_drop));
        if (round_best_gcv < best_gcv) {
            best_gcv = round_best_gcv;
            best_subset = active;
        }
    }

    // --- Refit the surviving terms on ALL rows. ---
    std::vector<BasisTerm> final_terms;
    final_terms.reserve(best_subset.size());
    for (size_t idx : best_subset)
        final_terms.push_back(basis[idx]);
    basis = std::move(final_terms);

    const size_t full_n = x.rows();

    // Observed target range, for the influence bound below.
    double y_lo = y[0], y_hi = y[0];
    for (double v : y) {
        y_lo = std::min(y_lo, v);
        y_hi = std::max(y_hi, v);
    }
    const double y_range = std::max(y_hi - y_lo, 1e-6);

    // Refit on ALL rows, then prune terms whose worst-case swing
    // inside the (clamped) training box exceeds a multiple of the
    // target range: such terms live on thin corners of the feature
    // space and would dominate predictions on data that populates
    // those corners. Iterate until every term is physically bounded.
    for (;;) {
        const size_t m = basis.size();
        Matrix design(full_n, m);
        for (size_t r = 0; r < full_n; ++r) {
            const auto row = z.row(r);
            for (size_t c = 0; c < m; ++c)
                design(r, c) = basis[c].evaluate(row);
        }
        const Matrix gram = design.gram();
        const auto bty = design.transposeTimes(y);
        coef = equilibratedSolve(gram, bty);

        // Worst-case contribution of each non-intercept term over
        // the clamped box: product of per-hinge maxima.
        size_t worst = 0;
        double worst_bound = 0.0;
        for (size_t c = 0; c < m; ++c) {
            if (basis[c].hinges.empty())
                continue;
            double swing = std::fabs(coef[c]);
            for (const auto &hinge : basis[c].hinges) {
                const double top =
                    hinge.direction > 0
                        ? std::max(0.0, zmax[hinge.feature] - hinge.knot)
                        : std::max(0.0,
                                   hinge.knot - zmin[hinge.feature]);
                swing *= top;
            }
            if (swing > worst_bound) {
                worst_bound = swing;
                worst = c;
            }
        }
        if (worst_bound <= 3.0 * y_range || m <= 1)
            break;
        basis.erase(basis.begin() + static_cast<long>(worst));
    }
}

double
MarsModel::predict(const std::vector<double> &row) const
{
    panicIf(coef.empty(), "MarsModel::predict before fit");
    panicIf(row.size() != mu.size(),
            "MarsModel::predict width mismatch");
    std::vector<double> zrow(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
        const double value = (row[c] - mu[c]) / sigma[c];
        zrow[c] = std::clamp(value, zmin[c], zmax[c]);
    }
    double acc = 0.0;
    for (size_t i = 0; i < basis.size(); ++i)
        acc += coef[i] * basis[i].evaluate(zrow);
    return acc;
}

std::string
MarsModel::describe() const
{
    std::string out = modelTypeName(type()) + " (MARS degree " +
                      std::to_string(cfg.maxDegree) + "): " +
                      std::to_string(basis.size()) + " terms;";
    for (size_t i = 0; i < basis.size(); ++i) {
        out += " " + formatDouble(coef[i], 3);
        for (const auto &hinge : basis[i].hinges) {
            out += std::string("*") +
                   (hinge.direction > 0 ? "max(0,x" : "max(0,-x") +
                   std::to_string(hinge.feature) +
                   (hinge.direction > 0 ? "-" : "+") +
                   formatDouble(hinge.knot, 2) + ")";
        }
        if (i + 1 < basis.size())
            out += " +";
    }
    return out;
}

size_t
MarsModel::numParameters() const
{
    // Each non-intercept term has a coefficient and a knot.
    return coef.size() + (basis.empty() ? 0 : basis.size() - 1);
}

void
MarsModel::save(std::ostream &out) const
{
    panicIf(coef.empty(), "MarsModel::save before fit");
    out << "degree " << cfg.maxDegree << '\n';
    out << "terms " << basis.size() << '\n';
    out << std::setprecision(17);
    for (const auto &term : basis) {
        out << "term " << term.hinges.size();
        for (const auto &hinge : term.hinges) {
            out << ' ' << hinge.feature << ' ' << hinge.knot << ' '
                << hinge.direction;
        }
        out << '\n';
    }
    serialize_detail::writeVector(out, "coef", coef);
    serialize_detail::writeVector(out, "mu", mu);
    serialize_detail::writeVector(out, "sigma", sigma);
    serialize_detail::writeVector(out, "zmin", zmin);
    serialize_detail::writeVector(out, "zmax", zmax);
}

MarsModel
MarsModel::load(std::istream &in)
{
    serialize_detail::expectToken(in, "degree");
    size_t degree = 0;
    raiseIf(!(in >> degree), "model file: missing MARS degree");
    MarsConfig cfg;
    cfg.maxDegree = degree;
    MarsModel model(cfg);

    serialize_detail::expectToken(in, "terms");
    size_t num_terms = 0;
    raiseIf(!(in >> num_terms), "model file: missing MARS term count");
    for (size_t t = 0; t < num_terms; ++t) {
        serialize_detail::expectToken(in, "term");
        size_t num_hinges = 0;
        raiseIf(!(in >> num_hinges), "model file: bad MARS term");
        BasisTerm term;
        for (size_t h = 0; h < num_hinges; ++h) {
            Hinge hinge;
            raiseIf(!(in >> hinge.feature >> hinge.knot >>
                      hinge.direction),
                    "model file: truncated MARS hinge");
            term.hinges.push_back(hinge);
        }
        model.basis.push_back(std::move(term));
    }
    model.coef = serialize_detail::readVector(in, "coef");
    model.mu = serialize_detail::readVector(in, "mu");
    model.sigma = serialize_detail::readVector(in, "sigma");
    model.zmin = serialize_detail::readVector(in, "zmin");
    model.zmax = serialize_detail::readVector(in, "zmax");
    raiseIf(model.coef.size() != model.basis.size(),
            "model file: inconsistent MARS model");
    return model;
}

} // namespace chaos
