/**
 * @file
 * Backward stepwise regression with the Wald significance test —
 * step 4 (per machine) and step 6 (per cluster) of the paper's
 * Algorithm 1: iteratively drop the feature whose coefficient is
 * least distinguishable from zero.
 */
#ifndef CHAOS_MODELS_STEPWISE_HPP
#define CHAOS_MODELS_STEPWISE_HPP

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace chaos {

/** Outcome of a stepwise elimination run. */
struct StepwiseResult
{
    /** Surviving feature indices (into the input matrix), ascending. */
    std::vector<size_t> keptFeatures;
    /** Coefficients of the final model: [intercept, kept...]. */
    std::vector<double> coefficients;
    /** Wald p-value of each kept feature, aligned with keptFeatures. */
    std::vector<double> pValues;
    /** Features removed, in elimination order. */
    std::vector<size_t> removedFeatures;
};

/** Configuration for stepwise elimination. */
struct StepwiseConfig
{
    /** Drop features whose Wald p-value exceeds this. */
    double alpha = 0.05;
    /** Never drop below this many surviving features. */
    size_t minFeatures = 1;
    /** Remove at most one feature per refit (always true here). */
    size_t maxIterations = 1000;
    /**
     * Compute the full-design Gram matrix once and drop columns via
     * O(k^2) Cholesky downdates instead of rebuilding the design and
     * re-factoring X'X on every elimination step. False restores the
     * reference per-iteration refit — kept as the perf-benchmark
     * baseline and as a cross-check oracle in tests.
     */
    bool reuseGram = true;
};

/**
 * Run backward stepwise elimination of @p x's columns against @p y.
 * An intercept is always included and never eliminated.
 */
StepwiseResult stepwiseEliminate(const Matrix &x,
                                 const std::vector<double> &y,
                                 const StepwiseConfig &config = {});

} // namespace chaos

#endif // CHAOS_MODELS_STEPWISE_HPP
