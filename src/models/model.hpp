/**
 * @file
 * Common interface of all power models (paper Section IV-B).
 *
 * A PowerModel maps a feature vector of OS counter values to
 * predicted full-system watts. The four concrete techniques are
 * linear (Eq. 1), piecewise linear / MARS degree 1 (Eq. 2),
 * quadratic / MARS degree 2 (Eq. 3), and frequency-switching (Eq. 4).
 */
#ifndef CHAOS_MODELS_MODEL_HPP
#define CHAOS_MODELS_MODEL_HPP

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace chaos {

/** The paper's four modeling techniques. */
enum class ModelType
{
    Linear,         ///< Eq. 1: ordinary least squares.
    PiecewiseLinear,///< Eq. 2: MARS with hinge bases, degree 1.
    Quadratic,      ///< Eq. 3: MARS with degree-2 interactions.
    Switching,      ///< Eq. 4: per-frequency-state linear models.
};

/** Short label ("L", "P", "Q", "S") used in result tables. */
std::string modelTypeCode(ModelType type);

/** Full name of a model type. */
std::string modelTypeName(ModelType type);

/** Abstract trained (or trainable) power model. */
class PowerModel
{
  public:
    virtual ~PowerModel() = default;

    /**
     * Fit the model.
     *
     * @param x Feature matrix, one row per observation. No intercept
     *          column; models add their own.
     * @param y Measured power, watts.
     */
    virtual void fit(const Matrix &x, const std::vector<double> &y) = 0;

    /** Predict power for one feature row (post-fit only). */
    virtual double predict(const std::vector<double> &row) const = 0;

    /** Feature-row width the model consumes (0 before fit). */
    virtual size_t inputWidth() const = 0;

    /**
     * Predict power for @p n rows laid out with @p stride doubles
     * between consecutive row starts (stride >= inputWidth()),
     * writing one watt value per row into @p out.
     *
     * The base implementation is the serial scalar fallback — it
     * materializes each row and calls predict(), and doubles as the
     * bit-identical regression oracle for the compiled overrides.
     * Concrete models override it with a CompiledPredictor plan
     * (models/compiled.hpp) that evaluates the batch as tight loops
     * over flat coefficient/basis arrays; compiled and scalar
     * outputs match to the last ulp on every model type.
     */
    virtual void predictBatch(const double *rows, size_t n,
                              size_t stride, double *out) const;

    /** Predict power for every row of @p x (via predictBatch). */
    std::vector<double> predictAll(const Matrix &x) const;

    /** Human-readable structure dump. */
    virtual std::string describe() const = 0;

    /** Number of fitted parameters (model complexity). */
    virtual size_t numParameters() const = 0;

    /** Technique of this model. */
    virtual ModelType type() const = 0;
};

/** Append a leading all-ones intercept column to @p x. */
Matrix withIntercept(const Matrix &x);

} // namespace chaos

#endif // CHAOS_MODELS_MODEL_HPP
