/**
 * @file
 * L1-regularized linear regression (LASSO) by cyclic coordinate
 * descent — step 3 of the paper's Algorithm 1, used to discard
 * irrelevant counters in the high-dimensional screening stage.
 */
#ifndef CHAOS_MODELS_LASSO_HPP
#define CHAOS_MODELS_LASSO_HPP

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace chaos {

/** Result of one LASSO fit at a fixed lambda. */
struct LassoFit
{
    double intercept = 0.0;             ///< On the original scale.
    std::vector<double> coefficients;   ///< On the original scale.
    double lambda = 0.0;                ///< Penalty used.
    size_t iterations = 0;              ///< CD sweeps to converge.

    /** Indices of features with non-zero coefficients. */
    std::vector<size_t> support(double tol = 1e-10) const;
};

/** Cyclic coordinate-descent LASSO solver. */
class LassoSolver
{
  public:
    /** @param maxSweeps CD sweep cap. @param tol Convergence tol. */
    explicit LassoSolver(size_t maxSweeps = 1000, double tol = 1e-7)
        : maxSweeps(maxSweeps), tol(tol)
    {}

    /**
     * Solve min 1/(2n) ||y - b0 - X b||^2 + lambda ||b||_1 with
     * features standardized internally (coefficients are returned on
     * the original scale; constant columns get zero coefficients).
     */
    LassoFit fit(const Matrix &x, const std::vector<double> &y,
                 double lambda) const;

    /**
     * Smallest lambda that drives every coefficient to zero; the
     * natural top of a regularization path.
     */
    double lambdaMax(const Matrix &x, const std::vector<double> &y) const;

    /**
     * Walk a geometric lambda path downward from lambdaMax and
     * return the first fit whose support size is at most
     * @p maxSupport (the paper targets on the order of 10 features),
     * preferring the densest such fit. If even the smallest lambda
     * stays under the cap, that fit is returned.
     *
     * @param pathLength Number of lambda values on the path.
     * @param minRatio Smallest lambda as a fraction of lambdaMax.
     */
    LassoFit fitWithTargetSupport(const Matrix &x,
                                  const std::vector<double> &y,
                                  size_t maxSupport,
                                  size_t pathLength = 40,
                                  double minRatio = 1e-3) const;

  private:
    size_t maxSweeps;
    double tol;
};

} // namespace chaos

#endif // CHAOS_MODELS_LASSO_HPP
