/**
 * @file
 * Frequency-switching power model (paper Eq. 4): a separate linear
 * model per CPU frequency state, selected by an indicator on the
 * frequency feature. Unlike MARS knots, the indicator partitions the
 * whole feature space, so the model may be discontinuous at
 * frequency transitions.
 */
#ifndef CHAOS_MODELS_SWITCHING_HPP
#define CHAOS_MODELS_SWITCHING_HPP

#include "models/linear.hpp"
#include <iosfwd>

#include "models/compiled.hpp"
#include "models/model.hpp"

namespace chaos {

/** Configuration for the switching model. */
struct SwitchingConfig
{
    /**
     * Column index of the frequency feature used as the indicator
     * I(f). The caller locates "Processor_0 Frequency" in its
     * feature set.
     */
    size_t frequencyFeature = 0;
    /**
     * Minimum training rows a frequency state needs for its own
     * linear model; sparser states fall back to the global model.
     */
    size_t minRowsPerState = 30;
    /**
     * Frequencies closer than this (MHz) are treated as one state
     * (absorbs measurement jitter around P-states).
     */
    double stateMergeTolerance = 10.0;
};

/** Per-frequency-state set of linear models. */
class SwitchingModel : public PowerModel
{
  public:
    /** @param config Indicator feature and state handling knobs. */
    explicit SwitchingModel(SwitchingConfig config);

    void fit(const Matrix &x, const std::vector<double> &y) override;
    double predict(const std::vector<double> &row) const override;
    size_t inputWidth() const override { return fallback.inputWidth(); }
    void predictBatch(const double *rows, size_t n, size_t stride,
                      double *out) const override;
    std::string describe() const override;
    size_t numParameters() const override;
    ModelType type() const override { return ModelType::Switching; }

    /** Number of distinct frequency states discovered in training. */
    size_t numStates() const { return states.size(); }

    /** The indicator/state-handling knobs (for lowering). */
    const SwitchingConfig &configuration() const { return cfg; }

    /** State center frequencies (for lowering). */
    const std::vector<double> &stateFrequencies() const
    {
        return states;
    }

    /** True when state @p s earned its own regression. */
    bool stateHasOwnModel(size_t s) const { return hasOwnModel[s]; }

    /** State @p s's own linear model (only when stateHasOwnModel). */
    const LinearModel &stateModel(size_t s) const { return perState[s]; }

    /** The global fallback linear model. */
    const LinearModel &fallbackModel() const { return fallback; }

    /** Write fitted state as text (see models/serialize.hpp). */
    void save(std::ostream &out) const;

    /** Read fitted state written by save(). */
    static SwitchingModel load(std::istream &in);

  private:
    /** Index of the state whose frequency is nearest to @p freq. */
    size_t nearestState(double freq) const;

    /** Rebuild the compiled plan after fit()/load(). */
    void rebuildPlan();

    SwitchingConfig cfg;
    std::vector<double> states;         ///< State center frequencies.
    std::vector<LinearModel> perState;  ///< Model per state.
    std::vector<bool> hasOwnModel;      ///< False -> fallback used.
    LinearModel fallback;               ///< Global model.
    CompiledPredictor plan;             ///< Flat batch plan.
};

} // namespace chaos

#endif // CHAOS_MODELS_SWITCHING_HPP
