#include "models/lasso.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace chaos {

std::vector<size_t>
LassoFit::support(double tol) const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < coefficients.size(); ++i) {
        if (std::fabs(coefficients[i]) > tol)
            out.push_back(i);
    }
    return out;
}

namespace {

/** Column means and standard deviations of @p x. */
void
columnMoments(const Matrix &x, std::vector<double> &mu,
              std::vector<double> &sigma)
{
    const size_t n = x.rows();
    const size_t p = x.cols();
    mu.assign(p, 0.0);
    sigma.assign(p, 0.0);
    for (size_t r = 0; r < n; ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < p; ++c)
            mu[c] += row[c];
    }
    for (double &m : mu)
        m /= static_cast<double>(n);
    for (size_t r = 0; r < n; ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < p; ++c) {
            const double d = row[c] - mu[c];
            sigma[c] += d * d;
        }
    }
    for (double &s : sigma)
        s = std::sqrt(s / static_cast<double>(n));
}

/** Standardized copy of @p x; constant columns become all-zero. */
Matrix
standardize(const Matrix &x, const std::vector<double> &mu,
            const std::vector<double> &sigma)
{
    Matrix z(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        const double *src = x.rowPtr(r);
        double *dst = z.rowPtr(r);
        for (size_t c = 0; c < x.cols(); ++c) {
            dst[c] = sigma[c] > 1e-12 ? (src[c] - mu[c]) / sigma[c]
                                      : 0.0;
        }
    }
    return z;
}

inline double
softThreshold(double value, double threshold)
{
    if (value > threshold)
        return value - threshold;
    if (value < -threshold)
        return value + threshold;
    return 0.0;
}

} // namespace

LassoFit
LassoSolver::fit(const Matrix &x, const std::vector<double> &y,
                 double lambda) const
{
    panicIf(x.rows() != y.size(), "LassoSolver::fit shape mismatch");
    panicIf(lambda < 0.0, "LassoSolver::fit negative lambda");
    const size_t n = x.rows();
    const size_t p = x.cols();
    panicIf(n == 0 || p == 0, "LassoSolver::fit empty problem");

    std::vector<double> mu, sigma;
    columnMoments(x, mu, sigma);
    const Matrix z = standardize(x, mu, sigma);

    double y_mean = 0.0;
    for (double v : y)
        y_mean += v;
    y_mean /= static_cast<double>(n);

    // Residual starts as centered y; beta at zero.
    std::vector<double> beta(p, 0.0);
    std::vector<double> residual(n);
    for (size_t i = 0; i < n; ++i)
        residual[i] = y[i] - y_mean;

    // With standardized columns, each column's 1/n * z_c'z_c == 1,
    // so the coordinate update is a soft-threshold of the column-
    // residual correlation.
    LassoFit result;
    result.lambda = lambda;
    const double inv_n = 1.0 / static_cast<double>(n);

    for (size_t sweep = 0; sweep < maxSweeps; ++sweep) {
        double max_delta = 0.0;
        for (size_t c = 0; c < p; ++c) {
            if (sigma[c] <= 1e-12)
                continue;  // Constant column stays at zero.
            double rho = 0.0;
            for (size_t i = 0; i < n; ++i)
                rho += z(i, c) * residual[i];
            rho = rho * inv_n + beta[c];

            const double updated = softThreshold(rho, lambda);
            const double delta = updated - beta[c];
            if (delta != 0.0) {
                for (size_t i = 0; i < n; ++i)
                    residual[i] -= delta * z(i, c);
                beta[c] = updated;
                max_delta = std::max(max_delta, std::fabs(delta));
            }
        }
        result.iterations = sweep + 1;
        if (max_delta < tol)
            break;
    }

    // Back-transform to the original scale.
    result.coefficients.assign(p, 0.0);
    double intercept = y_mean;
    for (size_t c = 0; c < p; ++c) {
        if (sigma[c] > 1e-12) {
            result.coefficients[c] = beta[c] / sigma[c];
            intercept -= result.coefficients[c] * mu[c];
        }
    }
    result.intercept = intercept;
    return result;
}

double
LassoSolver::lambdaMax(const Matrix &x, const std::vector<double> &y) const
{
    const size_t n = x.rows();
    const size_t p = x.cols();
    panicIf(n == 0 || p == 0, "lambdaMax on empty problem");

    std::vector<double> mu, sigma;
    columnMoments(x, mu, sigma);

    double y_mean = 0.0;
    for (double v : y)
        y_mean += v;
    y_mean /= static_cast<double>(n);

    double best = 0.0;
    for (size_t c = 0; c < p; ++c) {
        if (sigma[c] <= 1e-12)
            continue;
        double rho = 0.0;
        for (size_t i = 0; i < n; ++i)
            rho += (x(i, c) - mu[c]) / sigma[c] * (y[i] - y_mean);
        best = std::max(best, std::fabs(rho) /
                                  static_cast<double>(n));
    }
    return best;
}

LassoFit
LassoSolver::fitWithTargetSupport(const Matrix &x,
                                  const std::vector<double> &y,
                                  size_t maxSupport, size_t pathLength,
                                  double minRatio) const
{
    panicIf(maxSupport == 0, "fitWithTargetSupport: zero support");
    const double top = lambdaMax(x, y);
    if (top <= 0.0)
        return fit(x, y, 0.0);

    const double log_top = std::log(top);
    const double log_bottom = std::log(top * minRatio);
    LassoFit last;
    bool have_fit = false;

    for (size_t k = 0; k < pathLength; ++k) {
        const double frac = pathLength > 1
                                ? static_cast<double>(k) /
                                      static_cast<double>(pathLength - 1)
                                : 0.0;
        const double lambda =
            std::exp(log_top + frac * (log_bottom - log_top));
        LassoFit current = fit(x, y, lambda);
        if (current.support().size() > maxSupport) {
            // Path went one step too dense: return the last fit that
            // respected the cap (or this one if none did).
            return have_fit ? last : current;
        }
        last = std::move(current);
        have_fit = true;
    }
    return last;
}

} // namespace chaos
