/**
 * @file
 * Aligned ASCII table printer used by the benchmark harnesses to
 * regenerate the paper's tables and figure series.
 */
#ifndef CHAOS_UTIL_TABLE_HPP
#define CHAOS_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace chaos {

/**
 * Column-aligned text table builder.
 *
 * Usage:
 * @code
 *   TextTable t({"Workload", "DRE"});
 *   t.addRow({"Sort", "10.2%"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** @param header Column titles; fixes the column count. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator rule. */
    void addRule();

    /** Render the table with padded columns and a header rule. */
    std::string render() const;

    /** Number of data rows added so far (rules excluded). */
    size_t rowCount() const { return numDataRows; }

  private:
    std::vector<std::string> header;
    // Rows; an empty vector encodes a separator rule.
    std::vector<std::vector<std::string>> rows;
    size_t numDataRows = 0;
};

/**
 * Render a simple horizontal bar chart line, e.g. for DRE-per-model
 * "figures": a label, a bar scaled to @p value / @p maxValue, and the
 * formatted value.
 */
std::string barLine(const std::string &label, double value,
                    double maxValue, int width,
                    const std::string &valueText);

} // namespace chaos

#endif // CHAOS_UTIL_TABLE_HPP
