#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace chaos {

namespace {

thread_local bool tl_in_parallel = false;

/**
 * Pool metrics are Scheduling-class: they describe how work was
 * executed (queue depth, chunk claiming, pool size), all of which
 * legitimately vary with CHAOS_THREADS, so they are excluded from the
 * deterministic registry snapshot. References are cached once —
 * registry entries are never removed.
 */
struct PoolMetrics {
    obs::Counter &jobsPosted;
    obs::Counter &inlineLoops;
    obs::Counter &chunksExecuted;
    obs::Gauge &queueDepth;
    obs::Gauge &threads;

    static PoolMetrics &
    get()
    {
        static PoolMetrics m{
            obs::Registry::instance().counter("chaos.parallel.jobs_posted",
                                              obs::Stability::Scheduling),
            obs::Registry::instance().counter("chaos.parallel.inline_loops",
                                              obs::Stability::Scheduling),
            obs::Registry::instance().counter(
                "chaos.parallel.chunks_executed",
                obs::Stability::Scheduling),
            obs::Registry::instance().gauge("chaos.parallel.queue_depth",
                                            obs::Stability::Scheduling),
            obs::Registry::instance().gauge("chaos.parallel.threads",
                                            obs::Stability::Scheduling),
        };
        return m;
    }
};

size_t
resolveThreadCount()
{
    if (const char *env = std::getenv("CHAOS_THREADS")) {
        char *end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || value < 1 || value > 256) {
            warn("CHAOS_THREADS=" + std::string(env) +
                 " is not in [1, 256]; ignoring");
        } else {
            return static_cast<size_t>(value);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<size_t>(hw) : 1;
}

/**
 * One parallelFor() invocation: the index range is cut into chunks
 * claimed dynamically by participating threads. Each chunk records
 * its own exception slot so the rethrow choice is deterministic.
 */
struct Job
{
    const std::function<void(size_t)> *body = nullptr;
    size_t n = 0;
    size_t chunkSize = 1;
    size_t numChunks = 0;
    std::atomic<size_t> nextChunk{0};
    std::atomic<size_t> remainingChunks{0};
    std::vector<std::exception_ptr> errors;

    std::mutex mutex;
    std::condition_variable finished;

    /** Claim and run chunks until none are left. */
    void
    participate()
    {
        const bool was_in_parallel = tl_in_parallel;
        tl_in_parallel = true;
        for (;;) {
            const size_t chunk = nextChunk.fetch_add(1);
            if (chunk >= numChunks)
                break;
            PoolMetrics::get().chunksExecuted.add();
            const size_t begin = chunk * chunkSize;
            const size_t end = std::min(n, begin + chunkSize);
            try {
                for (size_t i = begin; i < end; ++i)
                    (*body)(i);
            } catch (...) {
                errors[chunk] = std::current_exception();
            }
            if (remainingChunks.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(mutex);
                finished.notify_all();
            }
        }
        tl_in_parallel = was_in_parallel;
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        finished.wait(lock,
                      [this] { return remainingChunks.load() == 0; });
    }
};

/** Fixed-size worker pool; jobs are broadcast to all workers. */
class ThreadPool
{
  public:
    explicit ThreadPool(size_t numWorkers)
    {
        workers.reserve(numWorkers);
        for (size_t i = 0; i < numWorkers; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wake.notify_all();
        for (auto &worker : workers)
            worker.join();
    }

    void
    post(const std::shared_ptr<Job> &job)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            for (size_t i = 0; i < workers.size(); ++i)
                queue.push_back(job);
            PoolMetrics::get().queueDepth.set(
                static_cast<std::int64_t>(queue.size()));
        }
        wake.notify_all();
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lock(mutex);
                wake.wait(lock, [this] {
                    return stopping || !queue.empty();
                });
                if (stopping)
                    return;
                job = std::move(queue.front());
                queue.pop_front();
                PoolMetrics::get().queueDepth.set(
                    static_cast<std::int64_t>(queue.size()));
            }
            job->participate();
        }
    }

    std::vector<std::thread> workers;
    std::deque<std::shared_ptr<Job>> queue;
    std::mutex mutex;
    std::condition_variable wake;
    bool stopping = false;
};

/** Pool state guarded by a mutex; the pool itself is lazily built. */
struct PoolState
{
    std::mutex mutex;
    size_t configured = 0;  // 0 = not yet resolved.
    std::unique_ptr<ThreadPool> pool;
};

PoolState &
poolState()
{
    static PoolState state;
    return state;
}

/** Resolve the count and (re)build the pool if needed. */
size_t
ensurePool()
{
    PoolState &state = poolState();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.configured == 0)
        state.configured = resolveThreadCount();
    if (state.configured > 1 && !state.pool) {
        // The caller participates too, so one fewer worker thread.
        state.pool =
            std::make_unique<ThreadPool>(state.configured - 1);
    }
    PoolMetrics::get().threads.set(
        static_cast<std::int64_t>(state.configured));
    return state.configured;
}

} // namespace

size_t
globalThreadCount()
{
    return ensurePool();
}

void
setGlobalThreadCount(size_t count)
{
    panicIf(inParallelRegion(),
            "setGlobalThreadCount inside a parallel region");
    panicIf(count > 256, "setGlobalThreadCount: count > 256");
    PoolState &state = poolState();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (count != 0 && count == state.configured)
        return;
    state.pool.reset();
    state.configured = count;
}

bool
inParallelRegion()
{
    return tl_in_parallel;
}

void
parallelFor(size_t n, const std::function<void(size_t)> &body)
{
    if (n == 0)
        return;
    const size_t threads = globalThreadCount();
    if (threads <= 1 || n <= 1 || tl_in_parallel) {
        // Serial path: identical arithmetic, no pool involvement.
        PoolMetrics::get().inlineLoops.add();
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    PoolMetrics::get().jobsPosted.add();

    auto job = std::make_shared<Job>();
    job->body = &body;
    job->n = n;
    // Small chunks balance uneven task costs; the floor of one index
    // per chunk keeps tiny loops (e.g. 5 folds) fully spread out.
    job->chunkSize = std::max<size_t>(1, n / (threads * 8));
    job->numChunks = (n + job->chunkSize - 1) / job->chunkSize;
    job->remainingChunks.store(job->numChunks);
    job->errors.resize(job->numChunks);

    {
        PoolState &state = poolState();
        std::lock_guard<std::mutex> lock(state.mutex);
        panicIf(!state.pool, "parallelFor: pool vanished");
        state.pool->post(job);
    }
    job->participate();
    job->wait();

    // Deterministic failure: rethrow the lowest-index exception.
    for (auto &error : job->errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

} // namespace chaos
