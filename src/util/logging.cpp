#include "util/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace chaos {

namespace {
bool quietMode = false;
} // namespace

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (!quietMode)
        std::cerr << "warn: " << msg << std::endl;
}

void
inform(const std::string &msg)
{
    if (!quietMode)
        std::cerr << "info: " << msg << std::endl;
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace chaos
