#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace chaos {

namespace {

std::atomic<int> minLevel{static_cast<int>(LogLevel::Info)};

std::mutex sinkMu;      // Serializes sink replacement and every emission.
LogSink customSink;     // Guarded by sinkMu; empty = default stderr sink.

/// Format and deliver one line. The level gate has already passed.
void
deliver(LogLevel level, const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(sinkMu);
    if (customSink) {
        customSink(level, line);
    } else {
        // One write per message so parallel warnings never interleave.
        std::fwrite(line.data(), 1, line.size(), stderr);
        std::fflush(stderr);
    }
}

bool
enabled(LogLevel level)
{
    return static_cast<int>(level) >= minLevel.load(std::memory_order_relaxed);
}

} // namespace

void
panic(const std::string &msg)
{
    // Write straight to stderr first: the process is about to abort
    // and a custom sink may be buffering.
    std::string line = "panic: " + msg + "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::string line = "fatal: " + msg + "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (enabled(LogLevel::Warn))
        deliver(LogLevel::Warn, "warn: ", msg);
}

void
inform(const std::string &msg)
{
    if (enabled(LogLevel::Info))
        deliver(LogLevel::Info, "info: ", msg);
}

void
setQuiet(bool quiet)
{
    setLogLevel(quiet ? LogLevel::Error : LogLevel::Info);
}

void
setLogLevel(LogLevel level)
{
    minLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(minLevel.load(std::memory_order_relaxed));
}

bool
logLevelFromName(const std::string &name, LogLevel &out)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower == "debug") out = LogLevel::Debug;
    else if (lower == "info") out = LogLevel::Info;
    else if (lower == "warn" || lower == "warning") out = LogLevel::Warn;
    else if (lower == "error") out = LogLevel::Error;
    else if (lower == "silent" || lower == "quiet") out = LogLevel::Silent;
    else return false;
    return true;
}

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMu);
    LogSink previous = std::move(customSink);
    customSink = std::move(sink);
    return previous;
}

} // namespace chaos
