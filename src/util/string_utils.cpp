#include "util/string_utils.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace chaos {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : text) {
        if (c == sep) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatDouble(fraction * 100.0, decimals) + "%";
}

} // namespace chaos
