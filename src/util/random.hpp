/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (machine-to-machine power
 * variation, counter observation noise, the nondeterministic task
 * scheduler, meter error) draws from an explicitly seeded Rng so that
 * runs are reproducible bit-for-bit. The generator is xoshiro256**,
 * seeded through SplitMix64 as its authors recommend.
 */
#ifndef CHAOS_UTIL_RANDOM_HPP
#define CHAOS_UTIL_RANDOM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chaos {

/**
 * SplitMix64 stream; used to expand a single 64-bit seed into the
 * state of larger generators and to derive independent child seeds.
 */
class SplitMix64
{
  public:
    /** @param seed Initial state; any value is acceptable. */
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** Next 64-bit value in the stream. */
    uint64_t next();

  private:
    uint64_t state;
};

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Not cryptographic; statistical quality is more than sufficient for
 * simulation noise and scheduler tie-breaking.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); @p n must be positive. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Normal deviate clamped to [mean - limit*stddev, mean +
     * limit*stddev]; used for bounded physical variation such as the
     * +/-10% machine-to-machine power spread.
     */
    double clampedNormal(double mean, double stddev, double limit);

    /** Exponential deviate with the given rate (rate > 0). */
    double exponential(double rate);

    /** True with probability @p p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /**
     * Derive an independent child generator; the (seed, tag) pair
     * determines the child stream, so components can own private
     * streams without coupling their consumption order.
     */
    Rng fork(uint64_t tag);

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<size_t> &items);

  private:
    uint64_t s[4];
    double cachedNormal;
    bool hasCachedNormal;
};

} // namespace chaos

#endif // CHAOS_UTIL_RANDOM_HPP
