/**
 * @file
 * Small string helpers shared across the library.
 */
#ifndef CHAOS_UTIL_STRING_UTILS_HPP
#define CHAOS_UTIL_STRING_UTILS_HPP

#include <string>
#include <vector>

namespace chaos {

/** Split @p text on @p sep; adjacent separators yield empty fields. */
std::vector<std::string> split(const std::string &text, char sep);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &text);

/** True if @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Lower-case ASCII copy of @p text. */
std::string toLower(const std::string &text);

/** printf-style double formatting with fixed decimals. */
std::string formatDouble(double value, int decimals);

/** Format a fraction (0.123 -> "12.3%") with the given decimals. */
std::string formatPercent(double fraction, int decimals);

} // namespace chaos

#endif // CHAOS_UTIL_STRING_UTILS_HPP
