#include "util/random.hpp"

#include <cmath>
#include <numbers>

#include "util/logging.hpp"

namespace chaos {

uint64_t
SplitMix64::next()
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed) : cachedNormal(0.0), hasCachedNormal(false)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return (nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    panicIf(n == 0, "uniformInt() requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = nextU64();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    // Box-Muller; u1 is kept away from 0 so log() is finite.
    double u1 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cachedNormal = radius * std::sin(angle);
    hasCachedNormal = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::clampedNormal(double mean, double stddev, double limit)
{
    const double raw = normal();
    const double clamped = std::max(-limit, std::min(limit, raw));
    return mean + stddev * clamped;
}

double
Rng::exponential(double rate)
{
    panicIf(rate <= 0.0, "exponential() requires rate > 0");
    double u = uniform();
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(uint64_t tag)
{
    // Mix the tag through SplitMix so fork(0) and fork(1) diverge.
    SplitMix64 sm(nextU64() ^ (tag * 0xd1342543de82ef95ULL + 1));
    return Rng(sm.next());
}

void
Rng::shuffle(std::vector<size_t> &items)
{
    for (size_t i = items.size(); i > 1; --i) {
        const size_t j = uniformInt(i);
        std::swap(items[i - 1], items[j]);
    }
}

} // namespace chaos
