/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for unrecoverable user
 * errors (bad configuration, invalid arguments), warn() and inform()
 * are advisory and never stop execution.
 *
 * Advisory output goes through a pluggable, mutex-serialized sink:
 * each message is formatted into a single string and handed to the
 * sink in one call, so warnings emitted from inside parallel regions
 * never interleave. The verbosity gate is a lock-free atomic level
 * check, making warn()/inform() safe and cheap to call from any
 * thread. panic() and fatal() write directly to stderr (in addition
 * to the sink) because they terminate the process.
 */
#ifndef CHAOS_UTIL_LOGGING_HPP
#define CHAOS_UTIL_LOGGING_HPP

#include <functional>
#include <sstream>
#include <string>

namespace chaos {

/** Verbosity levels, most to least chatty. */
enum class LogLevel {
    Debug = 0, ///< Reserved for ad-hoc debugging output.
    Info,      ///< inform() messages and up (the default).
    Warn,      ///< warn() messages and up.
    Error,     ///< Only fatal()/panic() reporting.
    Silent,    ///< Nothing, not even error reporting through the sink.
};

/**
 * Destination for formatted log lines. Receives the severity and the
 * complete, newline-terminated message (e.g. "warn: short read\n").
 * Called with an internal mutex held: keep sinks fast and never log
 * from inside one.
 */
using LogSink = std::function<void(LogLevel, const std::string &line)>;

/**
 * Abort with a message; something happened that should never happen
 * regardless of what the user does (an internal bug). Calls
 * std::abort(), which may dump core.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error code; the run cannot continue due to a condition
 * that is the caller's fault (bad configuration, invalid arguments).
 * Calls std::exit(1). Only for use at the CLI boundary — library code
 * reachable with user data raises RecoverableError instead (see
 * util/result.hpp).
 *
 * @param msg Description of the user-facing error.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Print a warning about suspicious but non-fatal behaviour.
 * Execution continues. Thread-safe; the message is delivered to the
 * sink as one atomic write.
 */
void warn(const std::string &msg);

/** Print an informative status message. Thread-safe. */
void inform(const std::string &msg);

/**
 * Enable or disable inform()/warn() output (useful to silence tests).
 * Equivalent to setLogLevel(LogLevel::Error) / setLogLevel(LogLevel::Info).
 *
 * @param quiet True suppresses advisory output; errors always print.
 */
void setQuiet(bool quiet);

/** Set the minimum severity that reaches the sink. */
void setLogLevel(LogLevel level);

/** @return The current minimum severity. */
LogLevel logLevel();

/**
 * Parse a level name ("debug", "info", "warn", "error", "silent",
 * case-insensitive).
 *
 * @param name Level name to parse.
 * @param out  Receives the parsed level on success.
 * @return True when @p name named a level.
 */
bool logLevelFromName(const std::string &name, LogLevel &out);

/**
 * Replace the log sink. Passing nullptr restores the default sink
 * (a single unbuffered write to stderr per message). The previous
 * sink is returned so callers can scope a capture and restore it.
 */
LogSink setLogSink(LogSink sink);

/**
 * Check an internal invariant; calls panic() with @p msg on failure.
 *
 * Unlike assert(), this is active in all build types: the modeling
 * pipeline relies on these checks to catch dimension mismatches.
 */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/** Check a user-facing precondition; calls fatal() on failure. */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace chaos

#endif // CHAOS_UTIL_LOGGING_HPP
