/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for unrecoverable user
 * errors (bad configuration, invalid arguments), warn() and inform()
 * are advisory and never stop execution.
 */
#ifndef CHAOS_UTIL_LOGGING_HPP
#define CHAOS_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace chaos {

/**
 * Abort with a message; something happened that should never happen
 * regardless of what the user does (an internal bug). Calls
 * std::abort(), which may dump core.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error code; the run cannot continue due to a condition
 * that is the caller's fault (bad configuration, invalid arguments).
 * Calls std::exit(1).
 *
 * @param msg Description of the user-facing error.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Print a warning about suspicious but non-fatal behaviour.
 * Execution continues.
 */
void warn(const std::string &msg);

/** Print an informative status message. */
void inform(const std::string &msg);

/**
 * Enable or disable inform()/warn() output (useful to silence tests).
 *
 * @param quiet True suppresses advisory output; errors always print.
 */
void setQuiet(bool quiet);

/**
 * Check an internal invariant; calls panic() with @p msg on failure.
 *
 * Unlike assert(), this is active in all build types: the modeling
 * pipeline relies on these checks to catch dimension mismatches.
 */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/** Check a user-facing precondition; calls fatal() on failure. */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace chaos

#endif // CHAOS_UTIL_LOGGING_HPP
