#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace chaos {

TextTable::TextTable(std::vector<std::string> header_)
    : header(std::move(header_))
{
    panicIf(header.empty(), "TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    panicIf(row.size() != header.size(),
            "TextTable row width does not match header");
    rows.push_back(std::move(row));
    ++numDataRows;
}

void
TextTable::addRule()
{
    rows.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header.size());
    for (size_t i = 0; i < header.size(); ++i)
        widths[i] = header[i].size();
    for (const auto &row : rows) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto renderRule = [&widths]() {
        std::string line;
        for (size_t w : widths)
            line += "+" + std::string(w + 2, '-');
        line += "+\n";
        return line;
    };
    auto renderRow = [&widths](const std::vector<std::string> &row) {
        std::string line;
        for (size_t i = 0; i < row.size(); ++i) {
            line += "| " + row[i] +
                    std::string(widths[i] - row[i].size() + 1, ' ');
        }
        line += "|\n";
        return line;
    };

    std::string out = renderRule();
    out += renderRow(header);
    out += renderRule();
    for (const auto &row : rows)
        out += row.empty() ? renderRule() : renderRow(row);
    out += renderRule();
    return out;
}

std::string
barLine(const std::string &label, double value, double maxValue,
        int width, const std::string &valueText)
{
    const double safe_max = maxValue > 0.0 ? maxValue : 1.0;
    const double clamped = std::clamp(value / safe_max, 0.0, 1.0);
    const int filled = static_cast<int>(clamped * width + 0.5);

    std::ostringstream out;
    out << label << " |" << std::string(filled, '#')
        << std::string(width - filled, ' ') << "| " << valueText;
    return out.str();
}

} // namespace chaos
