/**
 * @file
 * Deterministic data parallelism for the training pipeline.
 *
 * A small fixed-size thread pool drives parallelFor()/parallelMap()
 * over index ranges. The contract is built for reproducibility:
 *
 *  - Results are ordered by index, never by completion time. Every
 *    task i writes only slot i, and reductions over the results run
 *    serially in the caller, so the arithmetic (including floating
 *    point) is bit-identical for any thread count.
 *  - Exceptions thrown by tasks propagate to the caller; when several
 *    tasks throw, the exception of the lowest index is rethrown so
 *    the observed failure is deterministic too.
 *  - Nested parallelism is guarded: a parallelFor() issued from
 *    inside a worker task runs inline on that worker, serially. Outer
 *    loops therefore own the pool and inner loops degrade gracefully.
 *
 * The pool size comes from, in priority order: setGlobalThreadCount(),
 * the CHAOS_THREADS environment variable, then the hardware
 * concurrency. A count of 1 bypasses the pool entirely (no worker
 * threads are created, tasks run inline), giving exact serial
 * behavior.
 */
#ifndef CHAOS_UTIL_PARALLEL_HPP
#define CHAOS_UTIL_PARALLEL_HPP

#include <cstddef>
#include <functional>
#include <vector>

namespace chaos {

/**
 * Number of threads parallelFor() will use. Resolved on first use
 * from CHAOS_THREADS (clamped to [1, 256]) or hardware concurrency.
 */
size_t globalThreadCount();

/**
 * Override the thread count (0 = re-resolve from the environment on
 * next use). Recreates the pool; must not be called concurrently
 * with running parallel loops. Intended for benchmarks and tests.
 */
void setGlobalThreadCount(size_t count);

/** True while the calling thread is executing a parallel task. */
bool inParallelRegion();

/**
 * Run body(i) for every i in [0, n). Blocks until all iterations
 * finish. Iterations must be independent; each may write only to its
 * own output slot. Runs inline (serially, in index order) when the
 * pool has one thread, when n <= 1, or when called from inside
 * another parallel region.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &body);

/**
 * Map f over [0, n) into a vector with deterministic ordering:
 * result[i] = f(i). T must be default-constructible.
 */
template <typename T, typename F>
std::vector<T>
parallelMap(size_t n, F &&f)
{
    std::vector<T> out(n);
    parallelFor(n, [&](size_t i) { out[i] = f(i); });
    return out;
}

} // namespace chaos

#endif // CHAOS_UTIL_PARALLEL_HPP
