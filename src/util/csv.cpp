#include "util/csv.hpp"

#include <cstdlib>
#include <fstream>

#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace chaos {

size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return i;
    }
    fatal("CSV column not found: " + name);
}

std::vector<double>
CsvTable::column(const std::string &name) const
{
    const size_t idx = columnIndex(name);
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto &row : rows)
        out.push_back(row[idx]);
    return out;
}

void
writeCsv(const std::string &path, const CsvTable &table)
{
    std::ofstream file(path);
    fatalIf(!file, "cannot open CSV for writing: " + path);
    file << join(table.header, ",") << "\n";
    for (const auto &row : table.rows) {
        panicIf(row.size() != table.header.size(),
                "CSV row width does not match header");
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                file << ',';
            file << row[i];
        }
        file << "\n";
    }
    fatalIf(!file.good(), "I/O error while writing CSV: " + path);
}

CsvTable
readCsv(const std::string &path)
{
    std::ifstream file(path);
    fatalIf(!file, "cannot open CSV for reading: " + path);

    CsvTable table;
    std::string line;
    fatalIf(!std::getline(file, line), "empty CSV file: " + path);
    table.header = split(trim(line), ',');

    while (std::getline(file, line)) {
        line = trim(line);
        if (line.empty())
            continue;
        const auto fields = split(line, ',');
        fatalIf(fields.size() != table.header.size(),
                "CSV row width mismatch in " + path);
        std::vector<double> row;
        row.reserve(fields.size());
        for (const auto &field : fields) {
            char *end = nullptr;
            const double value = std::strtod(field.c_str(), &end);
            fatalIf(end == field.c_str(),
                    "non-numeric CSV field '" + field + "' in " + path);
            row.push_back(value);
        }
        table.rows.push_back(std::move(row));
    }
    return table;
}

} // namespace chaos
