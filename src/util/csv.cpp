#include "util/csv.hpp"

#include <cstdlib>
#include <fstream>

#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace chaos {

namespace {

/** "path:line" prefix for parse diagnostics. */
std::string
at(const std::string &path, size_t line)
{
    return path + ":" + std::to_string(line);
}

} // namespace

size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return i;
    }
    raise("CSV column not found: " + name);
}

std::vector<double>
CsvTable::column(const std::string &name) const
{
    const size_t idx = columnIndex(name);
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto &row : rows)
        out.push_back(row[idx]);
    return out;
}

size_t
CsvTable::lineOfRow(size_t row) const
{
    if (row < rowLines.size())
        return rowLines[row];
    return row + 2;  // Header is line 1; assume no blank lines.
}

void
writeCsv(const std::string &path, const CsvTable &table)
{
    std::ofstream file(path);
    raiseIf(!file, "cannot open CSV for writing: " + path);
    file << join(table.header, ",") << "\n";
    for (const auto &row : table.rows) {
        panicIf(row.size() != table.header.size(),
                "CSV row width does not match header");
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                file << ',';
            file << row[i];
        }
        file << "\n";
    }
    raiseIf(!file.good(), "I/O error while writing CSV: " + path);
}

CsvTable
readCsv(const std::string &path)
{
    std::ifstream file(path);
    raiseIf(!file, "cannot open CSV for reading: " + path);

    CsvTable table;
    std::string line;
    raiseIf(!std::getline(file, line), "empty CSV file: " + path);
    table.header = split(trim(line), ',');

    size_t lineNo = 1;
    while (std::getline(file, line)) {
        ++lineNo;
        line = trim(line);
        if (line.empty())
            continue;
        const auto fields = split(line, ',');
        raiseIf(fields.size() != table.header.size(),
                at(path, lineNo) + ": CSV row has " +
                    std::to_string(fields.size()) + " fields, header has " +
                    std::to_string(table.header.size()));
        std::vector<double> row;
        row.reserve(fields.size());
        for (const auto &field : fields) {
            char *end = nullptr;
            const double value = std::strtod(field.c_str(), &end);
            // The whole field must parse: a partial parse ("0.3xyz")
            // is corruption, not a number.
            raiseIf(end != field.c_str() + field.size(),
                    at(path, lineNo) + ": non-numeric CSV field '" +
                        field + "'");
            row.push_back(value);
        }
        table.rows.push_back(std::move(row));
        table.rowLines.push_back(lineNo);
    }
    return table;
}

Result<CsvTable>
tryReadCsv(const std::string &path)
{
    return tryInvoke([&] { return readCsv(path); });
}

} // namespace chaos
