/**
 * @file
 * Recoverable error handling for library-level user-data failures.
 *
 * The logging conventions (see logging.hpp) reserve panic() for
 * internal bugs and fatal() for unrecoverable configuration errors.
 * Both stop the process, which is acceptable in a CLI tool but not in
 * a library embedded in a long-running service: a corrupt model file
 * or truncated dataset uploaded by one client must not take down the
 * whole estimator fleet.
 *
 * Malformed *user data* (files, counter names, serialized models)
 * therefore raises a RecoverableError instead. Code that wants
 * value-style error handling wraps the throwing entry points with
 * tryInvoke() / the try*() wrappers, which produce a Result<T>. The
 * process-exit behaviour of fatal() is retained only at the CLI
 * boundary (src/cli, tools/main.cpp), which catches RecoverableError
 * and turns it into an error message plus a nonzero exit code.
 */
#ifndef CHAOS_UTIL_RESULT_HPP
#define CHAOS_UTIL_RESULT_HPP

#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "util/logging.hpp"

namespace chaos {

/**
 * Error raised on malformed user data (bad file, unknown name,
 * truncated stream). Catchable; carries a human-readable message that
 * cites the offending input where known (file, line).
 */
class RecoverableError : public std::runtime_error
{
  public:
    /** @param msg Description of what was malformed, and where. */
    explicit RecoverableError(const std::string &msg)
        : std::runtime_error(msg)
    {}

    /** The error message (same as what()). */
    std::string message() const { return what(); }
};

/**
 * Raise a RecoverableError; the library-level counterpart of fatal()
 * for errors the caller can handle (skip the file, reject the
 * request) instead of dying.
 */
[[noreturn]] inline void
raise(const std::string &msg)
{
    throw RecoverableError(msg);
}

/** Raise a RecoverableError if @p condition holds. */
inline void
raiseIf(bool condition, const std::string &msg)
{
    if (condition)
        raise(msg);
}

/**
 * Value-or-error carrier for APIs that prefer explicit checking over
 * exceptions. A Result either holds a T or an error message; value()
 * on an error Result is an internal bug (panic).
 */
template <typename T>
class Result
{
  public:
    /** Successful result holding @p value. */
    static Result ok(T value)
    {
        Result r;
        r.stored = std::move(value);
        return r;
    }

    /** Failed result carrying @p message. */
    static Result failure(std::string message)
    {
        Result r;
        r.errorMessage = std::move(message);
        return r;
    }

    /** True when a value is present. */
    bool hasValue() const { return stored.has_value(); }
    /** True when a value is present. */
    explicit operator bool() const { return hasValue(); }

    /** The held value; panic()s if this Result is an error. */
    T &value()
    {
        panicIf(!stored.has_value(),
                "Result::value() on error: " + errorMessage);
        return *stored;
    }

    /** The held value; panic()s if this Result is an error. */
    const T &value() const
    {
        panicIf(!stored.has_value(),
                "Result::value() on error: " + errorMessage);
        return *stored;
    }

    /** The held value, or @p fallback when this Result is an error. */
    T valueOr(T fallback) const
    {
        return stored.has_value() ? *stored : std::move(fallback);
    }

    /** The error message; empty when a value is present. */
    const std::string &error() const { return errorMessage; }

  private:
    Result() = default;

    std::optional<T> stored;
    std::string errorMessage;
};

/** Result<void>: success/failure with no payload. */
template <>
class Result<void>
{
  public:
    /** Successful result. */
    static Result ok()
    {
        return Result();
    }

    /** Failed result carrying @p message. */
    static Result failure(std::string message)
    {
        Result r;
        r.errorMessage = std::move(message);
        r.succeeded = false;
        return r;
    }

    /** True on success. */
    bool hasValue() const { return succeeded; }
    /** True on success. */
    explicit operator bool() const { return succeeded; }

    /** The error message; empty on success. */
    const std::string &error() const { return errorMessage; }

  private:
    Result() = default;

    bool succeeded = true;
    std::string errorMessage;
};

/**
 * Run @p fn, capturing a RecoverableError as a failed Result. Other
 * exception types (and panic/fatal) propagate unchanged: they signal
 * bugs or unrecoverable states, not malformed user data.
 *
 * @code
 *   auto data = tryInvoke([&] { return loadDataset(path); });
 *   if (!data) { log(data.error()); return; }
 *   use(data.value());
 * @endcode
 */
template <typename Fn>
auto
tryInvoke(Fn &&fn) -> Result<decltype(fn())>
{
    using R = Result<decltype(fn())>;
    try {
        if constexpr (std::is_void_v<decltype(fn())>) {
            fn();
            return R::ok();
        } else {
            return R::ok(fn());
        }
    } catch (const RecoverableError &err) {
        return R::failure(err.message());
    }
}

} // namespace chaos

#endif // CHAOS_UTIL_RESULT_HPP
