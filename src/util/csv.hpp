/**
 * @file
 * Minimal CSV reading and writing for trace persistence.
 *
 * The format is deliberately simple: no quoting, comma separator, one
 * header row. Counter names contain no commas by construction.
 */
#ifndef CHAOS_UTIL_CSV_HPP
#define CHAOS_UTIL_CSV_HPP

#include <string>
#include <vector>

#include "util/result.hpp"

namespace chaos {

/** In-memory CSV table: a header plus numeric rows. */
struct CsvTable
{
    /** Column names, in file order. */
    std::vector<std::string> header;
    /** Row-major numeric values; every row matches header size. */
    std::vector<std::vector<double>> rows;
    /**
     * 1-based source line of each row in the file it was read from
     * (blank lines are skipped, so this is not simply index + 2).
     * Empty for tables built in memory; parallel to rows otherwise.
     */
    std::vector<size_t> rowLines;

    /**
     * Index of a named column; raises RecoverableError if absent.
     */
    size_t columnIndex(const std::string &name) const;

    /** Extract a whole column by name. */
    std::vector<double> column(const std::string &name) const;

    /**
     * Source line of row @p row for error messages; falls back to a
     * header-relative guess when the table was built in memory.
     */
    size_t lineOfRow(size_t row) const;
};

/**
 * Write @p table to @p path; raises RecoverableError on I/O failure.
 */
void writeCsv(const std::string &path, const CsvTable &table);

/**
 * Read a numeric CSV from @p path; raises RecoverableError on I/O or
 * parse failure, citing the offending "path:line".
 */
CsvTable readCsv(const std::string &path);

/** readCsv() with value-style error handling. */
Result<CsvTable> tryReadCsv(const std::string &path);

} // namespace chaos

#endif // CHAOS_UTIL_CSV_HPP
