/**
 * @file
 * Minimal CSV reading and writing for trace persistence.
 *
 * The format is deliberately simple: no quoting, comma separator, one
 * header row. Counter names contain no commas by construction.
 */
#ifndef CHAOS_UTIL_CSV_HPP
#define CHAOS_UTIL_CSV_HPP

#include <string>
#include <vector>

namespace chaos {

/** In-memory CSV table: a header plus numeric rows. */
struct CsvTable
{
    /** Column names, in file order. */
    std::vector<std::string> header;
    /** Row-major numeric values; every row matches header size. */
    std::vector<std::vector<double>> rows;

    /** Index of a named column, or fatal() if absent. */
    size_t columnIndex(const std::string &name) const;

    /** Extract a whole column by name. */
    std::vector<double> column(const std::string &name) const;
};

/** Write @p table to @p path; fatal() on I/O failure. */
void writeCsv(const std::string &path, const CsvTable &table);

/** Read a numeric CSV from @p path; fatal() on I/O or parse failure. */
CsvTable readCsv(const std::string &path);

} // namespace chaos

#endif // CHAOS_UTIL_CSV_HPP
