#include "obs/flight.hpp"

#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

namespace chaos::obs {

namespace {

/// Format a double with enough digits to round-trip exactly.
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

const char *
flightItemKindName(FlightItemKind kind)
{
    switch (kind) {
      case FlightItemKind::Span: return "span";
      case FlightItemKind::Event: return "event";
      case FlightItemKind::MetricDelta: return "metric_delta";
    }
    return "unknown";
}

bool
flightTrigger(EventKind kind)
{
    switch (kind) {
      case EventKind::ModelDrift:
      case EventKind::Backpressure:
      case EventKind::ConnectionDrop:
      case EventKind::Rollback:
        return true;
      default:
        return false;
    }
}

FlightRecorder::FlightRecorder(FlightConfig config)
    : config_(std::move(config))
{
    if (config_.ringCapacity == 0)
        config_.ringCapacity = 1;
}

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::configure(const FlightConfig &config)
{
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
    if (config_.ringCapacity == 0)
        config_.ringCapacity = 1;
    // Shrink-in-place keeps the newest records if the rings got smaller.
    for (auto &[name, ring] : rings_) {
        if (ring.items.size() <= config_.ringCapacity)
            continue;
        std::vector<FlightItem> keep;
        keep.reserve(config_.ringCapacity);
        const std::size_t n = ring.items.size();
        for (std::size_t i = n - config_.ringCapacity; i < n; ++i)
            keep.push_back(
                std::move(ring.items[(ring.head + i) % n]));
        ring.items = std::move(keep);
        ring.head = 0;
    }
}

void
FlightRecorder::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
FlightRecorder::insertLocked(const char *subsystem, FlightItem &&item)
{
    item.seq = nextSeq_++;
    Ring &ring = rings_[subsystem];
    if (ring.items.size() < config_.ringCapacity) {
        ring.items.push_back(std::move(item));
    } else {
        ring.items[ring.head] = std::move(item);
        ring.head = (ring.head + 1) % ring.items.size();
    }
}

void
FlightRecorder::recordSpan(const char *subsystem, const char *name,
                           std::uint64_t durNs)
{
    if (!enabled())
        return;
    FlightItem item;
    item.tsMs = wallClockMs();
    item.kind = FlightItemKind::Span;
    item.name = name;
    item.value = static_cast<double>(durNs);
    std::lock_guard<std::mutex> lock(mu_);
    insertLocked(subsystem, std::move(item));
}

void
FlightRecorder::recordMetricDelta(const char *subsystem, const char *name,
                                  double delta)
{
    if (!enabled())
        return;
    FlightItem item;
    item.tsMs = wallClockMs();
    item.kind = FlightItemKind::MetricDelta;
    item.name = name;
    item.value = delta;
    std::lock_guard<std::mutex> lock(mu_);
    insertLocked(subsystem, std::move(item));
}

void
FlightRecorder::onEvent(const Event &event)
{
    if (!enabled())
        return;
    FlightItem item;
    item.tsMs = event.tsMs;
    item.kind = FlightItemKind::Event;
    item.name = eventKindName(event.kind);
    item.source = event.source;
    item.detail = event.detail;
    item.value = static_cast<double>(event.count);

    std::lock_guard<std::mutex> lock(mu_);
    insertLocked("events", std::move(item));

    if (!flightTrigger(event.kind))
        return;
    ++triggers_;
    if (config_.outDir.empty() || bundles_ >= config_.maxBundles) {
        ++suppressed_;
        return;
    }
    const std::uint64_t now = traceNowNs();
    if (bundles_ > 0 &&
        now - lastBundleNs_ < config_.rateLimitMs * 1000000ull) {
        ++suppressed_;
        return;
    }
    const std::string path = dumpBundleLocked(event);
    if (path.empty()) {
        ++suppressed_;
        return;
    }
    ++bundles_;
    lastBundleNs_ = now;
    lastBundlePath_ = path;
}

std::string
FlightRecorder::dumpBundleLocked(const Event &cause)
{
    std::error_code ec;
    std::filesystem::create_directories(config_.outDir, ec);

    // Collect everything inside the context window, oldest first
    // across all rings (records are globally sequenced).
    struct Entry {
        const std::string *subsystem;
        const FlightItem *item;
    };
    std::vector<Entry> window;
    for (const auto &[subsystem, ring] : rings_) {
        for (const FlightItem &item : ring.items) {
            if (item.tsMs + config_.windowMs >= cause.tsMs)
                window.push_back({&subsystem, &item});
        }
    }
    std::sort(window.begin(), window.end(),
              [](const Entry &a, const Entry &b) {
                  return a.item->seq < b.item->seq;
              });

    std::ostringstream name;
    name << config_.outDir << "/flight-" << bundles_ << "-"
         << eventKindName(cause.kind) << ".jsonl";
    JsonlWriter writer(name.str());
    if (!writer.ok())
        return "";

    std::ostringstream header;
    header << "{\"type\": \"flight_bundle\", \"seq\": " << bundles_
           << ", \"ts_ms\": " << wallClockMs()
           << ", \"window_ms\": " << config_.windowMs
           << ", \"items\": " << window.size()
           << ", \"trigger\": {\"seq\": " << cause.seq
           << ", \"ts_ms\": " << cause.tsMs
           << ", \"kind\": \"" << eventKindName(cause.kind) << "\""
           << ", \"source\": \"" << jsonEscape(cause.source) << "\""
           << ", \"detail\": \"" << jsonEscape(cause.detail) << "\""
           << ", \"count\": " << cause.count << "}}";
    if (!writer.writeLine(header.str()))
        return "";

    for (const Entry &entry : window) {
        const FlightItem *item = entry.item;
        std::ostringstream line;
        line << "{\"type\": \"" << flightItemKindName(item->kind) << "\""
             << ", \"seq\": " << item->seq
             << ", \"ts_ms\": " << item->tsMs
             << ", \"subsystem\": \"" << jsonEscape(*entry.subsystem)
             << "\", \"name\": \"" << jsonEscape(item->name) << "\"";
        switch (item->kind) {
          case FlightItemKind::Span:
            line << ", \"dur_ns\": " << formatDouble(item->value);
            break;
          case FlightItemKind::Event:
            line << ", \"source\": \"" << jsonEscape(item->source)
                 << "\", \"detail\": \"" << jsonEscape(item->detail)
                 << "\", \"count\": " << formatDouble(item->value);
            break;
          case FlightItemKind::MetricDelta:
            line << ", \"delta\": " << formatDouble(item->value);
            break;
        }
        line << "}";
        if (!writer.writeLine(line.str()))
            return "";
    }
    writer.flush();
    return writer.ok() ? name.str() : "";
}

std::string
FlightRecorder::lastBundlePath() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lastBundlePath_;
}

std::uint64_t
FlightRecorder::bundlesWritten() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bundles_;
}

std::uint64_t
FlightRecorder::triggersSeen() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return triggers_;
}

std::uint64_t
FlightRecorder::triggersSuppressed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return suppressed_;
}

std::string
FlightRecorder::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    out << "{\"enabled\": " << (enabled() ? "true" : "false")
        << ", \"bundles_written\": " << bundles_
        << ", \"triggers_seen\": " << triggers_
        << ", \"triggers_suppressed\": " << suppressed_
        << ", \"window_ms\": " << config_.windowMs
        << ", \"rate_limit_ms\": " << config_.rateLimitMs
        << ", \"last_bundle\": \"" << jsonEscape(lastBundlePath_) << "\""
        << ", \"rings\": {";
    bool first = true;
    for (const auto &[subsystem, ring] : rings_) {
        std::uint64_t newest = 0;
        for (const FlightItem &item : ring.items)
            newest = std::max(newest, item.seq);
        out << (first ? "" : ", ") << "\"" << jsonEscape(subsystem)
            << "\": {\"items\": " << ring.items.size()
            << ", \"newest_seq\": " << newest << "}";
        first = false;
    }
    out << "}}";
    return out.str();
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    rings_.clear();
    nextSeq_ = 0;
    bundles_ = 0;
    triggers_ = 0;
    suppressed_ = 0;
    lastBundleNs_ = 0;
    lastBundlePath_.clear();
}

} // namespace chaos::obs
