/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket
 * histograms with cheap atomic updates and a deterministic JSON
 * snapshot.
 *
 * Metrics carry a Stability tag. Stable metrics count work the
 * pipeline performs (folds run, knots scored, inputs rejected) using
 * commutative integer updates, so their values are bit-identical for
 * any thread count. Scheduling metrics describe how the work was
 * executed (queue depth, jobs posted, timings) and legitimately vary
 * between runs; the deterministic snapshot excludes them unless asked.
 *
 * This library sits below chaos_util and depends only on the standard
 * library, so every layer (including the thread pool) can record into
 * it without a dependency cycle.
 */
#ifndef CHAOS_OBS_METRICS_HPP
#define CHAOS_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace chaos::obs {

/**
 * Globally enable or disable metric recording. When disabled every
 * update is a single relaxed atomic load and an early return; values
 * already recorded are preserved. Enabled by default.
 */
void setMetricsEnabled(bool enabled);

/** @return True when metric updates are being recorded. */
bool metricsEnabled();

/**
 * Determinism class of a metric (see file comment). Fixed at
 * registration; the first registration of a name wins.
 */
enum class Stability {
    Stable,     ///< Work-proportional; identical across thread counts.
    Scheduling, ///< Execution-dependent; excluded from deterministic snapshots.
};

/** Monotonically increasing integer count. */
class Counter
{
  public:
    /** Add @p n to the counter (no-op while metrics are disabled). */
    void
    add(std::uint64_t n = 1)
    {
        if (metricsEnabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** @return The current count. */
    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset the count to zero. */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Signed integer level that can move both ways (e.g. queue depth). */
class Gauge
{
  public:
    /** Replace the gauge value (no-op while metrics are disabled). */
    void
    set(std::int64_t v)
    {
        if (metricsEnabled())
            value_.store(v, std::memory_order_relaxed);
    }

    /** Add @p delta (may be negative) to the gauge. */
    void
    add(std::int64_t delta)
    {
        if (metricsEnabled())
            value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** @return The current level. */
    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset the level to zero. */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations v with
 * v <= upperBounds[i] (first matching bucket); a final overflow bucket
 * counts everything above the last bound. Only integer bucket counts
 * and the commutative min/max are kept — no floating-point running
 * sum, which would make snapshots depend on observation order.
 */
class Histogram
{
  public:
    /**
     * @param upperBounds Strictly increasing inclusive upper bucket
     *                    bounds; must be non-empty.
     */
    explicit Histogram(std::vector<double> upperBounds);

    /** Record one observation (no-op while metrics are disabled). */
    void observe(double v);

    /**
     * Record @p n observations (each @p values[i] + @p offset) in one
     * pass: buckets accumulate in a local array and flush with one
     * atomic add per touched bucket, so a batch from a hot loop costs
     * O(buckets) shared-cache-line traffic instead of O(n) contended
     * increments. The offset lets a caller reuse one scratch array
     * for two histograms that differ by a per-batch constant.
     */
    void observeBulk(const double *values, std::size_t n,
                     double offset = 0.0);

    /** @return The inclusive upper bounds the histogram was built with. */
    const std::vector<double> &bounds() const { return bounds_; }

    /**
     * @return Per-bucket counts; one entry per bound plus a trailing
     *         overflow bucket.
     */
    std::vector<std::uint64_t> bucketCounts() const;

    /** @return Total number of observations. */
    std::uint64_t count() const;

    /** @return Smallest observation; only meaningful when count() > 0. */
    double minValue() const;

    /** @return Largest observation; only meaningful when count() > 0. */
    double maxValue() const;

    /**
     * Fold @p other's observations into this histogram: per-bucket
     * count addition plus the commutative min/max, so merging is
     * associative and order-independent. Both histograms must have
     * been built with identical bounds.
     *
     * @return False (leaving this histogram untouched) when the
     *         bounds differ.
     */
    bool merge(const Histogram &other);

    /**
     * Approximate @p q-quantile (q in [0, 1]) from the bucket counts:
     * the target rank's bucket is found, the value is interpolated
     * linearly inside it, and the result is clamped to the observed
     * [min, max]. The overflow bucket reports the observed maximum.
     * @return NaN when the histogram is empty.
     */
    double percentile(double q) const;

    /** Reset all counts and the min/max (bounds are kept). */
    void reset();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::atomic<double> minSeen_;
    std::atomic<double> maxSeen_;
};

/**
 * Process-wide metric registry. Registration is mutex-protected;
 * returned references stay valid for the life of the process (entries
 * are never removed — resetAll() only zeroes values), so hot paths
 * should look a metric up once and cache the reference:
 *
 * @code
 * static auto &folds = obs::Registry::instance().counter("chaos.eval.folds_run");
 * folds.add();
 * @endcode
 */
class Registry
{
  public:
    /** @return The process-wide registry. */
    static Registry &instance();

    /**
     * Find or create the counter named @p name. The stability of the
     * first registration wins.
     */
    Counter &counter(const std::string &name,
                     Stability stability = Stability::Stable);

    /** Find or create the gauge named @p name. */
    Gauge &gauge(const std::string &name,
                 Stability stability = Stability::Scheduling);

    /**
     * Find or create the histogram named @p name. The bounds and
     * stability of the first registration win.
     */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &upperBounds,
                         Stability stability = Stability::Stable);

    /**
     * Serialize the registry to JSON. Names are emitted in sorted
     * order and Stable metrics hold work-proportional values, so for
     * identical work the default snapshot is bit-identical regardless
     * of thread count.
     *
     * @param includeScheduling Also emit a "scheduling" section with
     *                          the execution-dependent metrics.
     */
    std::string snapshotJson(bool includeScheduling = false) const;

    /** Zero every metric value. Registered entries remain valid. */
    void resetAll();

  private:
    Registry() = default;

    struct CounterEntry {
        Stability stability;
        Counter counter;
    };
    struct GaugeEntry {
        Stability stability;
        Gauge gauge;
    };
    struct HistogramEntry {
        Stability stability;
        Histogram histogram;
        explicit HistogramEntry(Stability s, std::vector<double> bounds)
            : stability(s), histogram(std::move(bounds))
        {}
    };

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<CounterEntry>> counters_;
    std::map<std::string, std::unique_ptr<GaugeEntry>> gauges_;
    std::map<std::string, std::unique_ptr<HistogramEntry>> histograms_;
};

} // namespace chaos::obs

#endif // CHAOS_OBS_METRICS_HPP
