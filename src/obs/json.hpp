/**
 * @file
 * Minimal JSON well-formedness checker (parse-only, no DOM), used by
 * the obs tests and bench/overhead_obs to validate exported trace,
 * metrics, and event files without an external JSON dependency.
 */
#ifndef CHAOS_OBS_JSON_HPP
#define CHAOS_OBS_JSON_HPP

#include <string>

namespace chaos::obs {

/**
 * @return True when @p text is exactly one well-formed JSON value
 *         (object, array, string, number, true/false/null) with
 *         nothing but whitespace around it.
 */
bool jsonWellFormed(const std::string &text);

/**
 * @return @p s with the characters that would break a JSON string
 *         literal escaped (quotes, backslashes, control characters).
 */
std::string jsonEscape(const std::string &s);

} // namespace chaos::obs

#endif // CHAOS_OBS_JSON_HPP
