/**
 * @file
 * Minimal JSON support without an external dependency: a
 * well-formedness checker (parse-only) used to validate exported
 * trace, metrics, and event files, and a small read-only DOM
 * (JsonValue + jsonParse) used by the roll-up layer to ingest the
 * telemetry JSONL the exporter writes.
 *
 * Like the rest of this library it sits below chaos_util: parse
 * failures report through a bool, never an exception.
 */
#ifndef CHAOS_OBS_JSON_HPP
#define CHAOS_OBS_JSON_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace chaos::obs {

/**
 * @return True when @p text is exactly one well-formed JSON value
 *         (object, array, string, number, true/false/null) with
 *         nothing but whitespace around it.
 */
bool jsonWellFormed(const std::string &text);

/**
 * One parsed JSON value. Objects keep member insertion order (lookup
 * by find() is a linear scan — telemetry records have a handful of
 * keys); numbers are held as double, which covers every value this
 * codebase emits.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isBool() const { return kind_ == Kind::Bool; }

    /** Bool payload (false unless isBool()). */
    bool asBool() const { return boolean_; }

    /** Number payload (0 unless isNumber()). */
    double asNumber() const { return number_; }

    /** String payload with escapes decoded ("" unless isString()). */
    const std::string &asString() const { return string_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object members in insertion order (empty unless isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** @return Member @p key of an object, or nullptr. */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key's number, or @p fallback when absent/not one. */
    double numberOr(const std::string &key, double fallback) const;

    /** Member @p key's string, or @p fallback when absent/not one. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Member @p key's bool, or @p fallback when absent/not one. */
    bool boolOr(const std::string &key, bool fallback) const;

  private:
    friend struct JsonParser; // The builder in json.cpp.

    Kind kind_ = Kind::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse @p text — exactly one JSON value with only whitespace around
 * it — into @p out. @return False (leaving @p out unspecified) on
 * malformed input. Accepts exactly what jsonWellFormed accepts;
 * \uXXXX escapes decode to UTF-8 (unpaired surrogates become '?').
 */
bool jsonParse(const std::string &text, JsonValue &out);

/**
 * @return @p s with the characters that would break a JSON string
 *         literal escaped (quotes, backslashes, control characters).
 */
std::string jsonEscape(const std::string &s);

} // namespace chaos::obs

#endif // CHAOS_OBS_JSON_HPP
