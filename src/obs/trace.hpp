/**
 * @file
 * Tracing facility: RAII phase spans recorded into preallocated
 * per-thread buffers with a monotonic clock, exportable as Chrome
 * trace-event JSON (load the file at chrome://tracing or
 * https://ui.perfetto.dev) or as a human-readable phase tree.
 *
 * Recording is gated on a single relaxed atomic: while tracing is
 * disabled (the default) constructing a Span does no clock read, no
 * allocation, and no buffer access, keeping the instrumented hot
 * paths within the self-overhead budget (see bench/overhead_obs).
 *
 * Span names must be string literals (or otherwise outlive the trace)
 * — only the pointer is stored.
 */
#ifndef CHAOS_OBS_TRACE_HPP
#define CHAOS_OBS_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace chaos::obs {

/** Enable or disable span recording. Disabled by default. */
void setTraceEnabled(bool enabled);

/** @return True while spans are being recorded. */
bool traceEnabled();

/** One completed span, as returned by collectTrace(). */
struct TraceEvent {
    const char *name;     ///< Phase name (string literal).
    std::uint64_t startNs; ///< Monotonic start, ns since the trace epoch.
    std::uint64_t durNs;   ///< Duration in ns.
    int tid;               ///< Sequential id of the recording thread.
    int depth;             ///< Nesting depth on that thread (0 = top level).
};

/**
 * RAII phase timer. Records one TraceEvent into the calling thread's
 * buffer when destroyed, provided tracing was enabled at construction.
 *
 * @code
 * {
 *     obs::Span span("mars.forward");
 *     ... forward pass ...
 * } // event recorded here
 * @endcode
 */
class Span
{
  public:
    /** @param name Phase name; must be a string literal. */
    explicit Span(const char *name);
    ~Span();

    /**
     * Record the span now instead of at destruction (for sequential
     * phases in one scope). Idempotent; the destructor becomes a
     * no-op afterwards.
     */
    void end();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;      // Null when tracing was disabled at entry.
    std::uint64_t startNs_;
    int depth_;
};

/** @return Monotonic nanoseconds since the process trace epoch. */
std::uint64_t traceNowNs();

/**
 * Snapshot every completed span from all thread buffers, sorted by
 * (tid, start time, deeper-last). Safe to call while other threads
 * are still recording; spans still open are not included.
 */
std::vector<TraceEvent> collectTrace();

/** Discard all recorded spans (thread ids are retained). */
void clearTrace();

/**
 * Serialize the recorded spans in Chrome trace-event JSON (complete
 * events, "ph":"X", microsecond timestamps).
 */
std::string chromeTraceJson();

/**
 * Human-readable phase tree: one row per distinct span path with
 * call count, total and self wall time, aggregated over all threads.
 */
std::string phaseSummary();

} // namespace chaos::obs

#endif // CHAOS_OBS_TRACE_HPP
