#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace chaos::obs {

namespace {

/** Magnitudes at or below this collapse into the zero bucket. */
constexpr double kMinIndexable = 1e-12;

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

QuantileSketch::QuantileSketch(double relativeAccuracy)
    : alpha_(std::clamp(relativeAccuracy, 1e-4, 0.5)),
      gamma_((1.0 + alpha_) / (1.0 - alpha_)),
      logGamma_(std::log(gamma_)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{}

std::int32_t
QuantileSketch::bucketIndex(double magnitude) const
{
    // Bucket i covers (gamma^(i-1), gamma^i]; ceil keeps the upper
    // edge inclusive so the index is stable for exact powers.
    return static_cast<std::int32_t>(
        std::ceil(std::log(magnitude) / logGamma_));
}

double
QuantileSketch::bucketValue(std::int32_t index) const
{
    // Midpoint (harmonic) estimate: within alpha of every value the
    // bucket can hold.
    return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void
QuantileSketch::add(double v, std::uint64_t count)
{
    if (count == 0 || !std::isfinite(v))
        return;
    if (v > kMinIndexable)
        positive_[bucketIndex(v)] += count;
    else if (v < -kMinIndexable)
        negative_[bucketIndex(-v)] += count;
    else
        zero_ += count;
    total_ += count;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

bool
QuantileSketch::merge(const QuantileSketch &other)
{
    if (alpha_ != other.alpha_)
        return false;
    for (const auto &[index, count] : other.positive_)
        positive_[index] += count;
    for (const auto &[index, count] : other.negative_)
        negative_[index] += count;
    zero_ += other.zero_;
    total_ += other.total_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    return true;
}

double
QuantileSketch::quantile(double q) const
{
    if (total_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    q = std::clamp(q, 0.0, 1.0);
    // 1-based rank of the wanted observation in ascending order.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               q * static_cast<double>(total_) + 0.5));

    std::uint64_t cumulative = 0;
    // Ascending order: most-negative magnitudes first.
    for (auto it = negative_.rbegin(); it != negative_.rend(); ++it) {
        cumulative += it->second;
        if (cumulative >= rank)
            return std::clamp(-bucketValue(it->first), min_, max_);
    }
    cumulative += zero_;
    if (cumulative >= rank)
        return std::clamp(0.0, min_, max_);
    for (const auto &[index, count] : positive_) {
        cumulative += count;
        if (cumulative >= rank)
            return std::clamp(bucketValue(index), min_, max_);
    }
    return max_;
}

std::size_t
QuantileSketch::memoryBytes() const
{
    // std::map node: payload + two colored child pointers + parent.
    constexpr std::size_t kNodeBytes =
        sizeof(std::pair<std::int32_t, std::uint64_t>) +
        4 * sizeof(void *);
    return sizeof(*this) +
           (positive_.size() + negative_.size()) * kNodeBytes;
}

void
QuantileSketch::clear()
{
    total_ = 0;
    zero_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    positive_.clear();
    negative_.clear();
}

std::string
QuantileSketch::toJson() const
{
    std::ostringstream out;
    out << "{\"accuracy\": " << formatDouble(alpha_)
        << ", \"count\": " << total_;
    if (total_ > 0) {
        out << ", \"min\": " << formatDouble(min_)
            << ", \"max\": " << formatDouble(max_);
    }
    out << ", \"zero\": " << zero_ << ", \"negative\": [";
    bool first = true;
    for (const auto &[index, count] : negative_) {
        out << (first ? "" : ", ") << "[" << index << ", " << count
            << "]";
        first = false;
    }
    out << "], \"positive\": [";
    first = true;
    for (const auto &[index, count] : positive_) {
        out << (first ? "" : ", ") << "[" << index << ", " << count
            << "]";
        first = false;
    }
    out << "]}";
    return out.str();
}

} // namespace chaos::obs
