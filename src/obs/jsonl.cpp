#include "obs/jsonl.hpp"

#include "obs/json.hpp"

namespace chaos::obs {

JsonlWriter::JsonlWriter(const std::string &path)
    : path_(path), out_(path)
{
    if (!out_)
        error_ = "jsonl: cannot open " + path_ + " for writing";
}

bool
JsonlWriter::writeLine(const std::string &jsonValue)
{
    if (!ok())
        return false;
    if (jsonValue.find('\n') != std::string::npos) {
        error_ = "jsonl: record contains a newline";
        return false;
    }
    if (!jsonWellFormed(jsonValue)) {
        error_ = "jsonl: record is not well-formed JSON: " +
                 jsonValue.substr(0, 120);
        return false;
    }
    out_ << jsonValue << '\n';
    if (!out_.good()) {
        error_ = "jsonl: write to " + path_ + " failed";
        return false;
    }
    ++lines_;
    return true;
}

void
JsonlWriter::flush()
{
    if (out_.is_open())
        out_.flush();
}

} // namespace chaos::obs
