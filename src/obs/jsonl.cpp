#include "obs/jsonl.hpp"

#include "obs/json.hpp"

namespace chaos::obs {

JsonlWriter::JsonlWriter(const std::string &path)
    : path_(path), out_(path)
{
    if (!out_)
        error_ = "jsonl: cannot open " + path_ + " for writing";
}

JsonlWriter::JsonlWriter(std::unique_ptr<std::ostream> sink,
                         const std::string &label)
    : path_(label), sink_(std::move(sink))
{
    if (sink_ == nullptr || !sink_->good())
        error_ = "jsonl: sink " + path_ + " is not writable";
}

bool
JsonlWriter::writeLine(const std::string &jsonValue)
{
    if (!ok())
        return false;
    if (jsonValue.find('\n') != std::string::npos) {
        error_ = "jsonl: record contains a newline";
        return false;
    }
    if (!jsonWellFormed(jsonValue)) {
        error_ = "jsonl: record is not well-formed JSON: " +
                 jsonValue.substr(0, 120);
        return false;
    }
    stream() << jsonValue << '\n';
    if (!stream().good()) {
        error_ = "jsonl: write to " + path_ + " failed";
        return false;
    }
    ++lines_;
    return true;
}

void
JsonlWriter::flush()
{
    if (sink_ != nullptr)
        sink_->flush();
    else if (out_.is_open())
        out_.flush();
}

} // namespace chaos::obs
