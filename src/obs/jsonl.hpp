/**
 * @file
 * Line-delimited JSON (JSONL) writer for continuous telemetry export.
 *
 * Each record is one single-line JSON value followed by '\n', so a
 * consumer can tail the file and parse it line by line while the
 * producer keeps appending. Every record is validated with the shared
 * well-formedness checker (obs/json.hpp) before it is written: a
 * malformed record is rejected and remembered as an error instead of
 * corrupting the stream.
 *
 * This library sits below chaos_util, so errors are reported through
 * ok()/error() rather than raised; callers at higher layers wrap the
 * writer and raise on failure.
 */
#ifndef CHAOS_OBS_JSONL_HPP
#define CHAOS_OBS_JSONL_HPP

#include <cstddef>
#include <fstream>
#include <memory>
#include <string>

namespace chaos::obs {

/** Append-only writer of validated JSONL records (see file comment). */
class JsonlWriter
{
  public:
    /** Open (truncate) @p path; check ok() before writing. */
    explicit JsonlWriter(const std::string &path);

    /**
     * Write records to @p sink instead of a file — the hook the
     * network telemetry sink (src/net) plugs a socket-backed stream
     * into. @p label stands in for the path in error messages and
     * path(). A null or failed sink puts the writer in its error
     * state rather than crashing later.
     */
    JsonlWriter(std::unique_ptr<std::ostream> sink,
                const std::string &label);

    /** @return False once opening, validation, or a write failed. */
    bool ok() const { return error_.empty(); }

    /** @return Description of the first failure ("" while ok). */
    const std::string &error() const { return error_; }

    /** @return The path the writer was opened on. */
    const std::string &path() const { return path_; }

    /**
     * Append one record. @p jsonValue must be a single-line,
     * well-formed JSON value (checked with jsonWellFormed).
     *
     * @return True when the record was written; false records the
     *         failure in error() and leaves the file untouched.
     */
    bool writeLine(const std::string &jsonValue);

    /** @return Records successfully written so far. */
    std::size_t linesWritten() const { return lines_; }

    /** Flush buffered records to the file. */
    void flush();

  private:
    /** The active destination: the owned sink, or the opened file. */
    std::ostream &stream() { return sink_ ? *sink_ : out_; }

    std::string path_;
    std::ofstream out_;
    std::unique_ptr<std::ostream> sink_; ///< Non-file destination.
    std::string error_;
    std::size_t lines_ = 0;
};

} // namespace chaos::obs

#endif // CHAOS_OBS_JSONL_HPP
