/**
 * @file
 * Structured health/event log for the online estimation path.
 *
 * The online estimators and the fault injectors emit an Event on
 * every state change that affects an estimate: health transitions
 * (Healthy/Degraded/Stale/Lost), imputations, envelope clamps,
 * substituted estimates, and fault activations. Events land in a
 * fixed-capacity ring buffer (oldest overwritten first), are
 * queryable in emission order, and can be dumped as JSON.
 *
 * Per-sample floods are aggregated by the emitter: consecutive
 * imputations within one sample are reported as a single event with a
 * count, so the log stays readable under sustained degradation.
 */
#ifndef CHAOS_OBS_EVENTS_HPP
#define CHAOS_OBS_EVENTS_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace chaos::obs {

/** What happened (see file comment). */
enum class EventKind {
    HealthTransition, ///< Machine health state changed.
    Imputation,       ///< Invalid counter values replaced by last-known-good.
    Clamp,            ///< Estimate clamped to the machine's power envelope.
    Substitution,     ///< Estimate substituted (recent mean / idle power).
    FaultActivation,  ///< A fault injector fired.
    Backpressure,     ///< A serving-shard queue saturated (drop-oldest engaged).
    ModelDrift,       ///< Online drift detector fired on a deployed model.
    Quarantine,       ///< Autopilot isolated a machine's estimate from the sum.
    Retrain,          ///< Autopilot launched a background retrain attempt.
    Promote,          ///< Canary won its rolling comparison; model swapped in.
    Rollback,         ///< Canary lost/timed out; incumbent kept, drift acked.
    ConnectionDrop,   ///< An ingest connection was closed on protocol error.
};

/** @return Stable lowercase name for @p kind (e.g. "health_transition"). */
const char *eventKindName(EventKind kind);

/** @return Milliseconds since the Unix epoch (wall clock). */
std::uint64_t wallClockMs();

/** One logged occurrence. */
struct Event {
    std::uint64_t seq = 0; ///< Global emission index (0-based, never reused).
    std::uint64_t tsMs = 0; ///< Wall-clock emission time, ms since epoch.
    EventKind kind = EventKind::HealthTransition;
    std::string source; ///< Emitting entity, e.g. "machine3" or "meter".
    std::string detail; ///< Human-readable description.
    std::uint64_t count = 1; ///< Aggregated occurrences behind this event.
};

/**
 * Fixed-capacity, thread-safe ring buffer of Events. A process-wide
 * instance() is shared by the online path and the fault injectors;
 * independent logs can be constructed for tests.
 */
class EventLog
{
  public:
    /** @param capacity Ring size; oldest events overwritten beyond it. */
    explicit EventLog(std::size_t capacity = 4096);

    /** @return The process-wide event log. */
    static EventLog &instance();

    /** Append an event; assigns it the next sequence number. */
    void emit(EventKind kind, std::string source, std::string detail,
              std::uint64_t count = 1);

    /** @return Retained events, oldest first. */
    std::vector<Event> snapshot() const;

    /** @return Events emitted over the log's lifetime (incl. overwritten). */
    std::uint64_t totalEmitted() const;

    /**
     * @return Events lost to ring overflow (overwritten before a
     *         snapshot could retain them). Every overwrite also bumps
     *         the process-wide chaos.obs.events_dropped counter, so
     *         dashboards see silent loss instead of a clean-looking
     *         truncated log.
     */
    std::uint64_t dropped() const;

    /** @return Ring capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Drop all retained events; sequence numbers keep advancing. */
    void clear();

    /** Serialize the retained events as a JSON array of objects. */
    std::string jsonDump() const;

  private:
    mutable std::mutex mu_;
    std::vector<Event> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0;     // Next write position.
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace chaos::obs

#endif // CHAOS_OBS_EVENTS_HPP
