/**
 * @file
 * Anomaly-triggered flight recorder: a black box for the serving path.
 *
 * Subsystems continuously feed lightweight records — completed spans,
 * health events, and metric deltas — into fixed-size per-subsystem
 * rings. The rings are cheap enough to leave on in production and are
 * never exported on the happy path; they exist so that when something
 * goes wrong the recent past is still available.
 *
 * When a trigger event fires (ModelDrift, Backpressure,
 * ConnectionDrop, Rollback — see flightTrigger()), the recorder
 * freezes the rings and dumps a JSONL diagnostic bundle holding the
 * trigger plus the last windowMs of context, oldest record first.
 * Dumps are rate-limited (rateLimitMs between bundles, maxBundles per
 * process) so an event storm — e.g. a drift detector firing on every
 * tick — produces one bundle, not thousands. Every bundle line is
 * validated by JsonlWriter before it reaches disk.
 *
 * The global instance() is fed automatically by EventLog::instance()
 * and is disabled until setEnabled(true)/configure() — a disabled
 * recorder costs one relaxed atomic load per record call.
 */
#ifndef CHAOS_OBS_FLIGHT_HPP
#define CHAOS_OBS_FLIGHT_HPP

#include "obs/events.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace chaos::obs {

/** What one flight-ring record describes. */
enum class FlightItemKind {
    Span,        ///< A completed timed section (value = duration ns).
    Event,       ///< A health/event-log entry (value = aggregated count).
    MetricDelta, ///< Change of a counter/gauge since last record.
};

/** @return Stable lowercase name for @p kind (e.g. "span"). */
const char *flightItemKindName(FlightItemKind kind);

/** @return True when @p kind freezes and dumps the flight rings. */
bool flightTrigger(EventKind kind);

/** One record in a subsystem's flight ring. */
struct FlightItem {
    std::uint64_t seq = 0;  ///< Global record index across all rings.
    std::uint64_t tsMs = 0; ///< Wall-clock record time, ms since epoch.
    FlightItemKind kind = FlightItemKind::Span;
    std::string name;   ///< Span name, event kind name, or metric name.
    std::string source; ///< Emitting entity ("" for spans/deltas).
    std::string detail; ///< Event detail ("" otherwise).
    double value = 0.0; ///< Duration ns / event count / metric delta.
};

/** Tuning for FlightRecorder (defaults are production-safe). */
struct FlightConfig {
    std::size_t ringCapacity = 256;    ///< Records kept per subsystem.
    std::uint64_t windowMs = 10000;    ///< Context window dumped on trigger.
    std::uint64_t rateLimitMs = 30000; ///< Min wall-ms between bundles.
    std::size_t maxBundles = 16;       ///< Lifetime bundle cap per process.
    std::string outDir;                ///< Bundle directory ("" = no dumps).
};

/** Thread-safe black-box recorder (see file comment). */
class FlightRecorder
{
  public:
    explicit FlightRecorder(FlightConfig config = {});

    /** @return The process-wide recorder (fed by EventLog::instance()). */
    static FlightRecorder &instance();

    /** Replace the configuration; retained records and counters stay. */
    void configure(const FlightConfig &config);

    /** Arm or disarm recording + triggering (disabled by default). */
    void setEnabled(bool enabled);

    /** @return True when the recorder is armed. */
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Record a completed span of @p durNs under @p subsystem's ring. */
    void recordSpan(const char *subsystem, const char *name,
                    std::uint64_t durNs);

    /** Record a metric change of @p delta under @p subsystem's ring. */
    void recordMetricDelta(const char *subsystem, const char *name,
                           double delta);

    /**
     * Record @p event in the "events" ring; when its kind is a
     * trigger (flightTrigger) and the rate limiter allows, freeze the
     * rings and dump a bundle.
     */
    void onEvent(const Event &event);

    /** @return Path of the most recent bundle ("" before the first). */
    std::string lastBundlePath() const;

    /** @return Bundles successfully written. */
    std::uint64_t bundlesWritten() const;

    /** @return Trigger events seen while enabled. */
    std::uint64_t triggersSeen() const;

    /** @return Triggers swallowed by the rate limiter / bundle cap. */
    std::uint64_t triggersSuppressed() const;

    /** @return Single-line JSON summary (rings, counters, last bundle). */
    std::string snapshotJson() const;

    /** Drop retained records and reset counters + rate limiter (tests). */
    void clear();

  private:
    struct Ring {
        std::vector<FlightItem> items;
        std::size_t head = 0; ///< Next overwrite position once full.
    };

    void insertLocked(const char *subsystem, FlightItem &&item);
    /** @return Bundle path, or "" when the dump failed. Holds mu_. */
    std::string dumpBundleLocked(const Event &cause);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    FlightConfig config_;
    std::map<std::string, Ring> rings_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t bundles_ = 0;
    std::uint64_t triggers_ = 0;
    std::uint64_t suppressed_ = 0;
    std::uint64_t lastBundleNs_ = 0; ///< Monotonic ns of the last dump.
    std::string lastBundlePath_;
};

} // namespace chaos::obs

#endif // CHAOS_OBS_FLIGHT_HPP
