#include "obs/trace.hpp"

#include "obs/json.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace chaos::obs {

namespace {

std::atomic<bool> traceOn{false};

/// Spans recorded by one thread. Owned jointly by the recording
/// thread (thread_local shared_ptr) and the global buffer registry,
/// so events survive pool-thread exit and remain collectable.
struct ThreadBuffer {
    std::mutex mu;                  // Guards events (recorder vs collector).
    int tid = 0;
    int depth = 0;                  // Touched only by the owning thread.
    std::vector<TraceEvent> events; // Guarded by mu.
};

struct BufferRegistry {
    std::mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    int nextTid = 0;
};

BufferRegistry &
bufferRegistry()
{
    static BufferRegistry registry;
    return registry;
}

ThreadBuffer &
localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto b = std::make_shared<ThreadBuffer>();
        b->events.reserve(4096);
        BufferRegistry &registry = bufferRegistry();
        std::lock_guard<std::mutex> lock(registry.mu);
        b->tid = registry.nextTid++;
        registry.buffers.push_back(b);
        return b;
    }();
    return *buffer;
}

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

void
setTraceEnabled(bool enabled)
{
    traceEpoch(); // Pin the epoch before any span can use it.
    traceOn.store(enabled, std::memory_order_relaxed);
}

bool
traceEnabled()
{
    return traceOn.load(std::memory_order_relaxed);
}

std::uint64_t
traceNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

Span::Span(const char *name)
{
    if (!traceOn.load(std::memory_order_relaxed)) {
        name_ = nullptr;
        return;
    }
    name_ = name;
    depth_ = localBuffer().depth++;
    startNs_ = traceNowNs();
}

Span::~Span()
{
    end();
}

void
Span::end()
{
    if (name_ == nullptr)
        return;
    std::uint64_t endNs = traceNowNs();
    ThreadBuffer &buffer = localBuffer();
    --buffer.depth;
    std::lock_guard<std::mutex> lock(buffer.mu);
    buffer.events.push_back(
        {name_, startNs_, endNs - startNs_, buffer.tid, depth_});
    name_ = nullptr;
}

std::vector<TraceEvent>
collectTrace()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        BufferRegistry &registry = bufferRegistry();
        std::lock_guard<std::mutex> lock(registry.mu);
        buffers = registry.buffers;
    }
    std::vector<TraceEvent> all;
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mu);
        all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    }
    std::sort(all.begin(), all.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.depth < b.depth;
              });
    return all;
}

void
clearTrace()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        BufferRegistry &registry = bufferRegistry();
        std::lock_guard<std::mutex> lock(registry.mu);
        buffers = registry.buffers;
    }
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mu);
        buffer->events.clear();
    }
}

std::string
chromeTraceJson()
{
    auto events = collectTrace();
    std::ostringstream out;
    out << "{\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        char ts[64];
        char dur[64];
        std::snprintf(ts, sizeof(ts), "%.3f", e.startNs / 1000.0);
        std::snprintf(dur, sizeof(dur), "%.3f", e.durNs / 1000.0);
        out << (i ? ",\n" : "\n") << "  {\"name\": \""
            << jsonEscape(e.name)
            << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
            << ", \"ts\": " << ts << ", \"dur\": " << dur << "}";
    }
    out << (events.empty() ? "]" : "\n]")
        << ", \"displayTimeUnit\": \"ms\"}\n";
    return out.str();
}

namespace {

struct PhaseStats {
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t childNs = 0;
};

} // namespace

std::string
phaseSummary()
{
    auto events = collectTrace();

    // Reconstruct each thread's span tree by containment: events are
    // sorted by start time, so an enclosing span appears before the
    // spans it contains. Paths are joined with '/' for aggregation.
    std::map<std::string, PhaseStats> stats;
    std::vector<std::string> order; // First-appearance order of paths.

    struct Open {
        std::uint64_t endNs;
        std::string path;
    };

    int currentTid = -1;
    std::vector<Open> stack;
    for (const TraceEvent &e : events) {
        if (e.tid != currentTid) {
            currentTid = e.tid;
            stack.clear();
        }
        while (!stack.empty() && stack.back().endNs <= e.startNs)
            stack.pop_back();
        std::string path =
            stack.empty() ? e.name : stack.back().path + "/" + e.name;
        if (!stack.empty())
            stats[stack.back().path].childNs += e.durNs;
        auto [it, inserted] = stats.emplace(path, PhaseStats{});
        if (inserted)
            order.push_back(path);
        it->second.count += 1;
        it->second.totalNs += e.durNs;
        stack.push_back({e.startNs + e.durNs, std::move(path)});
    }

    std::ostringstream out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-52s %8s %12s %12s\n", "phase",
                  "count", "total ms", "self ms");
    out << line;
    for (const std::string &path : order) {
        const PhaseStats &s = stats[path];
        std::size_t depth = 0;
        std::size_t lastSlash = std::string::npos;
        for (std::size_t i = 0; i < path.size(); ++i) {
            if (path[i] == '/') {
                ++depth;
                lastSlash = i;
            }
        }
        std::string label(2 * depth, ' ');
        label += lastSlash == std::string::npos ? path
                                                : path.substr(lastSlash + 1);
        std::uint64_t self =
            s.totalNs > s.childNs ? s.totalNs - s.childNs : 0;
        std::snprintf(line, sizeof(line), "%-52s %8llu %12.3f %12.3f\n",
                      label.c_str(),
                      static_cast<unsigned long long>(s.count),
                      s.totalNs / 1e6, self / 1e6);
        out << line;
    }
    return out.str();
}

} // namespace chaos::obs
