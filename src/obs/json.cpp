#include "obs/json.hpp"

#include <cctype>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace chaos::obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/// Recursive-descent validator over a [pos, end) window. Each parse*
/// function returns false on malformed input and otherwise advances
/// pos past the parsed construct.
struct Validator {
    const std::string &text;
    std::size_t pos = 0;
    int depth = 0;
    static constexpr int maxDepth = 256;

    bool
    atEnd() const
    {
        return pos >= text.size();
    }

    char
    peek() const
    {
        return text[pos];
    }

    void
    skipSpace()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                            text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    parseString()
    {
        if (!consume('"'))
            return false;
        while (!atEnd()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // Raw control character.
            if (c == '\\') {
                if (atEnd())
                    return false;
                char esc = text[pos++];
                switch (esc) {
                  case '"': case '\\': case '/': case 'b': case 'f':
                  case 'n': case 'r': case 't':
                    break;
                  case 'u':
                    for (int i = 0; i < 4; ++i) {
                        if (atEnd() || !std::isxdigit(static_cast<unsigned char>(
                                           text[pos])))
                            return false;
                        ++pos;
                    }
                    break;
                  default:
                    return false;
                }
            }
        }
        return false; // Unterminated.
    }

    bool
    parseNumber()
    {
        consume('-');
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        if (peek() == '0') {
            ++pos;
        } else {
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!atEnd() && peek() == '.') {
            ++pos;
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos;
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return true;
    }

    bool
    parseLiteral(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (atEnd() || text[pos] != *p)
                return false;
            ++pos;
        }
        return true;
    }

    bool
    parseValue()
    {
        if (++depth > maxDepth)
            return false;
        skipSpace();
        if (atEnd()) {
            --depth;
            return false;
        }
        bool ok = false;
        switch (peek()) {
          case '{': ok = parseObject(); break;
          case '[': ok = parseArray(); break;
          case '"': ok = parseString(); break;
          case 't': ok = parseLiteral("true"); break;
          case 'f': ok = parseLiteral("false"); break;
          case 'n': ok = parseLiteral("null"); break;
          default: ok = parseNumber(); break;
        }
        --depth;
        return ok;
    }

    bool
    parseObject()
    {
        if (!consume('{'))
            return false;
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (!parseString())
                return false;
            skipSpace();
            if (!consume(':'))
                return false;
            if (!parseValue())
                return false;
            skipSpace();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseArray()
    {
        if (!consume('['))
            return false;
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            if (!parseValue())
                return false;
            skipSpace();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }
};

} // namespace

bool
jsonWellFormed(const std::string &text)
{
    Validator v{text};
    if (!v.parseValue())
        return false;
    v.skipSpace();
    return v.atEnd();
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->asString() : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->asBool() : fallback;
}

/// Recursive-descent parser building a JsonValue DOM. Same grammar as
/// the Validator above; kept separate so the validation hot path
/// (every JSONL line) never pays for DOM allocation.
struct JsonParser {
    const std::string &text;
    std::size_t pos = 0;
    int depth = 0;
    static constexpr int maxDepth = 256;

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void
    skipSpace()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                            text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    bool
    parseHex4(unsigned &code)
    {
        code = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos])))
                return false;
            const char c = text[pos++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else
                code |= static_cast<unsigned>(
                            std::tolower(static_cast<unsigned char>(c)) -
                            'a') +
                        10;
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (!atEnd()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                return false;
            char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code;
                if (!parseHex4(code))
                    return false;
                if (code >= 0xd800 && code <= 0xdfff)
                    out += '?'; // Surrogate: nothing we emit uses them.
                else
                    appendUtf8(out, code);
                break;
              }
              default:
                return false;
            }
        }
        return false; // Unterminated.
    }

    bool
    parseNumber(double &out)
    {
        const std::size_t start = pos;
        Validator v{text, pos};
        if (!v.parseNumber())
            return false;
        pos = v.pos;
        out = std::strtod(text.c_str() + start, nullptr);
        return true;
    }

    bool
    parseLiteral(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (atEnd() || text[pos] != *p)
                return false;
            ++pos;
        }
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth > maxDepth)
            return false;
        skipSpace();
        if (atEnd()) {
            --depth;
            return false;
        }
        bool ok = false;
        switch (peek()) {
          case '{':
            out.kind_ = JsonValue::Kind::Object;
            ok = parseObject(out.members_);
            break;
          case '[':
            out.kind_ = JsonValue::Kind::Array;
            ok = parseArray(out.items_);
            break;
          case '"':
            out.kind_ = JsonValue::Kind::String;
            ok = parseString(out.string_);
            break;
          case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.boolean_ = true;
            ok = parseLiteral("true");
            break;
          case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.boolean_ = false;
            ok = parseLiteral("false");
            break;
          case 'n':
            out.kind_ = JsonValue::Kind::Null;
            ok = parseLiteral("null");
            break;
          default:
            out.kind_ = JsonValue::Kind::Number;
            ok = parseNumber(out.number_);
            break;
        }
        --depth;
        return ok;
    }

    bool
    parseObject(std::vector<std::pair<std::string, JsonValue>> &out)
    {
        if (!consume('{'))
            return false;
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseArray(std::vector<JsonValue> &out)
    {
        if (!consume('['))
            return false;
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.push_back(std::move(value));
            skipSpace();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }
};

bool
jsonParse(const std::string &text, JsonValue &out)
{
    out = JsonValue();
    JsonParser p{text};
    if (!p.parseValue(out))
        return false;
    p.skipSpace();
    return p.atEnd();
}

} // namespace chaos::obs
