#include "obs/json.hpp"

#include <cctype>
#include <cstddef>
#include <cstdio>

namespace chaos::obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/// Recursive-descent validator over a [pos, end) window. Each parse*
/// function returns false on malformed input and otherwise advances
/// pos past the parsed construct.
struct Validator {
    const std::string &text;
    std::size_t pos = 0;
    int depth = 0;
    static constexpr int maxDepth = 256;

    bool
    atEnd() const
    {
        return pos >= text.size();
    }

    char
    peek() const
    {
        return text[pos];
    }

    void
    skipSpace()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                            text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    parseString()
    {
        if (!consume('"'))
            return false;
        while (!atEnd()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // Raw control character.
            if (c == '\\') {
                if (atEnd())
                    return false;
                char esc = text[pos++];
                switch (esc) {
                  case '"': case '\\': case '/': case 'b': case 'f':
                  case 'n': case 'r': case 't':
                    break;
                  case 'u':
                    for (int i = 0; i < 4; ++i) {
                        if (atEnd() || !std::isxdigit(static_cast<unsigned char>(
                                           text[pos])))
                            return false;
                        ++pos;
                    }
                    break;
                  default:
                    return false;
                }
            }
        }
        return false; // Unterminated.
    }

    bool
    parseNumber()
    {
        consume('-');
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        if (peek() == '0') {
            ++pos;
        } else {
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!atEnd() && peek() == '.') {
            ++pos;
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos;
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return true;
    }

    bool
    parseLiteral(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (atEnd() || text[pos] != *p)
                return false;
            ++pos;
        }
        return true;
    }

    bool
    parseValue()
    {
        if (++depth > maxDepth)
            return false;
        skipSpace();
        if (atEnd()) {
            --depth;
            return false;
        }
        bool ok = false;
        switch (peek()) {
          case '{': ok = parseObject(); break;
          case '[': ok = parseArray(); break;
          case '"': ok = parseString(); break;
          case 't': ok = parseLiteral("true"); break;
          case 'f': ok = parseLiteral("false"); break;
          case 'n': ok = parseLiteral("null"); break;
          default: ok = parseNumber(); break;
        }
        --depth;
        return ok;
    }

    bool
    parseObject()
    {
        if (!consume('{'))
            return false;
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (!parseString())
                return false;
            skipSpace();
            if (!consume(':'))
                return false;
            if (!parseValue())
                return false;
            skipSpace();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseArray()
    {
        if (!consume('['))
            return false;
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            if (!parseValue())
                return false;
            skipSpace();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }
};

} // namespace

bool
jsonWellFormed(const std::string &text)
{
    Validator v{text};
    if (!v.parseValue())
        return false;
    v.skipSpace();
    return v.atEnd();
}

} // namespace chaos::obs
