#include "obs/metrics.hpp"

#include "obs/json.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace chaos::obs {

namespace {

std::atomic<bool> metricsOn{true};

/// Format a double with enough digits to round-trip exactly.
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}



} // namespace

void
setMetricsEnabled(bool enabled)
{
    metricsOn.store(enabled, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return metricsOn.load(std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      minSeen_(std::numeric_limits<double>::infinity()),
      maxSeen_(-std::numeric_limits<double>::infinity())
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    if (!metricsEnabled())
        return;
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);

    // min and max are commutative, so CAS loops keep them exact and
    // deterministic regardless of observation order.
    double seen = minSeen_.load(std::memory_order_relaxed);
    while (v < seen &&
           !minSeen_.compare_exchange_weak(seen, v,
                                           std::memory_order_relaxed)) {
    }
    seen = maxSeen_.load(std::memory_order_relaxed);
    while (v > seen &&
           !maxSeen_.compare_exchange_weak(seen, v,
                                           std::memory_order_relaxed)) {
    }
}

void
Histogram::observeBulk(const double *values, std::size_t n,
                       double offset)
{
    if (n == 0 || !metricsEnabled())
        return;
    constexpr std::size_t kMaxLocalBuckets = 64;
    if (bounds_.size() + 1 > kMaxLocalBuckets) {
        for (std::size_t i = 0; i < n; ++i)
            observe(values[i] + offset);
        return;
    }
    std::uint64_t local[kMaxLocalBuckets] = {};
    double lo = values[0] + offset;
    double hi = values[0] + offset;
    for (std::size_t i = 0; i < n; ++i) {
        const double v = values[i] + offset;
        auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
        ++local[static_cast<std::size_t>(it - bounds_.begin())];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
        if (local[b])
            counts_[b].fetch_add(local[b],
                                 std::memory_order_relaxed);
    }
    double seen = minSeen_.load(std::memory_order_relaxed);
    while (lo < seen &&
           !minSeen_.compare_exchange_weak(seen, lo,
                                           std::memory_order_relaxed)) {
    }
    seen = maxSeen_.load(std::memory_order_relaxed);
    while (hi > seen &&
           !maxSeen_.compare_exchange_weak(seen, hi,
                                           std::memory_order_relaxed)) {
    }
}

bool
Histogram::merge(const Histogram &other)
{
    if (bounds_ != other.bounds_)
        return false;
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        const std::uint64_t n =
            other.counts_[i].load(std::memory_order_relaxed);
        if (n)
            counts_[i].fetch_add(n, std::memory_order_relaxed);
    }
    // Reuse the CAS min/max loops: merge is just two more
    // commutative observations.
    const double lo = other.minSeen_.load(std::memory_order_relaxed);
    double seen = minSeen_.load(std::memory_order_relaxed);
    while (lo < seen &&
           !minSeen_.compare_exchange_weak(seen, lo,
                                           std::memory_order_relaxed)) {
    }
    const double hi = other.maxSeen_.load(std::memory_order_relaxed);
    seen = maxSeen_.load(std::memory_order_relaxed);
    while (hi > seen &&
           !maxSeen_.compare_exchange_weak(seen, hi,
                                           std::memory_order_relaxed)) {
    }
    return true;
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        total += counts_[i].load(std::memory_order_relaxed);
    return total;
}

double
Histogram::minValue() const
{
    return minSeen_.load(std::memory_order_relaxed);
}

double
Histogram::maxValue() const
{
    return maxSeen_.load(std::memory_order_relaxed);
}

double
Histogram::percentile(double q) const
{
    const std::vector<std::uint64_t> counts = bucketCounts();
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    if (total == 0)
        return std::numeric_limits<double>::quiet_NaN();

    q = std::clamp(q, 0.0, 1.0);
    const double lo = minValue();
    const double hi = maxValue();
    // Rank of the wanted observation, 1-based, in sorted order.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               q * static_cast<double>(total) + 0.5));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const std::uint64_t before = cumulative;
        cumulative += counts[i];
        if (cumulative < rank)
            continue;
        // Interpolate inside the bucket, but over the part of it the
        // observations can actually occupy: the first occupied bucket
        // starts at the observed min, the last one (and the unbounded
        // overflow bucket) ends at the observed max. Raw bucket edges
        // here skew boundary quantiles toward values never observed —
        // p99/p100 of a distribution confined to one bucket used to
        // land on the bucket edge before the clamp pulled them back.
        const double lowerRaw = i == 0 ? lo : bounds_[i - 1];
        const double upperRaw = i == bounds_.size() ? hi : bounds_[i];
        const double lower = std::max(lowerRaw, lo);
        const double upper = std::max(std::min(upperRaw, hi), lower);
        const double within =
            static_cast<double>(rank - before) /
            static_cast<double>(counts[i]);
        return lower + within * (upper - lower);
    }
    return hi;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
    minSeen_.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    maxSeen_.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name, Stability stability)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        auto entry = std::make_unique<CounterEntry>();
        entry->stability = stability;
        it = counters_.emplace(name, std::move(entry)).first;
    }
    return it->second->counter;
}

Gauge &
Registry::gauge(const std::string &name, Stability stability)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        auto entry = std::make_unique<GaugeEntry>();
        entry->stability = stability;
        it = gauges_.emplace(name, std::move(entry)).first;
    }
    return it->second->gauge;
}

Histogram &
Registry::histogram(const std::string &name,
                    const std::vector<double> &upperBounds,
                    Stability stability)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<HistogramEntry>(stability,
                                                                 upperBounds))
                 .first;
    }
    return it->second->histogram;
}

namespace {

/// Append one `"key": {"name": value, ...}` section holding the
/// entries of the selected stability class.
template <typename Map, typename Render>
void
appendSection(std::ostringstream &out, const std::string &indent,
              const std::string &key, const Map &entries, Stability wanted,
              Render render, bool &needComma)
{
    if (needComma)
        out << ",\n";
    needComma = true;
    out << indent << "\"" << key << "\": {";
    bool first = true;
    for (const auto &[name, entry] : entries) {
        if (entry->stability != wanted)
            continue;
        out << (first ? "\n" : ",\n") << indent << "  \"" << jsonEscape(name)
            << "\": ";
        render(out, *entry);
        first = false;
    }
    if (first)
        out << "}";
    else
        out << "\n" << indent << "}";
}

} // namespace

std::string
Registry::snapshotJson(bool includeScheduling) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;

    auto renderCounter = [](std::ostringstream &s, const CounterEntry &e) {
        s << e.counter.value();
    };
    auto renderGauge = [](std::ostringstream &s, const GaugeEntry &e) {
        s << e.gauge.value();
    };
    auto renderHistogram = [](std::ostringstream &s,
                              const HistogramEntry &e) {
        const Histogram &h = e.histogram;
        s << "{\"bounds\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i)
            s << (i ? ", " : "") << formatDouble(h.bounds()[i]);
        s << "], \"counts\": [";
        auto counts = h.bucketCounts();
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            s << (i ? ", " : "") << counts[i];
            total += counts[i];
        }
        s << "], \"count\": " << total;
        if (total > 0) {
            s << ", \"min\": " << formatDouble(h.minValue())
              << ", \"max\": " << formatDouble(h.maxValue());
        }
        s << "}";
    };

    auto emitClass = [&](const std::string &indent, Stability wanted,
                         bool &needComma) {
        appendSection(out, indent, "counters", counters_, wanted,
                      renderCounter, needComma);
        appendSection(out, indent, "gauges", gauges_, wanted, renderGauge,
                      needComma);
        appendSection(out, indent, "histograms", histograms_, wanted,
                      renderHistogram, needComma);
    };

    out << "{\n";
    bool needComma = false;
    emitClass("  ", Stability::Stable, needComma);
    if (includeScheduling) {
        out << ",\n  \"scheduling\": {\n";
        bool innerComma = false;
        emitClass("    ", Stability::Scheduling, innerComma);
        out << "\n  }";
    }
    out << "\n}\n";
    return out.str();
}

void
Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, entry] : counters_)
        entry->counter.reset();
    for (auto &[name, entry] : gauges_)
        entry->gauge.reset();
    for (auto &[name, entry] : histograms_)
        entry->histogram.reset();
}

} // namespace chaos::obs
