#include "obs/events.hpp"

#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace chaos::obs {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::HealthTransition: return "health_transition";
      case EventKind::Imputation: return "imputation";
      case EventKind::Clamp: return "clamp";
      case EventKind::Substitution: return "substitution";
      case EventKind::FaultActivation: return "fault_activation";
      case EventKind::Backpressure: return "backpressure";
      case EventKind::ModelDrift: return "model_drift";
      case EventKind::Quarantine: return "quarantine";
      case EventKind::Retrain: return "retrain";
      case EventKind::Promote: return "promote";
      case EventKind::Rollback: return "rollback";
      case EventKind::ConnectionDrop: return "connection_drop";
    }
    return "unknown";
}

std::uint64_t
wallClockMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(capacity_);
}

EventLog &
EventLog::instance()
{
    static EventLog log;
    return log;
}

void
EventLog::emit(EventKind kind, std::string source, std::string detail,
               std::uint64_t count)
{
    // Looked up outside mu_ so the registry mutex (taken once, on
    // first registration) never nests inside the log lock.
    static Counter &droppedCounter = Registry::instance().counter(
        "chaos.obs.events_dropped");
    Event event;
    event.tsMs = wallClockMs();
    event.kind = kind;
    event.source = std::move(source);
    event.detail = std::move(detail);
    event.count = count;
    {
        std::lock_guard<std::mutex> lock(mu_);
        event.seq = nextSeq_++;
        if (ring_.size() < capacity_) {
            ring_.push_back(event);
        } else {
            ring_[head_] = event;
            head_ = (head_ + 1) % capacity_;
            ++dropped_;
            droppedCounter.add();
        }
    }
    // Feed the flight recorder outside mu_ (it takes its own lock and
    // may dump a bundle); only the process-wide log is a black-box
    // source — test-local logs stay silent.
    if (this == &instance())
        FlightRecorder::instance().onEvent(event);
}

std::vector<Event>
EventLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::uint64_t
EventLog::totalEmitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return nextSeq_;
}

std::uint64_t
EventLog::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

void
EventLog::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    head_ = 0;
}

namespace {


} // namespace

std::string
EventLog::jsonDump() const
{
    auto events = snapshot();
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        out << (i ? ",\n" : "\n") << "  {\"seq\": " << e.seq
            << ", \"ts_ms\": " << e.tsMs
            << ", \"kind\": \"" << eventKindName(e.kind) << "\""
            << ", \"source\": \"" << jsonEscape(e.source) << "\""
            << ", \"detail\": \"" << jsonEscape(e.detail) << "\""
            << ", \"count\": " << e.count << "}";
    }
    out << (events.empty() ? "]" : "\n]") << "\n";
    return out.str();
}

} // namespace chaos::obs
