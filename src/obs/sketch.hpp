/**
 * @file
 * Mergeable quantile sketch (DDSketch-style relative-error buckets)
 * for hierarchical roll-ups.
 *
 * A fixed-bucket Histogram answers "how many drains took < 1 ms?"
 * but its percentiles are only as good as bounds chosen up front —
 * useless when one sketch must cover an Atom's 0.3 W residuals and a
 * Xeon's 40 W ones. The QuantileSketch instead buckets values on a
 * logarithmic grid: bucket i covers (gamma^(i-1), gamma^i] with
 * gamma = (1 + alpha) / (1 - alpha), so every reported quantile is
 * within relative error alpha of a true observation, at any scale,
 * with O(log range / alpha) buckets.
 *
 * The property that makes it the roll-up primitive: two sketches with
 * the same alpha merge by adding per-bucket counts — an associative,
 * commutative O(buckets) operation. A rack's sketch is the merge of
 * its fleets' sketches is the merge of their machines' points, and
 * the result is bit-identical regardless of merge order or thread
 * count (integer counts; exact min/max kept commutatively).
 *
 * Negative values are bucketed on a mirrored grid and values in
 * [-minIndexable, minIndexable] land in a dedicated zero bucket, so
 * signed quantities (bias, residuals) work too. Non-finite inputs are
 * ignored. Like the rest of this library it sits below chaos_util:
 * failures (alpha mismatch on merge) report through a bool, never an
 * exception.
 */
#ifndef CHAOS_OBS_SKETCH_HPP
#define CHAOS_OBS_SKETCH_HPP

#include <cstdint>
#include <map>
#include <string>

namespace chaos::obs {

/** Mergeable relative-error quantile sketch (see file comment). */
class QuantileSketch
{
  public:
    /**
     * @param relativeAccuracy Quantile relative-error bound alpha in
     *        (0, 1); 0.01 means a reported p99 is within 1 % of a
     *        true observation's value. Out-of-range values are
     *        clamped into [1e-4, 0.5].
     */
    explicit QuantileSketch(double relativeAccuracy = 0.01);

    /**
     * Record @p count occurrences of @p v. Non-finite values are
     * ignored (meter dropouts are a health concern, not a
     * distribution sample); count 0 is a no-op.
     */
    void add(double v, std::uint64_t count = 1);

    /**
     * Fold @p other into this sketch (per-bucket count addition).
     * @return False (leaving this sketch untouched) when the two
     *         sketches were built with different accuracies.
     */
    bool merge(const QuantileSketch &other);

    /** Total recorded occurrences. */
    std::uint64_t count() const { return total_; }

    /** True when nothing was recorded. */
    bool empty() const { return total_ == 0; }

    /**
     * Value at quantile @p q in [0, 1] (clamped): a bucket-midpoint
     * estimate within the configured relative accuracy of a true
     * observation, clamped to the exact observed [min, max].
     * @return NaN when the sketch is empty.
     */
    double quantile(double q) const;

    /** Exact smallest recorded value (meaningful when !empty()). */
    double minValue() const { return min_; }

    /** Exact largest recorded value (meaningful when !empty()). */
    double maxValue() const { return max_; }

    /** The relative-error bound the sketch was built with. */
    double relativeAccuracy() const { return alpha_; }

    /** Buckets currently occupied (memory is O(buckets)). */
    std::size_t numBuckets() const
    {
        return positive_.size() + negative_.size() + (zero_ ? 1 : 0);
    }

    /** Approximate heap footprint in bytes (for budget gates). */
    std::size_t memoryBytes() const;

    /** Forget everything (accuracy is kept). */
    void clear();

    /**
     * Single-line JSON: accuracy, count, exact min/max, and the
     * occupied buckets as [index, count] pairs in ascending index
     * order. Deterministic: equal sketch states serialize to equal
     * bytes, so roll-up snapshots can be compared bitwise.
     */
    std::string toJson() const;

  private:
    std::int32_t bucketIndex(double magnitude) const;
    double bucketValue(std::int32_t index) const;

    double alpha_;
    double gamma_;
    double logGamma_;
    std::uint64_t total_ = 0;
    std::uint64_t zero_ = 0;
    double min_;
    double max_;
    std::map<std::int32_t, std::uint64_t> positive_;
    std::map<std::int32_t, std::uint64_t> negative_;
};

} // namespace chaos::obs

#endif // CHAOS_OBS_SKETCH_HPP
