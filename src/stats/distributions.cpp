#include "stats/distributions.hpp"

#include <cmath>
#include <numbers>

namespace chaos {

double
normalPdf(double z)
{
    static const double inv_sqrt_2pi =
        1.0 / std::sqrt(2.0 * std::numbers::pi);
    return inv_sqrt_2pi * std::exp(-0.5 * z * z);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double
waldPValue(double z)
{
    const double abs_z = std::fabs(z);
    return std::erfc(abs_z / std::numbers::sqrt2);
}

} // namespace chaos
