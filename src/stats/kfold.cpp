#include "stats/kfold.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"

namespace chaos {

std::vector<FoldSplit>
kFold(size_t numRows, size_t k, Rng &rng)
{
    panicIf(k < 2, "kFold requires k >= 2");
    panicIf(k > numRows, "kFold requires k <= numRows");

    std::vector<size_t> order(numRows);
    for (size_t i = 0; i < numRows; ++i)
        order[i] = i;
    rng.shuffle(order);

    std::vector<FoldSplit> folds(k);
    for (size_t i = 0; i < numRows; ++i) {
        const size_t fold = i % k;
        for (size_t f = 0; f < k; ++f) {
            auto &split = folds[f];
            (f == fold ? split.testIndices : split.trainIndices)
                .push_back(order[i]);
        }
    }
    for (auto &split : folds) {
        std::sort(split.trainIndices.begin(), split.trainIndices.end());
        std::sort(split.testIndices.begin(), split.testIndices.end());
    }
    return folds;
}

namespace {

/** Map each distinct group id to the list of rows it owns. */
std::map<int, std::vector<size_t>>
groupRows(const std::vector<int> &groupIds)
{
    std::map<int, std::vector<size_t>> groups;
    for (size_t i = 0; i < groupIds.size(); ++i)
        groups[groupIds[i]].push_back(i);
    return groups;
}

} // namespace

std::vector<FoldSplit>
groupedKFold(const std::vector<int> &groupIds, size_t k, Rng &rng)
{
    panicIf(groupIds.empty(), "groupedKFold: empty input");
    const auto groups = groupRows(groupIds);

    size_t folds_wanted = k;
    if (groups.size() < folds_wanted) {
        warn("groupedKFold: fewer groups than folds; reducing fold "
             "count");
        folds_wanted = groups.size();
    }
    panicIf(folds_wanted < 2,
            "groupedKFold needs at least 2 distinct groups");

    // Shuffle group order, then deal groups round-robin into folds.
    std::vector<int> group_keys;
    group_keys.reserve(groups.size());
    for (const auto &[key, rows] : groups)
        group_keys.push_back(key);
    std::vector<size_t> order(group_keys.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    std::vector<FoldSplit> folds(folds_wanted);
    for (size_t pos = 0; pos < order.size(); ++pos) {
        const auto &rows = groups.at(group_keys[order[pos]]);
        const size_t fold = pos % folds_wanted;
        for (size_t f = 0; f < folds_wanted; ++f) {
            auto &split = folds[f];
            auto &dest =
                (f == fold ? split.testIndices : split.trainIndices);
            dest.insert(dest.end(), rows.begin(), rows.end());
        }
    }
    for (auto &split : folds) {
        std::sort(split.trainIndices.begin(), split.trainIndices.end());
        std::sort(split.testIndices.begin(), split.testIndices.end());
    }
    return folds;
}

FoldSplit
groupedHoldout(const std::vector<int> &groupIds, double trainFraction,
               Rng &rng)
{
    panicIf(groupIds.empty(), "groupedHoldout: empty input");
    panicIf(trainFraction <= 0.0 || trainFraction >= 1.0,
            "groupedHoldout: trainFraction must be in (0, 1)");

    const auto groups = groupRows(groupIds);
    std::vector<int> group_keys;
    for (const auto &[key, rows] : groups)
        group_keys.push_back(key);
    std::vector<size_t> order(group_keys.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    // At least one group on each side.
    size_t train_groups = static_cast<size_t>(
        trainFraction * static_cast<double>(group_keys.size()) + 0.5);
    train_groups = std::clamp<size_t>(train_groups, 1,
                                      group_keys.size() - 1);

    FoldSplit split;
    for (size_t pos = 0; pos < order.size(); ++pos) {
        const auto &rows = groups.at(group_keys[order[pos]]);
        auto &dest = pos < train_groups ? split.trainIndices
                                        : split.testIndices;
        dest.insert(dest.end(), rows.begin(), rows.end());
    }
    std::sort(split.trainIndices.begin(), split.trainIndices.end());
    std::sort(split.testIndices.begin(), split.testIndices.end());
    return split;
}

} // namespace chaos
