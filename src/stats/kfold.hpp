/**
 * @file
 * K-fold cross-validation splits.
 *
 * The paper evaluates with 5-fold cross validation where training and
 * test sets come from *separate application runs* (the scheduler
 * partitions work differently across runs). groupedKFold() therefore
 * folds on run identifiers, never splitting a run between train and
 * test.
 */
#ifndef CHAOS_STATS_KFOLD_HPP
#define CHAOS_STATS_KFOLD_HPP

#include <cstddef>
#include <vector>

#include "util/random.hpp"

namespace chaos {

/** One cross-validation split: row indices for train and test. */
struct FoldSplit
{
    std::vector<size_t> trainIndices;  ///< Rows used for fitting.
    std::vector<size_t> testIndices;   ///< Held-out rows.
};

/**
 * Plain row-level k-fold split of @p numRows rows.
 *
 * @param numRows Total number of rows.
 * @param k Number of folds (2 <= k <= numRows).
 * @param rng Source of the row permutation.
 */
std::vector<FoldSplit> kFold(size_t numRows, size_t k, Rng &rng);

/**
 * Group-aware k-fold split: rows sharing a group id (e.g. a workload
 * run) always land on the same side of the split. If there are fewer
 * distinct groups than folds, the fold count is reduced to the group
 * count with a warning.
 *
 * @param groupIds Per-row group identifier.
 * @param k Requested number of folds.
 * @param rng Source of the group permutation.
 */
std::vector<FoldSplit> groupedKFold(const std::vector<int> &groupIds,
                                    size_t k, Rng &rng);

/**
 * Train/test split where a given fraction of *groups* becomes
 * training data (the paper trains on ~1/10 of the data volume and
 * tests on the rest).
 */
FoldSplit groupedHoldout(const std::vector<int> &groupIds,
                         double trainFraction, Rng &rng);

} // namespace chaos

#endif // CHAOS_STATS_KFOLD_HPP
