/**
 * @file
 * Normal-distribution helpers used by the Wald significance test in
 * stepwise regression (paper Algorithm 1, step 4).
 */
#ifndef CHAOS_STATS_DISTRIBUTIONS_HPP
#define CHAOS_STATS_DISTRIBUTIONS_HPP

namespace chaos {

/** Standard normal probability density at @p z. */
double normalPdf(double z);

/** Standard normal cumulative distribution at @p z. */
double normalCdf(double z);

/**
 * Two-sided p-value of a Wald statistic z = coefficient / stderr,
 * i.e. 2 * (1 - Phi(|z|)).
 */
double waldPValue(double z);

} // namespace chaos

#endif // CHAOS_STATS_DISTRIBUTIONS_HPP
