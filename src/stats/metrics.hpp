/**
 * @file
 * Model error metrics, including the paper's Dynamic Range Error.
 *
 * DRE (Eq. 6 of the paper) is rMSE divided by the dynamic power range
 * (Pmax - Pidle). It is the paper's headline contribution on the
 * evaluation side: unlike percent-of-total-power error it is not
 * flattered by large static power, so it is comparable across
 * platforms whose operating power differs by orders of magnitude.
 */
#ifndef CHAOS_STATS_METRICS_HPP
#define CHAOS_STATS_METRICS_HPP

#include <string>
#include <vector>

namespace chaos {

/** Mean squared error between predictions and actuals. */
double meanSquaredError(const std::vector<double> &predicted,
                        const std::vector<double> &actual);

/** Root-mean-squared error. */
double rootMeanSquaredError(const std::vector<double> &predicted,
                            const std::vector<double> &actual);

/** Mean absolute error. */
double meanAbsoluteError(const std::vector<double> &predicted,
                         const std::vector<double> &actual);

/** Median of |predicted - actual|. */
double medianAbsoluteError(const std::vector<double> &predicted,
                           const std::vector<double> &actual);

/**
 * Median of |predicted - actual| / actual; the "median relative
 * error" style metric most prior work reported (paper: 0.5-2.5%).
 * Actual values of 0 are skipped.
 */
double medianRelativeError(const std::vector<double> &predicted,
                           const std::vector<double> &actual);

/** rMSE divided by the mean of @p actual ("% Err" in Table III). */
double percentError(const std::vector<double> &predicted,
                    const std::vector<double> &actual);

/** Coefficient of determination R^2. */
double rSquared(const std::vector<double> &predicted,
                const std::vector<double> &actual);

/**
 * Dynamic Range Error (paper Eq. 6): rMSE / (Pmax - Pidle).
 *
 * @param predicted Model predictions.
 * @param actual Measured power.
 * @param powerIdle Platform idle power (bottom of the dynamic range).
 * @param powerMax Platform maximum power.
 */
double dynamicRangeError(const std::vector<double> &predicted,
                         const std::vector<double> &actual,
                         double powerIdle, double powerMax);

/**
 * DRE with the dynamic range estimated from the observed data
 * (min/max of @p actual); used when the platform envelope has not
 * been probed separately.
 */
double dynamicRangeErrorObserved(const std::vector<double> &predicted,
                                 const std::vector<double> &actual);

/** Bundle of all the metrics for one evaluation. */
struct ErrorReport
{
    double mse = 0.0;         ///< Mean squared error (W^2).
    double rmse = 0.0;        ///< Root mean squared error (W).
    double mae = 0.0;         ///< Mean absolute error (W).
    double medianAbs = 0.0;   ///< Median absolute error (W).
    double medianRel = 0.0;   ///< Median relative error (fraction).
    double pctErr = 0.0;      ///< rMSE / mean power (fraction).
    double dre = 0.0;         ///< Dynamic range error (fraction).
    double r2 = 0.0;          ///< Coefficient of determination.

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * Compute every metric at once.
 *
 * @param powerIdle Bottom of the platform dynamic range.
 * @param powerMax Top of the platform dynamic range.
 */
ErrorReport evaluateErrors(const std::vector<double> &predicted,
                           const std::vector<double> &actual,
                           double powerIdle, double powerMax);

} // namespace chaos

#endif // CHAOS_STATS_METRICS_HPP
