#include "stats/metrics.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace chaos {

namespace {

void
checkShapes(const std::vector<double> &predicted,
            const std::vector<double> &actual)
{
    panicIf(predicted.size() != actual.size(),
            "metric: prediction/actual length mismatch");
    panicIf(predicted.empty(), "metric: empty inputs");
}

} // namespace

double
meanSquaredError(const std::vector<double> &predicted,
                 const std::vector<double> &actual)
{
    checkShapes(predicted, actual);
    double acc = 0.0;
    for (size_t i = 0; i < predicted.size(); ++i) {
        const double d = predicted[i] - actual[i];
        acc += d * d;
    }
    return acc / static_cast<double>(predicted.size());
}

double
rootMeanSquaredError(const std::vector<double> &predicted,
                     const std::vector<double> &actual)
{
    return std::sqrt(meanSquaredError(predicted, actual));
}

double
meanAbsoluteError(const std::vector<double> &predicted,
                  const std::vector<double> &actual)
{
    checkShapes(predicted, actual);
    double acc = 0.0;
    for (size_t i = 0; i < predicted.size(); ++i)
        acc += std::fabs(predicted[i] - actual[i]);
    return acc / static_cast<double>(predicted.size());
}

double
medianAbsoluteError(const std::vector<double> &predicted,
                    const std::vector<double> &actual)
{
    checkShapes(predicted, actual);
    std::vector<double> abs_errors(predicted.size());
    for (size_t i = 0; i < predicted.size(); ++i)
        abs_errors[i] = std::fabs(predicted[i] - actual[i]);
    return median(std::move(abs_errors));
}

double
medianRelativeError(const std::vector<double> &predicted,
                    const std::vector<double> &actual)
{
    checkShapes(predicted, actual);
    std::vector<double> rel_errors;
    rel_errors.reserve(predicted.size());
    for (size_t i = 0; i < predicted.size(); ++i) {
        if (actual[i] != 0.0) {
            rel_errors.push_back(
                std::fabs(predicted[i] - actual[i]) /
                std::fabs(actual[i]));
        }
    }
    panicIf(rel_errors.empty(),
            "medianRelativeError: all actual values are zero");
    return median(std::move(rel_errors));
}

double
percentError(const std::vector<double> &predicted,
             const std::vector<double> &actual)
{
    const double mean_power = mean(actual);
    panicIf(mean_power == 0.0, "percentError: zero mean power");
    return rootMeanSquaredError(predicted, actual) / mean_power;
}

double
rSquared(const std::vector<double> &predicted,
         const std::vector<double> &actual)
{
    checkShapes(predicted, actual);
    const double mu = mean(actual);
    double ss_res = 0.0, ss_tot = 0.0;
    for (size_t i = 0; i < actual.size(); ++i) {
        ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
        ss_tot += (actual[i] - mu) * (actual[i] - mu);
    }
    if (ss_tot <= 1e-300)
        return ss_res <= 1e-300 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

double
dynamicRangeError(const std::vector<double> &predicted,
                  const std::vector<double> &actual, double powerIdle,
                  double powerMax)
{
    panicIf(powerMax <= powerIdle,
            "dynamicRangeError: non-positive dynamic range");
    return rootMeanSquaredError(predicted, actual) /
           (powerMax - powerIdle);
}

double
dynamicRangeErrorObserved(const std::vector<double> &predicted,
                          const std::vector<double> &actual)
{
    return dynamicRangeError(predicted, actual, minValue(actual),
                             maxValue(actual));
}

std::string
ErrorReport::summary() const
{
    return "rMSE=" + formatDouble(rmse, 2) + "W  %err=" +
           formatPercent(pctErr, 1) + "  DRE=" + formatPercent(dre, 1) +
           "  medRel=" + formatPercent(medianRel, 2) +
           "  R2=" + formatDouble(r2, 3);
}

ErrorReport
evaluateErrors(const std::vector<double> &predicted,
               const std::vector<double> &actual, double powerIdle,
               double powerMax)
{
    ErrorReport report;
    report.mse = meanSquaredError(predicted, actual);
    report.rmse = std::sqrt(report.mse);
    report.mae = meanAbsoluteError(predicted, actual);
    report.medianAbs = medianAbsoluteError(predicted, actual);
    report.medianRel = medianRelativeError(predicted, actual);
    report.pctErr = percentError(predicted, actual);
    report.dre = dynamicRangeError(predicted, actual, powerIdle,
                                   powerMax);
    report.r2 = rSquared(predicted, actual);
    return report;
}

} // namespace chaos
