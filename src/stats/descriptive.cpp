#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace chaos {

double
mean(const std::vector<double> &values)
{
    panicIf(values.empty(), "mean() of empty vector");
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double mu = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - mu) * (v - mu);
    return acc / static_cast<double>(values.size() - 1);
}

double
stddev(const std::vector<double> &values)
{
    return std::sqrt(variance(values));
}

double
minValue(const std::vector<double> &values)
{
    panicIf(values.empty(), "minValue() of empty vector");
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(const std::vector<double> &values)
{
    panicIf(values.empty(), "maxValue() of empty vector");
    return *std::max_element(values.begin(), values.end());
}

double
median(std::vector<double> values)
{
    panicIf(values.empty(), "median() of empty vector");
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
quantile(std::vector<double> values, double q)
{
    panicIf(values.empty(), "quantile() of empty vector");
    panicIf(q < 0.0 || q > 1.0, "quantile() requires q in [0, 1]");
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double>
distinctSorted(std::vector<double> values, double tol)
{
    std::sort(values.begin(), values.end());
    std::vector<double> out;
    for (double v : values) {
        if (out.empty() || v - out.back() > tol)
            out.push_back(v);
    }
    return out;
}

std::vector<double>
quantileKnots(const std::vector<double> &values, size_t numKnots)
{
    if (numKnots == 0)
        return {};
    const auto distinct = distinctSorted(values);
    if (distinct.size() < 2)
        return {};  // Constant feature: nothing to split on.
    if (distinct.size() <= numKnots + 1) {
        // Discrete feature: every interior level is a knot.
        return std::vector<double>(distinct.begin(),
                                   distinct.end() - 1);
    }
    // Sort once and interpolate directly (quantile() would re-sort
    // its input per call).
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> knots;
    knots.reserve(numKnots);
    for (size_t k = 1; k <= numKnots; ++k) {
        const double q = static_cast<double>(k) /
                         static_cast<double>(numKnots + 1);
        const double pos =
            q * static_cast<double>(sorted.size() - 1);
        const size_t lo = static_cast<size_t>(pos);
        const size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        knots.push_back(sorted[lo] * (1.0 - frac) +
                        sorted[hi] * frac);
    }
    return distinctSorted(std::move(knots));
}

void
RunningStats::add(double value)
{
    if (n == 0) {
        minV = maxV = value;
    } else {
        minV = std::min(minV, value);
        maxV = std::max(maxV, value);
    }
    ++n;
    const double delta = value - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (value - mu);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace chaos
