/**
 * @file
 * Descriptive statistics over double sequences.
 */
#ifndef CHAOS_STATS_DESCRIPTIVE_HPP
#define CHAOS_STATS_DESCRIPTIVE_HPP

#include <cstddef>
#include <vector>

namespace chaos {

/** Arithmetic mean; panic()s on an empty input. */
double mean(const std::vector<double> &values);

/** Sample variance (n - 1 denominator); 0 for fewer than 2 values. */
double variance(const std::vector<double> &values);

/** Sample standard deviation. */
double stddev(const std::vector<double> &values);

/** Minimum; panic()s on an empty input. */
double minValue(const std::vector<double> &values);

/** Maximum; panic()s on an empty input. */
double maxValue(const std::vector<double> &values);

/** Median (average of middle two for even counts). */
double median(std::vector<double> values);

/**
 * Empirical quantile with linear interpolation between order
 * statistics; @p q in [0, 1].
 */
double quantile(std::vector<double> values, double q);

/**
 * Distinct values of @p values sorted ascending; used for candidate
 * knot generation and switching-state discovery. Values closer than
 * @p tol are merged.
 */
std::vector<double> distinctSorted(std::vector<double> values,
                                   double tol = 1e-9);

/**
 * Candidate spline knots for one feature: @p numKnots interior
 * quantiles of @p values, de-duplicated and sorted ascending.
 * Discrete features (at most numKnots + 1 distinct levels, e.g. a
 * P-state counter) return every interior level instead; constant
 * features return no knots. Shared by the MARS degree-1/2 forward
 * passes, which previously each re-ran the distinct-sort per feature.
 */
std::vector<double> quantileKnots(const std::vector<double> &values,
                                  size_t numKnots);

/**
 * Streaming mean/variance accumulator (Welford). Used by online
 * monitoring and the counter sampler.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double value);

    /** Number of observations so far. */
    size_t count() const { return n; }
    /** Mean of observations so far (0 when empty). */
    double mean() const { return n > 0 ? mu : 0.0; }
    /** Sample variance so far (0 for fewer than 2). */
    double variance() const { return n > 1 ? m2 / double(n - 1) : 0.0; }
    /** Sample standard deviation so far. */
    double stddev() const;
    /** Minimum so far. */
    double min() const { return minV; }
    /** Maximum so far. */
    double max() const { return maxV; }

  private:
    size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double minV = 0.0;
    double maxV = 0.0;
};

} // namespace chaos

#endif // CHAOS_STATS_DESCRIPTIVE_HPP
