/**
 * @file
 * Pearson correlation, the input to step 1 of the CHAOS feature
 * reduction algorithm (prune |r| > 0.95 pairs).
 */
#ifndef CHAOS_STATS_CORRELATION_HPP
#define CHAOS_STATS_CORRELATION_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace chaos {

/**
 * Pearson correlation coefficient of two equal-length vectors.
 * Returns 0 when either vector is (numerically) constant.
 */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Pairwise correlation matrix of the columns of @p x (cols x cols).
 * Constant columns correlate 0 with everything and 1 with themselves.
 */
Matrix correlationMatrix(const Matrix &x);

} // namespace chaos

#endif // CHAOS_STATS_CORRELATION_HPP
