#include "stats/correlation.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace chaos {

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    panicIf(a.size() != b.size(), "pearson() length mismatch");
    panicIf(a.empty(), "pearson() of empty vectors");

    const double n = static_cast<double>(a.size());
    double sa = 0.0, sb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        sa += a[i];
        sb += b[i];
    }
    const double ma = sa / n;
    const double mb = sb / n;

    double cov = 0.0, va = 0.0, vb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va <= 1e-300 || vb <= 1e-300)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

Matrix
correlationMatrix(const Matrix &x)
{
    const size_t n = x.rows();
    const size_t p = x.cols();
    panicIf(n == 0, "correlationMatrix of empty matrix");

    // Column means.
    std::vector<double> mu(p, 0.0);
    for (size_t r = 0; r < n; ++r) {
        const double *row = x.rowPtr(r);
        for (size_t c = 0; c < p; ++c)
            mu[c] += row[c];
    }
    for (double &m : mu)
        m /= static_cast<double>(n);

    // Centered Gram matrix in one pass over the data.
    Matrix cov(p, p);
    for (size_t r = 0; r < n; ++r) {
        const double *row = x.rowPtr(r);
        for (size_t i = 0; i < p; ++i) {
            const double di = row[i] - mu[i];
            if (di == 0.0)
                continue;
            double *cov_row = cov.rowPtr(i);
            for (size_t j = i; j < p; ++j)
                cov_row[j] += di * (row[j] - mu[j]);
        }
    }

    Matrix corr(p, p);
    for (size_t i = 0; i < p; ++i) {
        corr(i, i) = 1.0;
        for (size_t j = i + 1; j < p; ++j) {
            const double vi = cov(i, i);
            const double vj = cov(j, j);
            double r = 0.0;
            if (vi > 1e-300 && vj > 1e-300)
                r = cov(i, j) / std::sqrt(vi * vj);
            corr(i, j) = r;
            corr(j, i) = r;
        }
    }
    return corr;
}

} // namespace chaos
