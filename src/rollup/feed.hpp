/**
 * @file
 * Feeds that turn per-fleet telemetry into roll-up tree updates.
 *
 * Both feeds share a placement map — machine id → (group path,
 * platform) — because neither the serving layer nor the telemetry
 * stream knows where a machine sits in the datacenter; placement is
 * deployment metadata. Unplaced machines land under the "unplaced"
 * group with platform "unknown" rather than being dropped: a roll-up
 * that silently loses machines is worse than one with an honest
 * catch-all row.
 *
 *  - LiveRollupFeed joins a FleetServer's FleetSnapshot (watts,
 *    health, quarantine) with the FleetMonitor's QualitySnapshot
 *    (rolling rMSE/DRE, drift) by machine id — both are sorted, so
 *    the join is a linear merge — and upserts one MachineObservation
 *    per machine. attach() hooks the server's periodic-snapshot
 *    callback; observe() serves lockstep replay loops.
 *
 *  - JsonlRollupFeed replays the TelemetryExporter's JSONL file
 *    offline through obs::jsonParse. "fleet" and "quality" records
 *    update complementary halves of a machine's observation (the
 *    stream interleaves them), "metrics" records are skipped.
 *
 * Threading: LiveRollupFeed serializes observe()/aggregate() behind
 * one mutex because the live callback runs on the server's drainer
 * thread. JsonlRollupFeed is single-threaded by construction.
 */
#ifndef CHAOS_ROLLUP_FEED_HPP
#define CHAOS_ROLLUP_FEED_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "monitor/fleet_monitor.hpp"
#include "rollup/rollup.hpp"
#include "serve/server.hpp"

namespace chaos::rollup {

/** Where a machine lives and what it is. */
struct Placement
{
    std::string path;     ///< Group path ("dc0/row1/rack2/fleet0").
    std::string platform; ///< Machine-class name ("Core2").
};

/** Group path used for machines with no placement entry. */
inline constexpr const char *kUnplacedGroup = "unplaced";

/** Joins live fleet + quality snapshots into a RollupTree. */
class LiveRollupFeed
{
  public:
    /** @p tree must outlive the feed. */
    explicit LiveRollupFeed(RollupTree &tree) : tree_(tree) {}

    /** Register machine @p id's placement (replaces any previous). */
    void place(const std::string &id, const std::string &groupPath,
               const std::string &platform);

    /**
     * Join one fleet snapshot with one quality snapshot (merge join
     * on machine id; machines absent from @p quality keep NaN DRE)
     * and upsert every machine into the tree.
     */
    void observe(const serve::FleetSnapshot &fleet,
                 const monitor::QualitySnapshot &quality);

    /**
     * Install an onSnapshot callback on @p server that calls
     * observe(snapshot, monitor.snapshot()). The callback runs on the
     * drainer thread with no entry locks held (see FleetServer), so
     * taking the monitor snapshot inside it is safe. Call before
     * server.start(); the feed and monitor must outlive the server's
     * serving.
     */
    void attach(serve::FleetServer &server,
                monitor::FleetMonitor &monitor);

    /** Aggregate the tree (serialized against observe()). */
    NodeSummary aggregate() const;

    /** Snapshots consumed so far. */
    std::uint64_t observed() const;

  private:
    RollupTree &tree_;
    std::map<std::string, Placement> placements_;
    std::uint64_t observed_ = 0;
    mutable std::mutex mu_;
};

/** Counters from one JSONL replay. */
struct JsonlReplayStats
{
    std::uint64_t lines = 0;          ///< Lines read.
    std::uint64_t fleetRecords = 0;
    std::uint64_t qualityRecords = 0;
    std::uint64_t skipped = 0;        ///< Other record types.
    std::uint64_t lastTick = 0;       ///< Highest tick seen.
};

/** Replays exporter telemetry JSONL into a RollupTree. */
class JsonlRollupFeed
{
  public:
    /** @p tree must outlive the feed. */
    explicit JsonlRollupFeed(RollupTree &tree) : tree_(tree) {}

    /** Register machine @p id's placement (replaces any previous). */
    void place(const std::string &id, const std::string &groupPath,
               const std::string &platform);

    /**
     * Replay the telemetry file at @p path front to back. Later
     * records win, so after replay the tree holds each machine's
     * final state. Raises RecoverableError when the file cannot be
     * opened or a line is not valid JSON.
     */
    JsonlReplayStats replayFile(const std::string &path);

    /**
     * Feed one telemetry line. @return False when the line was
     * skipped (not a fleet/quality record); raises RecoverableError
     * on malformed JSON.
     */
    bool feedLine(const std::string &line, JsonlReplayStats &stats);

  private:
    /** Current (partially joined) per-machine state. */
    MachineObservation &slot(const std::string &id);
    void push(const MachineObservation &m);

    RollupTree &tree_;
    std::map<std::string, Placement> placements_;
    std::map<std::string, MachineObservation> current_;
};

} // namespace chaos::rollup

#endif // CHAOS_ROLLUP_FEED_HPP
