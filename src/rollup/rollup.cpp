#include "rollup/rollup.hpp"

#include "obs/json.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace chaos::rollup {

namespace {

/// Shortest round-trip double formatting; non-finite becomes null so
/// the output stays valid JSON.
std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/// Ranking order: worst (largest) DRE first, machine id as the
/// deterministic tie-break.
bool
rankBefore(const MachineRank &a, const MachineRank &b)
{
    if (a.rollingDre != b.rollingDre)
        return a.rollingDre > b.rollingDre;
    return a.id < b.id;
}

/// Insert into a bounded ranking kept sorted by rankBefore.
void
rankInsert(std::vector<MachineRank> &worst, MachineRank rank,
           std::size_t worstN)
{
    if (worstN == 0)
        return;
    auto it = std::lower_bound(worst.begin(), worst.end(), rank,
                               rankBefore);
    if (worst.size() >= worstN) {
        if (it == worst.end())
            return; // Not bad enough to displace anyone.
        worst.pop_back();
        it = std::lower_bound(worst.begin(), worst.end(), rank,
                              rankBefore);
    }
    worst.insert(it, std::move(rank));
}

void
sketchJson(std::ostringstream &out, const obs::QuantileSketch &sketch)
{
    out << "{\"count\": " << sketch.count();
    if (!sketch.empty()) {
        out << ", \"p50\": " << jsonNum(sketch.quantile(0.5))
            << ", \"p90\": " << jsonNum(sketch.quantile(0.9))
            << ", \"p99\": " << jsonNum(sketch.quantile(0.99))
            << ", \"max\": " << jsonNum(sketch.maxValue());
    }
    out << "}";
}

} // namespace

void
PlatformStats::merge(const PlatformStats &other)
{
    machines += other.machines;
    metered += other.metered;
    drifting += other.drifting;
    watts += other.watts;
}

void
RollupStats::addMachine(const MachineObservation &m,
                        const std::string &path, std::size_t worstN)
{
    ++machines;
    watts += m.watts;
    samples += m.samples;
    referenceSamples += m.referenceSamples;
    dropped += m.dropped;

    switch (m.health) {
      case MachineHealth::Healthy: ++healthy; break;
      case MachineHealth::Degraded: ++degraded; break;
      case MachineHealth::Stale: ++stale; break;
      case MachineHealth::Lost: ++lost; break;
    }
    switch (m.quality) {
      case ModelQuality::Unknown: ++qualityUnknown; break;
      case ModelQuality::Ok: ++qualityOk; break;
      case ModelQuality::Drifting: ++qualityDrifting; break;
    }
    if (m.quarantined) {
        ++quarantined;
        substitutedW += m.watts;
    }

    const bool isMetered = m.referenceSamples > 0;
    if (isMetered) {
        ++metered;
        rmseW.add(m.windowRmseW);
    }
    if (std::isfinite(m.rollingDre)) {
        dre.add(m.rollingDre);
        rankInsert(worst,
                   MachineRank{m.id, path, m.rollingDre, m.windowRmseW,
                               m.drifted},
                   worstN);
    }

    PlatformStats &p = platforms[m.platform];
    ++p.machines;
    p.watts += m.watts;
    if (isMetered)
        ++p.metered;
    if (m.quality == ModelQuality::Drifting)
        ++p.drifting;
}

void
RollupStats::merge(const RollupStats &other, std::size_t worstN)
{
    machines += other.machines;
    metered += other.metered;
    watts += other.watts;
    substitutedW += other.substitutedW;
    samples += other.samples;
    referenceSamples += other.referenceSamples;
    dropped += other.dropped;
    healthy += other.healthy;
    degraded += other.degraded;
    stale += other.stale;
    lost += other.lost;
    qualityUnknown += other.qualityUnknown;
    qualityOk += other.qualityOk;
    qualityDrifting += other.qualityDrifting;
    quarantined += other.quarantined;

    dre.merge(other.dre);
    rmseW.merge(other.rmseW);

    for (const auto &[name, stats] : other.platforms)
        platforms[name].merge(stats);

    // Merge two rankings already sorted by rankBefore, keep the
    // worst worstN. Linear, like a tournament round.
    std::vector<MachineRank> merged;
    merged.reserve(std::min(worst.size() + other.worst.size(), worstN));
    std::size_t i = 0, j = 0;
    while (merged.size() < worstN &&
           (i < worst.size() || j < other.worst.size())) {
        if (j >= other.worst.size() ||
            (i < worst.size() && rankBefore(worst[i], other.worst[j])))
            merged.push_back(worst[i++]);
        else
            merged.push_back(other.worst[j++]);
    }
    worst = std::move(merged);
}

const NodeSummary *
NodeSummary::find(const std::string &relPath) const
{
    const NodeSummary *node = this;
    std::size_t start = 0;
    while (start < relPath.size()) {
        std::size_t end = relPath.find('/', start);
        if (end == std::string::npos)
            end = relPath.size();
        const std::string segment = relPath.substr(start, end - start);
        start = end + 1;
        if (segment.empty())
            continue;
        const NodeSummary *next = nullptr;
        for (const NodeSummary &child : node->children) {
            if (child.name == segment) {
                next = &child;
                break;
            }
        }
        if (!next)
            return nullptr;
        node = next;
    }
    return node;
}

std::string
NodeSummary::toJson() const
{
    std::ostringstream out;
    out << "{\"path\": \"" << obs::jsonEscape(path) << "\", \"name\": \""
        << obs::jsonEscape(name) << "\", \"depth\": " << depth
        << ", \"machines\": " << stats.machines
        << ", \"metered\": " << stats.metered
        << ", \"watts\": " << jsonNum(stats.watts)
        << ", \"substituted_w\": " << jsonNum(stats.substitutedW)
        << ", \"samples\": " << stats.samples
        << ", \"reference_samples\": " << stats.referenceSamples
        << ", \"dropped\": " << stats.dropped
        << ", \"health\": {\"healthy\": " << stats.healthy
        << ", \"degraded\": " << stats.degraded
        << ", \"stale\": " << stats.stale
        << ", \"lost\": " << stats.lost << "}"
        << ", \"quality\": {\"unknown\": " << stats.qualityUnknown
        << ", \"ok\": " << stats.qualityOk
        << ", \"drifting\": " << stats.qualityDrifting << "}"
        << ", \"quarantined\": " << stats.quarantined
        << ", \"drift_rate\": " << jsonNum(stats.driftRate())
        << ", \"dre\": ";
    sketchJson(out, stats.dre);
    out << ", \"rmse_w\": ";
    sketchJson(out, stats.rmseW);
    out << ", \"platforms\": {";
    bool first = true;
    for (const auto &[platform, p] : stats.platforms) {
        out << (first ? "" : ", ") << "\"" << obs::jsonEscape(platform)
            << "\": {\"machines\": " << p.machines
            << ", \"metered\": " << p.metered
            << ", \"drifting\": " << p.drifting
            << ", \"drift_rate\": " << jsonNum(p.driftRate())
            << ", \"watts\": " << jsonNum(p.watts) << "}";
        first = false;
    }
    out << "}, \"worst\": [";
    for (std::size_t i = 0; i < stats.worst.size(); ++i) {
        const MachineRank &r = stats.worst[i];
        out << (i ? ", " : "") << "{\"id\": \"" << obs::jsonEscape(r.id)
            << "\", \"path\": \"" << obs::jsonEscape(r.path)
            << "\", \"dre\": " << jsonNum(r.rollingDre)
            << ", \"rmse_w\": " << jsonNum(r.windowRmseW)
            << ", \"drifted\": " << (r.drifted ? "true" : "false")
            << "}";
    }
    out << "], \"children\": [";
    for (std::size_t i = 0; i < children.size(); ++i)
        out << (i ? ", " : "") << "\""
            << obs::jsonEscape(children[i].name) << "\"";
    out << "]}";
    return out.str();
}

AggregationNode &
AggregationNode::child(const std::string &name)
{
    auto it = children_.find(name);
    if (it == children_.end())
        it = children_
                 .emplace(name, std::make_unique<AggregationNode>(name))
                 .first;
    return *it->second;
}

void
AggregationNode::upsertMachine(const MachineObservation &m)
{
    machines_[m.id] = m;
}

std::size_t
AggregationNode::numNodes() const
{
    std::size_t n = 1;
    for (const auto &[name, child] : children_)
        n += child->numNodes();
    return n;
}

std::size_t
AggregationNode::numMachines() const
{
    std::size_t n = machines_.size();
    for (const auto &[name, child] : children_)
        n += child->numMachines();
    return n;
}

std::size_t
AggregationNode::memoryBytes() const
{
    // Approximate: node + map entry overhead (red-black node: three
    // pointers + color, rounded to four words) + string heap.
    constexpr std::size_t kMapNode = 4 * sizeof(void *);
    std::size_t bytes = sizeof(*this) + name_.capacity();
    for (const auto &[id, m] : machines_) {
        bytes += kMapNode + sizeof(id) + id.capacity() + sizeof(m) +
                 m.id.capacity() + m.platform.capacity();
    }
    for (const auto &[name, child] : children_) {
        bytes += kMapNode + sizeof(name) + name.capacity() +
                 sizeof(std::unique_ptr<AggregationNode>) +
                 child->memoryBytes();
    }
    return bytes;
}

NodeSummary
AggregationNode::aggregate(const RollupConfig &config,
                           const std::string &path,
                           std::size_t depth) const
{
    NodeSummary out;
    out.name = name_;
    out.path = path;
    out.depth = depth;
    out.stats = RollupStats(config.sketchAccuracy);
    for (const auto &[id, m] : machines_)
        out.stats.addMachine(m, path, config.worstN);
    out.children.reserve(children_.size());
    for (const auto &[name, child] : children_) {
        const std::string childPath =
            path.empty() ? name : path + "/" + name;
        out.children.push_back(
            child->aggregate(config, childPath, depth + 1));
        out.stats.merge(out.children.back().stats, config.worstN);
    }
    return out;
}

RollupTree::RollupTree(RollupConfig config) : cfg_(config)
{
    // Degenerate knobs would silently drop data; clamp instead.
    if (cfg_.sketchAccuracy <= 0.0)
        cfg_.sketchAccuracy = 0.01;
}

void
RollupTree::update(const std::string &groupPath,
                   const MachineObservation &m)
{
    AggregationNode *node = &root_;
    std::size_t start = 0;
    while (start < groupPath.size()) {
        std::size_t end = groupPath.find('/', start);
        if (end == std::string::npos)
            end = groupPath.size();
        const std::string segment =
            groupPath.substr(start, end - start);
        start = end + 1;
        if (!segment.empty())
            node = &node->child(segment);
    }
    node->upsertMachine(m);
}

NodeSummary
RollupTree::aggregate() const
{
    // Fan out over the root's children (the deepest groups dominate
    // the work) and merge in sorted-name order — the exact order the
    // serial loop in AggregationNode::aggregate would use, so the
    // result is bit-identical for any CHAOS_THREADS.
    std::vector<const AggregationNode *> children;
    children.reserve(root_.children_.size());
    for (const auto &[name, child] : root_.children_)
        children.push_back(child.get());

    std::vector<NodeSummary> summaries = parallelMap<NodeSummary>(
        children.size(), [&](std::size_t i) {
            return children[i]->aggregate(cfg_, children[i]->name(), 1);
        });

    NodeSummary out;
    out.name = root_.name_;
    out.path = "";
    out.depth = 0;
    out.stats = RollupStats(cfg_.sketchAccuracy);
    for (const auto &[id, m] : root_.machines_)
        out.stats.addMachine(m, "", cfg_.worstN);
    out.children = std::move(summaries);
    for (const NodeSummary &child : out.children)
        out.stats.merge(child.stats, cfg_.worstN);
    return out;
}

} // namespace chaos::rollup
