/**
 * @file
 * Hierarchical quality roll-up: the paper's Eq. 5 composed one level
 * further, from machines to a whole datacenter.
 *
 * The serving and monitoring layers produce per-machine truth —
 * watts, health, model quality, rolling rMSE/DRE — for one fleet.
 * Answering "which rack is drifting?" or "what is the p99 DRE across
 * the row?" at 10k–100k machines must not require replaying every
 * machine's telemetry: this layer arranges machines under recursively
 * nestable AggregationNodes (machine → fleet → rack → row →
 * datacenter — any depth works, the levels are just path segments)
 * and rolls per-machine observations up the tree as mergeable
 * aggregates:
 *
 *  - fleet-weighted DRE and rMSE *distributions* (one point per
 *    machine) carried by obs::QuantileSketch, so any node can report
 *    p50/p90/p99 and two sibling summaries merge in O(buckets);
 *  - health / model-quality mixes, watt and substituted-watt sums,
 *    sample/drop accounting — commutative integer and ordered double
 *    sums;
 *  - per-platform machine counts and drift rates (the paper's
 *    pooling result extended to fleet scale: how many metered
 *    references per class the roll-up verdict rests on);
 *  - a bounded worst-N machine ranking by rolling DRE, merged like a
 *    tournament so every level can name its worst offenders without
 *    carrying full machine lists.
 *
 * Determinism: children and machines are kept in sorted maps, merges
 * happen in that fixed order, and every aggregate is either integer,
 * commutative (min/max), sketch (integer bucket counts), or a double
 * sum taken in traversal order — so aggregate() serializes to
 * bit-identical JSON for any CHAOS_THREADS and any feed order that
 * ends in the same per-machine state. The top-level fan-out runs
 * through util/parallel with an index-ordered merge, the same pattern
 * the training pipeline uses.
 *
 * Threading: updates and aggregation are externally synchronized (the
 * feeds in feed.hpp serialize them); aggregate() is const and takes
 * no locks.
 */
#ifndef CHAOS_ROLLUP_ROLLUP_HPP
#define CHAOS_ROLLUP_ROLLUP_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "obs/sketch.hpp"

namespace chaos::rollup {

/** One machine's latest state, as fed to the tree. */
struct MachineObservation
{
    std::string id;
    /** Machine-class name ("Core2"); "unknown" when unmapped. */
    std::string platform = "unknown";
    double watts = 0.0;            ///< Contribution to the cluster sum.
    double windowRmseW = 0.0;      ///< Rolling window rMSE, watts.
    /** Rolling DRE (Eq. 6); NaN without references or envelope. */
    double rollingDre = std::numeric_limits<double>::quiet_NaN();
    double biasW = 0.0;            ///< Rolling mean residual, watts.
    std::uint64_t samples = 0;     ///< Estimates produced.
    std::uint64_t referenceSamples = 0; ///< Metered refs consumed.
    std::uint64_t dropped = 0;     ///< Backpressure losses.
    MachineHealth health = MachineHealth::Healthy;
    ModelQuality quality = ModelQuality::Unknown;
    bool quarantined = false;      ///< Serving a substitute model.
    bool drifted = false;          ///< Drift detector latched.
};

/** Roll-up knobs, fixed for the life of a tree. */
struct RollupConfig
{
    /** Worst machines ranked at every node. */
    std::size_t worstN = 10;
    /** Relative-error bound of the DRE/rMSE sketches. */
    double sketchAccuracy = 0.01;
};

/** One entry of a node's worst-machines ranking. */
struct MachineRank
{
    std::string id;
    std::string path;      ///< Group path the machine lives under.
    double rollingDre = 0.0;
    double windowRmseW = 0.0;
    bool drifted = false;
};

/** Per-platform slice of a subtree (pooling view). */
struct PlatformStats
{
    std::uint64_t machines = 0;
    std::uint64_t metered = 0;  ///< Machines with >= 1 reference sample.
    std::uint64_t drifting = 0;
    double watts = 0.0;

    /**
     * Fraction of this platform's *metered* machines flagged
     * Drifting — only machines with references can earn a verdict,
     * so the denominator is the pooled evidence base, not the
     * machine count (0 when no machine is metered).
     */
    double driftRate() const
    {
        return metered ? static_cast<double>(drifting) /
                             static_cast<double>(metered)
                       : 0.0;
    }

    void merge(const PlatformStats &other);
};

/** Mergeable aggregate of one subtree (see file comment). */
struct RollupStats
{
    explicit RollupStats(double sketchAccuracy = 0.01)
        : dre(sketchAccuracy), rmseW(sketchAccuracy)
    {}

    std::uint64_t machines = 0;
    std::uint64_t metered = 0;
    double watts = 0.0;
    double substitutedW = 0.0;  ///< Watts served by substitutes.
    std::uint64_t samples = 0;
    std::uint64_t referenceSamples = 0;
    std::uint64_t dropped = 0;

    std::uint64_t healthy = 0;  ///< Health mix.
    std::uint64_t degraded = 0;
    std::uint64_t stale = 0;
    std::uint64_t lost = 0;

    std::uint64_t qualityUnknown = 0;  ///< Model-quality mix.
    std::uint64_t qualityOk = 0;
    std::uint64_t qualityDrifting = 0;
    std::uint64_t quarantined = 0;

    /** Fleet-weighted rolling-DRE distribution (finite DREs only). */
    obs::QuantileSketch dre;
    /** Rolling-rMSE distribution over metered machines. */
    obs::QuantileSketch rmseW;

    /** Per-platform slices, keyed by platform name (sorted). */
    std::map<std::string, PlatformStats> platforms;

    /** Worst machines by rolling DRE, descending, bounded. */
    std::vector<MachineRank> worst;

    /** Fold one machine in. @p path labels the ranking entries. */
    void addMachine(const MachineObservation &m,
                    const std::string &path, std::size_t worstN);

    /** Fold a sibling/child aggregate in (associative). */
    void merge(const RollupStats &other, std::size_t worstN);

    /** Drifting fraction of metered machines across the subtree. */
    double driftRate() const
    {
        return metered ? static_cast<double>(qualityDrifting) /
                             static_cast<double>(metered)
                       : 0.0;
    }
};

/** Aggregated view of one node, with its children. */
struct NodeSummary
{
    std::string name;   ///< Last path segment ("" for the root).
    std::string path;   ///< Full group path ("" for the root).
    std::size_t depth = 0;
    RollupStats stats;
    std::vector<NodeSummary> children;  ///< Sorted by name.

    /**
     * Descend along @p relPath ("row1/rack2"; "" names this node).
     * @return nullptr when a segment does not exist.
     */
    const NodeSummary *find(const std::string &relPath) const;

    /**
     * This node as one single-line JSON object (children are listed
     * by name only — emit each child's own line for a full dump).
     * Deterministic: equal aggregates serialize to equal bytes.
     */
    std::string toJson() const;
};

/** One interior node: child groups plus directly attached machines. */
class AggregationNode
{
  public:
    explicit AggregationNode(std::string name) : name_(std::move(name))
    {}

    const std::string &name() const { return name_; }

    /** Find-or-create the child group @p name. */
    AggregationNode &child(const std::string &name);

    /** Insert or replace machine @p m (keyed by m.id) at this node. */
    void upsertMachine(const MachineObservation &m);

    /** Nodes in this subtree, including this one. */
    std::size_t numNodes() const;

    /** Machines attached anywhere in this subtree. */
    std::size_t numMachines() const;

    /** Approximate heap footprint of the subtree, bytes. */
    std::size_t memoryBytes() const;

    /**
     * Roll this subtree up (serial). @p path is this node's full
     * group path; @p depth its distance from the root.
     */
    NodeSummary aggregate(const RollupConfig &config,
                          const std::string &path,
                          std::size_t depth) const;

  private:
    friend class RollupTree;

    std::string name_;
    std::map<std::string, std::unique_ptr<AggregationNode>> children_;
    std::map<std::string, MachineObservation> machines_;
};

/** The roll-up tree: path-addressed updates, one-call aggregation. */
class RollupTree
{
  public:
    explicit RollupTree(RollupConfig config = {});

    /**
     * Insert or replace one machine's observation under group
     * @p groupPath ("dc0/row1/rack2/fleet0"; "" attaches to the
     * root). Segments are created on first use — the tree *is* the
     * topology. The machine is keyed by m.id within the group.
     */
    void update(const std::string &groupPath,
                const MachineObservation &m);

    /**
     * One full aggregation pass. The root's children are aggregated
     * through util/parallel (one task per child, results merged in
     * sorted-name order), so wall time scales down with
     * CHAOS_THREADS while the result stays bit-identical.
     */
    NodeSummary aggregate() const;

    /** Machines currently in the tree. */
    std::size_t numMachines() const { return root_.numMachines(); }

    /** Aggregation nodes currently in the tree (incl. the root). */
    std::size_t numNodes() const { return root_.numNodes(); }

    /** Approximate heap footprint of the tree, bytes. */
    std::size_t memoryBytes() const { return root_.memoryBytes(); }

    /** The configuration the tree was built with. */
    const RollupConfig &config() const { return cfg_; }

  private:
    RollupConfig cfg_;
    AggregationNode root_{""};
};

} // namespace chaos::rollup

#endif // CHAOS_ROLLUP_ROLLUP_HPP
