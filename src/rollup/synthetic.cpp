#include "rollup/synthetic.hpp"

namespace chaos::rollup {

MachineObservation
toObservation(const SyntheticMachine &machine,
              const SyntheticObservation &state)
{
    MachineObservation m;
    m.id = machine.id;
    m.platform = machineClassName(machine.machineClass);
    m.watts = state.watts;
    m.windowRmseW = state.windowRmseW;
    m.rollingDre = state.rollingDre;
    m.biasW = state.biasW;
    m.samples = state.samples;
    m.referenceSamples = state.referenceSamples;
    m.dropped = state.dropped;
    m.health = state.health;
    m.quality = state.quality;
    m.quarantined = state.quarantined;
    m.drifted = state.drifted;
    return m;
}

void
SyntheticRollupFeed::tick(std::uint64_t tick)
{
    const auto &machines = topology_.machines();
    for (std::size_t i = 0; i < machines.size(); ++i) {
        tree_.update(machines[i].groupPath,
                     toObservation(machines[i], topology_.observe(i, tick)));
    }
}

} // namespace chaos::rollup
