#include "rollup/feed.hpp"

#include "obs/json.hpp"
#include "util/result.hpp"

#include <fstream>
#include <limits>

namespace chaos::rollup {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

MachineHealth
healthFromName(const std::string &name)
{
    if (name == "Degraded")
        return MachineHealth::Degraded;
    if (name == "Stale")
        return MachineHealth::Stale;
    if (name == "Lost")
        return MachineHealth::Lost;
    return MachineHealth::Healthy;
}

ModelQuality
qualityFromName(const std::string &name)
{
    if (name == "Ok")
        return ModelQuality::Ok;
    if (name == "Drifting")
        return ModelQuality::Drifting;
    return ModelQuality::Unknown;
}

/** Placement lookup with the honest catch-all fallback. */
void
applyPlacement(const std::map<std::string, Placement> &placements,
               MachineObservation &m, std::string &path)
{
    auto it = placements.find(m.id);
    if (it == placements.end()) {
        path = kUnplacedGroup;
        m.platform = "unknown";
    } else {
        path = it->second.path;
        m.platform = it->second.platform;
    }
}

} // namespace

void
LiveRollupFeed::place(const std::string &id,
                      const std::string &groupPath,
                      const std::string &platform)
{
    std::lock_guard<std::mutex> lock(mu_);
    placements_[id] = Placement{groupPath, platform};
}

void
LiveRollupFeed::observe(const serve::FleetSnapshot &fleet,
                        const monitor::QualitySnapshot &quality)
{
    std::lock_guard<std::mutex> lock(mu_);
    // Both machine lists are sorted by id: linear merge join.
    std::size_t qi = 0;
    for (const serve::MachineSnapshot &ms : fleet.machines) {
        while (qi < quality.machines.size() &&
               quality.machines[qi].id < ms.id)
            ++qi;

        MachineObservation m;
        m.id = ms.id;
        m.watts = ms.watts;
        m.samples = ms.samples;
        m.referenceSamples = ms.residualSamples;
        m.dropped = ms.dropped;
        m.health = ms.health;
        m.quality = ms.quality;
        m.quarantined = ms.quarantined;
        m.biasW = ms.meanResidualW;
        m.rollingDre = kNaN;

        if (qi < quality.machines.size() &&
            quality.machines[qi].id == ms.id) {
            const monitor::MachineQualityReport &q =
                quality.machines[qi];
            m.windowRmseW = q.windowRmseW;
            m.rollingDre = q.rollingDre;
            m.biasW = q.biasW;
            m.drifted = q.drifted;
            m.referenceSamples = q.referenceSamples;
        }

        std::string path;
        applyPlacement(placements_, m, path);
        tree_.update(path, m);
    }
    ++observed_;
}

void
LiveRollupFeed::attach(serve::FleetServer &server,
                       monitor::FleetMonitor &monitor)
{
    server.onSnapshot([this, &monitor](
                          const serve::FleetSnapshot &snapshot) {
        // Drainer thread, no entry locks held: monitor.snapshot()
        // may take them (see FleetServer::onSnapshot).
        observe(snapshot, monitor.snapshot());
    });
}

NodeSummary
LiveRollupFeed::aggregate() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tree_.aggregate();
}

std::uint64_t
LiveRollupFeed::observed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return observed_;
}

void
JsonlRollupFeed::place(const std::string &id,
                       const std::string &groupPath,
                       const std::string &platform)
{
    placements_[id] = Placement{groupPath, platform};
}

MachineObservation &
JsonlRollupFeed::slot(const std::string &id)
{
    auto it = current_.find(id);
    if (it == current_.end()) {
        MachineObservation fresh;
        fresh.id = id;
        it = current_.emplace(id, std::move(fresh)).first;
    }
    return it->second;
}

void
JsonlRollupFeed::push(const MachineObservation &m)
{
    MachineObservation placed = m;
    std::string path;
    applyPlacement(placements_, placed, path);
    tree_.update(path, placed);
}

bool
JsonlRollupFeed::feedLine(const std::string &line,
                          JsonlReplayStats &stats)
{
    obs::JsonValue record;
    raiseIf(!obs::jsonParse(line, record) || !record.isObject(),
            "rollup: malformed telemetry line: " +
                line.substr(0, 120));

    const std::uint64_t tick =
        static_cast<std::uint64_t>(record.numberOr("tick", 0.0));
    if (tick > stats.lastTick)
        stats.lastTick = tick;

    const std::string type = record.stringOr("type", "");
    if (type == "fleet") {
        const obs::JsonValue *fleet = record.find("fleet");
        if (!fleet || !fleet->isObject())
            return false;
        const obs::JsonValue *machines = fleet->find("machines");
        if (!machines || !machines->isArray())
            return false;
        for (const obs::JsonValue &ms : machines->items()) {
            if (!ms.isObject())
                continue;
            const std::string id = ms.stringOr("id", "");
            if (id.empty())
                continue;
            MachineObservation &m = slot(id);
            m.watts = ms.numberOr("watts", 0.0);
            m.samples = static_cast<std::uint64_t>(
                ms.numberOr("samples", 0.0));
            m.referenceSamples = static_cast<std::uint64_t>(
                ms.numberOr("residual_samples",
                            static_cast<double>(m.referenceSamples)));
            m.dropped = static_cast<std::uint64_t>(
                ms.numberOr("dropped", 0.0));
            m.health = healthFromName(ms.stringOr("health", "Healthy"));
            m.quality =
                qualityFromName(ms.stringOr("quality", "Unknown"));
            m.quarantined = ms.boolOr("quarantined", false);
            push(m);
        }
        ++stats.fleetRecords;
        return true;
    }
    if (type == "quality") {
        const obs::JsonValue *quality = record.find("quality");
        if (!quality || !quality->isObject())
            return false;
        const obs::JsonValue *machines = quality->find("machines");
        if (!machines || !machines->isArray())
            return false;
        for (const obs::JsonValue &qs : machines->items()) {
            if (!qs.isObject())
                continue;
            const std::string id = qs.stringOr("id", "");
            if (id.empty())
                continue;
            MachineObservation &m = slot(id);
            m.quality =
                qualityFromName(qs.stringOr("quality", "Unknown"));
            m.referenceSamples = static_cast<std::uint64_t>(
                qs.numberOr("reference_samples", 0.0));
            m.windowRmseW = qs.numberOr("window_rmse_w", 0.0);
            m.rollingDre = qs.numberOr("rolling_dre", kNaN);
            m.biasW = qs.numberOr("bias_w", 0.0);
            m.drifted = qs.boolOr("drifted", false);
            push(m);
        }
        ++stats.qualityRecords;
        return true;
    }
    ++stats.skipped;
    return false;
}

JsonlReplayStats
JsonlRollupFeed::replayFile(const std::string &path)
{
    std::ifstream in(path);
    raiseIf(!in.is_open(), "rollup: cannot open telemetry: " + path);
    JsonlReplayStats stats;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++stats.lines;
        feedLine(line, stats);
    }
    return stats;
}

} // namespace chaos::rollup
