/**
 * @file
 * The third feed: synthetic topologies from sim/fleet_topology pushed
 * into a RollupTree. Bridges the sim layer's ground-truth machines to
 * roll-up observations so benchmarks, the fleetview CLI, and tests
 * can exercise 10k–100k-machine aggregation without a serving loop.
 */
#ifndef CHAOS_ROLLUP_SYNTHETIC_HPP
#define CHAOS_ROLLUP_SYNTHETIC_HPP

#include <cstdint>

#include "rollup/rollup.hpp"
#include "sim/fleet_topology.hpp"

namespace chaos::rollup {

/** Map one synthesized state onto a roll-up observation. */
MachineObservation toObservation(const SyntheticMachine &machine,
                                 const SyntheticObservation &state);

/** Pushes FleetTopology ticks into a RollupTree. */
class SyntheticRollupFeed
{
  public:
    /** Both references must outlive the feed. */
    SyntheticRollupFeed(RollupTree &tree,
                        const FleetTopology &topology)
        : tree_(tree), topology_(topology)
    {}

    /**
     * Upsert every machine's state at @p tick. Placement comes from
     * the topology itself (each machine knows its group path).
     */
    void tick(std::uint64_t tick);

  private:
    RollupTree &tree_;
    const FleetTopology &topology_;
};

} // namespace chaos::rollup

#endif // CHAOS_ROLLUP_SYNTHETIC_HPP
