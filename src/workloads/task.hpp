/**
 * @file
 * Tasks and stages of a MapReduce-style distributed job.
 */
#ifndef CHAOS_WORKLOADS_TASK_HPP
#define CHAOS_WORKLOADS_TASK_HPP

#include <cstddef>
#include <vector>

#include "sim/activity.hpp"

namespace chaos {

/**
 * One schedulable task (a Dryad vertex). While running, it imposes
 * its demand on its host machine every second; tasks of stage k+1
 * start only after every stage-k task finished (a dataflow barrier,
 * e.g. map -> shuffle -> reduce).
 */
struct Task
{
    size_t stage = 0;           ///< Dataflow stage (barrier between).
    double durationSeconds = 1; ///< Remaining runtime when scheduled.
    ActivityDemand demand;      ///< Per-second demand while running.
    /** Core-slots this task occupies on its host (usually 1). */
    double slots = 1.0;
};

} // namespace chaos

#endif // CHAOS_WORKLOADS_TASK_HPP
