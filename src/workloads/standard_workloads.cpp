#include "workloads/standard_workloads.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

namespace {

/** Round a task count up and keep at least @p minimum. */
size_t
taskCount(double raw, size_t minimum = 1)
{
    const auto count = static_cast<size_t>(std::ceil(raw));
    return count < minimum ? minimum : count;
}

/** Jitter a demand value by +/- @p rel (per-run variation). */
double
jitter(Rng &rng, double value, double rel = 0.20)
{
    return value * rng.uniform(1.0 - rel, 1.0 + rel);
}

} // namespace

std::vector<Task>
SortWorkload::generateTasks(double totalCoreSlots, Rng &rng) const
{
    std::vector<Task> tasks;

    // Stage 0: read + range-sample the input (disk-read heavy).
    const size_t readers = taskCount(2.0 * totalCoreSlots);
    for (size_t i = 0; i < readers; ++i) {
        Task t;
        t.stage = 0;
        t.durationSeconds = rng.uniform(25.0, 45.0);
        t.demand.cpuCoreSeconds = jitter(rng, 0.60);
        t.demand.diskReadBytes = jitter(rng, 45e6);
        t.demand.diskRandomFraction = 0.15;
        t.demand.fsCacheOps = jitter(rng, 800.0);
        t.demand.workingSetBytes = jitter(rng, 0.35e9);
        t.demand.memIntensity = jitter(rng, 0.35);
        tasks.push_back(t);
    }

    // Stage 1: all-to-all shuffle (network heavy, mixed disk).
    const size_t shufflers = taskCount(2.0 * totalCoreSlots);
    for (size_t i = 0; i < shufflers; ++i) {
        Task t;
        t.stage = 1;
        t.durationSeconds = rng.uniform(30.0, 60.0);
        t.demand.cpuCoreSeconds = jitter(rng, 0.45);
        t.demand.netRxBytes = jitter(rng, 22e6);
        t.demand.netTxBytes = jitter(rng, 22e6);
        t.demand.diskReadBytes = jitter(rng, 15e6);
        t.demand.diskWriteBytes = jitter(rng, 20e6);
        t.demand.diskRandomFraction = 0.30;
        t.demand.workingSetBytes = jitter(rng, 0.30e9);
        t.demand.memIntensity = jitter(rng, 0.30);
        tasks.push_back(t);
    }

    // Stage 2: merge + write sorted output (disk-write heavy).
    const size_t writers = taskCount(2.0 * totalCoreSlots);
    for (size_t i = 0; i < writers; ++i) {
        Task t;
        t.stage = 2;
        t.durationSeconds = rng.uniform(25.0, 50.0);
        t.demand.cpuCoreSeconds = jitter(rng, 0.70);
        t.demand.diskWriteBytes = jitter(rng, 50e6);
        t.demand.fsCacheOps = jitter(rng, 500.0);
        t.demand.workingSetBytes = jitter(rng, 0.40e9);
        t.demand.memIntensity = jitter(rng, 0.40);
        tasks.push_back(t);
    }
    return tasks;
}

std::vector<Task>
PageRankWorkload::generateTasks(double totalCoreSlots, Rng &rng) const
{
    std::vector<Task> tasks;
    size_t stage = 0;

    for (size_t iter = 0; iter < iterations; ++iter) {
        // Compute stage: many short rank-update tasks. Intensity
        // drifts across iterations (convergence), adding the
        // workload's characteristic power variation.
        const double drift = 1.0 - 0.04 * static_cast<double>(iter);
        const size_t compute =
            taskCount(5.0 * totalCoreSlots * rng.uniform(0.85, 1.15));
        for (size_t i = 0; i < compute; ++i) {
            Task t;
            t.stage = stage;
            t.durationSeconds = rng.uniform(5.0, 18.0);
            t.demand.cpuCoreSeconds = jitter(rng, 0.90 * drift);
            t.demand.netRxBytes = jitter(rng, 8e6);
            // Each iteration re-reads graph partitions; link
            // structure access is random, so HDDs pay seeks.
            t.demand.diskReadBytes = jitter(rng, 15e6);
            t.demand.diskRandomFraction = 0.40;
            t.demand.workingSetBytes = jitter(rng, 0.5e9);
            t.demand.memIntensity = jitter(rng, 0.55);
            t.demand.fsCacheOps = jitter(rng, 250.0);
            tasks.push_back(t);
        }
        ++stage;

        // Exchange stage: rank vector redistribution (network burst).
        const size_t exchange =
            taskCount(4.0 * totalCoreSlots * rng.uniform(0.85, 1.15));
        for (size_t i = 0; i < exchange; ++i) {
            Task t;
            t.stage = stage;
            t.durationSeconds = rng.uniform(4.0, 15.0);
            t.demand.cpuCoreSeconds = jitter(rng, 0.35);
            t.demand.netRxBytes = jitter(rng, 30e6);
            t.demand.netTxBytes = jitter(rng, 30e6);
            t.demand.workingSetBytes = jitter(rng, 0.3e9);
            t.demand.memIntensity = jitter(rng, 0.30);
            tasks.push_back(t);
        }
        ++stage;
    }
    return tasks;
}

std::vector<Task>
PrimeWorkload::generateTasks(double totalCoreSlots, Rng &rng) const
{
    std::vector<Task> tasks;

    // Stage 0: primality checking. Task lengths vary widely (the
    // candidate numbers differ in magnitude), so every wave ends in
    // a long straggler tail of partially-loaded machines — the
    // mid-utilization, mid-P-state region where linear models bend.
    const size_t checkers = taskCount(1.35 * totalCoreSlots);
    for (size_t i = 0; i < checkers; ++i) {
        Task t;
        t.stage = 0;
        t.durationSeconds = rng.uniform(40.0, 220.0);
        t.demand.cpuCoreSeconds = jitter(rng, 1.0, 0.05);
        t.demand.netRxBytes = jitter(rng, 0.2e6);
        t.demand.workingSetBytes = jitter(rng, 0.15e9);
        t.demand.memIntensity = jitter(rng, 0.15);
        tasks.push_back(t);
    }

    // Stage 1: tiny aggregation of the per-partition counts.
    for (size_t i = 0; i < 5; ++i) {
        Task t;
        t.stage = 1;
        t.durationSeconds = rng.uniform(3.0, 8.0);
        t.demand.cpuCoreSeconds = jitter(rng, 0.30);
        t.demand.netRxBytes = jitter(rng, 1e6);
        t.demand.memIntensity = 0.1;
        tasks.push_back(t);
    }
    return tasks;
}

std::vector<Task>
WordCountWorkload::generateTasks(double totalCoreSlots, Rng &rng) const
{
    std::vector<Task> tasks;

    // Stage 0: scan 500 MB text partitions and tally words.
    const size_t mappers = taskCount(1.5 * totalCoreSlots);
    for (size_t i = 0; i < mappers; ++i) {
        Task t;
        t.stage = 0;
        t.durationSeconds = rng.uniform(60.0, 100.0);
        t.demand.cpuCoreSeconds = jitter(rng, 0.85, 0.10);
        t.demand.diskReadBytes = jitter(rng, 9e6);
        t.demand.fsCacheOps = jitter(rng, 1500.0);
        t.demand.workingSetBytes = jitter(rng, 0.25e9);
        t.demand.memIntensity = jitter(rng, 0.45);
        tasks.push_back(t);
    }

    // Stage 1: merge the per-partition tallies.
    const size_t reducers = taskCount(0.5 * totalCoreSlots);
    for (size_t i = 0; i < reducers; ++i) {
        Task t;
        t.stage = 1;
        t.durationSeconds = rng.uniform(20.0, 40.0);
        t.demand.cpuCoreSeconds = jitter(rng, 0.60);
        t.demand.netRxBytes = jitter(rng, 2e6);
        t.demand.netTxBytes = jitter(rng, 2e6);
        t.demand.memIntensity = jitter(rng, 0.30);
        tasks.push_back(t);
    }
    return tasks;
}

std::vector<std::unique_ptr<Workload>>
standardWorkloads()
{
    std::vector<std::unique_ptr<Workload>> out;
    out.push_back(std::make_unique<SortWorkload>());
    out.push_back(std::make_unique<PageRankWorkload>());
    out.push_back(std::make_unique<PrimeWorkload>());
    out.push_back(std::make_unique<WordCountWorkload>());
    return out;
}

std::unique_ptr<Workload>
workloadByName(const std::string &name)
{
    for (auto &workload : standardWorkloads()) {
        if (workload->name() == name)
            return std::move(workload);
    }
    raise("unknown workload: " + name);
}

std::vector<std::string>
standardWorkloadNames()
{
    return {"Sort", "PageRank", "Prime", "WordCount"};
}

} // namespace chaos
