/**
 * @file
 * Cluster workload execution: a Dryad-like nondeterministic task
 * scheduler driving instrumented machines second by second.
 */
#ifndef CHAOS_WORKLOADS_RUNNER_HPP
#define CHAOS_WORKLOADS_RUNNER_HPP

#include <string>
#include <vector>

#include "oscounters/etw_session.hpp"
#include "sim/cluster.hpp"
#include "workloads/workload.hpp"

namespace chaos {

/** Knobs for one workload run. */
struct RunConfig
{
    /** Idle seconds logged before the job starts. */
    double idleLeadInSeconds = 20.0;
    /** Idle seconds logged after the job drains. */
    double idleLeadOutSeconds = 15.0;
    /** Hard cap on the run length (stuck-job guard). */
    double maxSeconds = 4000.0;
    /**
     * Scale factor on generated task durations; tests use < 1 to
     * shrink runs while keeping the same structure.
     */
    double durationScale = 1.0;
};

/** Everything recorded during one run on one cluster. */
struct RunResult
{
    std::string workloadName;   ///< Which workload ran.
    int runId = 0;              ///< Caller-assigned run number.
    /** Per-machine logs; outer index is the machine id. */
    std::vector<std::vector<EtwRecord>> machineRecords;
    double durationSeconds = 0.0;   ///< Wall seconds simulated.

    /** Cluster-level measured AC power series (sum over machines). */
    std::vector<double> clusterPowerSeries() const;
};

/**
 * Run @p workload once on @p cluster.
 *
 * Scheduling is greedy with random machine and task ordering drawn
 * from @p runSeed, so two runs of the same workload place tasks
 * differently (the paper's nondeterministic job scheduler). Stages
 * are barriers: stage k+1 tasks wait for every stage-k task.
 *
 * @param cluster Machines to run on (per-run OS state is reset).
 * @param workload Task generator.
 * @param runSeed Seed for task generation and scheduling choices.
 * @param runId Stamped into the result.
 * @param config Run knobs.
 */
RunResult runWorkload(Cluster &cluster, const Workload &workload,
                      uint64_t runSeed, int runId,
                      const RunConfig &config = RunConfig());

/**
 * Convenience: run every standard workload @p runsPerWorkload times.
 * Run seeds are derived from @p baseSeed; results are ordered by
 * workload then run.
 */
std::vector<RunResult> runStandardCampaign(
    Cluster &cluster, size_t runsPerWorkload, uint64_t baseSeed,
    const RunConfig &config = RunConfig());

} // namespace chaos

#endif // CHAOS_WORKLOADS_RUNNER_HPP
