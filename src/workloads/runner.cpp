#include "workloads/runner.hpp"

#include <algorithm>
#include <deque>

#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

std::vector<double>
RunResult::clusterPowerSeries() const
{
    size_t length = 0;
    for (const auto &records : machineRecords)
        length = std::max(length, records.size());

    std::vector<double> series(length, 0.0);
    for (const auto &records : machineRecords) {
        for (size_t t = 0; t < records.size(); ++t)
            series[t] += records[t].measuredPowerW;
    }
    return series;
}

namespace {

/** A task placed on a machine with remaining runtime. */
struct RunningTask
{
    Task task;
    size_t machineId = 0;
    double remainingSeconds = 0.0;
};

/** Free core slots on one machine. */
struct SlotState
{
    double capacity = 0.0;
    double used = 0.0;

    double free() const { return capacity - used; }
};

} // namespace

RunResult
runWorkload(Cluster &cluster, const Workload &workload,
            uint64_t runSeed, int runId, const RunConfig &config)
{
    raiseIf(cluster.size() == 0, "runWorkload: empty cluster");
    Rng rng(runSeed);
    cluster.resetRunState();

    // Per-machine ETW sessions (sampler noise derives from the seed).
    std::vector<EtwSession> sessions;
    sessions.reserve(cluster.size());
    for (size_t m = 0; m < cluster.size(); ++m) {
        sessions.emplace_back(cluster.machine(m), cluster.meter(m),
                              Rng(runSeed).fork(7000 + m).nextU64());
    }

    // Generate this run's task graph, scaled to cluster capacity.
    double total_slots = 0.0;
    std::vector<SlotState> slots(cluster.size());
    for (size_t m = 0; m < cluster.size(); ++m) {
        slots[m].capacity =
            static_cast<double>(cluster.machine(m).spec().numCores);
        total_slots += slots[m].capacity;
    }
    std::vector<Task> tasks = workload.generateTasks(total_slots, rng);
    panicIf(tasks.empty(), "workload generated no tasks");
    for (auto &task : tasks)
        task.durationSeconds *= config.durationScale;

    // Bucket tasks by stage.
    size_t max_stage = 0;
    for (const auto &task : tasks)
        max_stage = std::max(max_stage, task.stage);
    std::vector<std::deque<Task>> pending(max_stage + 1);
    for (auto &task : tasks)
        pending[task.stage].push_back(task);
    // Shuffle each stage's queue: arrival order differs per run.
    for (auto &queue : pending) {
        std::vector<size_t> order(queue.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        rng.shuffle(order);
        std::deque<Task> shuffled;
        for (size_t idx : order)
            shuffled.push_back(queue[idx]);
        queue = std::move(shuffled);
    }

    RunResult result;
    result.workloadName = workload.name();
    result.runId = runId;
    result.machineRecords.resize(cluster.size());

    std::vector<RunningTask> running;
    size_t stage = 0;
    double now = 0.0;
    double drain_until = -1.0;

    auto idle_demand = [] { return ActivityDemand{}; };

    while (now < config.maxSeconds) {
        const bool job_started = now >= config.idleLeadInSeconds;

        // Advance stage barrier: next stage opens when the current
        // one has neither pending nor running tasks.
        if (job_started && stage <= max_stage &&
            pending[stage].empty()) {
            const bool stage_running = std::any_of(
                running.begin(), running.end(),
                [stage](const RunningTask &rt) {
                    return rt.task.stage == stage;
                });
            if (!stage_running) {
                ++stage;
                if (stage > max_stage && drain_until < 0.0)
                    drain_until = now + config.idleLeadOutSeconds;
            }
        }

        // Schedule pending tasks of the open stage onto machines
        // with free slots, visiting machines in random order.
        if (job_started && stage <= max_stage) {
            std::vector<size_t> machine_order(cluster.size());
            for (size_t i = 0; i < machine_order.size(); ++i)
                machine_order[i] = i;
            rng.shuffle(machine_order);

            for (size_t m : machine_order) {
                while (!pending[stage].empty() &&
                       slots[m].free() >=
                           pending[stage].front().slots) {
                    RunningTask rt;
                    rt.task = pending[stage].front();
                    pending[stage].pop_front();
                    rt.machineId = m;
                    rt.remainingSeconds = rt.task.durationSeconds;
                    slots[m].used += rt.task.slots;
                    running.push_back(std::move(rt));
                }
            }
        }

        // Aggregate demand per machine and tick every session.
        // A task's CPU demand fluctuates second to second (compute
        // vertices alternate bursts of computation with I/O and
        // synchronization), which gives machines the mid-range
        // utilization and P-state mixing real Dryad clusters show.
        std::vector<ActivityDemand> demands(cluster.size(),
                                            idle_demand());
        for (const auto &rt : running) {
            ActivityDemand demand = rt.task.demand;
            demand.cpuCoreSeconds *= rng.uniform(0.55, 1.10);
            // I/O is burstier than compute and fluctuates
            // independently of it (buffering, readahead, TCP
            // windows), which is what keeps disk and network
            // counters from being mere proxies of CPU utilization.
            const double disk_burst = rng.uniform(0.25, 1.60);
            demand.diskReadBytes *= disk_burst;
            demand.diskWriteBytes *= disk_burst;
            const double net_burst = rng.uniform(0.35, 1.50);
            demand.netRxBytes *= net_burst;
            demand.netTxBytes *= net_burst;
            demand.fsCacheOps *= rng.uniform(0.5, 1.4);
            demands[rt.machineId] += demand;
        }
        for (size_t m = 0; m < cluster.size(); ++m) {
            const EtwRecord &record = sessions[m].tick(demands[m]);
            result.machineRecords[m].push_back(record);
        }

        // Retire finished tasks.
        for (auto &rt : running)
            rt.remainingSeconds -= 1.0;
        for (auto it = running.begin(); it != running.end();) {
            if (it->remainingSeconds <= 0.0) {
                slots[it->machineId].used -= it->task.slots;
                it = running.erase(it);
            } else {
                ++it;
            }
        }

        now += 1.0;
        if (drain_until >= 0.0 && now >= drain_until)
            break;
    }

    if (now >= config.maxSeconds) {
        warn("runWorkload: " + workload.name() +
             " hit the maxSeconds cap; result truncated");
    }
    result.durationSeconds = now;
    return result;
}

std::vector<RunResult>
runStandardCampaign(Cluster &cluster, size_t runsPerWorkload,
                    uint64_t baseSeed, const RunConfig &config)
{
    std::vector<RunResult> results;
    Rng root(baseSeed);
    int run_id = 0;
    for (const auto &workload : standardWorkloads()) {
        for (size_t r = 0; r < runsPerWorkload; ++r) {
            const uint64_t seed = root.fork(run_id + 1).nextU64();
            results.push_back(runWorkload(cluster, *workload, seed,
                                          run_id, config));
            ++run_id;
        }
    }
    return results;
}

} // namespace chaos
