/**
 * @file
 * The paper's four Dryad/DryadLINQ-style workloads.
 */
#ifndef CHAOS_WORKLOADS_STANDARD_WORKLOADS_HPP
#define CHAOS_WORKLOADS_STANDARD_WORKLOADS_HPP

#include "workloads/workload.hpp"

namespace chaos {

/**
 * Sort: 4 GB per machine of 100-byte records. Three dataflow stages
 * (read/sample, shuffle, merge/write); high disk and network
 * utilization with moderate CPU.
 */
class SortWorkload : public Workload
{
  public:
    std::string name() const override { return "Sort"; }
    std::vector<Task> generateTasks(double totalCoreSlots,
                                    Rng &rng) const override;
};

/**
 * PageRank over a ClueWeb09-scale corpus: iterative compute/exchange
 * stages, well over 800 tasks, the longest runtime and the most
 * power variation of the four workloads; high network utilization.
 */
class PageRankWorkload : public Workload
{
  public:
    std::string name() const override { return "PageRank"; }
    std::vector<Task> generateTasks(double totalCoreSlots,
                                    Rng &rng) const override;

    /** Number of rank/exchange iterations (default 8). */
    size_t iterations = 8;
};

/**
 * Prime: primality checking of ~1M numbers per partition. Fully
 * CPU-bound, negligible network and disk traffic.
 */
class PrimeWorkload : public Workload
{
  public:
    std::string name() const override { return "Prime"; }
    std::vector<Task> generateTasks(double totalCoreSlots,
                                    Rng &rng) const override;
};

/**
 * WordCount: tallying words in 500 MB text partitions. CPU-heavy
 * streaming scan with little network or disk activity.
 */
class WordCountWorkload : public Workload
{
  public:
    std::string name() const override { return "WordCount"; }
    std::vector<Task> generateTasks(double totalCoreSlots,
                                    Rng &rng) const override;
};

} // namespace chaos

#endif // CHAOS_WORKLOADS_STANDARD_WORKLOADS_HPP
