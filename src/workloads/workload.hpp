/**
 * @file
 * Workload interface: generates the task graph for one run.
 *
 * The four concrete workloads mirror the paper's Dryad/DryadLINQ
 * benchmarks (Section III-A): Sort (disk+network heavy), PageRank
 * (network heavy, >800 tasks, longest runtime, most power variation),
 * Prime (CPU-bound), and WordCount (CPU scan, little I/O). Task
 * durations and demands are re-drawn per run seed, and the scheduler
 * partitions them differently across machines per run — the paper's
 * "training and test sets from separate application runs" property.
 */
#ifndef CHAOS_WORKLOADS_WORKLOAD_HPP
#define CHAOS_WORKLOADS_WORKLOAD_HPP

#include <memory>
#include <string>
#include <vector>

#include "util/random.hpp"
#include "workloads/task.hpp"

namespace chaos {

/** Abstract distributed workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload name ("Sort", "PageRank", "Prime", "WordCount"). */
    virtual std::string name() const = 0;

    /**
     * Generate the run's task graph.
     *
     * @param totalCoreSlots Sum of core slots across the cluster;
     *        workloads scale task counts with it so work per machine
     *        stays roughly constant across platforms (the paper
     *        scales datasets the same way).
     * @param rng Run-specific stream; durations/demands vary per run.
     */
    virtual std::vector<Task> generateTasks(double totalCoreSlots,
                                            Rng &rng) const = 0;
};

/** The paper's four workloads, in its order. */
std::vector<std::unique_ptr<Workload>> standardWorkloads();

/**
 * Construct one standard workload by name; raises RecoverableError
 * on an unknown name.
 */
std::unique_ptr<Workload> workloadByName(const std::string &name);

/** Names of the standard workloads, in paper order. */
std::vector<std::string> standardWorkloadNames();

} // namespace chaos

#endif // CHAOS_WORKLOADS_WORKLOAD_HPP
