#include "net/protocol.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "obs/json.hpp"
#include "util/result.hpp"

namespace chaos::net {

namespace {

constexpr std::uint8_t kMagic0 = 'C';
constexpr std::uint8_t kMagic1 = 'W';

// ---- Little-endian primitive packing -------------------------------

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0]) |
           static_cast<std::uint16_t>(p[1]) << 8;
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = v << 8 | p[i];
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = v << 8 | p[i];
    return v;
}

double
getF64(const std::uint8_t *p)
{
    const std::uint64_t bits = getU64(p);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/**
 * Payload reader with bounds checking: every get*() fails (sets bad)
 * instead of reading past the declared payload, so a length field
 * that lies about its own payload is caught structurally even before
 * the checksum would have.
 */
struct PayloadReader
{
    const std::uint8_t *p;
    std::size_t left;
    bool bad = false;

    bool
    take(std::size_t n)
    {
        if (left < n) {
            bad = true;
            return false;
        }
        return true;
    }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        const std::uint8_t v = *p;
        p += 1;
        left -= 1;
        return v;
    }

    std::uint16_t
    u16()
    {
        if (!take(2))
            return 0;
        const std::uint16_t v = getU16(p);
        p += 2;
        left -= 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        const std::uint32_t v = getU32(p);
        p += 4;
        left -= 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        const std::uint64_t v = getU64(p);
        p += 8;
        left -= 8;
        return v;
    }

    double
    f64()
    {
        if (!take(8))
            return 0.0;
        const double v = getF64(p);
        p += 8;
        left -= 8;
        return v;
    }
};

/** Finish building a binary frame: patch length, compute the CRC. */
std::size_t
sealFrame(std::vector<std::uint8_t> &out, std::size_t headerAt)
{
    const std::size_t payloadLen = out.size() - headerAt - kHeaderSize;
    std::uint8_t lenBytes[4];
    for (int i = 0; i < 4; ++i)
        lenBytes[i] = static_cast<std::uint8_t>(payloadLen >> (8 * i));
    std::memcpy(out.data() + headerAt + 4, lenBytes, 4);
    // CRC over [version, type, len] then the payload: every byte
    // after the magic is covered.
    std::uint32_t crc = crc32(out.data() + headerAt + 2, 6);
    crc = crc32(out.data() + headerAt + kHeaderSize, payloadLen, crc);
    for (int i = 0; i < 4; ++i) {
        out[headerAt + 8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    }
    return out.size() - headerAt;
}

/** Start a binary frame of @p type; length and CRC patched by seal. */
std::size_t
openFrame(std::vector<std::uint8_t> &out, FrameType type)
{
    const std::size_t headerAt = out.size();
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    out.push_back(kProtocolVersion);
    out.push_back(static_cast<std::uint8_t>(type));
    putU32(out, 0); // Payload length, patched by sealFrame.
    putU32(out, 0); // CRC, patched by sealFrame.
    return headerAt;
}

DecodeResult
decodeError(std::string message)
{
    DecodeResult r;
    r.status = DecodeStatus::Error;
    r.error = std::move(message);
    return r;
}

/** Format a double for the JSONL framing (shortest round-trip). */
std::string
jsonNumber(double v)
{
    if (std::isnan(v))
        return "null"; // JSON has no NaN; decode maps null back.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

const char *
nackReasonName(NackReason reason)
{
    switch (reason) {
      case NackReason::Backpressure: return "backpressure";
      case NackReason::UnknownMachine: return "unknown_machine";
      case NackReason::BadSample: return "bad_sample";
    }
    return "unknown";
}

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size, std::uint32_t seed)
{
    // Standard IEEE 802.3 reflected CRC-32, slice-by-8: every frame
    // pays a CRC on both ends of the wire, and the byte-at-a-time
    // loop's serial table-lookup chain was a measurable slice of the
    // per-sample budget at ingest rates. Eight tables let eight
    // lookups proceed independently per 8-byte block.
    static const auto tables = [] {
        std::array<std::array<std::uint32_t, 256>, 8> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (std::size_t k = 1; k < 8; ++k) {
            for (std::uint32_t i = 0; i < 256; ++i)
                t[k][i] =
                    t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
        }
        return t;
    }();
    std::uint32_t crc = ~seed;
#if defined(__BYTE_ORDER__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    while (size >= 8) {
        std::uint32_t lo;
        std::uint32_t hi;
        std::memcpy(&lo, data, 4);
        std::memcpy(&hi, data + 4, 4);
        // The wire (and these loads on a little-endian host) feed
        // bytes lowest-address-first, matching the reflected CRC's
        // low-order-first processing.
        lo ^= crc;
        crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
              tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
              tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
              tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
        data += 8;
        size -= 8;
    }
#endif
    for (std::size_t i = 0; i < size; ++i)
        crc = tables[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return ~crc;
}

std::size_t
encodeSample(const SampleFrame &frame, std::vector<std::uint8_t> &out)
{
    // Machine ids and rows come from user input (CLI flags, fleet
    // manifests), so a limit violation is recoverable, not a bug.
    raiseIf(frame.machineId.empty() ||
                frame.machineId.size() > kMaxMachineIdLen,
            "encodeSample: machine id length out of range");
    raiseIf(frame.row.size() > kMaxRowLen,
            "encodeSample: row too wide");
    const std::size_t headerAt = openFrame(out, FrameType::Sample);
    putU64(out, frame.tick);
    putU16(out, static_cast<std::uint16_t>(frame.machineId.size()));
    out.insert(out.end(), frame.machineId.begin(),
               frame.machineId.end());
    out.push_back(frame.hasMetered ? 1 : 0);
    putF64(out, frame.meteredW);
    putU16(out, static_cast<std::uint16_t>(frame.row.size()));
    for (const double v : frame.row)
        putF64(out, v);
    return sealFrame(out, headerAt);
}

std::size_t
encodeCredit(const CreditFrame &frame, std::vector<std::uint8_t> &out)
{
    const std::size_t headerAt = openFrame(out, FrameType::Credit);
    putU64(out, frame.acceptedTotal);
    putU64(out, frame.rejectedTotal);
    putU32(out, frame.granted);
    return sealFrame(out, headerAt);
}

std::size_t
encodeNack(const NackFrame &frame, std::vector<std::uint8_t> &out)
{
    const std::size_t headerAt = openFrame(out, FrameType::Nack);
    putU64(out, frame.rejectedTotal);
    out.push_back(static_cast<std::uint8_t>(frame.reason));
    return sealFrame(out, headerAt);
}

std::size_t
encodeIntrospect(const IntrospectFrame &frame,
                 std::vector<std::uint8_t> &out)
{
    const std::size_t headerAt = openFrame(out, FrameType::Introspect);
    putU64(out, frame.seq);
    return sealFrame(out, headerAt);
}

std::size_t
encodeSnapshot(const SnapshotFrame &frame,
               std::vector<std::uint8_t> &out)
{
    // Snapshots are server-built, but the same validation that guards
    // the telemetry JSONL stream guards the wire: a malformed payload
    // is a caller bug surfaced here, not a corrupt frame surfaced at
    // the peer.
    raiseIf(!obs::jsonWellFormed(frame.json),
            "encodeSnapshot: payload is not well-formed JSON");
    raiseIf(frame.json.size() + 8 > kMaxPayloadLen,
            "encodeSnapshot: payload exceeds the frame size cap");
    const std::size_t headerAt = openFrame(out, FrameType::Snapshot);
    putU64(out, frame.seq);
    out.insert(out.end(), frame.json.begin(), frame.json.end());
    return sealFrame(out, headerAt);
}

std::string
encodeJsonl(const Frame &frame)
{
    std::string line;
    switch (frame.type) {
      case FrameType::Sample: {
        const SampleFrame &s = frame.sample;
        line = "{\"type\": \"sample\", \"machine\": \"" +
               obs::jsonEscape(s.machineId) +
               "\", \"tick\": " + std::to_string(s.tick);
        if (s.hasMetered)
            line += ", \"metered_w\": " + jsonNumber(s.meteredW);
        line += ", \"row\": [";
        for (std::size_t i = 0; i < s.row.size(); ++i) {
            if (i > 0)
                line += ", ";
            line += jsonNumber(s.row[i]);
        }
        line += "]}";
        break;
      }
      case FrameType::Credit:
        line = "{\"type\": \"credit\", \"accepted\": " +
               std::to_string(frame.credit.acceptedTotal) +
               ", \"rejected\": " +
               std::to_string(frame.credit.rejectedTotal) +
               ", \"granted\": " +
               std::to_string(frame.credit.granted) + "}";
        break;
      case FrameType::Nack:
        line = "{\"type\": \"nack\", \"rejected\": " +
               std::to_string(frame.nack.rejectedTotal) +
               ", \"reason\": \"" +
               nackReasonName(frame.nack.reason) + "\"}";
        break;
      case FrameType::Introspect:
        line = "{\"type\": \"introspect\", \"seq\": " +
               std::to_string(frame.introspect.seq) + "}";
        break;
      case FrameType::Snapshot:
        // The payload object travels as an escaped string so the line
        // stays one flat JSON object whatever the snapshot contains.
        line = "{\"type\": \"snapshot\", \"seq\": " +
               std::to_string(frame.snapshot.seq) + ", \"json\": \"" +
               obs::jsonEscape(frame.snapshot.json) + "\"}";
        break;
    }
    line += '\n';
    return line;
}

DecodeResult
decodeFrame(const std::uint8_t *data, std::size_t size, Frame &out)
{
    DecodeResult r;
    // Magic and version are checked as soon as their bytes arrive, so
    // a stream that is not this protocol errors on byte one, not
    // after a bogus length field asked for a megabyte of garbage.
    if (size >= 1 && data[0] != kMagic0)
        return decodeError("bad magic byte 0");
    if (size >= 2 && data[1] != kMagic1)
        return decodeError("bad magic byte 1");
    if (size >= 3 && data[2] != kProtocolVersion) {
        return decodeError("unsupported protocol version " +
                           std::to_string(data[2]));
    }
    if (size < kHeaderSize)
        return r; // NeedMore.

    const std::uint8_t type = data[3];
    const std::uint32_t payloadLen = getU32(data + 4);
    const std::uint32_t wireCrc = getU32(data + 8);
    if (payloadLen > kMaxPayloadLen) {
        return decodeError("payload length " +
                           std::to_string(payloadLen) +
                           " exceeds the " +
                           std::to_string(kMaxPayloadLen) +
                           "-byte cap");
    }
    if (size < kHeaderSize + payloadLen)
        return r; // NeedMore.

    std::uint32_t crc = crc32(data + 2, 6);
    crc = crc32(data + kHeaderSize, payloadLen, crc);
    if (crc != wireCrc)
        return decodeError("checksum mismatch");

    PayloadReader pr{data + kHeaderSize, payloadLen};
    switch (static_cast<FrameType>(type)) {
      case FrameType::Sample: {
        out.type = FrameType::Sample;
        SampleFrame &s = out.sample;
        s.tick = pr.u64();
        const std::uint16_t idLen = pr.u16();
        if (pr.bad || idLen == 0 || idLen > kMaxMachineIdLen ||
            !pr.take(idLen))
            return decodeError("sample: bad machine id length");
        s.machineId.assign(reinterpret_cast<const char *>(pr.p),
                           idLen);
        pr.p += idLen;
        pr.left -= idLen;
        s.hasMetered = pr.u8() != 0;
        s.meteredW = pr.f64();
        const std::uint16_t rowLen = pr.u16();
        if (pr.bad || rowLen > kMaxRowLen ||
            pr.left != static_cast<std::size_t>(rowLen) * 8)
            return decodeError("sample: bad row length");
        s.row.clear();
        s.row.reserve(rowLen);
        for (std::uint16_t i = 0; i < rowLen; ++i)
            s.row.push_back(pr.f64());
        break;
      }
      case FrameType::Credit:
        out.type = FrameType::Credit;
        out.credit.acceptedTotal = pr.u64();
        out.credit.rejectedTotal = pr.u64();
        out.credit.granted = pr.u32();
        if (pr.bad || pr.left != 0)
            return decodeError("credit: bad payload size");
        break;
      case FrameType::Nack: {
        out.type = FrameType::Nack;
        out.nack.rejectedTotal = pr.u64();
        const std::uint8_t reason = pr.u8();
        if (pr.bad || pr.left != 0 || reason < 1 || reason > 3)
            return decodeError("nack: bad payload");
        out.nack.reason = static_cast<NackReason>(reason);
        break;
      }
      case FrameType::Introspect:
        out.type = FrameType::Introspect;
        out.introspect.seq = pr.u64();
        if (pr.bad || pr.left != 0)
            return decodeError("introspect: bad payload size");
        break;
      case FrameType::Snapshot: {
        out.type = FrameType::Snapshot;
        out.snapshot.seq = pr.u64();
        if (pr.bad)
            return decodeError("snapshot: truncated payload");
        out.snapshot.json.assign(
            reinterpret_cast<const char *>(pr.p), pr.left);
        pr.p += pr.left;
        pr.left = 0;
        if (!obs::jsonWellFormed(out.snapshot.json))
            return decodeError("snapshot: payload is not JSON");
        break;
      }
      default:
        return decodeError("unknown frame type " +
                           std::to_string(type));
    }
    if (pr.bad)
        return decodeError("truncated payload");
    r.status = DecodeStatus::Ok;
    r.consumed = kHeaderSize + payloadLen;
    return r;
}

DecodeResult
decodeJsonlLine(const std::string &line, Frame &out)
{
    obs::JsonValue v;
    if (!obs::jsonParse(line, v) || !v.isObject())
        return decodeError("jsonl: line is not a JSON object");
    const std::string type = v.stringOr("type", "");
    if (type == "sample") {
        out.type = FrameType::Sample;
        SampleFrame &s = out.sample;
        s.machineId = v.stringOr("machine", "");
        if (s.machineId.empty() ||
            s.machineId.size() > kMaxMachineIdLen)
            return decodeError("jsonl sample: bad machine id");
        const obs::JsonValue *tick = v.find("tick");
        if (tick == nullptr || !tick->isNumber() ||
            tick->asNumber() < 0)
            return decodeError("jsonl sample: bad tick");
        s.tick = static_cast<std::uint64_t>(tick->asNumber());
        const obs::JsonValue *metered = v.find("metered_w");
        s.hasMetered = metered != nullptr && metered->isNumber();
        s.meteredW = s.hasMetered
                         ? metered->asNumber()
                         : std::numeric_limits<double>::quiet_NaN();
        const obs::JsonValue *row = v.find("row");
        if (row == nullptr || !row->isArray() ||
            row->items().size() > kMaxRowLen)
            return decodeError("jsonl sample: bad row");
        s.row.clear();
        s.row.reserve(row->items().size());
        for (const obs::JsonValue &item : row->items()) {
            if (!item.isNumber() && !item.isNull())
                return decodeError("jsonl sample: non-numeric row");
            s.row.push_back(
                item.isNumber()
                    ? item.asNumber()
                    : std::numeric_limits<double>::quiet_NaN());
        }
    } else if (type == "credit") {
        out.type = FrameType::Credit;
        out.credit.acceptedTotal =
            static_cast<std::uint64_t>(v.numberOr("accepted", 0));
        out.credit.rejectedTotal =
            static_cast<std::uint64_t>(v.numberOr("rejected", 0));
        out.credit.granted =
            static_cast<std::uint32_t>(v.numberOr("granted", 0));
    } else if (type == "nack") {
        out.type = FrameType::Nack;
        out.nack.rejectedTotal =
            static_cast<std::uint64_t>(v.numberOr("rejected", 0));
        const std::string reason = v.stringOr("reason", "");
        if (reason == "backpressure")
            out.nack.reason = NackReason::Backpressure;
        else if (reason == "unknown_machine")
            out.nack.reason = NackReason::UnknownMachine;
        else if (reason == "bad_sample")
            out.nack.reason = NackReason::BadSample;
        else
            return decodeError("jsonl nack: unknown reason '" +
                               reason + "'");
    } else if (type == "introspect") {
        out.type = FrameType::Introspect;
        out.introspect.seq =
            static_cast<std::uint64_t>(v.numberOr("seq", 0));
    } else if (type == "snapshot") {
        out.type = FrameType::Snapshot;
        out.snapshot.seq =
            static_cast<std::uint64_t>(v.numberOr("seq", 0));
        out.snapshot.json = v.stringOr("json", "");
        if (!obs::jsonWellFormed(out.snapshot.json))
            return decodeError("jsonl snapshot: payload is not JSON");
    } else {
        return decodeError("jsonl: unknown frame type '" + type +
                           "'");
    }
    DecodeResult r;
    r.status = DecodeStatus::Ok;
    r.consumed = line.size();
    return r;
}

bool
decodeFrameOrRaise(const std::uint8_t *data, std::size_t size,
                   Frame &out, std::size_t &consumed)
{
    const DecodeResult r = decodeFrame(data, size, out);
    raiseIf(r.status == DecodeStatus::Error,
            "net: corrupt frame: " + r.error);
    consumed = r.consumed;
    return r.status == DecodeStatus::Ok;
}

void
FrameReader::append(const std::uint8_t *data, std::size_t size)
{
    if (size == 0)
        return;
    if (mode == Mode::Undecided) {
        // The first byte of the stream commits the framing.
        if (data[0] == kMagic0) {
            mode = Mode::Binary;
        } else if (data[0] == '{') {
            mode = Mode::Jsonl;
        } else if (errorMessage.empty()) {
            errorMessage = "stream starts with byte " +
                           std::to_string(data[0]) +
                           ", neither binary magic nor JSONL";
        }
    }
    buf.insert(buf.end(), data, data + size);
}

DecodeStatus
FrameReader::next(Frame &frame)
{
    if (!errorMessage.empty())
        return DecodeStatus::Error;
    if (mode == Mode::Jsonl) {
        // One '\n'-terminated JSON object per frame.
        for (std::size_t i = readPos; i < buf.size(); ++i) {
            if (buf[i] != '\n')
                continue;
            lineScratch.assign(
                reinterpret_cast<const char *>(buf.data()) + readPos,
                i - readPos);
            readPos = i + 1;
            compact();
            const DecodeResult r = decodeJsonlLine(lineScratch, frame);
            if (r.status == DecodeStatus::Error) {
                errorMessage = r.error;
                return DecodeStatus::Error;
            }
            return DecodeStatus::Ok;
        }
        // An unterminated line longer than any legal frame can never
        // complete usefully; fail instead of buffering forever.
        if (buffered() > kMaxPayloadLen) {
            errorMessage = "jsonl line exceeds the frame size cap";
            return DecodeStatus::Error;
        }
        return DecodeStatus::NeedMore;
    }
    const DecodeResult r =
        decodeFrame(buf.data() + readPos, buffered(), frame);
    switch (r.status) {
      case DecodeStatus::Ok:
        readPos += r.consumed;
        compact();
        return DecodeStatus::Ok;
      case DecodeStatus::NeedMore:
        return DecodeStatus::NeedMore;
      case DecodeStatus::Error:
        errorMessage = r.error;
        return DecodeStatus::Error;
    }
    return DecodeStatus::Error;
}

void
FrameReader::compact()
{
    // Reclaim consumed prefix space once it dominates the buffer, so
    // a long-lived connection's read buffer stays proportional to its
    // unconsumed backlog instead of growing without bound.
    if (readPos > 4096 && readPos * 2 > buf.size()) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(readPos));
        readPos = 0;
    }
}

} // namespace chaos::net
