#include "net/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>

#include "obs/json.hpp"
#include "util/result.hpp"

namespace chaos::net {

namespace {

/** splitmix64: stateless, so any (conn, index, col) cell is random-
 *  access reproducible — the soak test replays rows out of band. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
unitValue(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
          std::uint64_t c)
{
    const std::uint64_t h = mix(seed ^ mix(a ^ mix(b ^ mix(c))));
    return static_cast<double>(h >> 11) /
           static_cast<double>(1ull << 53);
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

LoadGenerator::LoadGenerator(LoadGenConfig config)
    : cfg(std::move(config))
{
    if (cfg.connections == 0)
        cfg.connections = 1;
    if (cfg.rowSize == 0)
        cfg.rowSize = 1;
}

void
LoadGenerator::fillRow(std::size_t conn, std::size_t index,
                       std::vector<double> &row) const
{
    row.resize(cfg.rowSize);
    for (std::size_t col = 0; col < cfg.rowSize; ++col)
        row[col] = 100.0 * unitValue(cfg.seed, conn, index, col);
}

const std::string &
LoadGenerator::machineFor(std::size_t conn, std::size_t index) const
{
    if (cfg.exclusiveMachines)
        return cfg.machineIds[conn % cfg.machineIds.size()];
    return cfg.machineIds[(conn + index) % cfg.machineIds.size()];
}

double
LoadGenerator::meteredFor(std::size_t conn, std::size_t index) const
{
    if (cfg.meteredEvery == 0 || index % cfg.meteredEvery != 0)
        return std::numeric_limits<double>::quiet_NaN();
    return 200.0 * unitValue(cfg.seed, conn, index, 0x4d455445ull);
}

void
LoadGenerator::runWorker(std::size_t firstConn, std::size_t count,
                         std::vector<ConnResult> &results)
{
    using clock = std::chrono::steady_clock;

    // Open every connection of this worker's block up front, then
    // interleave sends across them round-robin: all connections are
    // concurrently in flight for the whole run (the point of a
    // multi-connection load test), instead of one at a time per
    // worker. A connection that fails mid-run is recorded and
    // skipped; the others keep going.
    std::vector<std::unique_ptr<IngestClient>> clients(count);
    for (std::size_t k = 0; k < count; ++k) {
        IngestClientConfig clientCfg;
        clientCfg.host = cfg.host;
        clientCfg.port = cfg.port;
        clientCfg.window = cfg.window;
        clientCfg.jsonl = cfg.jsonl;
        clients[k] = std::make_unique<IngestClient>(clientCfg);
        try {
            clients[k]->connect();
        } catch (const RecoverableError &err) {
            ConnResult &res = results[firstConn + k];
            res.failed = true;
            res.error = err.what();
            clients[k].reset();
        }
    }

    std::vector<double> row;
    const auto start = clock::now();
    for (std::size_t i = 0; i < cfg.samplesPerConnection; ++i) {
        if (cfg.ratePerConnection > 0.0) {
            // One pacing sleep per round: every connection sends its
            // i-th sample in the same paced slot.
            const auto due =
                start +
                std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(i) /
                        cfg.ratePerConnection));
            std::this_thread::sleep_until(due);
        }
        for (std::size_t k = 0; k < count; ++k) {
            if (!clients[k])
                continue;
            const std::size_t conn = firstConn + k;
            try {
                fillRow(conn, i, row);
                clients[k]->send(i, machineFor(conn, i), row.data(),
                                 row.size(), meteredFor(conn, i));
            } catch (const RecoverableError &err) {
                ConnResult &res = results[conn];
                res.failed = true;
                res.error = err.what();
                res.sent = clients[k]->sent();
                res.accepted = clients[k]->accepted();
                res.rejected = clients[k]->rejected();
                res.backpressureNacks =
                    clients[k]->nacks(NackReason::Backpressure);
                res.unknownNacks =
                    clients[k]->nacks(NackReason::UnknownMachine);
                res.latenciesMs = clients[k]->latenciesMs();
                clients[k].reset();
            }
        }
    }

    for (std::size_t k = 0; k < count; ++k) {
        if (!clients[k])
            continue;
        const std::size_t conn = firstConn + k;
        ConnResult &res = results[conn];
        try {
            if (!res.failed)
                clients[k]->drain();
        } catch (const RecoverableError &err) {
            res.failed = true;
            res.error = err.what();
        }
        const IngestClient &client = *clients[k];
        res.sent = client.sent();
        res.accepted = client.accepted();
        res.rejected = client.rejected();
        res.backpressureNacks = client.nacks(NackReason::Backpressure);
        res.unknownNacks = client.nacks(NackReason::UnknownMachine);
        res.latenciesMs = client.latenciesMs();
    }
}

LoadGenReport
LoadGenerator::run()
{
    raiseIf(cfg.machineIds.empty(),
            "loadgen: no machine ids to target");

    std::size_t workers = cfg.workers;
    if (workers == 0)
        workers = std::min<std::size_t>(cfg.connections, 16);
    workers = std::min(workers, cfg.connections);

    std::vector<ConnResult> results(cfg.connections);
    const auto start = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        // Block-partition connections over workers (remainder spread
        // one each over the first workers).
        const std::size_t base = cfg.connections / workers;
        const std::size_t extra = cfg.connections % workers;
        std::size_t next = 0;
        for (std::size_t w = 0; w < workers; ++w) {
            const std::size_t count = base + (w < extra ? 1 : 0);
            const std::size_t first = next;
            next += count;
            threads.emplace_back([this, first, count, &results] {
                runWorker(first, count, results);
            });
        }
        for (auto &t : threads)
            t.join();
    }
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    LoadGenReport report;
    report.elapsedSec = elapsed;
    std::vector<double> latencies;
    for (const ConnResult &res : results) {
        report.sent += res.sent;
        report.accepted += res.accepted;
        report.rejected += res.rejected;
        report.backpressureNacks += res.backpressureNacks;
        report.unknownNacks += res.unknownNacks;
        if (res.failed) {
            ++report.connectionsFailed;
            if (report.firstError.empty())
                report.firstError = res.error;
        }
        latencies.insert(latencies.end(), res.latenciesMs.begin(),
                         res.latenciesMs.end());
    }
    report.sentPerSec =
        elapsed > 0.0 ? static_cast<double>(report.sent) / elapsed
                      : 0.0;
    std::sort(latencies.begin(), latencies.end());
    report.p50LatencyMs = percentile(latencies, 0.50);
    report.p99LatencyMs = percentile(latencies, 0.99);
    report.maxLatencyMs = latencies.empty() ? 0.0 : latencies.back();
    return report;
}

std::string
LoadGenReport::toJson() const
{
    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\"sent\": " << sent << ", \"accepted\": " << accepted
         << ", \"rejected\": " << rejected
         << ", \"backpressure_nacks\": " << backpressureNacks
         << ", \"unknown_nacks\": " << unknownNacks
         << ", \"connections_failed\": " << connectionsFailed
         << ", \"elapsed_sec\": " << elapsedSec
         << ", \"sent_per_sec\": " << sentPerSec
         << ", \"p50_latency_ms\": " << p50LatencyMs
         << ", \"p99_latency_ms\": " << p99LatencyMs
         << ", \"max_latency_ms\": " << maxLatencyMs
         << ", \"first_error\": \"" << obs::jsonEscape(firstError)
         << "\"}";
    return json.str();
}

} // namespace chaos::net
