/**
 * @file
 * LoadGenerator: a multi-connection ingest load harness built on
 * IngestClient — the engine behind `chaos loadgen`, the multi-client
 * soak test, and bench/net_ingest.
 *
 * N connections are spread over W worker threads; each connection
 * round-robins synthetic samples across the fleet's machine ids at a
 * paced per-connection rate (0 = as fast as the credit window
 * allows). Rows are deterministic per (seed, connection): two runs
 * with the same config submit bit-identical samples, which is what
 * lets the soak test compare a network-fed snapshot against an
 * in-process replay.
 *
 * The report aggregates exact accounting (sent == accepted +
 * rejected across all connections, enforced by the callers) plus
 * credit-RTT latency percentiles.
 */
#ifndef CHAOS_NET_LOADGEN_HPP
#define CHAOS_NET_LOADGEN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "net/client.hpp"

namespace chaos::net {

/** Load-shape knobs. */
struct LoadGenConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Concurrent connections. */
    std::size_t connections = 8;
    /** Worker threads the connections are spread over (0 = one per
     *  connection, capped at 16). */
    std::size_t workers = 0;
    /** Machine ids to target, round-robin per connection. */
    std::vector<std::string> machineIds;
    /**
     * Pin each connection to one machine (conn % machineIds.size())
     * instead of round-robining. With one connection per machine,
     * every machine sees its samples in one connection's send order —
     * deterministic, so a verifier can replay the run in process and
     * expect bit-identical estimator state.
     */
    bool exclusiveMachines = false;
    /** Samples each connection sends. */
    std::size_t samplesPerConnection = 1000;
    /** Counter-row width (must match the serving models' catalog). */
    std::size_t rowSize = 2;
    /** Per-connection pace, samples/sec (0 = unpaced). */
    double ratePerConnection = 0.0;
    /** Attach a metered reading to every Nth sample (0 = never). */
    std::size_t meteredEvery = 0;
    /** Per-connection credit window. */
    std::size_t window = 1024;
    /** Speak JSONL instead of binary frames. */
    bool jsonl = false;
    /** Row-synthesis seed (same seed => same rows). */
    std::uint64_t seed = 42;
};

/** What a run did (aggregated over all connections). */
struct LoadGenReport
{
    std::uint64_t sent = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t backpressureNacks = 0;
    std::uint64_t unknownNacks = 0;
    /** Connections that failed to connect or died mid-run. */
    std::uint64_t connectionsFailed = 0;
    double elapsedSec = 0.0;
    /** sent / elapsedSec. */
    double sentPerSec = 0.0;
    /** Credit-ack round-trip percentiles, milliseconds. */
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    double maxLatencyMs = 0.0;
    /** First connection-level error seen ("" when none). */
    std::string firstError;

    /** Serialize as one single-line JSON object. */
    std::string toJson() const;
};

/** The harness (see file comment). */
class LoadGenerator
{
  public:
    explicit LoadGenerator(LoadGenConfig config);

    /**
     * Run the full load shape to completion and return the aggregate
     * report. Raises RecoverableError on a config without machine
     * ids. Individual connection failures do not abort the run; they
     * are counted in the report.
     */
    LoadGenReport run();

    /**
     * The deterministic row connection @p conn sends as its @p index
     * -th sample — exposed so a verifier can replay the exact same
     * samples in process (soak-test snapshot comparison).
     */
    void fillRow(std::size_t conn, std::size_t index,
                 std::vector<double> &row) const;

    /** The machine id connection @p conn targets at @p index. */
    const std::string &machineFor(std::size_t conn,
                                  std::size_t index) const;

    /** Metered reading for (conn, index); NaN when none attached. */
    double meteredFor(std::size_t conn, std::size_t index) const;

  private:
    /** One connection's outcome, collected by its worker thread. */
    struct ConnResult
    {
        std::uint64_t sent = 0;
        std::uint64_t accepted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t backpressureNacks = 0;
        std::uint64_t unknownNacks = 0;
        bool failed = false;
        std::string error;
        std::vector<double> latenciesMs;
    };

    void runWorker(std::size_t firstConn, std::size_t count,
                   std::vector<ConnResult> &results);

    LoadGenConfig cfg;
};

} // namespace chaos::net

#endif // CHAOS_NET_LOADGEN_HPP
