#include "net/client.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include "util/result.hpp"

namespace chaos::net {

IngestClient::IngestClient(IngestClientConfig config)
    : cfg(std::move(config))
{
    if (cfg.window == 0)
        cfg.window = 1;
    inBuf.resize(16 * 1024);
    latencyRing.reserve(cfg.maxLatencySamples);
}

IngestClient::~IngestClient() { close(); }

void
IngestClient::connect()
{
    sock = connectTcp(cfg.host, cfg.port);
}

void
IngestClient::close()
{
    sock.reset();
}

void
IngestClient::send(std::uint64_t tick, const std::string &machineId,
                   const double *row, std::size_t rowSize,
                   double meteredW)
{
    raiseIf(!sock.valid(), "net: client not connected");
    while (inFlight() >= cfg.window) {
        raiseIf(pump(/*blocking=*/true) == 0,
                "net: ack window stalled (server not acking)");
    }

    SampleFrame sample;
    sample.tick = tick;
    sample.machineId = machineId;
    sample.hasMetered = !std::isnan(meteredW);
    sample.meteredW = meteredW;
    sample.row.assign(row, row + rowSize);

    if (cfg.jsonl) {
        Frame out;
        out.type = FrameType::Sample;
        out.sample = std::move(sample);
        const std::string line = encodeJsonl(out);
        outBuf.insert(outBuf.end(), line.begin(), line.end());
    } else {
        encodeSample(sample, outBuf);
    }
    if (outBuf.size() >= cfg.coalesceBytes)
        flushSendBuffer();
    ++sentCount;
    sendTimes.push_back(std::chrono::steady_clock::now());

    // Opportunistically drain acks so the deque stays short.
    pump(/*blocking=*/false);
}

std::size_t
IngestClient::pump(bool blocking)
{
    raiseIf(!sock.valid(), "net: client not connected");
    // The server can only ack what it has received: push any
    // coalesced frames out before waiting on the socket.
    if (blocking)
        flushSendBuffer();
    std::size_t consumed = 0;
    while (true) {
        // Decode everything already buffered first.
        while (reader.next(frame) == DecodeStatus::Ok) {
            handleAck(frame);
            ++consumed;
        }
        raiseIf(!reader.error().empty(),
                "net: protocol error from server: " + reader.error());
        if (consumed > 0 || !blocking)
            break;

        pollfd pfd{sock.fd(), POLLIN, 0};
        const int ready = ::poll(&pfd, 1, cfg.ackTimeoutMs);
        raiseIf(ready < 0 && errno != EINTR,
                std::string("net: poll: ") + std::strerror(errno));
        if (ready == 0)
            return 0; // Timed out with nothing consumed.

        const ssize_t n =
            ::read(sock.fd(), inBuf.data(), inBuf.size());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            raise(std::string("net: read: ") + std::strerror(errno));
        }
        if (n == 0) {
            sock.reset();
            raise("net: connection closed by server" +
                  (nackCounts[static_cast<int>(
                       NackReason::BadSample)] > 0
                       ? std::string(" (after bad-sample nack)")
                       : std::string()));
        }
        reader.append(inBuf.data(), static_cast<std::size_t>(n));
    }
    return consumed;
}

bool
IngestClient::drain()
{
    while (inFlight() > 0) {
        if (pump(/*blocking=*/true) == 0)
            return false;
    }
    return true;
}

std::uint64_t
IngestClient::nacks(NackReason reason) const
{
    const int idx = static_cast<int>(reason);
    return idx >= 0 && idx < 4 ? nackCounts[idx] : 0;
}

std::vector<double>
IngestClient::latenciesMs() const
{
    return latencyRing;
}

void
IngestClient::handleAck(const Frame &ack)
{
    if (ack.type == FrameType::Nack) {
        const int idx = static_cast<int>(ack.nack.reason);
        if (idx >= 0 && idx < 4)
            ++nackCounts[idx];
        // Totals advance on the next Credit frame; a Nack alone is
        // advisory (reason + running rejected count).
        return;
    }
    if (ack.type != FrameType::Credit)
        return;

    acceptedTotal = ack.credit.acceptedTotal;
    rejectedTotal = ack.credit.rejectedTotal;

    // Every sample now covered by the cumulative totals completes a
    // round trip; record its latency and drop its send stamp.
    const std::uint64_t covered = acceptedTotal + rejectedTotal;
    const auto now = std::chrono::steady_clock::now();
    while (sendTimes.size() > sentCount - std::min(covered, sentCount)) {
        const double ms =
            std::chrono::duration<double, std::milli>(
                now - sendTimes.front())
                .count();
        sendTimes.pop_front();
        if (latencyRing.size() < cfg.maxLatencySamples)
            latencyRing.push_back(ms);
        else
            latencyRing[latencyCount % cfg.maxLatencySamples] = ms;
        ++latencyCount;
    }
}

void
IngestClient::flushSendBuffer()
{
    if (outBuf.empty())
        return;
    writeAll(outBuf.data(), outBuf.size());
    outBuf.clear();
}

void
IngestClient::writeAll(const std::uint8_t *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n =
            ::write(sock.fd(), data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string msg =
                std::string("net: write: ") + std::strerror(errno);
            sock.reset();
            raise(msg);
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string
fetchSnapshot(const std::string &host, std::uint16_t port,
              std::uint64_t seq, int timeoutMs)
{
    OwnedFd sock = connectTcp(host, port);

    IntrospectFrame request;
    request.seq = seq;
    std::vector<std::uint8_t> encoded;
    encodeIntrospect(request, encoded);
    std::size_t off = 0;
    while (off < encoded.size()) {
        const ssize_t n = ::write(sock.fd(), encoded.data() + off,
                                  encoded.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            raise(std::string("net: introspect write: ") +
                  std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }

    FrameReader reader;
    Frame frame;
    std::uint8_t chunk[16 * 1024];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    while (true) {
        DecodeStatus status;
        while ((status = reader.next(frame)) == DecodeStatus::Ok) {
            if (frame.type == FrameType::Snapshot &&
                frame.snapshot.seq == seq)
                return frame.snapshot.json;
            // Credit/Nack chatter for other traffic on this
            // connection (there is none, but a server is allowed to
            // send them): keep waiting for the snapshot.
        }
        raiseIf(status == DecodeStatus::Error,
                "net: introspect: " + reader.error());

        const auto now = std::chrono::steady_clock::now();
        raiseIf(now >= deadline,
                "net: introspect timed out waiting for snapshot");
        pollfd pfd{sock.fd(), POLLIN, 0};
        const int remainMs = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        const int ready = ::poll(&pfd, 1, std::max(remainMs, 1));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            raise(std::string("net: introspect poll: ") +
                  std::strerror(errno));
        }
        if (ready == 0)
            continue; // Deadline check above raises next round.
        const ssize_t n = ::read(sock.fd(), chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            raise(std::string("net: introspect read: ") +
                  std::strerror(errno));
        }
        raiseIf(n == 0,
                "net: server closed before sending the snapshot");
        reader.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace chaos::net
