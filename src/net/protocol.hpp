/**
 * @file
 * The CHAOS fleet-telemetry wire protocol: how counter samples travel
 * from collector machines to a ChaosIngestServer, and how credit /
 * NACK backpressure travels back.
 *
 * A connection speaks one of two framings, chosen by its first byte:
 *
 *  - Binary ('C'): length-prefixed frames with a fixed 12-byte header
 *
 *        offset  size  field
 *        0       1     magic0 'C'
 *        1       1     magic1 'W'
 *        2       1     version (kProtocolVersion)
 *        3       1     frame type (FrameType)
 *        4       4     payload length, little-endian u32
 *        8       4     CRC-32 over bytes [2..8) and the payload
 *        12      len   payload
 *
 *    All integers are little-endian; doubles travel as their IEEE-754
 *    bit pattern (a NaN payload survives the trip bit-identically).
 *    The CRC covers version, type, and the length field as well as
 *    the payload, so any corrupt byte outside the two magic bytes is
 *    caught by the checksum and the two magic bytes are checked
 *    directly: a mutated frame is rejected, never silently accepted.
 *
 *  - JSONL ('{'): one JSON object per '\n'-terminated line, for
 *    debuggability (drive a server with a shell heredoc, inspect a
 *    capture with standard tools). Same frame vocabulary:
 *
 *        {"type": "sample", "machine": "m0", "tick": 3,
 *         "row": [..], "metered_w": 93.5}
 *        {"type": "credit", "accepted": 10, "rejected": 0,
 *         "granted": 10}
 *        {"type": "nack", "rejected": 4, "reason": "backpressure"}
 *
 * Frame vocabulary (both framings):
 *
 *  - Sample (client -> server): one machine-second of telemetry —
 *    machine id, tick, the catalog-ordered counter row, and an
 *    optional metered reference reading.
 *  - Credit (server -> client): cumulative accepted/rejected counts
 *    plus freshly granted send credits. The client may keep at most
 *    `window` unacknowledged samples in flight; credits replenish the
 *    window as the server disposes of samples, so a slow server
 *    throttles its clients explicitly instead of letting the kernel
 *    socket buffer (and then a drop-oldest queue) absorb the
 *    overload silently.
 *  - Nack (server -> client): a sample was *rejected* — queue
 *    backpressure, unknown machine id, or a structurally invalid
 *    sample — with the cumulative rejected count. Rejected samples
 *    still consume and return credit (they were disposed of), so the
 *    client's window accounting never wedges.
 *  - Introspect (client -> server): ask the server for a live
 *    observability snapshot; carries a client-chosen sequence number
 *    echoed in the reply so a poller can match request to response.
 *  - Snapshot (server -> client): the reply — one validated JSON
 *    object (fleet state, stage-latency percentiles, flight-recorder
 *    summary, ingest stats) as the payload. This is what `chaos top`
 *    renders.
 *
 * Encode/decode are pure functions over byte buffers — no sockets in
 * this translation unit — so the framing state machine is testable
 * (and fuzzable) without a network in sight. Incremental decoding
 * lives in FrameReader, which tolerates arbitrary fragmentation: a
 * frame split at every byte boundary decodes identically to one
 * delivered whole.
 */
#ifndef CHAOS_NET_PROTOCOL_HPP
#define CHAOS_NET_PROTOCOL_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace chaos::net {

/** Protocol version this build speaks. */
inline constexpr std::uint8_t kProtocolVersion = 1;

/** Frame header size in bytes (magic..crc, before the payload). */
inline constexpr std::size_t kHeaderSize = 12;

/** Maximum payload length a peer may claim (1 MiB). */
inline constexpr std::uint32_t kMaxPayloadLen = 1u << 20;

/** Maximum counter-row width a sample may carry. */
inline constexpr std::size_t kMaxRowLen = 4096;

/** Maximum machine-id length a sample may carry. */
inline constexpr std::size_t kMaxMachineIdLen = 256;

/** Wire frame types (byte 3 of the header). */
enum class FrameType : std::uint8_t {
    Sample = 1,     ///< client -> server: one machine-second of telemetry.
    Credit = 2,     ///< server -> client: window replenishment + ack totals.
    Nack = 3,       ///< server -> client: a sample was rejected.
    Introspect = 4, ///< client -> server: request a live snapshot.
    Snapshot = 5,   ///< server -> client: the snapshot reply (JSON).
};

/** Why a sample was rejected (Nack payload). */
enum class NackReason : std::uint8_t {
    Backpressure = 1,   ///< Shard queue full; resend later or shed.
    UnknownMachine = 2, ///< Machine id not registered with the fleet.
    BadSample = 3,      ///< Structurally invalid sample payload.
};

/** @return Stable lowercase name for @p reason (e.g. "backpressure"). */
const char *nackReasonName(NackReason reason);

/** One machine-second of telemetry in flight. */
struct SampleFrame
{
    std::uint64_t tick = 0;  ///< Producer-side sample index.
    std::string machineId;   ///< Fleet registry key.
    bool hasMetered = false; ///< True when meteredW is a real reading.
    double meteredW = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> row; ///< Catalog-ordered counter values.
};

/** Window replenishment + cumulative ack totals. */
struct CreditFrame
{
    std::uint64_t acceptedTotal = 0; ///< Samples accepted so far.
    std::uint64_t rejectedTotal = 0; ///< Samples rejected so far.
    std::uint32_t granted = 0;       ///< Send credits granted now.
};

/** One sample rejected (see NackReason). */
struct NackFrame
{
    std::uint64_t rejectedTotal = 0; ///< Samples rejected so far.
    NackReason reason = NackReason::Backpressure;
};

/** Request for a live observability snapshot. */
struct IntrospectFrame
{
    std::uint64_t seq = 0; ///< Client token, echoed in the Snapshot.
};

/** The snapshot reply: one validated single-line JSON object. */
struct SnapshotFrame
{
    std::uint64_t seq = 0; ///< Echo of the request's token.
    std::string json;      ///< Well-formed JSON object (checked on
                           ///< both encode and decode).
};

/** A decoded frame: @c type selects which member is meaningful. */
struct Frame
{
    FrameType type = FrameType::Sample;
    SampleFrame sample;
    CreditFrame credit;
    NackFrame nack;
    IntrospectFrame introspect;
    SnapshotFrame snapshot;
};

/** CRC-32 (IEEE 802.3 polynomial) of @p data; seedable for chaining. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size,
                    std::uint32_t seed = 0);

// ---- Encoding (appends to @p out, returns bytes appended) ----------

/** Append one binary Sample frame. */
std::size_t encodeSample(const SampleFrame &frame,
                         std::vector<std::uint8_t> &out);

/** Append one binary Credit frame. */
std::size_t encodeCredit(const CreditFrame &frame,
                         std::vector<std::uint8_t> &out);

/** Append one binary Nack frame. */
std::size_t encodeNack(const NackFrame &frame,
                       std::vector<std::uint8_t> &out);

/** Append one binary Introspect frame. */
std::size_t encodeIntrospect(const IntrospectFrame &frame,
                             std::vector<std::uint8_t> &out);

/**
 * Append one binary Snapshot frame. Raises RecoverableError when the
 * JSON payload is not well-formed or would overflow the payload cap.
 */
std::size_t encodeSnapshot(const SnapshotFrame &frame,
                           std::vector<std::uint8_t> &out);

/** @return @p frame as one JSONL line (single line, '\n'-terminated). */
std::string encodeJsonl(const Frame &frame);

// ---- Decoding ------------------------------------------------------

/** What one decode attempt concluded. */
enum class DecodeStatus {
    Ok,       ///< One whole frame decoded; @c consumed bytes used.
    NeedMore, ///< The buffer holds only a frame prefix; read more.
    Error,    ///< The stream is corrupt; the connection is unusable.
};

/** Result of one decode attempt over a byte buffer. */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::NeedMore;
    std::size_t consumed = 0; ///< Bytes consumed (Ok only).
    std::string error;        ///< Human-readable cause (Error only).
};

/**
 * Try to decode one binary frame from the front of [data, data+size).
 * Pure and incremental: returns NeedMore on any true prefix of a
 * valid frame, Ok (with @c consumed) on a whole one, and Error on a
 * stream that can never become valid (bad magic, unknown version or
 * type, oversized or undersized length, checksum mismatch, malformed
 * payload). @p out is only meaningful on Ok; its row buffer is reused
 * across calls, so steady-state decoding does not allocate.
 */
DecodeResult decodeFrame(const std::uint8_t *data, std::size_t size,
                         Frame &out);

/**
 * Decode one frame from a JSONL line (without the trailing newline).
 * @return Error (never NeedMore) on malformed JSON or an unknown /
 *         structurally invalid frame object.
 */
DecodeResult decodeJsonlLine(const std::string &line, Frame &out);

/**
 * Exception-style wrapper over decodeFrame for callers that want the
 * library's RecoverableError contract: raises on Error, returns false
 * on NeedMore, true (with @p out filled) on Ok.
 */
bool decodeFrameOrRaise(const std::uint8_t *data, std::size_t size,
                        Frame &out, std::size_t &consumed);

/**
 * Incremental framing state machine for one connection. Feed it bytes
 * in whatever fragments the transport delivers; pull whole frames
 * out. The first byte of the stream selects the framing: 'C' binary,
 * '{' JSONL, anything else is an immediate protocol error. Errors are
 * sticky — a corrupt stream cannot resynchronize, matching the
 * server's close-on-error contract.
 */
class FrameReader
{
  public:
    /** Buffer @p size bytes received from the peer. */
    void append(const std::uint8_t *data, std::size_t size);

    /**
     * Try to extract the next whole frame into @p frame.
     * @return Ok (frame filled), NeedMore (feed more bytes), or
     *         Error (see error(); sticky).
     */
    DecodeStatus next(Frame &frame);

    /** Human-readable cause of the sticky Error state ("" while ok). */
    const std::string &error() const { return errorMessage; }

    /** True once the stream committed to JSONL framing. */
    bool jsonlMode() const { return mode == Mode::Jsonl; }

    /** Bytes buffered but not yet consumed by a decoded frame. */
    std::size_t buffered() const { return buf.size() - readPos; }

  private:
    enum class Mode { Undecided, Binary, Jsonl };

    void compact();

    Mode mode = Mode::Undecided;
    std::vector<std::uint8_t> buf;
    std::size_t readPos = 0;
    std::string errorMessage;
    std::string lineScratch; ///< Reused JSONL line buffer.
};

} // namespace chaos::net

#endif // CHAOS_NET_PROTOCOL_HPP
