#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/result.hpp"
#include "util/string_utils.hpp"

namespace chaos::net {

namespace {

std::string
errnoMessage(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

/** Resolve "localhost" / dotted-quad @p host into @p addr. */
void
fillAddress(const std::string &host, std::uint16_t port,
            sockaddr_in &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string resolved =
        host.empty() || host == "localhost" ? "127.0.0.1" : host;
    raiseIf(inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1,
            "net: cannot parse address '" + host + "'");
}

/**
 * std::streambuf over a connected socket fd. Buffers up to 8 KiB and
 * flushes with write(); short writes are retried, a peer reset marks
 * the stream failed (the JsonlWriter above records a sticky error).
 */
class FdStreamBuf : public std::streambuf
{
  public:
    explicit FdStreamBuf(OwnedFd fd) : fd_(std::move(fd))
    {
        setp(buf_, buf_ + sizeof(buf_));
    }

    ~FdStreamBuf() override { sync(); }

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (flushBuffer() != 0)
            return traits_type::eof();
        if (!traits_type::eq_int_type(ch, traits_type::eof())) {
            *pptr() = traits_type::to_char_type(ch);
            pbump(1);
        }
        return traits_type::not_eof(ch);
    }

    int
    sync() override
    {
        return flushBuffer();
    }

  private:
    int
    flushBuffer()
    {
        const char *p = pbase();
        std::ptrdiff_t left = pptr() - pbase();
        while (left > 0) {
            const ssize_t n = ::write(fd_.fd(), p,
                                      static_cast<std::size_t>(left));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return -1;
            }
            p += n;
            left -= n;
        }
        setp(buf_, buf_ + sizeof(buf_));
        return 0;
    }

    OwnedFd fd_;
    char buf_[8192];
};

/** ostream owning its FdStreamBuf. */
class FdOStream : public std::ostream
{
  public:
    explicit FdOStream(OwnedFd fd)
        : std::ostream(nullptr), buf_(std::move(fd))
    {
        rdbuf(&buf_);
    }

  private:
    FdStreamBuf buf_;
};

} // namespace

void
OwnedFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::pair<OwnedFd, std::uint16_t>
listenTcp(const std::string &bindAddress, std::uint16_t port,
          int backlog)
{
    OwnedFd sock(::socket(AF_INET, SOCK_STREAM, 0));
    raiseIf(!sock.valid(), errnoMessage("net: socket"));
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr;
    fillAddress(bindAddress, port, addr);
    raiseIf(::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0,
            errnoMessage("net: bind " + bindAddress + ":" +
                         std::to_string(port)));
    raiseIf(::listen(sock.fd(), backlog) != 0,
            errnoMessage("net: listen"));
    socklen_t len = sizeof(addr);
    raiseIf(::getsockname(sock.fd(),
                          reinterpret_cast<sockaddr *>(&addr),
                          &len) != 0,
            errnoMessage("net: getsockname"));
    setNonBlocking(sock.fd());
    return {std::move(sock), ntohs(addr.sin_port)};
}

OwnedFd
connectTcp(const std::string &host, std::uint16_t port)
{
    OwnedFd sock(::socket(AF_INET, SOCK_STREAM, 0));
    raiseIf(!sock.valid(), errnoMessage("net: socket"));
    sockaddr_in addr;
    fillAddress(host, port, addr);
    int rc;
    do {
        rc = ::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    raiseIf(rc != 0, errnoMessage("net: connect " + host + ":" +
                                  std::to_string(port)));
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));
    return sock;
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    raiseIf(flags < 0 ||
                ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0,
            errnoMessage("net: fcntl O_NONBLOCK"));
}

std::pair<std::string, std::uint16_t>
parseHostPort(const std::string &target)
{
    const std::size_t colon = target.rfind(':');
    raiseIf(colon == std::string::npos || colon + 1 >= target.size(),
            "net: expected host:port, got '" + target + "'");
    const std::string host = target.substr(0, colon);
    int port = 0;
    for (std::size_t i = colon + 1; i < target.size(); ++i) {
        const char c = target[i];
        raiseIf(c < '0' || c > '9',
                "net: bad port in '" + target + "'");
        port = port * 10 + (c - '0');
        raiseIf(port > 65535, "net: port out of range in '" + target +
                                  "'");
    }
    return {host, static_cast<std::uint16_t>(port)};
}

bool
isSocketTarget(const std::string &path)
{
    return startsWith(path, "tcp://");
}

std::unique_ptr<std::ostream>
connectLineSink(const std::string &target)
{
    std::string hostPort = target;
    if (isSocketTarget(hostPort))
        hostPort = hostPort.substr(6);
    const auto [host, port] = parseHostPort(hostPort);
    return std::make_unique<FdOStream>(connectTcp(host, port));
}

} // namespace chaos::net
