/**
 * @file
 * IngestClient: one connection's worth of the client side of the
 * chaos wire protocol (net/protocol.hpp) — framing, the credit
 * window, and ack accounting — shared by the loadgen harness, the
 * tests, and the `chaos loadgen` CLI.
 *
 * Flow control: the client keeps at most `window` samples in flight
 * (sent but not yet covered by a Credit frame's cumulative totals).
 * When the window is full, send() pumps acks — blocking on the socket
 * if necessary — before writing the next sample, so a slow or
 * backpressuring server throttles the producer instead of growing an
 * unbounded buffer. Rejected samples (Nack / rejected counts) also
 * return window credit: accounting never wedges on an overloaded
 * server.
 *
 * Latency: every sample's send time is remembered until a Credit
 * frame covers it; the credit-ack round trip is the frame latency the
 * bench gates on (p50/p99 over a bounded ring).
 */
#ifndef CHAOS_NET_CLIENT_HPP
#define CHAOS_NET_CLIENT_HPP

#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace chaos::net {

/** Client-side knobs. */
struct IngestClientConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Max samples in flight before send() blocks pumping acks. */
    std::size_t window = 1024;
    /** Speak JSONL instead of binary frames. */
    bool jsonl = false;
    /** Credit-RTT ring capacity (latency percentiles). */
    std::size_t maxLatencySamples = 8192;
    /** Give up pumping acks after this long with no progress, ms. */
    int ackTimeoutMs = 10000;
    /**
     * Coalesce encoded frames into one write() once this many bytes
     * are buffered. Buffered frames are always flushed before the
     * client blocks waiting for acks (the server cannot ack what it
     * has not received), so correctness never depends on the
     * threshold — only the syscall rate does. 0 writes every frame
     * immediately (lowest latency, one syscall per sample).
     */
    std::size_t coalesceBytes = 56 * 1024;
};

/** One protocol connection (see file comment). Not thread-safe. */
class IngestClient
{
  public:
    explicit IngestClient(IngestClientConfig config);
    ~IngestClient();

    IngestClient(const IngestClient &) = delete;
    IngestClient &operator=(const IngestClient &) = delete;

    /** Connect to host:port. Raises RecoverableError on failure. */
    void connect();

    /**
     * Send one sample, blocking on the credit window when full.
     * Raises RecoverableError when the server closed the connection
     * or the window could not be replenished within ackTimeoutMs.
     */
    void send(std::uint64_t tick, const std::string &machineId,
              const double *row, std::size_t rowSize,
              double meteredW =
                  std::numeric_limits<double>::quiet_NaN());

    /**
     * Consume any acks the server has sent. @p blocking waits up to
     * ackTimeoutMs for at least one frame. @return Frames consumed.
     * Raises RecoverableError on a protocol error from the server.
     */
    std::size_t pump(bool blocking);

    /**
     * Block until every sent sample is covered by an ack (or the
     * server closes). @return True when fully drained.
     */
    bool drain();

    /** Close the connection (idempotent). */
    void close();

    bool connected() const { return sock.valid(); }

    std::uint64_t sent() const { return sentCount; }
    /** Samples the server accepted into its queues (from acks). */
    std::uint64_t accepted() const { return acceptedTotal; }
    /** Samples the server rejected (backpressure/unknown/bad). */
    std::uint64_t rejected() const { return rejectedTotal; }
    /** Nack frames received, by reason (indexed by NackReason). */
    std::uint64_t nacks(NackReason reason) const;
    /** True if the server ever sent a backpressure Nack. */
    bool sawBackpressure() const
    {
        return nacks(NackReason::Backpressure) > 0;
    }

    /** Credit-ack round trips observed so far, milliseconds. */
    std::vector<double> latenciesMs() const;

  private:
    std::uint64_t inFlight() const
    {
        return sentCount - (acceptedTotal + rejectedTotal);
    }
    void handleAck(const Frame &frame);
    void writeAll(const std::uint8_t *data, std::size_t size);
    /** Write out any coalesced frames still sitting in outBuf. */
    void flushSendBuffer();

    IngestClientConfig cfg;
    OwnedFd sock;
    FrameReader reader;
    Frame frame;                      ///< Reused decode target.
    std::vector<std::uint8_t> outBuf; ///< Coalesced unsent frames.
    std::vector<std::uint8_t> inBuf;  ///< Reused read chunk.

    std::uint64_t sentCount = 0;
    std::uint64_t acceptedTotal = 0;
    std::uint64_t rejectedTotal = 0;
    std::uint64_t nackCounts[4] = {0, 0, 0, 0};

    /** Send times of in-flight samples, oldest first. */
    std::deque<std::chrono::steady_clock::time_point> sendTimes;
    std::vector<double> latencyRing;
    std::size_t latencyCount = 0;
};

/**
 * One-shot introspection poll: connect to host:port, send one binary
 * Introspect frame with @p seq, and block until the matching Snapshot
 * reply arrives (ignoring any Credit/Nack chatter in between).
 * @return The snapshot's JSON payload (already validated by the
 *         protocol decoder). Raises RecoverableError on connection
 *         failure, protocol error, a server close, or @p timeoutMs
 *         elapsing first. This is what `chaos top` polls.
 */
std::string fetchSnapshot(const std::string &host, std::uint16_t port,
                          std::uint64_t seq = 1,
                          int timeoutMs = 5000);

} // namespace chaos::net

#endif // CHAOS_NET_CLIENT_HPP
