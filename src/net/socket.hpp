/**
 * @file
 * Thin POSIX TCP helpers shared by the ingest server, the client, and
 * the telemetry socket sink: an RAII file descriptor, loopback-
 * friendly listen/connect wrappers, and a socket-backed std::ostream
 * for line-oriented sinks. Everything raises RecoverableError with
 * errno context on failure — a refused connection is user-facing
 * state, not a bug.
 */
#ifndef CHAOS_NET_SOCKET_HPP
#define CHAOS_NET_SOCKET_HPP

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace chaos::net {

/** Owning file descriptor: closes on destruction, move-only. */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd) : fd_(fd) {}
    ~OwnedFd() { reset(); }

    OwnedFd(OwnedFd &&other) noexcept : fd_(other.release()) {}
    OwnedFd &
    operator=(OwnedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        return std::exchange(fd_, -1);
    }

    /** Close now (idempotent). */
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Create a listening TCP socket on @p bindAddress:@p port (port 0
 * picks an ephemeral port). @return the socket and the actually bound
 * port. SO_REUSEADDR is set; the socket is nonblocking.
 */
std::pair<OwnedFd, std::uint16_t>
listenTcp(const std::string &bindAddress, std::uint16_t port,
          int backlog = 128);

/**
 * Connect to @p host:@p port (IPv4 dotted quad or "localhost").
 * Blocking connect; the returned socket is left in blocking mode with
 * TCP_NODELAY set (the protocol batches its own writes).
 */
OwnedFd connectTcp(const std::string &host, std::uint16_t port);

/** Put @p fd in nonblocking mode (raises on failure). */
void setNonBlocking(int fd);

/**
 * Parse "host:port" (raises on a malformed string or port range).
 */
std::pair<std::string, std::uint16_t>
parseHostPort(const std::string &target);

/**
 * Connect a socket-backed std::ostream suitable for line-oriented
 * sinks (obs::JsonlWriter / monitor::TelemetryExporter): every write
 * goes to the connected peer; a broken connection puts the stream in
 * a failed state instead of raising mid-write. @p target is
 * "host:port" or "tcp://host:port".
 */
std::unique_ptr<std::ostream> connectLineSink(const std::string &target);

/** True when @p path names a socket sink ("tcp://host:port"). */
bool isSocketTarget(const std::string &path);

} // namespace chaos::net

#endif // CHAOS_NET_SOCKET_HPP
