#include "net/ingest_server.hpp"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>

#include "obs/events.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/stage_metrics.hpp"
#include "util/result.hpp"

namespace chaos::net {

namespace {

/** chaos.net.* metrics (Scheduling: counts depend on peer timing). */
struct NetMetrics
{
    obs::Gauge &connections;
    obs::Counter &connectionsTotal;
    obs::Counter &connectionsDropped;
    obs::Counter &frames;
    obs::Counter &badFrames;
    obs::Counter &samples;
    obs::Counter &rejected;
    obs::Counter &nacks;
    obs::Counter &credits;
    obs::Counter &backpressure;
    obs::Counter &introspects;
    obs::Counter &bytesIn;
    obs::Counter &bytesOut;

    static NetMetrics &
    get()
    {
        auto &registry = obs::Registry::instance();
        static NetMetrics m{
            registry.gauge("chaos.net.connections",
                           obs::Stability::Scheduling),
            registry.counter("chaos.net.connections_total",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.connections_dropped",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.frames",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.bad_frames",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.samples",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.rejected",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.nacks",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.credits",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.backpressure",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.introspects",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.bytes_in",
                             obs::Stability::Scheduling),
            registry.counter("chaos.net.bytes_out",
                             obs::Stability::Scheduling),
        };
        return m;
    }
};

std::string
peerName(int fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getpeername(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0)
        return "?";
    char buf[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
    return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

} // namespace

/**
 * Per-connection state, owned by the poll thread. Stats counters are
 * atomics so stats() can read them from other threads without a lock;
 * everything else (reader, buffers, totals) is poll-thread-only.
 */
struct ChaosIngestServer::Connection
{
    OwnedFd fd;
    std::uint64_t id = 0;
    std::string peer;

    FrameReader reader;
    Frame frame; ///< Reused decode target.
    std::vector<std::uint8_t> inChunk;

    std::vector<std::uint8_t> outBuf;
    std::size_t outPos = 0;

    /** Cumulative disposition totals carried on Credit frames. */
    std::uint64_t acceptedTotal = 0;
    std::uint64_t rejectedTotal = 0;
    /** Samples disposed of since the last Credit frame. */
    std::uint64_t sinceCredit = 0;
    /** True inside a saturation episode (one event per episode). */
    bool backpressureEpisode = false;

    /** Registry lookups cached per connection. */
    std::unordered_map<std::string, serve::MachineEntry *> entries;

    // Cross-thread-visible accounting (stats()).
    std::atomic<bool> openFlag{true};
    std::atomic<bool> sawJsonl{false};
    std::atomic<std::uint64_t> bytesIn{0};
    std::atomic<std::uint64_t> bytesOut{0};
    std::atomic<std::uint64_t> framesIn{0};
    std::atomic<std::uint64_t> samplesAccepted{0};
    std::atomic<std::uint64_t> rejectedBackpressure{0};
    std::atomic<std::uint64_t> rejectedUnknown{0};
    std::atomic<std::uint64_t> badFrames{0};
    /** Written by the poll thread before openFlag drops; read by
     *  stats() only once openFlag is false (release/acquire pair). */
    std::string closeReason;
    bool closedOnError = false;
};

ChaosIngestServer::ChaosIngestServer(serve::FleetServer &server,
                                     IngestServerConfig config)
    : fleet(server), cfg(std::move(config))
{
    if (cfg.creditBatch == 0)
        cfg.creditBatch = 128;
    if (cfg.pollTimeoutMs <= 0)
        cfg.pollTimeoutMs = 20;
}

ChaosIngestServer::~ChaosIngestServer() { stop(); }

void
ChaosIngestServer::start()
{
    raiseIf(runningFlag.load(), "net: ingest server already running");
    auto [sock, port] = listenTcp(cfg.bindAddress, cfg.port);
    listener = std::move(sock);
    boundPort = port;

    int pipeFds[2];
    raiseIf(::pipe(pipeFds) != 0, "net: pipe failed");
    wakeRead = OwnedFd(pipeFds[0]);
    wakeWrite = OwnedFd(pipeFds[1]);
    setNonBlocking(wakeRead.fd());

    stopRequested.store(false);
    runningFlag.store(true);
    pollThread = std::thread([this] { loop(); });
}

void
ChaosIngestServer::stop()
{
    if (!runningFlag.load())
        return;
    stopRequested.store(true);
    if (wakeWrite.valid()) {
        const char byte = 0;
        ssize_t n;
        do {
            n = ::write(wakeWrite.fd(), &byte, 1);
        } while (n < 0 && errno == EINTR);
    }
    if (pollThread.joinable())
        pollThread.join();
    runningFlag.store(false);
    listener.reset();
    wakeRead.reset();
    wakeWrite.reset();
}

void
ChaosIngestServer::loop()
{
    std::vector<pollfd> fds;
    while (!stopRequested.load()) {
        fds.clear();
        fds.push_back({listener.fd(), POLLIN, 0});
        fds.push_back({wakeRead.fd(), POLLIN, 0});
        for (const auto &conn : live) {
            short events = POLLIN;
            if (conn->outPos < conn->outBuf.size())
                events |= POLLOUT;
            fds.push_back({conn->fd.fd(), events, 0});
        }

        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()),
                           cfg.pollTimeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break; // Listener state is unrecoverable; shut down.
        }
        if (stopRequested.load())
            break;

        // Connections accepted below are not in this poll round's
        // fds; only the first `polled` live entries have revents.
        const std::size_t polled = fds.size() - 2;
        if (fds[0].revents & POLLIN)
            acceptPending();

        // Visit connections back to front so closing (swap-remove)
        // does not disturb unvisited indices.
        for (std::size_t i = polled; i-- > 0;) {
            Connection &conn = *live[i];
            const short revents = fds[2 + i].revents;
            bool alive = true;
            if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
                // Drain what the peer managed to send, then close.
                alive = handleReadable(conn);
                if (alive) {
                    closeConnection(conn, "", false);
                    alive = false;
                }
            } else {
                if (revents & POLLIN)
                    alive = handleReadable(conn);
                if (alive && (revents & POLLOUT))
                    alive = flushWrites(conn);
            }
            if (!alive) {
                live[i] = std::move(live.back());
                live.pop_back();
            }
        }

        // Idle credit flush: ack stragglers below the batch threshold
        // so trickle-rate clients see their window replenished within
        // one poll interval.
        for (std::size_t i = live.size(); i-- > 0;) {
            Connection &conn = *live[i];
            if (conn.sinceCredit > 0)
                queueCredit(conn);
            if (conn.outPos < conn.outBuf.size() &&
                !flushWrites(conn)) {
                live[i] = std::move(live.back());
                live.pop_back();
            }
        }
    }

    for (const auto &conn : live) {
        if (conn->openFlag.load())
            closeConnection(*conn, "server stopped", false);
    }
    live.clear();
}

void
ChaosIngestServer::acceptPending()
{
    while (true) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or transient accept failure.
        }
        OwnedFd sock(fd);
        if (live.size() >= cfg.maxConnections) {
            refusedConns.fetch_add(1);
            continue; // sock closes: connection refused by policy.
        }
        setNonBlocking(sock.fd());
        const int one = 1;
        ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));

        auto conn = std::make_shared<Connection>();
        conn->peer = peerName(sock.fd());
        conn->fd = std::move(sock);
        conn->id = nextConnId.fetch_add(1);
        conn->inChunk.resize(cfg.readChunk);
        live.push_back(conn);
        {
            std::lock_guard<std::mutex> lock(statsMu);
            all.push_back(std::move(conn));
        }
        acceptedConns.fetch_add(1);
        NetMetrics::get().connectionsTotal.add();
        NetMetrics::get().connections.add(1);
    }
}

bool
ChaosIngestServer::handleReadable(Connection &conn)
{
    while (true) {
        const ssize_t n = ::read(conn.fd.fd(), conn.inChunk.data(),
                                 conn.inChunk.size());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            closeConnection(conn,
                            std::string("read error: ") +
                                std::strerror(errno),
                            true);
            return false;
        }
        if (n == 0) {
            // EOF: decode whatever is already buffered, then close.
            if (!processFrames(conn))
                return false;
            closeConnection(conn, "", false);
            return false;
        }
        conn.bytesIn.fetch_add(static_cast<std::uint64_t>(n));
        NetMetrics::get().bytesIn.add(static_cast<std::uint64_t>(n));
        conn.reader.append(conn.inChunk.data(),
                           static_cast<std::size_t>(n));
        if (!processFrames(conn))
            return false;
        if (static_cast<std::size_t>(n) < conn.inChunk.size())
            return true; // Drained the socket for now.
    }
}

bool
ChaosIngestServer::processFrames(Connection &conn)
{
    while (true) {
        // The decode stamp doubles as the sample's ingest timestamp:
        // queue wait and e2e latency are measured from the moment the
        // wire bytes became a frame, not from some later requeue.
        const bool stageOn = serve::stageTracingEnabled();
        const std::uint64_t t0 = stageOn ? obs::traceNowNs() : 0;
        if (conn.reader.next(conn.frame) != DecodeStatus::Ok)
            break;
        const std::uint64_t t1 = stageOn ? obs::traceNowNs() : 0;
        if (stageOn)
            serve::StageMetrics::get().decodeUs.observe(
                static_cast<double>(t1 - t0) / 1000.0);
        conn.framesIn.fetch_add(1);
        NetMetrics::get().frames.add();
        if (conn.reader.jsonlMode())
            conn.sawJsonl.store(true);
        switch (conn.frame.type) {
        case FrameType::Sample:
            handleSample(conn, t1);
            break;
        case FrameType::Introspect:
            queueSnapshot(conn, conn.frame.introspect.seq);
            break;
        case FrameType::Credit:
        case FrameType::Nack:
        case FrameType::Snapshot:
            // Server-to-client frames; ignore if echoed back.
            break;
        }
        if (conn.outBuf.size() - conn.outPos > cfg.maxWriteBacklog) {
            closeConnection(conn, "write backlog over limit", true);
            return false;
        }
    }
    if (!conn.reader.error().empty()) {
        conn.badFrames.fetch_add(1);
        NetMetrics::get().badFrames.add();
        // Best effort: tell the peer why before closing.
        queueNack(conn, NackReason::BadSample);
        flushWrites(conn);
        if (conn.openFlag.load())
            closeConnection(conn, conn.reader.error(), true);
        return false;
    }
    if (conn.sinceCredit >= cfg.creditBatch)
        queueCredit(conn);
    return true;
}

void
ChaosIngestServer::handleSample(Connection &conn,
                                std::uint64_t ingestNs)
{
    const SampleFrame &sample = conn.frame.sample;
    NetMetrics::get().samples.add();

    serve::MachineEntry *entry = nullptr;
    auto it = conn.entries.find(sample.machineId);
    if (it != conn.entries.end()) {
        entry = it->second;
    } else {
        entry = fleet.machine(sample.machineId);
        if (entry != nullptr)
            conn.entries.emplace(sample.machineId, entry);
    }

    if (entry == nullptr) {
        ++conn.rejectedTotal;
        ++conn.sinceCredit;
        conn.rejectedUnknown.fetch_add(1);
        NetMetrics::get().rejected.add();
        queueNack(conn, NackReason::UnknownMachine);
        return;
    }

    const double meteredW =
        sample.hasMetered
            ? sample.meteredW
            : std::numeric_limits<double>::quiet_NaN();
    if (fleet.offer(*entry, sample.row.data(), sample.row.size(),
                    meteredW, ingestNs)) {
        ++conn.acceptedTotal;
        ++conn.sinceCredit;
        conn.samplesAccepted.fetch_add(1);
        if (conn.backpressureEpisode)
            conn.backpressureEpisode = false; // Episode ended.
        return;
    }

    // Shard queue full: explicit backpressure instead of drop-oldest.
    ++conn.rejectedTotal;
    ++conn.sinceCredit;
    conn.rejectedBackpressure.fetch_add(1);
    NetMetrics::get().rejected.add();
    if (!conn.backpressureEpisode) {
        conn.backpressureEpisode = true;
        NetMetrics::get().backpressure.add();
        obs::EventLog::instance().emit(
            obs::EventKind::Backpressure, conn.peer,
            "ingest rejecting samples for '" + sample.machineId +
                "': shard queue full");
    }
    queueNack(conn, NackReason::Backpressure);
}

void
ChaosIngestServer::queueCredit(Connection &conn)
{
    CreditFrame credit;
    credit.acceptedTotal = conn.acceptedTotal;
    credit.rejectedTotal = conn.rejectedTotal;
    credit.granted = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(conn.sinceCredit, 0xffffffffu));
    conn.sinceCredit = 0;
    credits.fetch_add(1);
    NetMetrics::get().credits.add();

    Frame frame;
    frame.type = FrameType::Credit;
    frame.credit = credit;
    if (conn.reader.jsonlMode()) {
        const std::string line = encodeJsonl(frame);
        queueBytes(conn,
                   reinterpret_cast<const std::uint8_t *>(line.data()),
                   line.size());
    } else {
        std::vector<std::uint8_t> buf;
        encodeCredit(credit, buf);
        queueBytes(conn, buf.data(), buf.size());
    }
}

void
ChaosIngestServer::queueNack(Connection &conn, NackReason reason)
{
    NackFrame nack;
    nack.rejectedTotal = conn.rejectedTotal;
    nack.reason = reason;
    nacks.fetch_add(1);
    NetMetrics::get().nacks.add();

    Frame frame;
    frame.type = FrameType::Nack;
    frame.nack = nack;
    if (conn.reader.jsonlMode()) {
        const std::string line = encodeJsonl(frame);
        queueBytes(conn,
                   reinterpret_cast<const std::uint8_t *>(line.data()),
                   line.size());
    } else {
        std::vector<std::uint8_t> buf;
        encodeNack(nack, buf);
        queueBytes(conn, buf.data(), buf.size());
    }
}

void
ChaosIngestServer::queueSnapshot(Connection &conn, std::uint64_t seq)
{
    introspects.fetch_add(1);
    NetMetrics::get().introspects.add();

    Frame frame;
    frame.type = FrameType::Snapshot;
    frame.snapshot.seq = seq;
    frame.snapshot.json = buildIntrospectJson();
    if (conn.reader.jsonlMode()) {
        const std::string line = encodeJsonl(frame);
        queueBytes(conn,
                   reinterpret_cast<const std::uint8_t *>(line.data()),
                   line.size());
    } else {
        std::vector<std::uint8_t> buf;
        encodeSnapshot(frame.snapshot, buf);
        queueBytes(conn, buf.data(), buf.size());
    }
}

std::string
ChaosIngestServer::buildIntrospectJson() const
{
    const auto assemble = [this](bool detail) {
        serve::FleetSnapshot fleetSnap = fleet.snapshot();
        IngestStats ingest = stats();
        if (!detail) {
            fleetSnap.machines.clear();
            ingest.connections.clear();
        }
        std::ostringstream json;
        json << "{\"type\": \"chaos_top\", \"ts_ms\": "
             << fleetSnap.tsMs
             << ", \"detail\": " << (detail ? "true" : "false")
             << ", \"fleet\": " << fleetSnap.toJson()
             << ", \"ingest\": " << ingest.toJson()
             << ", \"stage_latency\": " << serve::stageLatencyJson()
             << ", \"flight\": "
             << obs::FlightRecorder::instance().snapshotJson() << "}";
        return json.str();
    };
    // Per-machine and per-connection detail scales with fleet size;
    // fall back to the headline-only form rather than exceed the
    // frame payload cap (encodeSnapshot would refuse it).
    std::string json = assemble(true);
    if (json.size() + 64 > kMaxPayloadLen)
        json = assemble(false);
    return json;
}

void
ChaosIngestServer::queueBytes(Connection &conn,
                              const std::uint8_t *data,
                              std::size_t size)
{
    // Compact the consumed prefix before growing.
    if (conn.outPos > 0 && conn.outPos == conn.outBuf.size()) {
        conn.outBuf.clear();
        conn.outPos = 0;
    } else if (conn.outPos > 4096 &&
               conn.outPos * 2 > conn.outBuf.size()) {
        conn.outBuf.erase(conn.outBuf.begin(),
                          conn.outBuf.begin() +
                              static_cast<std::ptrdiff_t>(conn.outPos));
        conn.outPos = 0;
    }
    conn.outBuf.insert(conn.outBuf.end(), data, data + size);
}

bool
ChaosIngestServer::flushWrites(Connection &conn)
{
    while (conn.outPos < conn.outBuf.size()) {
        const ssize_t n = ::write(
            conn.fd.fd(), conn.outBuf.data() + conn.outPos,
            conn.outBuf.size() - conn.outPos);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // Retry when poll reports writable.
            closeConnection(conn,
                            std::string("write error: ") +
                                std::strerror(errno),
                            true);
            return false;
        }
        conn.outPos += static_cast<std::size_t>(n);
        conn.bytesOut.fetch_add(static_cast<std::uint64_t>(n));
        NetMetrics::get().bytesOut.add(static_cast<std::uint64_t>(n));
    }
    return true;
}

void
ChaosIngestServer::closeConnection(Connection &conn,
                                   const std::string &reason,
                                   bool isError)
{
    if (!conn.openFlag.load())
        return;
    conn.closeReason = reason;
    conn.closedOnError = isError;
    conn.openFlag.store(false, std::memory_order_release);
    conn.fd.reset();
    NetMetrics::get().connections.add(-1);
    if (isError) {
        droppedConns.fetch_add(1);
        NetMetrics::get().connectionsDropped.add();
        obs::EventLog::instance().emit(
            obs::EventKind::ConnectionDrop, conn.peer,
            "ingest connection dropped: " + reason);
    }
}

IngestStats
ChaosIngestServer::stats() const
{
    IngestStats out;
    out.connectionsAccepted = acceptedConns.load();
    out.connectionsDropped = droppedConns.load();
    out.connectionsRefused = refusedConns.load();
    out.nacksSent = nacks.load();
    out.creditsSent = credits.load();
    out.introspectsServed = introspects.load();

    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(statsMu);
        conns = all;
    }
    out.connections.reserve(conns.size());
    for (const auto &conn : conns) {
        ConnectionStats cs;
        cs.id = conn->id;
        cs.peer = conn->peer;
        cs.jsonl = conn->sawJsonl.load();
        cs.open = conn->openFlag.load(std::memory_order_acquire);
        cs.bytesIn = conn->bytesIn.load();
        cs.bytesOut = conn->bytesOut.load();
        cs.framesIn = conn->framesIn.load();
        cs.samplesAccepted = conn->samplesAccepted.load();
        cs.rejectedBackpressure = conn->rejectedBackpressure.load();
        cs.rejectedUnknown = conn->rejectedUnknown.load();
        cs.badFrames = conn->badFrames.load();
        if (!cs.open)
            cs.closeReason = conn->closeReason;
        out.connectionsOpen += cs.open ? 1 : 0;
        out.bytesIn += cs.bytesIn;
        out.bytesOut += cs.bytesOut;
        out.framesIn += cs.framesIn;
        out.samplesAccepted += cs.samplesAccepted;
        out.rejectedBackpressure += cs.rejectedBackpressure;
        out.rejectedUnknown += cs.rejectedUnknown;
        out.badFrames += cs.badFrames;
        out.connections.push_back(std::move(cs));
    }
    return out;
}

std::string
IngestStats::toJson() const
{
    std::ostringstream json;
    json << "{\"connections_accepted\": " << connectionsAccepted
         << ", \"connections_open\": " << connectionsOpen
         << ", \"connections_dropped\": " << connectionsDropped
         << ", \"connections_refused\": " << connectionsRefused
         << ", \"bytes_in\": " << bytesIn
         << ", \"bytes_out\": " << bytesOut
         << ", \"frames_in\": " << framesIn
         << ", \"samples_accepted\": " << samplesAccepted
         << ", \"rejected_backpressure\": " << rejectedBackpressure
         << ", \"rejected_unknown\": " << rejectedUnknown
         << ", \"bad_frames\": " << badFrames
         << ", \"nacks_sent\": " << nacksSent
         << ", \"credits_sent\": " << creditsSent
         << ", \"introspects_served\": " << introspectsServed
         << ", \"connections\": [";
    for (std::size_t i = 0; i < connections.size(); ++i) {
        const ConnectionStats &cs = connections[i];
        if (i > 0)
            json << ", ";
        json << "{\"id\": " << cs.id << ", \"peer\": \""
             << obs::jsonEscape(cs.peer) << "\", \"jsonl\": "
             << (cs.jsonl ? "true" : "false")
             << ", \"open\": " << (cs.open ? "true" : "false")
             << ", \"bytes_in\": " << cs.bytesIn
             << ", \"bytes_out\": " << cs.bytesOut
             << ", \"frames_in\": " << cs.framesIn
             << ", \"samples_accepted\": " << cs.samplesAccepted
             << ", \"rejected_backpressure\": "
             << cs.rejectedBackpressure
             << ", \"rejected_unknown\": " << cs.rejectedUnknown
             << ", \"bad_frames\": " << cs.badFrames
             << ", \"close_reason\": \""
             << obs::jsonEscape(cs.closeReason) << "\"}";
    }
    json << "]}";
    return json.str();
}

} // namespace chaos::net
