/**
 * @file
 * ChaosIngestServer: the network ingest boundary of the fleet serving
 * subsystem — the point where telemetry from other machines enters
 * the process, and therefore the point where corruption, overload,
 * and misbehaving peers must be absorbed without taking serving down.
 *
 * Architecture (one server):
 *
 *   clients ──TCP──> poll() listener thread
 *       per-connection FrameReader (tolerates arbitrary
 *       fragmentation; binary or JSONL framing, see net/protocol.hpp)
 *       decoded Sample frames ──offer()──> FleetServer shard queues
 *       Credit/Nack frames ──buffered writes──> clients
 *
 * Contracts:
 *
 *  - Explicit backpressure: a sample that arrives while its shard
 *    queue is full is REJECTED — the client gets a Nack (reason
 *    backpressure) and cumulative rejected counts on its next Credit
 *    frame — instead of the in-process path's silent drop-oldest.
 *    The client decides what to shed; the server never lies about
 *    what it kept. One Backpressure event is emitted per saturation
 *    episode per connection.
 *  - Corruption is connection-fatal: a frame that fails the magic,
 *    version, length, checksum, or structural checks closes the
 *    connection (after a best-effort Nack) with a ConnectionDrop
 *    event and per-connection accounting — a corrupt stream cannot
 *    resynchronize, and a half-trusted frame must never reach an
 *    estimator.
 *  - A rejected or malformed sample is never silently accepted and
 *    never crashes the server; every path increments a counter a
 *    dashboard can see (chaos.net.*) and a per-connection stat the
 *    ingest snapshot reports.
 *
 * The poll thread does decode + offer only; evaluation stays on the
 * FleetServer's drainer thread(s), so a slow model never backs up
 * into the kernel accept queue.
 */
#ifndef CHAOS_NET_INGEST_SERVER_HPP
#define CHAOS_NET_INGEST_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/server.hpp"

namespace chaos::net {

/** Ingest-server knobs. */
struct IngestServerConfig
{
    /** Address to bind (loopback by default). */
    std::string bindAddress = "127.0.0.1";
    /** Port to listen on; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /**
     * Send a Credit frame after this many samples were disposed of
     * (accepted or rejected) on a connection; 0 means 128. Smaller
     * batches tighten client-observed ack latency, larger ones cut
     * ack bandwidth. An idle poll cycle flushes stragglers either
     * way, so trickle-rate clients still see acks promptly.
     */
    std::size_t creditBatch = 0;
    /** Refuse connections beyond this many concurrently open. */
    std::size_t maxConnections = 4096;
    /** Bytes per read() attempt. */
    std::size_t readChunk = 64 * 1024;
    /** poll() timeout (bounds credit-flush and stop latency), ms. */
    int pollTimeoutMs = 20;
    /**
     * Close a connection whose unsent ack backlog exceeds this many
     * bytes (a client that never reads its acks would otherwise grow
     * the write buffer without bound).
     */
    std::size_t maxWriteBacklog = 4u << 20;
};

/** One connection's accounting (live or closed). */
struct ConnectionStats
{
    std::uint64_t id = 0;     ///< Accept-order id, unique per server.
    std::string peer;         ///< "addr:port" of the client.
    bool jsonl = false;       ///< JSONL framing (vs binary).
    bool open = false;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t framesIn = 0;
    std::uint64_t samplesAccepted = 0;
    std::uint64_t rejectedBackpressure = 0; ///< Shard queue full.
    std::uint64_t rejectedUnknown = 0;      ///< Unregistered machine.
    std::uint64_t badFrames = 0;            ///< Corrupt input seen.
    std::string closeReason; ///< "" while open or after a clean EOF.
};

/** Whole-server ingest snapshot. */
struct IngestStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsOpen = 0;
    std::uint64_t connectionsDropped = 0; ///< Closed on error.
    std::uint64_t connectionsRefused = 0; ///< Over maxConnections.
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t framesIn = 0;
    std::uint64_t samplesAccepted = 0;
    std::uint64_t rejectedBackpressure = 0;
    std::uint64_t rejectedUnknown = 0;
    std::uint64_t badFrames = 0;
    std::uint64_t nacksSent = 0;
    std::uint64_t creditsSent = 0;
    std::uint64_t introspectsServed = 0; ///< Snapshot replies sent.
    /** Per-connection attribution, accept order. */
    std::vector<ConnectionStats> connections;

    /** Serialize as one single-line JSON object. */
    std::string toJson() const;
};

/** The network ingest boundary (see file comment). */
class ChaosIngestServer
{
  public:
    /**
     * @param server Destination fleet; must outlive this object.
     */
    explicit ChaosIngestServer(serve::FleetServer &server,
                               IngestServerConfig config = {});

    /** Stops the listener (closing every connection) if running. */
    ~ChaosIngestServer();

    ChaosIngestServer(const ChaosIngestServer &) = delete;
    ChaosIngestServer &operator=(const ChaosIngestServer &) = delete;

    /**
     * Bind, listen, and spawn the poll thread. Raises
     * RecoverableError when the address cannot be bound.
     */
    void start();

    /** Close the listener and every connection; join the thread. */
    void stop();

    /** True while the poll thread runs. */
    bool running() const { return runningFlag.load(); }

    /** The bound port (meaningful after start()). */
    std::uint16_t port() const { return boundPort; }

    /** Aggregate + per-connection accounting snapshot. */
    IngestStats stats() const;

    /** The configuration the server was built with. */
    const IngestServerConfig &config() const { return cfg; }

  private:
    struct Connection;

    void loop();
    void acceptPending();
    /** @return false when the connection was closed. */
    bool handleReadable(Connection &conn);
    bool processFrames(Connection &conn);
    /** @param ingestNs Decode-time stamp (0 when tracing is off). */
    void handleSample(Connection &conn, std::uint64_t ingestNs);
    /** Build and queue the Snapshot reply to an Introspect request. */
    void queueSnapshot(Connection &conn, std::uint64_t seq);
    /**
     * Assemble the introspection snapshot JSON: fleet state, ingest
     * stats, stage-latency percentiles, and the flight-recorder
     * summary. Falls back to a headline-only form (no per-machine or
     * per-connection detail) when the full one would overflow the
     * frame payload cap.
     */
    std::string buildIntrospectJson() const;
    void queueCredit(Connection &conn);
    void queueNack(Connection &conn, NackReason reason);
    void queueBytes(Connection &conn, const std::uint8_t *data,
                    std::size_t size);
    /** @return false when the connection was closed. */
    bool flushWrites(Connection &conn);
    void closeConnection(Connection &conn, const std::string &reason,
                         bool isError);

    serve::FleetServer &fleet;
    IngestServerConfig cfg;

    OwnedFd listener;
    OwnedFd wakeRead, wakeWrite; ///< Self-pipe to interrupt poll().
    std::uint16_t boundPort = 0;

    std::thread pollThread;
    std::atomic<bool> runningFlag{false};
    std::atomic<bool> stopRequested{false};

    /** Poll-thread-owned live connections. */
    std::vector<std::shared_ptr<Connection>> live;
    /** All connections ever accepted (stats), accept order. */
    mutable std::mutex statsMu;
    std::vector<std::shared_ptr<Connection>> all;

    std::atomic<std::uint64_t> nextConnId{0};
    std::atomic<std::uint64_t> acceptedConns{0};
    std::atomic<std::uint64_t> droppedConns{0};
    std::atomic<std::uint64_t> refusedConns{0};
    std::atomic<std::uint64_t> nacks{0};
    std::atomic<std::uint64_t> credits{0};
    std::atomic<std::uint64_t> introspects{0};
};

} // namespace chaos::net

#endif // CHAOS_NET_INGEST_SERVER_HPP
