/**
 * @file
 * Dense row-major matrix used throughout the regression stack.
 *
 * Sized for this library's workloads: design matrices with a few
 * thousand rows and a few dozen columns. No expression templates; the
 * factorizations in cholesky.hpp / qr.hpp do the heavy lifting.
 */
#ifndef CHAOS_LINALG_MATRIX_HPP
#define CHAOS_LINALG_MATRIX_HPP

#include <cstddef>
#include <vector>

namespace chaos {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() : numRows(0), numCols(0) {}

    /** @param rows Row count. @param cols Column count (zero-filled). */
    Matrix(size_t rows, size_t cols)
        : numRows(rows), numCols(cols), data(rows * cols, 0.0)
    {}

    /** Build from nested initializer data (rows of equal width). */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Identity matrix of order @p n. */
    static Matrix identity(size_t n);

    /** Row count. */
    size_t rows() const { return numRows; }
    /** Column count. */
    size_t cols() const { return numCols; }

    /** Mutable element access (row, col); bounds-checked via panic. */
    double &at(size_t r, size_t c);
    /** Const element access (row, col); bounds-checked via panic. */
    double at(size_t r, size_t c) const;

    /** Unchecked element access for hot loops. */
    double &operator()(size_t r, size_t c)
    {
        return data[r * numCols + c];
    }
    /** Unchecked const element access for hot loops. */
    double operator()(size_t r, size_t c) const
    {
        return data[r * numCols + c];
    }

    /** Pointer to the start of row @p r (contiguous, numCols wide). */
    double *rowPtr(size_t r) { return data.data() + r * numCols; }
    /** Const pointer to the start of row @p r. */
    const double *rowPtr(size_t r) const
    {
        return data.data() + r * numCols;
    }

    /** Copy of row @p r as a vector. */
    std::vector<double> row(size_t r) const;

    /** Copy of column @p c as a vector. */
    std::vector<double> column(size_t c) const;

    /** Set column @p c from @p values (must match row count). */
    void setColumn(size_t c, const std::vector<double> &values);

    /** Transposed copy. */
    Matrix transposed() const;

    /** Matrix product this * other; dimensions must agree. */
    Matrix multiply(const Matrix &other) const;

    /** Matrix-vector product this * v. */
    std::vector<double> multiply(const std::vector<double> &v) const;

    /**
     * Gram matrix X^T X (symmetric, cols x cols); computed directly
     * without materializing the transpose.
     */
    Matrix gram() const;

    /** X^T y for a target vector @p y of length rows(). */
    std::vector<double> transposeTimes(const std::vector<double> &y) const;

    /** Alias of gram(): X^T X in one pass over the rows. */
    Matrix transposeTimesSelf() const { return gram(); }

    /**
     * Fused normal-equation inputs: computes X^T X and X^T y in a
     * single pass over the rows (half the memory traffic of calling
     * gram() and transposeTimes() separately). Used by the stepwise
     * and MARS refits, where Gram construction dominates.
     *
     * @param y Target vector of length rows().
     * @param xty Receives X^T y (resized to cols()).
     */
    Matrix transposeTimesSelf(const std::vector<double> &y,
                              std::vector<double> &xty) const;

    /**
     * New matrix keeping only the listed columns, in the given order.
     * Used pervasively by feature selection.
     */
    Matrix selectColumns(const std::vector<size_t> &cols) const;

    /** New matrix keeping only the listed rows, in the given order. */
    Matrix selectRows(const std::vector<size_t> &rows) const;

    /** Append the rows of @p other (column counts must match). */
    void appendRows(const Matrix &other);

    /** Append a single row (width must match; first row sets width). */
    void appendRow(const std::vector<double> &row);

    /** Max absolute element difference against @p other. */
    double maxAbsDiff(const Matrix &other) const;

  private:
    size_t numRows;
    size_t numCols;
    std::vector<double> data;
};

} // namespace chaos

#endif // CHAOS_LINALG_MATRIX_HPP
