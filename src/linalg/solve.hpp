/**
 * @file
 * High-level least-squares front end used by every regression model.
 */
#ifndef CHAOS_LINALG_SOLVE_HPP
#define CHAOS_LINALG_SOLVE_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace chaos {

/** Result of a least-squares fit with inference byproducts. */
struct LeastSquaresResult
{
    /** Fitted coefficients, one per design-matrix column. */
    std::vector<double> coefficients;
    /** Residual sum of squares on the training data. */
    double rss = 0.0;
    /** Unbiased residual variance estimate (RSS / (n - p)). */
    double sigma2 = 0.0;
    /** Standard error of each coefficient. */
    std::vector<double> stdErrors;
    /** Number of observations. */
    size_t numObservations = 0;
};

/**
 * Solve min ||X b - y||^2 via the normal equations with an adaptive
 * ridge for numerical stability, and compute coefficient standard
 * errors from sigma^2 (X^T X)^{-1}.
 *
 * @param x Design matrix (include an intercept column yourself if
 *          one is wanted).
 * @param y Target vector; length must equal x.rows().
 * @param computeStdErrors Skip the (X^T X)^{-1} computation when
 *          standard errors are not needed (hot loops).
 */
LeastSquaresResult leastSquares(const Matrix &x,
                                const std::vector<double> &y,
                                bool computeStdErrors = false);

/**
 * Ridge-regularized least squares: min ||X b - y||^2 + lambda ||b||^2.
 * The intercept column (if any) is penalized too; standardize first if
 * that matters for the use case.
 */
std::vector<double> ridgeSolve(const Matrix &x,
                               const std::vector<double> &y,
                               double lambda);

/** Residual vector y - X b. */
std::vector<double> residuals(const Matrix &x,
                              const std::vector<double> &y,
                              const std::vector<double> &b);

} // namespace chaos

#endif // CHAOS_LINALG_SOLVE_HPP
