/**
 * @file
 * Cholesky factorization of symmetric positive-definite matrices.
 *
 * Workhorse for normal-equation least squares: the regression stack
 * solves (X^T X + ridge I) b = X^T y. A small adaptive ridge keeps the
 * factorization stable when feature selection leaves near-collinear
 * columns behind.
 */
#ifndef CHAOS_LINALG_CHOLESKY_HPP
#define CHAOS_LINALG_CHOLESKY_HPP

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace chaos {

/** Lower-triangular Cholesky factor with solve helpers. */
class Cholesky
{
  public:
    /**
     * Factor a symmetric positive-definite matrix.
     *
     * @param a Symmetric matrix (only the lower triangle is read).
     * @return The factorization, or std::nullopt if @p a is not
     *         (numerically) positive definite.
     */
    static std::optional<Cholesky> factor(const Matrix &a);

    /**
     * Factor a + ridge*I, escalating the ridge by 10x (up to
     * @p maxAttempts times) until the factorization succeeds.
     * Raises RecoverableError if the matrix cannot be stabilized.
     */
    static Cholesky factorRidged(const Matrix &a, double ridge = 1e-10,
                                 int maxAttempts = 12);

    /** Solve L L^T x = b. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /**
     * Forward substitution only: solve L z = b. Building block for
     * bordered (Schur-complement) solves that append candidate
     * columns to an already-factored Gram system.
     */
    std::vector<double> forwardSolve(const std::vector<double> &b) const;

    /**
     * Rank-1 update in place: refactor so the represented matrix
     * becomes A + v v^T. O(n^2) instead of an O(n^3) refactorization.
     */
    void update(const std::vector<double> &v);

    /**
     * Rank-1 downdate in place: A - v v^T. Returns false (leaving
     * the factor in an unspecified state) when the downdated matrix
     * is not positive definite; callers should refactor from scratch
     * in that case.
     */
    bool downdate(const std::vector<double> &v);

    /**
     * Factorization of the matrix with row and column @p k removed —
     * the stepwise-elimination step. Deleting column k of L and
     * rank-1-updating the trailing block costs O((n-k)^2) versus
     * O(n^3) for refactoring the shrunken Gram matrix.
     */
    Cholesky dropColumn(size_t k) const;

    /** Order of the factored matrix. */
    size_t order() const { return lower.rows(); }

    /** Inverse of the factored matrix (for coefficient covariances). */
    Matrix inverse() const;

    /** Diagonal of the inverse, i.e. var(b_i)/sigma^2 in OLS. */
    std::vector<double> inverseDiagonal() const;

    /** Log-determinant of the factored matrix. */
    double logDet() const;

    /** Ridge value that was actually applied (factorRidged only). */
    double appliedRidge() const { return ridgeUsed; }

  private:
    explicit Cholesky(Matrix l) : lower(std::move(l)), ridgeUsed(0.0) {}

    Matrix lower;
    double ridgeUsed;
};

} // namespace chaos

#endif // CHAOS_LINALG_CHOLESKY_HPP
