#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

std::optional<Cholesky>
Cholesky::factor(const Matrix &a)
{
    panicIf(a.rows() != a.cols(), "Cholesky requires a square matrix");
    const size_t n = a.rows();
    Matrix l(n, n);

    for (size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (size_t k = 0; k < j; ++k)
            diag -= l(j, k) * l(j, k);
        if (!(diag > 0.0) || !std::isfinite(diag))
            return std::nullopt;
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (size_t i = j + 1; i < n; ++i) {
            double value = a(i, j);
            for (size_t k = 0; k < j; ++k)
                value -= l(i, k) * l(j, k);
            l(i, j) = value / ljj;
        }
    }
    return Cholesky(std::move(l));
}

Cholesky
Cholesky::factorRidged(const Matrix &a, double ridge, int maxAttempts)
{
    panicIf(a.rows() != a.cols(), "Cholesky requires a square matrix");
    const size_t n = a.rows();

    // Scale the ridge to the matrix magnitude so tiny and huge Gram
    // matrices get comparable relative regularization.
    double trace = 0.0;
    for (size_t i = 0; i < n; ++i)
        trace += std::fabs(a(i, i));
    const double scale = n > 0 ? trace / n : 1.0;

    double current = 0.0;
    for (int attempt = 0; attempt < maxAttempts; ++attempt) {
        Matrix regularized = a;
        for (size_t i = 0; i < n; ++i)
            regularized(i, i) += current * std::max(scale, 1.0);
        if (auto result = factor(regularized)) {
            result->ridgeUsed = current;
            return *result;
        }
        current = current == 0.0 ? ridge : current * 10.0;
    }
    raise("Cholesky::factorRidged: matrix could not be stabilized");
}

std::vector<double>
Cholesky::solve(const std::vector<double> &b) const
{
    const size_t n = lower.rows();
    panicIf(b.size() != n, "Cholesky::solve size mismatch");

    // Forward substitution: L z = b.
    std::vector<double> z(n);
    for (size_t i = 0; i < n; ++i) {
        double value = b[i];
        for (size_t k = 0; k < i; ++k)
            value -= lower(i, k) * z[k];
        z[i] = value / lower(i, i);
    }
    // Backward substitution: L^T x = z.
    std::vector<double> x(n);
    for (size_t ii = n; ii-- > 0;) {
        double value = z[ii];
        for (size_t k = ii + 1; k < n; ++k)
            value -= lower(k, ii) * x[k];
        x[ii] = value / lower(ii, ii);
    }
    return x;
}

std::vector<double>
Cholesky::forwardSolve(const std::vector<double> &b) const
{
    const size_t n = lower.rows();
    panicIf(b.size() != n, "Cholesky::forwardSolve size mismatch");
    std::vector<double> z(n);
    for (size_t i = 0; i < n; ++i) {
        double value = b[i];
        const double *row = lower.rowPtr(i);
        for (size_t k = 0; k < i; ++k)
            value -= row[k] * z[k];
        z[i] = value / row[i];
    }
    return z;
}

void
Cholesky::update(const std::vector<double> &v)
{
    const size_t n = lower.rows();
    panicIf(v.size() != n, "Cholesky::update size mismatch");
    std::vector<double> w = v;
    // Classic Givens-style cholupdate: rotate w into the factor one
    // column at a time.
    for (size_t j = 0; j < n; ++j) {
        const double ljj = lower(j, j);
        const double r = std::sqrt(ljj * ljj + w[j] * w[j]);
        const double c = r / ljj;
        const double s = w[j] / ljj;
        lower(j, j) = r;
        for (size_t i = j + 1; i < n; ++i) {
            lower(i, j) = (lower(i, j) + s * w[i]) / c;
            w[i] = c * w[i] - s * lower(i, j);
        }
    }
}

bool
Cholesky::downdate(const std::vector<double> &v)
{
    const size_t n = lower.rows();
    panicIf(v.size() != n, "Cholesky::downdate size mismatch");
    std::vector<double> w = v;
    for (size_t j = 0; j < n; ++j) {
        const double ljj = lower(j, j);
        const double r2 = ljj * ljj - w[j] * w[j];
        if (!(r2 > 0.0) || !std::isfinite(r2))
            return false;  // Downdated matrix lost definiteness.
        const double r = std::sqrt(r2);
        const double c = r / ljj;
        const double s = w[j] / ljj;
        lower(j, j) = r;
        for (size_t i = j + 1; i < n; ++i) {
            lower(i, j) = (lower(i, j) - s * w[i]) / c;
            w[i] = c * w[i] - s * lower(i, j);
        }
    }
    return true;
}

Cholesky
Cholesky::dropColumn(size_t k) const
{
    const size_t n = lower.rows();
    panicIf(k >= n, "Cholesky::dropColumn out of range");

    // Delete row/column k of L; the leading (k x k) block is still a
    // valid factor. The trailing block loses column k's contribution
    // L(i,k)*L(j,k), which a rank-1 update with that column restores.
    Matrix next(n - 1, n - 1);
    for (size_t i = 0, oi = 0; i < n; ++i) {
        if (i == k)
            continue;
        const double *src = lower.rowPtr(i);
        double *dst = next.rowPtr(oi);
        for (size_t j = 0, oj = 0; j <= i; ++j) {
            if (j == k)
                continue;
            dst[oj] = src[j];
            ++oj;
        }
        ++oi;
    }
    Cholesky out(std::move(next));
    out.ridgeUsed = ridgeUsed;
    if (k + 1 < n) {
        // Rank-1 update of the trailing block with u = L(k+1.., k).
        std::vector<double> w(n - 1 - k);
        for (size_t i = k + 1; i < n; ++i)
            w[i - k - 1] = lower(i, k);
        Matrix &l = out.lower;
        for (size_t j = k; j < n - 1; ++j) {
            const double ljj = l(j, j);
            const double wj = w[j - k];
            const double r = std::sqrt(ljj * ljj + wj * wj);
            const double c = r / ljj;
            const double s = wj / ljj;
            l(j, j) = r;
            for (size_t i = j + 1; i < n - 1; ++i) {
                l(i, j) = (l(i, j) + s * w[i - k]) / c;
                w[i - k] = c * w[i - k] - s * l(i, j);
            }
        }
    }
    return out;
}

Matrix
Cholesky::inverse() const
{
    const size_t n = lower.rows();
    Matrix inv(n, n);
    std::vector<double> unit(n, 0.0);
    for (size_t j = 0; j < n; ++j) {
        unit[j] = 1.0;
        const auto col = solve(unit);
        unit[j] = 0.0;
        for (size_t i = 0; i < n; ++i)
            inv(i, j) = col[i];
    }
    return inv;
}

std::vector<double>
Cholesky::inverseDiagonal() const
{
    const Matrix inv = inverse();
    std::vector<double> diag(inv.rows());
    for (size_t i = 0; i < inv.rows(); ++i)
        diag[i] = inv(i, i);
    return diag;
}

double
Cholesky::logDet() const
{
    double acc = 0.0;
    for (size_t i = 0; i < lower.rows(); ++i)
        acc += std::log(lower(i, i));
    return 2.0 * acc;
}

} // namespace chaos
