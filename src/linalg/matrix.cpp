#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace chaos {

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (size_t r = 0; r < rows.size(); ++r) {
        panicIf(rows[r].size() != m.numCols,
                "fromRows: ragged input rows");
        std::copy(rows[r].begin(), rows[r].end(), m.rowPtr(r));
    }
    return m;
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::at(size_t r, size_t c)
{
    panicIf(r >= numRows || c >= numCols, "Matrix::at out of range");
    return data[r * numCols + c];
}

double
Matrix::at(size_t r, size_t c) const
{
    panicIf(r >= numRows || c >= numCols, "Matrix::at out of range");
    return data[r * numCols + c];
}

std::vector<double>
Matrix::row(size_t r) const
{
    panicIf(r >= numRows, "Matrix::row out of range");
    return std::vector<double>(rowPtr(r), rowPtr(r) + numCols);
}

std::vector<double>
Matrix::column(size_t c) const
{
    panicIf(c >= numCols, "Matrix::column out of range");
    std::vector<double> out(numRows);
    const double *src = data.data() + c;
    for (size_t r = 0; r < numRows; ++r, src += numCols)
        out[r] = *src;
    return out;
}

void
Matrix::setColumn(size_t c, const std::vector<double> &values)
{
    panicIf(c >= numCols, "Matrix::setColumn out of range");
    panicIf(values.size() != numRows, "Matrix::setColumn size mismatch");
    double *dst = data.data() + c;
    for (size_t r = 0; r < numRows; ++r, dst += numCols)
        *dst = values[r];
}

Matrix
Matrix::transposed() const
{
    Matrix t(numCols, numRows);
    // Read rows sequentially (cache-friendly on the source); the
    // strided writes walk one output column per source row.
    for (size_t r = 0; r < numRows; ++r) {
        const double *src = rowPtr(r);
        double *dst = t.data.data() + r;
        for (size_t c = 0; c < numCols; ++c, dst += numRows)
            *dst = src[c];
    }
    return t;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    panicIf(numCols != other.numRows, "Matrix::multiply shape mismatch");
    Matrix out(numRows, other.numCols);
    for (size_t i = 0; i < numRows; ++i) {
        const double *lhs_row = rowPtr(i);
        double *out_row = out.rowPtr(i);
        for (size_t k = 0; k < numCols; ++k) {
            const double lhs_ik = lhs_row[k];
            if (lhs_ik == 0.0)
                continue;
            const double *rhs_row = other.rowPtr(k);
            for (size_t j = 0; j < other.numCols; ++j)
                out_row[j] += lhs_ik * rhs_row[j];
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    panicIf(v.size() != numCols, "Matrix-vector shape mismatch");
    std::vector<double> out(numRows, 0.0);
    for (size_t r = 0; r < numRows; ++r) {
        const double *row_ptr = rowPtr(r);
        double acc = 0.0;
        for (size_t c = 0; c < numCols; ++c)
            acc += row_ptr[c] * v[c];
        out[r] = acc;
    }
    return out;
}

Matrix
Matrix::gram() const
{
    Matrix g(numCols, numCols);
    for (size_t r = 0; r < numRows; ++r) {
        const double *row_ptr = rowPtr(r);
        for (size_t i = 0; i < numCols; ++i) {
            const double xi = row_ptr[i];
            if (xi == 0.0)
                continue;
            double *g_row = g.rowPtr(i);
            for (size_t j = i; j < numCols; ++j)
                g_row[j] += xi * row_ptr[j];
        }
    }
    // Mirror the upper triangle.
    for (size_t i = 0; i < numCols; ++i) {
        for (size_t j = 0; j < i; ++j)
            g(i, j) = g(j, i);
    }
    return g;
}

Matrix
Matrix::transposeTimesSelf(const std::vector<double> &y,
                           std::vector<double> &xty) const
{
    panicIf(y.size() != numRows,
            "transposeTimesSelf shape mismatch");
    Matrix g(numCols, numCols);
    xty.assign(numCols, 0.0);
    for (size_t r = 0; r < numRows; ++r) {
        const double *row_ptr = rowPtr(r);
        const double yr = y[r];
        for (size_t i = 0; i < numCols; ++i) {
            const double xi = row_ptr[i];
            if (xi == 0.0)
                continue;
            xty[i] += xi * yr;
            double *g_row = g.rowPtr(i);
            for (size_t j = i; j < numCols; ++j)
                g_row[j] += xi * row_ptr[j];
        }
    }
    for (size_t i = 0; i < numCols; ++i) {
        for (size_t j = 0; j < i; ++j)
            g(i, j) = g(j, i);
    }
    return g;
}

std::vector<double>
Matrix::transposeTimes(const std::vector<double> &y) const
{
    panicIf(y.size() != numRows, "transposeTimes shape mismatch");
    std::vector<double> out(numCols, 0.0);
    for (size_t r = 0; r < numRows; ++r) {
        const double *row_ptr = rowPtr(r);
        const double yr = y[r];
        if (yr == 0.0)
            continue;
        for (size_t c = 0; c < numCols; ++c)
            out[c] += row_ptr[c] * yr;
    }
    return out;
}

Matrix
Matrix::selectColumns(const std::vector<size_t> &cols) const
{
    Matrix out(numRows, cols.size());
    for (size_t i = 0; i < cols.size(); ++i)
        panicIf(cols[i] >= numCols, "selectColumns index out of range");
    for (size_t r = 0; r < numRows; ++r) {
        const double *row_ptr = rowPtr(r);
        double *out_row = out.rowPtr(r);
        for (size_t i = 0; i < cols.size(); ++i)
            out_row[i] = row_ptr[cols[i]];
    }
    return out;
}

Matrix
Matrix::selectRows(const std::vector<size_t> &rows) const
{
    Matrix out(rows.size(), numCols);
    for (size_t i = 0; i < rows.size(); ++i) {
        panicIf(rows[i] >= numRows, "selectRows index out of range");
        std::copy(rowPtr(rows[i]), rowPtr(rows[i]) + numCols,
                  out.rowPtr(i));
    }
    return out;
}

void
Matrix::appendRows(const Matrix &other)
{
    if (numRows == 0 && numCols == 0)
        numCols = other.numCols;
    panicIf(other.numCols != numCols, "appendRows width mismatch");
    data.insert(data.end(), other.data.begin(), other.data.end());
    numRows += other.numRows;
}

void
Matrix::appendRow(const std::vector<double> &row)
{
    if (numRows == 0 && numCols == 0)
        numCols = row.size();
    panicIf(row.size() != numCols, "appendRow width mismatch");
    data.insert(data.end(), row.begin(), row.end());
    ++numRows;
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    panicIf(numRows != other.numRows || numCols != other.numCols,
            "maxAbsDiff shape mismatch");
    double max_diff = 0.0;
    for (size_t i = 0; i < data.size(); ++i)
        max_diff = std::max(max_diff, std::fabs(data[i] - other.data[i]));
    return max_diff;
}

} // namespace chaos
