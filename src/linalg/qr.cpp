#include "linalg/qr.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace chaos {

QrDecomposition::QrDecomposition(const Matrix &a)
    : qrData(a), diagonal(a.cols())
{
    const size_t m = a.rows();
    const size_t n = a.cols();
    panicIf(m < n, "QR requires rows >= cols");

    // Classic packed Householder QR (cf. Golub & Van Loan / JAMA).
    for (size_t k = 0; k < n; ++k) {
        double norm = 0.0;
        for (size_t i = k; i < m; ++i)
            norm = std::hypot(norm, qrData(i, k));

        if (norm != 0.0) {
            if (qrData(k, k) < 0.0)
                norm = -norm;
            for (size_t i = k; i < m; ++i)
                qrData(i, k) /= norm;
            qrData(k, k) += 1.0;

            for (size_t j = k + 1; j < n; ++j) {
                double s = 0.0;
                for (size_t i = k; i < m; ++i)
                    s += qrData(i, k) * qrData(i, j);
                s = -s / qrData(k, k);
                for (size_t i = k; i < m; ++i)
                    qrData(i, j) += s * qrData(i, k);
            }
        }
        diagonal[k] = -norm;
    }
}

std::vector<double>
QrDecomposition::solve(const std::vector<double> &b) const
{
    const size_t m = qrData.rows();
    const size_t n = qrData.cols();
    panicIf(b.size() != m, "QR solve size mismatch");

    std::vector<double> y(b);
    // Apply Q^T to b.
    for (size_t k = 0; k < n; ++k) {
        if (qrData(k, k) == 0.0)
            continue;
        double s = 0.0;
        for (size_t i = k; i < m; ++i)
            s += qrData(i, k) * y[i];
        s = -s / qrData(k, k);
        for (size_t i = k; i < m; ++i)
            y[i] += s * qrData(i, k);
    }
    // Back-substitute R x = y.
    std::vector<double> x(n, 0.0);
    for (size_t kk = n; kk-- > 0;) {
        double value = y[kk];
        for (size_t j = kk + 1; j < n; ++j)
            value -= qrData(kk, j) * x[j];
        // A zero diagonal means a rank-deficient column; return a
        // zero coefficient for it (minimum-norm-ish fallback).
        x[kk] = diagonal[kk] != 0.0 ? value / diagonal[kk] : 0.0;
    }
    return x;
}

Matrix
QrDecomposition::r() const
{
    const size_t n = qrData.cols();
    Matrix out(n, n);
    for (size_t i = 0; i < n; ++i) {
        out(i, i) = diagonal[i];
        for (size_t j = i + 1; j < n; ++j)
            out(i, j) = qrData(i, j);
    }
    return out;
}

bool
QrDecomposition::rankDeficient(double tol) const
{
    double max_diag = 0.0;
    for (double d : diagonal)
        max_diag = std::max(max_diag, std::fabs(d));
    if (max_diag == 0.0)
        return true;
    for (double d : diagonal) {
        if (std::fabs(d) < tol * max_diag)
            return true;
    }
    return false;
}

std::vector<double>
qrLeastSquares(const Matrix &x, const std::vector<double> &y)
{
    return QrDecomposition(x).solve(y);
}

} // namespace chaos
