#include "linalg/solve.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "util/logging.hpp"

namespace chaos {

LeastSquaresResult
leastSquares(const Matrix &x, const std::vector<double> &y,
             bool computeStdErrors)
{
    panicIf(x.rows() != y.size(), "leastSquares shape mismatch");
    panicIf(x.cols() == 0, "leastSquares: empty design matrix");
    panicIf(x.rows() < x.cols(),
            "leastSquares: fewer observations than parameters");

    std::vector<double> xty;
    const Matrix gram = x.transposeTimesSelf(y, xty);
    const Cholesky chol = Cholesky::factorRidged(gram);

    LeastSquaresResult result;
    result.coefficients = chol.solve(xty);
    result.numObservations = x.rows();

    const auto resid = residuals(x, y, result.coefficients);
    for (double r : resid)
        result.rss += r * r;

    const double dof =
        static_cast<double>(x.rows()) - static_cast<double>(x.cols());
    result.sigma2 = dof > 0.0 ? result.rss / dof : 0.0;

    if (computeStdErrors) {
        const auto inv_diag = chol.inverseDiagonal();
        result.stdErrors.resize(inv_diag.size());
        for (size_t i = 0; i < inv_diag.size(); ++i) {
            const double variance =
                std::max(0.0, result.sigma2 * inv_diag[i]);
            result.stdErrors[i] = std::sqrt(variance);
        }
    }
    return result;
}

std::vector<double>
ridgeSolve(const Matrix &x, const std::vector<double> &y, double lambda)
{
    panicIf(x.rows() != y.size(), "ridgeSolve shape mismatch");
    panicIf(lambda < 0.0, "ridgeSolve: negative lambda");

    std::vector<double> xty;
    Matrix gram = x.transposeTimesSelf(y, xty);
    for (size_t i = 0; i < gram.rows(); ++i)
        gram(i, i) += lambda;
    const Cholesky chol = Cholesky::factorRidged(gram);
    return chol.solve(xty);
}

std::vector<double>
residuals(const Matrix &x, const std::vector<double> &y,
          const std::vector<double> &b)
{
    const auto fitted = x.multiply(b);
    std::vector<double> out(y.size());
    for (size_t i = 0; i < y.size(); ++i)
        out[i] = y[i] - fitted[i];
    return out;
}

} // namespace chaos
