/**
 * @file
 * Householder QR factorization and QR-based least squares.
 *
 * Used where numerical robustness matters more than speed (the
 * normal-equation path in solve.hpp is the fast default); also used by
 * tests as an independent cross-check of the Cholesky path.
 */
#ifndef CHAOS_LINALG_QR_HPP
#define CHAOS_LINALG_QR_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace chaos {

/** Householder QR of an m x n matrix with m >= n. */
class QrDecomposition
{
  public:
    /**
     * Factor @p a (m x n, m >= n). panic()s on a wide matrix.
     */
    explicit QrDecomposition(const Matrix &a);

    /**
     * Minimum-norm-residual solution of the least-squares problem
     * min ||a x - b||_2.
     *
     * @param b Right-hand side of length m.
     * @return Coefficient vector of length n.
     */
    std::vector<double> solve(const std::vector<double> &b) const;

    /** Upper-triangular factor R (n x n). */
    Matrix r() const;

    /**
     * True if any diagonal of R is (relatively) negligible, i.e. the
     * columns of the input were numerically rank deficient.
     */
    bool rankDeficient(double tol = 1e-12) const;

  private:
    Matrix qrData;                  // Householder vectors + R, packed.
    std::vector<double> diagonal;   // Diagonal of R.
};

/** Convenience wrapper: least squares via Householder QR. */
std::vector<double> qrLeastSquares(const Matrix &x,
                                   const std::vector<double> &y);

} // namespace chaos

#endif // CHAOS_LINALG_QR_HPP
