#include "serve/replay.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "util/result.hpp"

namespace chaos::serve {

TraceReplayer::TraceReplayer(const Dataset &data)
{
    raiseIf(data.numRows() == 0, "replay: empty dataset");

    std::map<int, std::size_t> byMachine;  // Sorted by machine id.
    for (std::size_t r = 0; r < data.numRows(); ++r) {
        const int machine = data.machineIds()[r];
        const auto [it, inserted] =
            byMachine.try_emplace(machine, machines.size());
        if (inserted) {
            MachineTrace trace;
            trace.id = "machine" + std::to_string(machine);
            machines.push_back(std::move(trace));
        }
        MachineTrace &trace = machines[it->second];
        trace.rows.push_back(data.features().row(r));
        trace.meteredW.push_back(data.powerW()[r]);
        ticks = std::max(ticks, trace.rows.size());
    }
    for (const MachineTrace &trace : machines)
        ids.push_back(trace.id);
    // byMachine is ordered, and machines were appended in first-seen
    // order; re-sort so ids/machines are ordered by id string.
    std::sort(machines.begin(), machines.end(),
              [](const MachineTrace &a, const MachineTrace &b) {
                  return a.id < b.id;
              });
    std::sort(ids.begin(), ids.end());
}

std::size_t
TraceReplayer::numSamples() const
{
    std::size_t total = 0;
    for (const MachineTrace &trace : machines)
        total += trace.rows.size();
    return total;
}

ReplayStats
TraceReplayer::replayInto(FleetServer &server,
                          const ReplayConfig &config,
                          const std::atomic<bool> *stopFlag) const
{
    // Resolve every entry once up front; this also validates that the
    // fleet covers the trace before the first sample is submitted.
    std::vector<MachineEntry *> entries;
    entries.reserve(machines.size());
    for (const MachineTrace &trace : machines) {
        MachineEntry *entry = server.machine(trace.id);
        raiseIf(entry == nullptr,
                "replay: trace machine '" + trace.id +
                    "' is not registered with the server");
        entries.push_back(entry);
    }

    using clock = std::chrono::steady_clock;
    const bool paced = config.speed > 0.0;
    const auto tickPeriod = std::chrono::duration<double>(
        paced ? 1.0 / config.speed : 0.0);
    const auto epoch = clock::now();

    ReplayStats stats;
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t t = 0; t < ticks; ++t) {
        if (stopFlag != nullptr && stopFlag->load())
            break;
        for (std::size_t m = 0; m < machines.size(); ++m) {
            const MachineTrace &trace = machines[m];
            if (t >= trace.rows.size())
                continue;
            const double metered = config.feedMeteredReference
                                       ? trace.meteredW[t]
                                       : kNan;
            server.submitTo(*entries[m], trace.rows[t], metered);
            ++stats.submitted;
        }
        ++stats.ticks;
        if (config.onTick)
            config.onTick(t);
        if (paced) {
            const auto next =
                epoch + std::chrono::duration_cast<clock::duration>(
                            tickPeriod * static_cast<double>(t + 1));
            std::this_thread::sleep_until(next);
        }
    }
    return stats;
}

} // namespace chaos::serve
