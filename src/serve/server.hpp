/**
 * @file
 * Streaming fleet power estimation: a long-running serving loop over
 * the composable per-machine online estimators (paper Eq. 5 run as a
 * service rather than a per-call API).
 *
 * Architecture (one FleetServer):
 *
 *   producers ──submit()──> per-shard BoundedSampleQueue (MPSC ring,
 *                           recycled row buffers, drop-oldest,
 *                           chaos.serve.* drop metrics)
 *   drainer thread ──drain pass──> up to maxBatch samples total,
 *                           shards visited round-robin from a
 *                           rotating cursor, batch grouped by
 *                           machine, machines evaluated in parallel
 *                           through the util/parallel thread pool —
 *                           each machine's group in one batched
 *                           estimateBatch call (compiled plans, no
 *                           per-row virtual dispatch), serial and in
 *                           arrival order within the machine
 *   snapshots ──────> periodic fleet-power snapshots: per-machine
 *                           watts, cluster sum, health mix — as JSON
 *
 * Invariants:
 *  - a sample is evaluated exactly once (never duplicated) or counted
 *    as dropped (never silently discarded);
 *  - per-machine evaluation order equals arrival order, so per-machine
 *    results match a serial OnlinePowerEstimator fed the same rows;
 *  - model hot-swap (swapModel) takes only the target machine's entry
 *    mutex: ingestion and other machines are never stalled.
 */
#ifndef CHAOS_SERVE_SERVER_HPP
#define CHAOS_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/registry.hpp"
#include "serve/sample_queue.hpp"

namespace chaos::serve {

/** Serving-loop knobs. */
struct FleetServerConfig
{
    /** Queue/registry stripe count. */
    std::size_t numShards = 4;
    /** Per-shard queue capacity (drop-oldest beyond it). */
    std::size_t queueCapacity = 8192;
    /**
     * Maximum samples drained per pass *across all shards*. Bounding
     * the whole pass (rather than each shard) keeps drain latency
     * proportional to the budget instead of budget x shard count;
     * shards are visited round-robin from a rotating start so a
     * saturated shard cannot starve the others.
     */
    std::size_t maxBatch = 1024;
    /**
     * Emit a fleet snapshot every N processed samples (0 disables
     * periodic snapshots; snapshot() is always available on demand).
     */
    std::size_t snapshotEverySamples = 0;
    /** Drainer sleep when every queue was empty, microseconds. */
    std::size_t idleSleepMicros = 200;
    /** Record per-pass drain latencies (for benchmarks). */
    bool recordDrainLatencies = false;
};

/** Per-machine slice of a fleet snapshot. */
struct MachineSnapshot
{
    std::string id;
    /**
     * What this machine contributes to the cluster sum: the most
     * recent estimate, or the quarantine substitute while the
     * autopilot has the machine's own model isolated.
     */
    double watts = 0.0;
    double modelW = 0.0;         ///< Deployed model's raw estimate.
    bool quarantined = false;    ///< Substitute serving (autopilot).
    MachineHealth health = MachineHealth::Healthy;
    ModelQuality quality = ModelQuality::Unknown; ///< Monitor verdict.
    std::uint64_t samples = 0;   ///< Estimates produced so far.
    std::uint64_t residualSamples = 0; ///< Metered refs accumulated.
    double meanResidualW = 0.0;  ///< Mean (meter - estimate) so far.
    std::uint64_t dropped = 0;   ///< This machine's backpressure loss.
};

/** One fleet-power snapshot (Eq. 5 at a point in time). */
struct FleetSnapshot
{
    std::uint64_t seq = 0;               ///< Snapshot sequence number.
    std::uint64_t tsMs = 0;              ///< Wall clock, ms since epoch.
    std::uint64_t samplesSubmitted = 0;
    std::uint64_t samplesProcessed = 0;
    std::uint64_t samplesDropped = 0;
    double clusterW = 0.0;               ///< Sum of per-machine watts.
    std::size_t healthy = 0;             ///< Health mix counts.
    std::size_t degraded = 0;
    std::size_t stale = 0;
    std::size_t lost = 0;
    std::size_t drifting = 0;            ///< Machines flagged Drifting.
    std::size_t quarantined = 0;         ///< Machines on substitutes.
    double substitutedW = 0.0;           ///< Watts served by substitutes.
    std::vector<MachineSnapshot> machines; ///< Sorted by machine id.

    /** Serialize as one single-line JSON object. */
    std::string toJson() const;
};

/**
 * Per-sample hook for the model-quality monitoring layer. onSample is
 * invoked on a drain thread for every evaluated sample while the
 * machine's entry mutex is held: calls for one machine are serialized
 * in arrival order, calls for different machines run concurrently, so
 * an implementation keying its state per machine needs no extra
 * locking. Keep it cheap — it sits on the serving hot path.
 */
class SampleObserver
{
  public:
    virtual ~SampleObserver() = default;

    /**
     * One evaluated sample. @p meteredW is NaN when the sample
     * carried no reference reading.
     */
    virtual void onSample(MachineEntry &entry,
                          OnlinePowerEstimator &estimator,
                          double estimateW, double meteredW) = 0;

    /** A model hot-swap on @p machineId completed. */
    virtual void onModelSwap(const std::string &machineId)
    {
        (void)machineId;
    }
};

/** The streaming serving loop (see file comment). */
class FleetServer
{
  public:
    explicit FleetServer(FleetServerConfig config = {});

    /** Stops the drainer (without flushing) if still running. */
    ~FleetServer();

    FleetServer(const FleetServer &) = delete;
    FleetServer &operator=(const FleetServer &) = delete;

    /**
     * Register a machine (raises RecoverableError on duplicate id).
     * Safe while the server is running; the machine starts receiving
     * samples as soon as this returns.
     */
    MachineEntry &addMachine(const std::string &machineId,
                             MachinePowerModel model,
                             OnlineEstimatorConfig config = {});

    /** Entry lookup (nullptr when unknown); for hot submit paths. */
    MachineEntry *machine(const std::string &machineId);

    /** Hot-swap one machine's model (raises on unknown id). */
    void swapModel(const std::string &machineId,
                   MachinePowerModel model);

    /**
     * Install (or, with nullptr, remove) the per-sample observer. The
     * observer must outlive the server's draining: detach it (or stop
     * the server) before destroying it. Safe to call while running;
     * in-flight drain passes may still see the previous observer.
     */
    void setSampleObserver(SampleObserver *observer);

    /** The installed per-sample observer (nullptr when none). */
    SampleObserver *sampleObserver() const
    {
        return observerPtr.load(std::memory_order_acquire);
    }

    /** All registered machine ids, sorted. */
    std::vector<std::string> machineIds() const;

    /**
     * Enqueue one machine-second of telemetry. Never blocks: when the
     * shard queue is full the oldest queued sample is dropped and
     * counted. Raises RecoverableError on an unknown machine id.
     *
     * The counter values are copied into the shard queue's recycled
     * slot buffer — the caller keeps ownership of @p catalogRow and
     * may reuse it for the next sample, so a steady-state producer
     * needs no per-sample allocation either.
     *
     * @param meteredW Optional reference reading; finite values feed
     *        the machine's residual statistics.
     */
    void submit(const std::string &machineId, const double *catalogRow,
                std::size_t rowSize,
                double meteredW =
                    std::numeric_limits<double>::quiet_NaN());

    /** Convenience overload taking the row as a vector. */
    void submit(const std::string &machineId,
                const std::vector<double> &catalogRow,
                double meteredW =
                    std::numeric_limits<double>::quiet_NaN())
    {
        submit(machineId, catalogRow.data(), catalogRow.size(),
               meteredW);
    }

    /**
     * Enqueue one sample only if the machine's shard queue has room:
     * the reject-newest counterpart of submitTo() for ingest
     * boundaries (src/net) that signal backpressure to the producer
     * explicitly instead of silently sacrificing the oldest queued
     * sample. A refused sample never enters the server's accounting:
     * submitted/processed/dropped cover accepted samples only, and
     * the caller owns the refusal (NACK, retry, shed).
     *
     * @return True when the sample was enqueued.
     *
     * @param ingestNs Monotonic stage-tracing stamp taken where the
     *        sample entered the process (e.g. at wire decode); 0 lets
     *        the server stamp at enqueue time instead.
     */
    bool offer(MachineEntry &entry, const double *catalogRow,
               std::size_t rowSize,
               double meteredW =
                   std::numeric_limits<double>::quiet_NaN(),
               std::uint64_t ingestNs = 0);

    /** submit() without the registry lookup (entry from machine()). */
    void submitTo(MachineEntry &entry, const double *catalogRow,
                  std::size_t rowSize,
                  double meteredW =
                      std::numeric_limits<double>::quiet_NaN());

    /** Convenience overload taking the row as a vector. */
    void submitTo(MachineEntry &entry,
                  const std::vector<double> &catalogRow,
                  double meteredW =
                      std::numeric_limits<double>::quiet_NaN())
    {
        submitTo(entry, catalogRow.data(), catalogRow.size(),
                 meteredW);
    }

    /** Start the drainer thread (panics if already running). */
    void start();

    /**
     * Stop the drainer thread, then flush every queue on the calling
     * thread: after stop() returns, processed + dropped == submitted.
     * No-op when not running.
     */
    void stop();

    /** True while the drainer thread is running. */
    bool running() const { return runningFlag.load(); }

    /**
     * One drain pass over all shards on the calling thread (for
     * non-threaded use and tests). @return Samples processed.
     */
    std::size_t drainOnce();

    /**
     * Block until every queue is empty and every submitted sample was
     * processed or dropped. Producers must be quiescent, or this can
     * wait forever.
     */
    void waitIdle() const;

    /** Build a fleet snapshot now (does not affect periodic ones). */
    FleetSnapshot snapshot() const;

    /**
     * Callback invoked (from the drainer thread) for every periodic
     * snapshot. Set before start(); not thread-safe afterwards.
     */
    void onSnapshot(std::function<void(const FleetSnapshot &)> fn);

    /** Periodic snapshots taken so far. */
    std::vector<FleetSnapshot> snapshots() const;

    /** Per-pass drain latencies (recordDrainLatencies only), ms. */
    std::vector<double> drainLatenciesMs() const;

    /** Lifetime sample counts. */
    std::uint64_t submitted() const { return submittedCount.load(); }
    std::uint64_t processed() const { return processedCount.load(); }
    std::uint64_t dropped() const { return droppedCount.load(); }

    /** Number of registered machines. */
    std::size_t numMachines() const { return registry.size(); }

    /** The configuration the server was built with. */
    const FleetServerConfig &config() const { return cfg; }

  private:
    struct QueueShard
    {
        explicit QueueShard(std::size_t capacity) : queue(capacity) {}
        BoundedSampleQueue queue;
        std::atomic<bool> saturated{false};
    };

    /**
     * Reused per-pass drain scratch (guarded by drainMu): the popped
     * batch, the counting-sort grouping of it by machine, the sample
     * views handed to estimateBatch, and the per-sample watts. The
     * batch array's row buffers circulate with the shard queues'
     * slot buffers (popBatch swaps, never frees), so a steady-state
     * drain pass performs zero heap allocation end to end.
     */
    struct DrainScratch
    {
        std::vector<QueuedSample> batch;
        std::vector<MachineEntry *> groupEntries; ///< Group -> entry.
        std::vector<std::size_t> sampleGroup;     ///< Batch i -> group.
        std::vector<std::size_t> groupOffset;     ///< Group slices.
        std::vector<std::size_t> cursor;          ///< Scatter cursors.
        std::vector<std::size_t> order;   ///< Batch indices, grouped.
        std::vector<SampleView> views;    ///< Aligned with order.
        std::vector<double> watts;        ///< Aligned with order.
        std::vector<double> waitUs;       ///< Stage-tracing scratch.
        std::unordered_map<MachineEntry *, std::size_t> groupIndex;
    };

    void drainerLoop();
    std::size_t drainShard(QueueShard &shard, std::size_t budget);
    void enqueue(MachineEntry &entry, const double *catalogRow,
                 std::size_t rowSize, double meteredW);
    FleetSnapshot buildSnapshot() const;
    void emitPeriodicSnapshot();

    FleetServerConfig cfg;
    mutable EstimatorRegistry registry;
    std::vector<std::unique_ptr<QueueShard>> queueShards;

    /** Serializes drain passes (MPSC: one consumer at a time) and
     *  guards the reused scratch. Uncontended when only the drainer
     *  thread drains. */
    std::mutex drainMu;
    DrainScratch scratch;
    /** Shard the next pass starts at (round-robin fairness). */
    std::size_t drainCursor = 0;

    std::thread drainer;
    std::atomic<bool> runningFlag{false};
    std::atomic<bool> stopRequested{false};
    std::atomic<SampleObserver *> observerPtr{nullptr};

    std::atomic<std::uint64_t> submittedCount{0};
    std::atomic<std::uint64_t> processedCount{0};
    std::atomic<std::uint64_t> droppedCount{0};
    mutable std::atomic<std::uint64_t> snapshotSeq{0};

    /** Processed samples since the last periodic snapshot (drainer
     *  thread only). */
    std::uint64_t sinceSnapshot = 0;

    /** Flight-recorder feed state (guarded by drainMu): drain passes
     *  since the last metric-delta record, and the processed count at
     *  that record. */
    std::uint64_t flightPasses = 0;
    std::uint64_t flightLastProcessed = 0;

    mutable std::mutex snapMu;
    std::vector<FleetSnapshot> periodicSnapshots;
    std::function<void(const FleetSnapshot &)> snapshotCallback;

    mutable std::mutex latencyMu;
    std::vector<double> drainMs;
};

} // namespace chaos::serve

#endif // CHAOS_SERVE_SERVER_HPP
