#include "serve/stage_metrics.hpp"

#include "obs/trace.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace chaos::serve {

namespace {

std::atomic<bool> stageTracingOn{true};

/// Shared bucket layout: 250 ns up to 250 ms in roughly 1-2.5-5
/// steps. Queue wait and e2e can reach the upper decades under
/// saturation; decode and predict live in the bottom ones.
const std::vector<double> &
stageBoundsUs()
{
    static const std::vector<double> bounds = {
        0.25,   0.5,    1.0,    2.5,    5.0,     10.0,    25.0,
        50.0,   100.0,  250.0,  500.0,  1000.0,  2500.0,  5000.0,
        10000.0, 25000.0, 50000.0, 100000.0, 250000.0,
    };
    return bounds;
}

obs::Histogram &
stageHistogram(const char *stage)
{
    return obs::Registry::instance().histogram(
        std::string("chaos.serve.stage.") + stage, stageBoundsUs(),
        obs::Stability::Scheduling);
}

double
percentileOrZero(const obs::Histogram &h, double q)
{
    const double v = h.percentile(q);
    return std::isnan(v) ? 0.0 : v;
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
setStageTracingEnabled(bool enabled)
{
    stageTracingOn.store(enabled, std::memory_order_relaxed);
}

bool
stageTracingEnabled()
{
    return stageTracingOn.load(std::memory_order_relaxed);
}

std::uint64_t
stageStampNs()
{
    return stageTracingEnabled() ? obs::traceNowNs() : 0;
}

StageMetrics &
StageMetrics::get()
{
    static StageMetrics metrics = {
        stageHistogram("decode_us"),     stageHistogram("queue_wait_us"),
        stageHistogram("drain_batch_us"), stageHistogram("predict_us"),
        stageHistogram("e2e_us"),
    };
    return metrics;
}

std::string
stageLatencyJson()
{
    StageMetrics &m = StageMetrics::get();
    struct Row {
        const char *name;
        const obs::Histogram *h;
    };
    const Row rows[] = {
        {"decode_us", &m.decodeUs},       {"queue_wait_us", &m.queueWaitUs},
        {"drain_batch_us", &m.drainBatchUs}, {"predict_us", &m.predictUs},
        {"e2e_us", &m.e2eUs},
    };
    std::ostringstream out;
    out << "{";
    bool first = true;
    for (const Row &row : rows) {
        out << (first ? "" : ", ") << "\"" << row.name << "\": {"
            << "\"p50\": " << formatDouble(percentileOrZero(*row.h, 0.5))
            << ", \"p99\": " << formatDouble(percentileOrZero(*row.h, 0.99))
            << ", \"count\": " << row.h->count() << "}";
        first = false;
    }
    out << "}";
    return out.str();
}

} // namespace chaos::serve
