/**
 * @file
 * Per-stage pipeline latency tracing for the serving path.
 *
 * Every sample is stamped with a monotonic ingest timestamp where it
 * enters the pipeline — at wire decode in ChaosIngestServer, or at
 * FleetServer::submit for in-process producers — and the stamp rides
 * the recycled queue slots through the drain. The drain then accounts
 * each sample's time into stage histograms under chaos.serve.stage.*:
 *
 *   decode_us      wire bytes -> decoded frame (network ingest only)
 *   queue_wait_us  ingest stamp -> popBatch picked the sample up
 *   drain_batch_us one shard drain pass (pop + group + predict + aux)
 *   predict_us     the batched estimator call for one drain pass
 *   e2e_us         ingest stamp -> estimate produced (true end-to-end)
 *
 * Tracing is on by default and gated by one relaxed atomic; the
 * per-sample cost is one clock read at the stamp site and two
 * histogram observes at the drain (clock reads at the drain are per
 * batch, not per sample). bench/serve_throughput gates the total at
 * ≤1% / 20 ns per sample on the batched drain path.
 */
#ifndef CHAOS_SERVE_STAGE_METRICS_HPP
#define CHAOS_SERVE_STAGE_METRICS_HPP

#include "obs/metrics.hpp"

#include <cstdint>
#include <string>

namespace chaos::serve {

/** Turn sample stage tracing on or off (default: on). */
void setStageTracingEnabled(bool enabled);

/** @return True when samples are stamped and stage histograms fed. */
bool stageTracingEnabled();

/** @return Monotonic now in ns when tracing is enabled, else 0. */
std::uint64_t stageStampNs();

/** Cached references to the chaos.serve.stage.* histograms. */
struct StageMetrics {
    obs::Histogram &decodeUs;
    obs::Histogram &queueWaitUs;
    obs::Histogram &drainBatchUs;
    obs::Histogram &predictUs;
    obs::Histogram &e2eUs;

    static StageMetrics &get();
};

/**
 * @return Single-line JSON {"decode_us": {"p50": ..., "p99": ...,
 *         "count": ...}, ...} over all five stage histograms, with
 *         0 standing in for percentiles of empty histograms so the
 *         payload always parses as plain numbers.
 */
std::string stageLatencyJson();

} // namespace chaos::serve

#endif // CHAOS_SERVE_STAGE_METRICS_HPP
