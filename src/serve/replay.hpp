/**
 * @file
 * Recorded-trace replay into a FleetServer.
 *
 * A collected Dataset *is* a recorded fleet counter trace: every row
 * is one machine-second with the full catalog vector (and the metered
 * power, which replay forwards as the residual reference). The
 * replayer regroups rows per machine in recorded order and feeds them
 * tick by tick — tick t carries the t-th recorded second of every
 * machine — at a configurable speed multiplier, from ×1 real time
 * (one tick per wall second, the live 1 Hz collector cadence) up to
 * as-fast-as-possible.
 */
#ifndef CHAOS_SERVE_REPLAY_HPP
#define CHAOS_SERVE_REPLAY_HPP

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "trace/dataset.hpp"

namespace chaos::serve {

/** Replay pacing knobs. */
struct ReplayConfig
{
    /**
     * Speed multiplier over the recorded 1 Hz cadence: 1.0 replays in
     * real time (one tick per second), 60.0 replays a recorded minute
     * per wall second, and <= 0 replays as fast as possible.
     */
    double speed = 0.0;
    /** Forward the recorded metered power as reference readings. */
    bool feedMeteredReference = true;
    /**
     * Invoked on the replay thread after each tick's samples were
     * submitted (before any pacing sleep). A synchronous caller can
     * drain the server here to get per-tick lockstep — the monitor
     * dashboard does exactly that.
     */
    std::function<void(std::size_t tick)> onTick;
};

/** What a replay run did. */
struct ReplayStats
{
    std::size_t ticks = 0;      ///< Trace seconds replayed.
    std::size_t submitted = 0;  ///< Samples handed to the server.
};

/** Dataset rows regrouped into a per-machine, per-tick trace. */
class TraceReplayer
{
  public:
    /**
     * @param data Recorded trace; rows are assigned to ticks in
     *        per-machine recorded order. Raises RecoverableError on
     *        an empty dataset.
     */
    explicit TraceReplayer(const Dataset &data);

    /** Machine ids in the trace ("machine<id>"), sorted. */
    const std::vector<std::string> &machineIds() const
    {
        return ids;
    }

    /** Trace length in ticks (the longest machine's row count). */
    std::size_t numTicks() const { return ticks; }

    /** Total samples the trace holds. */
    std::size_t numSamples() const;

    /**
     * Feed the trace into @p server. Every machine id must already be
     * registered (raises RecoverableError otherwise). Returns early
     * when @p stopFlag (optional) becomes true.
     */
    ReplayStats replayInto(FleetServer &server,
                           const ReplayConfig &config,
                           const std::atomic<bool> *stopFlag =
                               nullptr) const;

  private:
    struct MachineTrace
    {
        std::string id;
        std::vector<std::vector<double>> rows;  ///< Catalog rows.
        std::vector<double> meteredW;           ///< Aligned meter.
    };

    std::vector<MachineTrace> machines;  ///< Sorted by id.
    std::vector<std::string> ids;
    std::size_t ticks = 0;
};

} // namespace chaos::serve

#endif // CHAOS_SERVE_REPLAY_HPP
