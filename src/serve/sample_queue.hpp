/**
 * @file
 * Bounded multi-producer/single-consumer ingestion queue for the
 * streaming serving subsystem.
 *
 * Collectors push one counter sample per machine-second; the drain
 * loop pops them in batches. The queue is bounded with an explicit
 * drop-oldest overflow policy: when a shard falls behind, the samples
 * sacrificed are the *stalest* ones — exactly the ones whose estimate
 * would be least useful by the time it was produced — and every drop
 * is counted so backpressure is observable, never silent.
 *
 * Row buffers are owned by the queue and recycled, never freed on the
 * hot path: push() copies counter values into the slot's existing
 * vector (which keeps its capacity across reuses), and popBatch()
 * *swaps* slot buffers with the consumer's recycled batch buffers
 * rather than moving ownership out. After warmup, steady-state
 * ingestion and draining perform zero heap allocation — the malloc/
 * free-per-sample churn that used to dominate the drain path (one
 * free per evaluated row) is gone entirely.
 */
#ifndef CHAOS_SERVE_SAMPLE_QUEUE_HPP
#define CHAOS_SERVE_SAMPLE_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

namespace chaos::serve {

class MachineEntry;

/** One enqueued machine-second of telemetry. */
struct QueuedSample
{
    /** Registry entry of the machine this sample belongs to. */
    MachineEntry *entry = nullptr;
    /** Catalog-ordered counter vector (recycled buffer, see file). */
    std::vector<double> catalogRow;
    /** Metered reference power; NaN when the machine has no meter. */
    double meteredW = std::numeric_limits<double>::quiet_NaN();
    /**
     * Monotonic stamp (obs::traceNowNs) taken where the sample entered
     * the pipeline — at wire decode for network ingest, at submit for
     * in-process producers. 0 when stage tracing is disabled. Rides
     * the recycled slot like the row buffer, so stamping adds no
     * allocation to the hot path.
     */
    std::uint64_t ingestNs = 0;
};

/**
 * Mutex-protected bounded FIFO of QueuedSamples (MPSC: any number of
 * producers, one draining consumer). Storage is a preallocated ring
 * of capacity slots whose row buffers are recycled (values copied in,
 * buffers swapped out), so steady-state pushing and popping never
 * touch the allocator. All operations are O(1) apart from popBatch,
 * which is linear in the batch it returns.
 */
class BoundedSampleQueue
{
  public:
    /** @param capacity Maximum retained samples; at least 1. */
    explicit BoundedSampleQueue(std::size_t capacity)
        : slots(capacity == 0 ? 1 : capacity)
    {}

    /**
     * Enqueue one sample by value: the counter row is *copied* into
     * the slot's recycled buffer (no allocation once the slot has
     * seen a row at least as wide). When the queue is full the
     * *oldest* sample is discarded to make room (drop-oldest policy).
     *
     * @return The registry entry of the machine whose sample was
     *         dropped by this push, or nullptr when nothing was
     *         dropped. The victim is the evicted (oldest) sample's
     *         machine — not necessarily the pushing one — so callers
     *         can attribute backpressure loss per machine.
     */
    MachineEntry *
    push(MachineEntry *entry, const double *row, std::size_t rowSize,
         double meteredW, std::uint64_t ingestNs = 0)
    {
        std::lock_guard<std::mutex> lock(mu);
        MachineEntry *droppedFrom = nullptr;
        if (count == slots.size()) {
            droppedFrom = slots[head].entry;
            head = next(head);
            --count;
        }
        // assign() reuses the evicted/stale occupant's capacity; the
        // producer keeps (and can reuse) its own row storage.
        QueuedSample &slot = slots[(head + count) % slots.size()];
        slot.entry = entry;
        slot.catalogRow.assign(row, row + rowSize);
        slot.meteredW = meteredW;
        slot.ingestNs = ingestNs;
        ++count;
        return droppedFrom;
    }

    /**
     * Enqueue one sample only if the queue has room: the reject-newest
     * counterpart of push() for ingest boundaries that signal
     * backpressure to the producer (NACK) instead of sacrificing the
     * oldest queued sample. Nothing is enqueued on refusal, so the
     * caller still owns the sample and can retry, shed, or report it.
     *
     * @return True when the sample was enqueued.
     */
    bool
    tryPush(MachineEntry *entry, const double *row, std::size_t rowSize,
            double meteredW, std::uint64_t ingestNs = 0)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (count == slots.size())
            return false;
        QueuedSample &slot = slots[(head + count) % slots.size()];
        slot.entry = entry;
        slot.catalogRow.assign(row, row + rowSize);
        slot.meteredW = meteredW;
        slot.ingestNs = ingestNs;
        ++count;
        return true;
    }

    /**
     * Transfer up to @p maxItems samples into @p out, oldest first.
     * Row buffers are *swapped*, not moved: each out element's
     * previous buffer goes back into the ring for reuse, so a caller
     * draining with the same scratch array reaches a steady state
     * where no allocation happens at all. Elements of @p out past the
     * returned count are untouched.
     *
     * @param out At least @p maxItems default-constructed or recycled
     *        QueuedSamples.
     * @return The number of samples transferred.
     */
    std::size_t
    popBatch(QueuedSample *out, std::size_t maxItems)
    {
        std::lock_guard<std::mutex> lock(mu);
        std::size_t moved = 0;
        while (moved < maxItems && count > 0) {
            QueuedSample &slot = slots[head];
            out[moved].entry = slot.entry;
            out[moved].meteredW = slot.meteredW;
            out[moved].ingestNs = slot.ingestNs;
            std::swap(out[moved].catalogRow, slot.catalogRow);
            head = next(head);
            --count;
            ++moved;
        }
        return moved;
    }

    /** @return Samples currently queued. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return count;
    }

    /** @return True when nothing is queued. */
    bool empty() const { return size() == 0; }

    /** @return The configured capacity. */
    std::size_t capacity() const { return slots.size(); }

  private:
    /** The ring position after @p pos. */
    std::size_t
    next(std::size_t pos) const
    {
        return pos + 1 == slots.size() ? 0 : pos + 1;
    }

    mutable std::mutex mu;
    std::vector<QueuedSample> slots; ///< Preallocated ring storage.
    std::size_t head = 0;            ///< Oldest queued sample.
    std::size_t count = 0;           ///< Samples currently queued.
};

} // namespace chaos::serve

#endif // CHAOS_SERVE_SAMPLE_QUEUE_HPP
