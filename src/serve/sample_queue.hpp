/**
 * @file
 * Bounded multi-producer/single-consumer ingestion queue for the
 * streaming serving subsystem.
 *
 * Collectors push one counter sample per machine-second; the drain
 * loop pops them in batches. The queue is bounded with an explicit
 * drop-oldest overflow policy: when a shard falls behind, the samples
 * sacrificed are the *stalest* ones — exactly the ones whose estimate
 * would be least useful by the time it was produced — and every drop
 * is counted so backpressure is observable, never silent.
 */
#ifndef CHAOS_SERVE_SAMPLE_QUEUE_HPP
#define CHAOS_SERVE_SAMPLE_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <vector>

namespace chaos::serve {

class MachineEntry;

/** One enqueued machine-second of telemetry. */
struct QueuedSample
{
    /** Registry entry of the machine this sample belongs to. */
    MachineEntry *entry = nullptr;
    /** Catalog-ordered counter vector. */
    std::vector<double> catalogRow;
    /** Metered reference power; NaN when the machine has no meter. */
    double meteredW = std::numeric_limits<double>::quiet_NaN();
};

/**
 * Mutex-protected bounded FIFO of QueuedSamples (MPSC: any number of
 * producers, one draining consumer). All operations are O(1) apart
 * from popBatch, which is linear in the batch it returns.
 */
class BoundedSampleQueue
{
  public:
    /** @param capacity Maximum retained samples; at least 1. */
    explicit BoundedSampleQueue(std::size_t capacity)
        : cap(capacity == 0 ? 1 : capacity)
    {}

    /**
     * Enqueue one sample. When the queue is full the *oldest* sample
     * is discarded to make room (drop-oldest policy).
     *
     * @return The registry entry of the machine whose sample was
     *         dropped by this push, or nullptr when nothing was
     *         dropped. The victim is the evicted (oldest) sample's
     *         machine — not necessarily the pushing one — so callers
     *         can attribute backpressure loss per machine.
     */
    MachineEntry *
    push(QueuedSample &&sample)
    {
        std::lock_guard<std::mutex> lock(mu);
        MachineEntry *droppedFrom = nullptr;
        if (items.size() >= cap) {
            droppedFrom = items.front().entry;
            items.pop_front();
        }
        items.push_back(std::move(sample));
        return droppedFrom;
    }

    /**
     * Move up to @p maxItems samples into @p out (appended), oldest
     * first. @return The number of samples transferred.
     */
    std::size_t
    popBatch(std::vector<QueuedSample> &out, std::size_t maxItems)
    {
        std::lock_guard<std::mutex> lock(mu);
        std::size_t moved = 0;
        while (moved < maxItems && !items.empty()) {
            out.push_back(std::move(items.front()));
            items.pop_front();
            ++moved;
        }
        return moved;
    }

    /** @return Samples currently queued. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return items.size();
    }

    /** @return True when nothing is queued. */
    bool empty() const { return size() == 0; }

    /** @return The configured capacity. */
    std::size_t capacity() const { return cap; }

  private:
    mutable std::mutex mu;
    std::deque<QueuedSample> items;
    std::size_t cap;
};

} // namespace chaos::serve

#endif // CHAOS_SERVE_SAMPLE_QUEUE_HPP
