#include "serve/server.hpp"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_map>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/result.hpp"

namespace chaos::serve {

namespace {

/**
 * chaos.serve.* registry metrics. Submission and processing counts
 * are work-proportional (Stable); drops, batching, and queue depth
 * depend on producer/drainer timing (Scheduling).
 */
struct ServeMetrics
{
    obs::Counter &submitted;
    obs::Counter &processed;
    obs::Counter &dropped;
    obs::Counter &batches;
    obs::Counter &snapshots;
    obs::Counter &saturations;
    obs::Gauge &queueDepth;

    static ServeMetrics &
    get()
    {
        auto &registry = obs::Registry::instance();
        static ServeMetrics m{
            registry.counter("chaos.serve.submitted"),
            registry.counter("chaos.serve.processed"),
            registry.counter("chaos.serve.dropped",
                             obs::Stability::Scheduling),
            registry.counter("chaos.serve.batches",
                             obs::Stability::Scheduling),
            registry.counter("chaos.serve.snapshots",
                             obs::Stability::Scheduling),
            registry.counter("chaos.serve.saturations",
                             obs::Stability::Scheduling),
            registry.gauge("chaos.serve.queue_depth",
                           obs::Stability::Scheduling),
        };
        return m;
    }
};

} // namespace

std::string
FleetSnapshot::toJson() const
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "{\"seq\": " << seq << ", \"ts_ms\": " << tsMs
        << ", \"submitted\": "
        << samplesSubmitted << ", \"processed\": " << samplesProcessed
        << ", \"dropped\": " << samplesDropped << ", \"cluster_w\": "
        << clusterW << ", \"health_mix\": {\"healthy\": " << healthy
        << ", \"degraded\": " << degraded << ", \"stale\": " << stale
        << ", \"lost\": " << lost << "}, \"drifting\": " << drifting
        << ", \"quarantined\": " << quarantined
        << ", \"substituted_w\": " << substitutedW
        << ", \"machines\": [";
    for (std::size_t i = 0; i < machines.size(); ++i) {
        const MachineSnapshot &m = machines[i];
        if (i > 0)
            out << ", ";
        out << "{\"id\": \"" << obs::jsonEscape(m.id)
            << "\", \"watts\": " << m.watts << ", \"model_w\": "
            << m.modelW << ", \"quarantined\": "
            << (m.quarantined ? "true" : "false")
            << ", \"health\": \""
            << machineHealthName(m.health) << "\", \"quality\": \""
            << modelQualityName(m.quality) << "\", \"samples\": "
            << m.samples << ", \"residual_samples\": "
            << m.residualSamples << ", \"mean_residual_w\": "
            << m.meanResidualW << ", \"dropped\": " << m.dropped
            << "}";
    }
    out << "]}";
    return out.str();
}

FleetServer::FleetServer(FleetServerConfig config)
    : cfg(config), registry(cfg.numShards)
{
    queueShards.reserve(registry.numShards());
    for (std::size_t s = 0; s < registry.numShards(); ++s) {
        queueShards.push_back(
            std::make_unique<QueueShard>(cfg.queueCapacity));
    }
}

FleetServer::~FleetServer()
{
    if (runningFlag.load()) {
        stopRequested.store(true);
        drainer.join();
        runningFlag.store(false);
    }
}

MachineEntry &
FleetServer::addMachine(const std::string &machineId,
                        MachinePowerModel model,
                        OnlineEstimatorConfig config)
{
    return registry.add(machineId, std::move(model),
                        std::move(config));
}

MachineEntry *
FleetServer::machine(const std::string &machineId)
{
    return registry.find(machineId);
}

void
FleetServer::swapModel(const std::string &machineId,
                       MachinePowerModel model)
{
    registry.swapModel(machineId, std::move(model));
    if (SampleObserver *observer =
            observerPtr.load(std::memory_order_acquire))
        observer->onModelSwap(machineId);
}

void
FleetServer::setSampleObserver(SampleObserver *observer)
{
    observerPtr.store(observer, std::memory_order_release);
}

std::vector<std::string>
FleetServer::machineIds() const
{
    return registry.ids();
}

void
FleetServer::submit(const std::string &machineId,
                    std::vector<double> catalogRow, double meteredW)
{
    MachineEntry *entry = registry.find(machineId);
    raiseIf(entry == nullptr,
            "serve: unknown machine id '" + machineId + "'");
    enqueue(*entry, std::move(catalogRow), meteredW);
}

void
FleetServer::submitTo(MachineEntry &entry,
                      std::vector<double> catalogRow, double meteredW)
{
    enqueue(entry, std::move(catalogRow), meteredW);
}

void
FleetServer::enqueue(MachineEntry &entry,
                     std::vector<double> catalogRow, double meteredW)
{
    QueueShard &shard = *queueShards[registry.shardOf(entry.id())];
    // Count the submission before the push: waitIdle() can then rely
    // on submitted >= (queued + processed + dropped) at all times.
    submittedCount.fetch_add(1);
    ServeMetrics::get().submitted.add();
    MachineEntry *droppedFrom = shard.queue.push(
        QueuedSample{&entry, std::move(catalogRow), meteredW});
    if (droppedFrom != nullptr) {
        droppedFrom->noteDrop();
        droppedCount.fetch_add(1);
        ServeMetrics::get().dropped.add(1);
        // One backpressure event per saturation episode, not per
        // dropped sample; the flag re-arms when the drain loop next
        // empties the shard.
        if (!shard.saturated.exchange(true)) {
            ServeMetrics::get().saturations.add();
            obs::EventLog::instance().emit(
                obs::EventKind::Backpressure, entry.id(),
                "shard queue saturated: dropping oldest samples");
        }
    }
}

std::size_t
FleetServer::drainShard(QueueShard &shard,
                        std::vector<QueuedSample> &batch)
{
    batch.clear();
    shard.queue.popBatch(batch, cfg.maxBatch);
    if (batch.empty()) {
        shard.saturated.store(false);
        return 0;
    }

    // Group the batch by machine, preserving first-appearance order;
    // machines evaluate in parallel, each machine's samples serially
    // in arrival order (the estimator is stateful).
    std::vector<std::pair<MachineEntry *, std::vector<std::size_t>>>
        groups;
    std::unordered_map<MachineEntry *, std::size_t> groupIndex;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto [it, inserted] =
            groupIndex.try_emplace(batch[i].entry, groups.size());
        if (inserted)
            groups.emplace_back(batch[i].entry,
                                std::vector<std::size_t>{});
        groups[it->second].second.push_back(i);
    }

    {
        obs::Span span("serve.predict");
        SampleObserver *observer =
            observerPtr.load(std::memory_order_acquire);
        parallelFor(groups.size(), [&](std::size_t g) {
            auto &[entry, indices] = groups[g];
            entry->withEstimator(
                [&](OnlinePowerEstimator &estimator) {
                    // One flag read per group: the quarantine /
                    // shadow / reference-window hook costs nothing
                    // while the autopilot has nothing engaged.
                    const bool aux = entry->auxActiveLocked();
                    for (std::size_t i : indices) {
                        QueuedSample &sample = batch[i];
                        double watts;
                        if (std::isfinite(sample.meteredW)) {
                            watts = estimator.estimateWithReference(
                                sample.catalogRow, sample.meteredW);
                        } else {
                            watts = estimator.estimate(
                                sample.catalogRow);
                        }
                        if (aux) {
                            entry->recordSampleLocked(
                                sample.catalogRow, watts,
                                sample.meteredW);
                        }
                        if (observer != nullptr) {
                            observer->onSample(*entry, estimator,
                                               watts,
                                               sample.meteredW);
                        }
                    }
                });
        });
    }

    if (shard.queue.empty())
        shard.saturated.store(false);
    processedCount.fetch_add(batch.size());
    ServeMetrics::get().processed.add(batch.size());
    return batch.size();
}

std::size_t
FleetServer::drainOnce()
{
    obs::Span span("serve.drain");
    const auto start = std::chrono::steady_clock::now();

    std::size_t total = 0;
    std::vector<QueuedSample> batch;
    batch.reserve(cfg.maxBatch);
    std::size_t depth = 0;
    for (auto &shard : queueShards) {
        total += drainShard(*shard, batch);
        depth += shard->queue.size();
    }
    ServeMetrics::get().queueDepth.set(
        static_cast<std::int64_t>(depth));

    if (total > 0) {
        ServeMetrics::get().batches.add();
        if (cfg.recordDrainLatencies) {
            const auto stop = std::chrono::steady_clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(stop - start)
                    .count();
            std::lock_guard<std::mutex> lock(latencyMu);
            drainMs.push_back(ms);
        }
        if (cfg.snapshotEverySamples > 0) {
            sinceSnapshot += total;
            while (sinceSnapshot >= cfg.snapshotEverySamples) {
                sinceSnapshot -= cfg.snapshotEverySamples;
                emitPeriodicSnapshot();
            }
        }
    }
    return total;
}

void
FleetServer::drainerLoop()
{
    while (!stopRequested.load()) {
        if (drainOnce() == 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(cfg.idleSleepMicros));
        }
    }
}

void
FleetServer::start()
{
    panicIf(runningFlag.load(), "FleetServer::start while running");
    stopRequested.store(false);
    runningFlag.store(true);
    drainer = std::thread([this] { drainerLoop(); });
}

void
FleetServer::stop()
{
    if (!runningFlag.load())
        return;
    stopRequested.store(true);
    drainer.join();
    runningFlag.store(false);
    // Flush what the drainer left behind; producers are expected to
    // be quiescent by now.
    while (drainOnce() > 0) {
    }
}

void
FleetServer::waitIdle() const
{
    for (;;) {
        bool empty = true;
        for (const auto &shard : queueShards) {
            if (!shard->queue.empty()) {
                empty = false;
                break;
            }
        }
        if (empty && processedCount.load() + droppedCount.load() ==
                         submittedCount.load())
            return;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

FleetSnapshot
FleetServer::buildSnapshot() const
{
    obs::Span span("serve.snapshot");
    FleetSnapshot snap;
    snap.seq = snapshotSeq.fetch_add(1) + 1;
    snap.tsMs = obs::wallClockMs();
    snap.samplesSubmitted = submittedCount.load();
    snap.samplesProcessed = processedCount.load();
    snap.samplesDropped = droppedCount.load();
    for (MachineEntry *entry : registry.entriesById()) {
        MachineSnapshot m;
        m.id = entry->id();
        entry->withEstimator([&](OnlinePowerEstimator &estimator) {
            m.modelW = estimator.lastEstimateW();
            m.watts = entry->servedWattsLocked();
            m.quarantined = entry->quarantinedLocked();
            m.health = estimator.health();
            m.quality = estimator.modelQuality();
            m.samples = estimator.samples();
            m.residualSamples = estimator.residuals().count();
            m.meanResidualW = estimator.residuals().mean();
        });
        m.dropped = entry->droppedSamples();
        snap.clusterW += m.watts;
        if (m.quarantined) {
            ++snap.quarantined;
            snap.substitutedW += m.watts;
        }
        switch (m.health) {
          case MachineHealth::Healthy:  ++snap.healthy; break;
          case MachineHealth::Degraded: ++snap.degraded; break;
          case MachineHealth::Stale:    ++snap.stale; break;
          case MachineHealth::Lost:     ++snap.lost; break;
        }
        if (m.quality == ModelQuality::Drifting)
            ++snap.drifting;
        snap.machines.push_back(std::move(m));
    }
    return snap;
}

FleetSnapshot
FleetServer::snapshot() const
{
    return buildSnapshot();
}

void
FleetServer::emitPeriodicSnapshot()
{
    FleetSnapshot snap = buildSnapshot();
    ServeMetrics::get().snapshots.add();
    std::function<void(const FleetSnapshot &)> callback;
    {
        std::lock_guard<std::mutex> lock(snapMu);
        periodicSnapshots.push_back(snap);
        callback = snapshotCallback;
    }
    if (callback)
        callback(snap);
}

void
FleetServer::onSnapshot(
    std::function<void(const FleetSnapshot &)> fn)
{
    std::lock_guard<std::mutex> lock(snapMu);
    snapshotCallback = std::move(fn);
}

std::vector<FleetSnapshot>
FleetServer::snapshots() const
{
    std::lock_guard<std::mutex> lock(snapMu);
    return periodicSnapshots;
}

std::vector<double>
FleetServer::drainLatenciesMs() const
{
    std::lock_guard<std::mutex> lock(latencyMu);
    return drainMs;
}

} // namespace chaos::serve
