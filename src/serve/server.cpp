#include "serve/server.hpp"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_map>

#include "obs/events.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/stage_metrics.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/result.hpp"

namespace chaos::serve {

namespace {

/**
 * chaos.serve.* registry metrics. Submission and processing counts
 * are work-proportional (Stable); drops, batching, and queue depth
 * depend on producer/drainer timing (Scheduling).
 */
struct ServeMetrics
{
    obs::Counter &submitted;
    obs::Counter &processed;
    obs::Counter &dropped;
    obs::Counter &batches;
    obs::Counter &snapshots;
    obs::Counter &saturations;
    obs::Gauge &queueDepth;
    obs::Histogram &batchSize;
    obs::Histogram &drainLatencyMs;

    static ServeMetrics &
    get()
    {
        auto &registry = obs::Registry::instance();
        static ServeMetrics m{
            registry.counter("chaos.serve.submitted"),
            registry.counter("chaos.serve.processed"),
            registry.counter("chaos.serve.dropped",
                             obs::Stability::Scheduling),
            registry.counter("chaos.serve.batches",
                             obs::Stability::Scheduling),
            registry.counter("chaos.serve.snapshots",
                             obs::Stability::Scheduling),
            registry.counter("chaos.serve.saturations",
                             obs::Stability::Scheduling),
            registry.gauge("chaos.serve.queue_depth",
                           obs::Stability::Scheduling),
            registry.histogram(
                "chaos.serve.batch_size",
                {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048,
                 4096},
                obs::Stability::Scheduling),
            registry.histogram(
                "chaos.serve.drain_latency_ms",
                {0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0,
                 16.0, 50.0},
                obs::Stability::Scheduling),
        };
        return m;
    }
};

} // namespace

std::string
FleetSnapshot::toJson() const
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "{\"seq\": " << seq << ", \"ts_ms\": " << tsMs
        << ", \"submitted\": "
        << samplesSubmitted << ", \"processed\": " << samplesProcessed
        << ", \"dropped\": " << samplesDropped << ", \"cluster_w\": "
        << clusterW << ", \"health_mix\": {\"healthy\": " << healthy
        << ", \"degraded\": " << degraded << ", \"stale\": " << stale
        << ", \"lost\": " << lost << "}, \"drifting\": " << drifting
        << ", \"quarantined\": " << quarantined
        << ", \"substituted_w\": " << substitutedW
        << ", \"machines\": [";
    for (std::size_t i = 0; i < machines.size(); ++i) {
        const MachineSnapshot &m = machines[i];
        if (i > 0)
            out << ", ";
        out << "{\"id\": \"" << obs::jsonEscape(m.id)
            << "\", \"watts\": " << m.watts << ", \"model_w\": "
            << m.modelW << ", \"quarantined\": "
            << (m.quarantined ? "true" : "false")
            << ", \"health\": \""
            << machineHealthName(m.health) << "\", \"quality\": \""
            << modelQualityName(m.quality) << "\", \"samples\": "
            << m.samples << ", \"residual_samples\": "
            << m.residualSamples << ", \"mean_residual_w\": "
            << m.meanResidualW << ", \"dropped\": " << m.dropped
            << "}";
    }
    out << "]}";
    return out.str();
}

FleetServer::FleetServer(FleetServerConfig config)
    : cfg(config), registry(cfg.numShards)
{
    queueShards.reserve(registry.numShards());
    for (std::size_t s = 0; s < registry.numShards(); ++s) {
        queueShards.push_back(
            std::make_unique<QueueShard>(cfg.queueCapacity));
    }
}

FleetServer::~FleetServer()
{
    if (runningFlag.load()) {
        stopRequested.store(true);
        drainer.join();
        runningFlag.store(false);
    }
}

MachineEntry &
FleetServer::addMachine(const std::string &machineId,
                        MachinePowerModel model,
                        OnlineEstimatorConfig config)
{
    return registry.add(machineId, std::move(model),
                        std::move(config));
}

MachineEntry *
FleetServer::machine(const std::string &machineId)
{
    return registry.find(machineId);
}

void
FleetServer::swapModel(const std::string &machineId,
                       MachinePowerModel model)
{
    registry.swapModel(machineId, std::move(model));
    if (SampleObserver *observer =
            observerPtr.load(std::memory_order_acquire))
        observer->onModelSwap(machineId);
}

void
FleetServer::setSampleObserver(SampleObserver *observer)
{
    observerPtr.store(observer, std::memory_order_release);
}

std::vector<std::string>
FleetServer::machineIds() const
{
    return registry.ids();
}

void
FleetServer::submit(const std::string &machineId,
                    const double *catalogRow, std::size_t rowSize,
                    double meteredW)
{
    MachineEntry *entry = registry.find(machineId);
    raiseIf(entry == nullptr,
            "serve: unknown machine id '" + machineId + "'");
    enqueue(*entry, catalogRow, rowSize, meteredW);
}

void
FleetServer::submitTo(MachineEntry &entry, const double *catalogRow,
                      std::size_t rowSize, double meteredW)
{
    enqueue(entry, catalogRow, rowSize, meteredW);
}

bool
FleetServer::offer(MachineEntry &entry, const double *catalogRow,
                   std::size_t rowSize, double meteredW,
                   std::uint64_t ingestNs)
{
    QueueShard &shard = *queueShards[registry.shardOf(entry.id())];
    if (ingestNs == 0)
        ingestNs = stageStampNs();
    // Count before the push so waitIdle's submitted >= queued +
    // processed + dropped invariant holds at every instant; undo on
    // refusal (the transient overcount only makes waitIdle wait).
    submittedCount.fetch_add(1);
    if (!shard.queue.tryPush(&entry, catalogRow, rowSize, meteredW,
                             ingestNs)) {
        submittedCount.fetch_sub(1);
        return false;
    }
    ServeMetrics::get().submitted.add();
    return true;
}

void
FleetServer::enqueue(MachineEntry &entry, const double *catalogRow,
                     std::size_t rowSize, double meteredW)
{
    QueueShard &shard = *queueShards[registry.shardOf(entry.id())];
    // Count the submission before the push: waitIdle() can then rely
    // on submitted >= (queued + processed + dropped) at all times.
    submittedCount.fetch_add(1);
    ServeMetrics::get().submitted.add();
    MachineEntry *droppedFrom = shard.queue.push(
        &entry, catalogRow, rowSize, meteredW, stageStampNs());
    if (droppedFrom != nullptr) {
        droppedFrom->noteDrop();
        droppedCount.fetch_add(1);
        ServeMetrics::get().dropped.add(1);
        // One backpressure event per saturation episode, not per
        // dropped sample; the flag re-arms when the drain loop next
        // empties the shard.
        if (!shard.saturated.exchange(true)) {
            ServeMetrics::get().saturations.add();
            obs::EventLog::instance().emit(
                obs::EventKind::Backpressure, entry.id(),
                "shard queue saturated: dropping oldest samples");
        }
    }
}

std::size_t
FleetServer::drainShard(QueueShard &shard, std::size_t budget)
{
    DrainScratch &ds = scratch;
    // The batch array is sized once and its row buffers circulate
    // with the shard queues' slots (popBatch swaps buffers), so a
    // steady-state pass never touches the allocator.
    if (ds.batch.size() < budget)
        ds.batch.resize(budget);
    // Stage clocks are read per batch, not per sample: the dequeue
    // time below stands in for every sample's pickup, and the pass
    // end for every sample's completion.
    const bool stageOn = stageTracingEnabled();
    const std::uint64_t popNs = stageOn ? obs::traceNowNs() : 0;
    const std::size_t n = shard.queue.popBatch(ds.batch.data(), budget);
    if (n == 0) {
        shard.saturated.store(false);
        return 0;
    }
    // Queue wait is measured against the post-pop clock so samples
    // stamped while the pop was in flight still count (popNs alone
    // would race with concurrent producers and skip them).
    const std::uint64_t popDoneNs = stageOn ? obs::traceNowNs() : 0;

    // Group the batch by machine with a counting sort: assign group
    // ids in first-appearance order, size the per-group slices, then
    // scatter sample indices (and their in-place views of the queued
    // counter rows) into contiguous slices of ds.order/ds.views.
    // Machines evaluate in parallel over disjoint slices; each
    // machine's samples stay serial and in arrival order (the
    // estimator is stateful).
    ds.groupEntries.clear();
    ds.groupIndex.clear();
    ds.sampleGroup.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto [it, inserted] = ds.groupIndex.try_emplace(
            ds.batch[i].entry, ds.groupEntries.size());
        if (inserted)
            ds.groupEntries.push_back(ds.batch[i].entry);
        ds.sampleGroup[i] = it->second;
    }
    const std::size_t numGroups = ds.groupEntries.size();
    ds.groupOffset.assign(numGroups + 1, 0);
    for (std::size_t i = 0; i < n; ++i)
        ++ds.groupOffset[ds.sampleGroup[i] + 1];
    for (std::size_t g = 0; g < numGroups; ++g)
        ds.groupOffset[g + 1] += ds.groupOffset[g];
    ds.cursor.assign(ds.groupOffset.begin(),
                     ds.groupOffset.end() - 1);
    ds.order.resize(n);
    ds.views.resize(n);
    ds.watts.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t pos = ds.cursor[ds.sampleGroup[i]]++;
        const QueuedSample &sample = ds.batch[i];
        ds.order[pos] = i;
        ds.views[pos] = SampleView{sample.catalogRow.data(),
                                   sample.catalogRow.size(),
                                   sample.meteredW};
    }

    const std::uint64_t predictStartNs =
        stageOn ? obs::traceNowNs() : 0;
    {
        obs::Span span("serve.predict");
        SampleObserver *observer =
            observerPtr.load(std::memory_order_acquire);
        parallelFor(numGroups, [&](std::size_t g) {
            MachineEntry *entry = ds.groupEntries[g];
            const std::size_t start = ds.groupOffset[g];
            const std::size_t count = ds.groupOffset[g + 1] - start;
            entry->withEstimator(
                [&](OnlinePowerEstimator &estimator) {
                    // The whole group evaluates in one batched call:
                    // one compiled-plan pass over the packed rows,
                    // bit-identical to the serial scalar path.
                    estimator.estimateBatch(ds.views.data() + start,
                                            count,
                                            ds.watts.data() + start);
                    // One flag read per group: the quarantine /
                    // shadow / reference-window hook and the monitor
                    // observer cost nothing when disengaged; when
                    // active they consume the batch output.
                    const bool aux = entry->auxActiveLocked();
                    if (!aux && observer == nullptr)
                        return;
                    for (std::size_t k = start; k < start + count;
                         ++k) {
                        const QueuedSample &sample =
                            ds.batch[ds.order[k]];
                        if (aux) {
                            entry->recordSampleLocked(
                                sample.catalogRow, ds.watts[k],
                                sample.meteredW);
                        }
                        if (observer != nullptr) {
                            observer->onSample(*entry, estimator,
                                               ds.watts[k],
                                               sample.meteredW);
                        }
                    }
                });
        });
    }

    if (shard.queue.empty())
        shard.saturated.store(false);
    processedCount.fetch_add(n);
    ServeMetrics::get().processed.add(n);

    if (stageOn) {
        StageMetrics &stage = StageMetrics::get();
        const std::uint64_t endNs = obs::traceNowNs();
        stage.drainBatchUs.observe(
            static_cast<double>(endNs - popNs) / 1000.0);
        stage.predictUs.observe(
            static_cast<double>(endNs - predictStartNs) / 1000.0);
        // Per-sample waits accumulate in shard-local scratch and
        // flush with one bulk observe per histogram: per-sample
        // contended atomic adds were the bulk of the tracing
        // overhead on the batched drain path. e2e reuses the same
        // array — it differs from queue wait only by the per-batch
        // constant endNs - popDoneNs.
        ds.waitUs.clear();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t ingestNs = ds.batch[i].ingestNs;
            // Samples stamped while tracing was off (or with a
            // foreign clock) carry 0 / a future stamp; skip them
            // rather than record a wrapped difference.
            if (ingestNs == 0 || ingestNs > popDoneNs)
                continue;
            ds.waitUs.push_back(
                static_cast<double>(popDoneNs - ingestNs) / 1000.0);
        }
        stage.queueWaitUs.observeBulk(ds.waitUs.data(),
                                      ds.waitUs.size());
        stage.e2eUs.observeBulk(
            ds.waitUs.data(), ds.waitUs.size(),
            static_cast<double>(endNs - popDoneNs) / 1000.0);
    }
    return n;
}

std::size_t
FleetServer::drainOnce()
{
    std::lock_guard<std::mutex> drainLock(drainMu);
    obs::Span span("serve.drain");
    const auto start = std::chrono::steady_clock::now();

    // Latency-oriented scheduling: one pass drains at most
    // cfg.maxBatch samples in total, visiting shards round-robin
    // from a rotating cursor. The pass latency is bounded by the
    // batch budget; a backlogged shard hands the cursor to its
    // neighbour, so no shard is starved.
    std::size_t total = 0;
    const std::size_t numShards = queueShards.size();
    std::size_t depth = 0;
    for (std::size_t k = 0; k < numShards && total < cfg.maxBatch;
         ++k) {
        const std::size_t s = (drainCursor + k) % numShards;
        total += drainShard(*queueShards[s], cfg.maxBatch - total);
        if (total >= cfg.maxBatch) {
            // Budget exhausted at shard s: resume at the next shard
            // so a backlogged shard cannot starve the others.
            drainCursor = (s + 1) % numShards;
        }
    }
    for (const auto &shard : queueShards)
        depth += shard->queue.size();
    ServeMetrics::get().queueDepth.set(
        static_cast<std::int64_t>(depth));

    if (total > 0) {
        ServeMetrics::get().batches.add();
        ServeMetrics::get().batchSize.observe(
            static_cast<double>(total));
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        ServeMetrics::get().drainLatencyMs.observe(ms);
        if (cfg.recordDrainLatencies) {
            std::lock_guard<std::mutex> lock(latencyMu);
            drainMs.push_back(ms);
        }
        // Black-box feed: one span per pass, and a processed-count
        // delta every 64th pass so bundles show recent throughput.
        // One relaxed load when the recorder is disarmed.
        auto &flight = obs::FlightRecorder::instance();
        if (flight.enabled()) {
            flight.recordSpan("serve", "serve.drain",
                              static_cast<std::uint64_t>(ms * 1e6));
            if (++flightPasses % 64 == 0) {
                const std::uint64_t now = processedCount.load();
                flight.recordMetricDelta(
                    "serve", "chaos.serve.processed",
                    static_cast<double>(now - flightLastProcessed));
                flightLastProcessed = now;
            }
        }
        if (cfg.snapshotEverySamples > 0) {
            sinceSnapshot += total;
            while (sinceSnapshot >= cfg.snapshotEverySamples) {
                sinceSnapshot -= cfg.snapshotEverySamples;
                emitPeriodicSnapshot();
            }
        }
    }
    return total;
}

void
FleetServer::drainerLoop()
{
    while (!stopRequested.load()) {
        if (drainOnce() == 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(cfg.idleSleepMicros));
        }
    }
}

void
FleetServer::start()
{
    panicIf(runningFlag.load(), "FleetServer::start while running");
    stopRequested.store(false);
    runningFlag.store(true);
    drainer = std::thread([this] { drainerLoop(); });
}

void
FleetServer::stop()
{
    if (!runningFlag.load())
        return;
    stopRequested.store(true);
    drainer.join();
    runningFlag.store(false);
    // Flush what the drainer left behind; producers are expected to
    // be quiescent by now.
    while (drainOnce() > 0) {
    }
}

void
FleetServer::waitIdle() const
{
    for (;;) {
        bool empty = true;
        for (const auto &shard : queueShards) {
            if (!shard->queue.empty()) {
                empty = false;
                break;
            }
        }
        if (empty && processedCount.load() + droppedCount.load() ==
                         submittedCount.load())
            return;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

FleetSnapshot
FleetServer::buildSnapshot() const
{
    obs::Span span("serve.snapshot");
    FleetSnapshot snap;
    snap.seq = snapshotSeq.fetch_add(1) + 1;
    snap.tsMs = obs::wallClockMs();
    snap.samplesSubmitted = submittedCount.load();
    snap.samplesProcessed = processedCount.load();
    snap.samplesDropped = droppedCount.load();
    for (MachineEntry *entry : registry.entriesById()) {
        MachineSnapshot m;
        m.id = entry->id();
        entry->withEstimator([&](OnlinePowerEstimator &estimator) {
            m.modelW = estimator.lastEstimateW();
            m.watts = entry->servedWattsLocked();
            m.quarantined = entry->quarantinedLocked();
            m.health = estimator.health();
            m.quality = estimator.modelQuality();
            m.samples = estimator.samples();
            m.residualSamples = estimator.residuals().count();
            m.meanResidualW = estimator.residuals().mean();
        });
        m.dropped = entry->droppedSamples();
        snap.clusterW += m.watts;
        if (m.quarantined) {
            ++snap.quarantined;
            snap.substitutedW += m.watts;
        }
        switch (m.health) {
          case MachineHealth::Healthy:  ++snap.healthy; break;
          case MachineHealth::Degraded: ++snap.degraded; break;
          case MachineHealth::Stale:    ++snap.stale; break;
          case MachineHealth::Lost:     ++snap.lost; break;
        }
        if (m.quality == ModelQuality::Drifting)
            ++snap.drifting;
        snap.machines.push_back(std::move(m));
    }
    return snap;
}

FleetSnapshot
FleetServer::snapshot() const
{
    return buildSnapshot();
}

void
FleetServer::emitPeriodicSnapshot()
{
    FleetSnapshot snap = buildSnapshot();
    ServeMetrics::get().snapshots.add();
    std::function<void(const FleetSnapshot &)> callback;
    {
        std::lock_guard<std::mutex> lock(snapMu);
        periodicSnapshots.push_back(snap);
        callback = snapshotCallback;
    }
    if (callback)
        callback(snap);
}

void
FleetServer::onSnapshot(
    std::function<void(const FleetSnapshot &)> fn)
{
    std::lock_guard<std::mutex> lock(snapMu);
    snapshotCallback = std::move(fn);
}

std::vector<FleetSnapshot>
FleetServer::snapshots() const
{
    std::lock_guard<std::mutex> lock(snapMu);
    return periodicSnapshots;
}

std::vector<double>
FleetServer::drainLatenciesMs() const
{
    std::lock_guard<std::mutex> lock(latencyMu);
    return drainMs;
}

} // namespace chaos::serve
