/**
 * @file
 * Sharded estimator registry: the serving-side home of one
 * OnlinePowerEstimator per fleet machine, keyed by machine id.
 *
 * Lookups are lock-striped: machine ids hash onto a fixed set of
 * shards, each with its own mutex, so concurrent producers resolving
 * different machines rarely contend. Entry addresses are stable for
 * the life of the registry (entries are never removed), which lets
 * the ingestion queues carry raw MachineEntry pointers.
 *
 * Each entry carries its own mutex guarding the (stateful) estimator.
 * Model hot-swap takes only that entry mutex, so swapping one
 * machine's model serializes with that machine's predictions but
 * never stalls ingestion or any other machine.
 */
#ifndef CHAOS_SERVE_REGISTRY_HPP
#define CHAOS_SERVE_REGISTRY_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/online.hpp"

namespace chaos::serve {

/**
 * One registered machine: id + mutex-guarded online estimator, plus
 * the serving-state the remediation autopilot drives — a quarantine
 * substitute, a shadow (canary) candidate model, and a bounded
 * reference window of recent (features, metered watts) pairs for
 * background retraining.
 *
 * Locking convention: public methods take the entry mutex themselves;
 * methods suffixed "Locked" must only be called from code already
 * holding it (inside withEstimator, i.e. the drain loop) — calling
 * them unlocked is a data race, calling the unsuffixed ones from
 * inside withEstimator deadlocks.
 */
class MachineEntry
{
  public:
    MachineEntry(std::string machineId, MachinePowerModel model,
                 OnlineEstimatorConfig config)
        : id_(std::move(machineId)),
          estimator_(std::move(model), std::move(config))
    {}

    /** The machine id this entry was registered under. */
    const std::string &id() const { return id_; }

    /**
     * Run @p fn with exclusive access to the estimator. All estimator
     * use (predictions, hot-swap, snapshot reads) goes through here.
     */
    template <typename Fn>
    auto
    withEstimator(Fn &&fn)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return fn(estimator_);
    }

    /**
     * Opaque per-machine state owned by the installed SampleObserver
     * (nullptr when unmonitored). Written under the entry mutex (via
     * withEstimator) at attach/detach time and read by onSample on
     * drain threads that already hold that mutex, so plain loads and
     * stores suffice. Spares the observer a per-sample map lookup on
     * the serving hot path.
     */
    void setObserverState(void *state) { observerState_ = state; }
    void *observerState() const { return observerState_; }

    // ---- Backpressure attribution ------------------------------------
    /**
     * Count one sample of this machine's lost to drop-oldest
     * backpressure. Called by producers WITHOUT the entry mutex, hence
     * atomic.
     */
    void
    noteDrop()
    {
        drops_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Samples of this machine dropped by queue backpressure. */
    std::uint64_t
    droppedSamples() const
    {
        return drops_.load(std::memory_order_relaxed);
    }

    // ---- Quarantine --------------------------------------------------
    /**
     * Isolate this machine's own estimate from the cluster sum: until
     * liftQuarantine(), servedWattsLocked() reports @p substitute's
     * prediction on each incoming sample instead of the deployed
     * model's. With a null substitute the last-known-good estimate
     * (the mean of recent healthy estimates) is frozen and served.
     * The deployed model keeps evaluating normally underneath so the
     * monitor and any canary still see it.
     */
    void engageQuarantine(
        std::shared_ptr<const MachinePowerModel> substitute);

    /** Serve the machine's own estimate again (idempotent). */
    void liftQuarantine();

    /** True while quarantined (takes the entry mutex). */
    bool quarantined();

    // ---- Shadow (canary) evaluation ----------------------------------
    /** Rolling shadow comparison of candidate vs incumbent. */
    struct ShadowReport
    {
        bool active = false;
        std::uint64_t refSamples = 0; ///< Metered pairs compared.
        double candidateRmseW = 0.0;
        double incumbentRmseW = 0.0;
    };

    /**
     * Start shadow-evaluating @p candidate: every subsequent metered
     * sample scores candidate and incumbent against the same
     * reference. Replaces any previous shadow.
     */
    void beginShadow(MachinePowerModel candidate);

    /** Stop shadow evaluation and discard its state (idempotent). */
    void endShadow();

    /** Current shadow comparison (active=false when none). */
    ShadowReport shadowReport();

    /** Copy of the shadow candidate; raises if no shadow is active. */
    MachinePowerModel shadowModel();

    // ---- Reference window --------------------------------------------
    /** A retraining snapshot extracted from the reference window. */
    struct ReferenceData
    {
        FeatureSet features;   ///< Feature set rows are ordered by.
        Matrix x{0, 0};        ///< One row per sample, oldest first.
        std::vector<double> y; ///< Metered watts, aligned with x.
    };

    /**
     * Keep the last @p capacity metered samples as feature-ordered
     * rows (projected through the deployed model's catalog indices at
     * capture time) for background retraining. 0 disables and frees
     * the ring. The ring is cleared on model hot-swap because the
     * feature projection may change.
     */
    void enableReferenceWindow(std::size_t capacity);

    /** Samples currently held in the reference window. */
    std::size_t referenceFill();

    /** Snapshot the reference window (x may have zero rows). */
    ReferenceData referenceData();

    // ---- Drain-loop hooks (entry mutex already held) -----------------
    /** True when any per-sample aux work is enabled; one branch. */
    bool
    auxActiveLocked() const
    {
        return quarantined_ || shadow_ != nullptr || ref_.cap > 0;
    }

    /**
     * Record one evaluated sample into the active aux state:
     * substitute prediction, shadow scoring, reference capture.
     */
    void recordSampleLocked(const std::vector<double> &catalogRow,
                            double estimateW, double meteredW);

    /**
     * The watts this machine contributes to the cluster sum: the
     * substitute estimate while quarantined, the deployed model's
     * last estimate otherwise.
     */
    double servedWattsLocked() const;

    /** True while quarantined (mutex already held). */
    bool quarantinedLocked() const { return quarantined_; }

    /**
     * Drop model-specific aux state after a hot-swap: clears the
     * reference window (rows were projected for the old model) and
     * any shadow (it was competing against the old model). Quarantine
     * is left alone — the autopilot lifts it explicitly.
     */
    void onModelSwappedLocked();

  private:
    struct ShadowState
    {
        MachinePowerModel candidate;
        std::uint64_t refSamples = 0;
        double candidateSumSq = 0.0;
        double incumbentSumSq = 0.0;
        explicit ShadowState(MachinePowerModel model)
            : candidate(std::move(model))
        {}
    };

    /** Bounded ring of feature-ordered rows + aligned metered watts. */
    struct ReferenceRing
    {
        std::size_t cap = 0;
        std::size_t head = 0; ///< Next write position.
        std::size_t fill = 0;
        std::vector<std::vector<double>> rows;
        std::vector<double> watts;
    };

    std::string id_;
    std::mutex mu_;
    OnlinePowerEstimator estimator_;
    void *observerState_ = nullptr;

    bool quarantined_ = false;
    /** Substitute's latest prediction; NaN until the next sample. */
    double substituteW_ = 0.0;
    std::shared_ptr<const MachinePowerModel> substituteModel_;
    std::unique_ptr<ShadowState> shadow_;
    ReferenceRing ref_;
    std::atomic<std::uint64_t> drops_{0};
};

/** Lock-striped map of machine id -> MachineEntry. */
class EstimatorRegistry
{
  public:
    /** @param numShards Stripe count; clamped to at least 1. */
    explicit EstimatorRegistry(std::size_t numShards = 8);

    /**
     * Register a machine. Raises RecoverableError if @p machineId is
     * already registered or empty. When the estimator config carries
     * no source label, the machine id is used (health events are then
     * attributable to the machine).
     *
     * @return The stable entry for the new machine.
     */
    MachineEntry &add(const std::string &machineId,
                      MachinePowerModel model,
                      OnlineEstimatorConfig config = {});

    /** @return The entry for @p machineId, or nullptr if unknown. */
    MachineEntry *find(const std::string &machineId);

    /**
     * Atomically replace the deployed model of one machine (see
     * OnlinePowerEstimator::swapModel for what state carries over).
     * Raises RecoverableError if the machine is unknown.
     */
    void swapModel(const std::string &machineId,
                   MachinePowerModel model);

    /** @return Number of registered machines. */
    std::size_t size() const;

    /** @return All machine ids, sorted. */
    std::vector<std::string> ids() const;

    /**
     * All entries, ordered by machine id (deterministic snapshot
     * order). Entry pointers stay valid for the registry's lifetime.
     */
    std::vector<MachineEntry *> entriesById();

    /** @return The stripe count. */
    std::size_t numShards() const { return shards.size(); }

    /** @return The shard index @p machineId hashes to. */
    std::size_t shardOf(const std::string &machineId) const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, std::unique_ptr<MachineEntry>>
            entries;
    };

    std::vector<Shard> shards;
};

} // namespace chaos::serve

#endif // CHAOS_SERVE_REGISTRY_HPP
