/**
 * @file
 * Sharded estimator registry: the serving-side home of one
 * OnlinePowerEstimator per fleet machine, keyed by machine id.
 *
 * Lookups are lock-striped: machine ids hash onto a fixed set of
 * shards, each with its own mutex, so concurrent producers resolving
 * different machines rarely contend. Entry addresses are stable for
 * the life of the registry (entries are never removed), which lets
 * the ingestion queues carry raw MachineEntry pointers.
 *
 * Each entry carries its own mutex guarding the (stateful) estimator.
 * Model hot-swap takes only that entry mutex, so swapping one
 * machine's model serializes with that machine's predictions but
 * never stalls ingestion or any other machine.
 */
#ifndef CHAOS_SERVE_REGISTRY_HPP
#define CHAOS_SERVE_REGISTRY_HPP

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/online.hpp"

namespace chaos::serve {

/** One registered machine: id + mutex-guarded online estimator. */
class MachineEntry
{
  public:
    MachineEntry(std::string machineId, MachinePowerModel model,
                 OnlineEstimatorConfig config)
        : id_(std::move(machineId)),
          estimator_(std::move(model), std::move(config))
    {}

    /** The machine id this entry was registered under. */
    const std::string &id() const { return id_; }

    /**
     * Run @p fn with exclusive access to the estimator. All estimator
     * use (predictions, hot-swap, snapshot reads) goes through here.
     */
    template <typename Fn>
    auto
    withEstimator(Fn &&fn)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return fn(estimator_);
    }

    /**
     * Opaque per-machine state owned by the installed SampleObserver
     * (nullptr when unmonitored). Written under the entry mutex (via
     * withEstimator) at attach/detach time and read by onSample on
     * drain threads that already hold that mutex, so plain loads and
     * stores suffice. Spares the observer a per-sample map lookup on
     * the serving hot path.
     */
    void setObserverState(void *state) { observerState_ = state; }
    void *observerState() const { return observerState_; }

  private:
    std::string id_;
    std::mutex mu_;
    OnlinePowerEstimator estimator_;
    void *observerState_ = nullptr;
};

/** Lock-striped map of machine id -> MachineEntry. */
class EstimatorRegistry
{
  public:
    /** @param numShards Stripe count; clamped to at least 1. */
    explicit EstimatorRegistry(std::size_t numShards = 8);

    /**
     * Register a machine. Raises RecoverableError if @p machineId is
     * already registered or empty. When the estimator config carries
     * no source label, the machine id is used (health events are then
     * attributable to the machine).
     *
     * @return The stable entry for the new machine.
     */
    MachineEntry &add(const std::string &machineId,
                      MachinePowerModel model,
                      OnlineEstimatorConfig config = {});

    /** @return The entry for @p machineId, or nullptr if unknown. */
    MachineEntry *find(const std::string &machineId);

    /**
     * Atomically replace the deployed model of one machine (see
     * OnlinePowerEstimator::swapModel for what state carries over).
     * Raises RecoverableError if the machine is unknown.
     */
    void swapModel(const std::string &machineId,
                   MachinePowerModel model);

    /** @return Number of registered machines. */
    std::size_t size() const;

    /** @return All machine ids, sorted. */
    std::vector<std::string> ids() const;

    /**
     * All entries, ordered by machine id (deterministic snapshot
     * order). Entry pointers stay valid for the registry's lifetime.
     */
    std::vector<MachineEntry *> entriesById();

    /** @return The stripe count. */
    std::size_t numShards() const { return shards.size(); }

    /** @return The shard index @p machineId hashes to. */
    std::size_t shardOf(const std::string &machineId) const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, std::unique_ptr<MachineEntry>>
            entries;
    };

    std::vector<Shard> shards;
};

} // namespace chaos::serve

#endif // CHAOS_SERVE_REGISTRY_HPP
