#include "serve/fleet_store.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "core/model_store.hpp"
#include "util/result.hpp"
#include "util/string_utils.hpp"

namespace chaos::serve {

namespace {

/** "path:line: what" error for manifest parsing. */
[[noreturn]] void
manifestError(const std::string &path, std::size_t line,
              const std::string &what)
{
    raise(path + ":" + std::to_string(line) + ": " + what);
}

/** Directory part of @p path ("" when there is none). */
std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

} // namespace

void
saveFleetManifest(const std::string &path,
                  const std::vector<FleetMachineRef> &fleet)
{
    std::ofstream out(path);
    raiseIf(!out, "cannot open fleet manifest for writing: " + path);
    out << "chaos-fleet 1\n";
    for (const FleetMachineRef &machine : fleet) {
        raiseIf(machine.id.empty(),
                "fleet manifest: empty machine id");
        out << "machine " << machine.id << ' ' << machine.modelPath
            << '\n';
    }
    out << "end\n";
    raiseIf(!out.good(), "I/O error writing fleet manifest: " + path);
}

std::vector<FleetMachineRef>
loadFleetManifest(const std::string &path)
{
    std::ifstream in(path);
    raiseIf(!in, "cannot open fleet manifest for reading: " + path);

    std::string line;
    std::size_t lineNo = 0;

    raiseIf(!std::getline(in, line),
            path + ": empty fleet manifest");
    ++lineNo;
    {
        std::istringstream header(line);
        std::string magic;
        int version = 0;
        if (!(header >> magic >> version) || magic != "chaos-fleet")
            manifestError(path, lineNo, "not a chaos fleet manifest");
        if (version != 1) {
            manifestError(path, lineNo,
                          "unsupported fleet manifest version " +
                              std::to_string(version));
        }
    }

    std::vector<FleetMachineRef> fleet;
    std::set<std::string> seen;
    bool ended = false;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        if (trimmed == "end") {
            ended = true;
            break;
        }
        std::istringstream record(trimmed);
        std::string keyword;
        FleetMachineRef ref;
        if (!(record >> keyword) || keyword != "machine") {
            manifestError(path, lineNo,
                          "expected 'machine <id> <model-path>', got '" +
                              trimmed + "'");
        }
        if (!(record >> ref.id >> ref.modelPath)) {
            manifestError(path, lineNo,
                          "truncated machine record '" + trimmed +
                              "'");
        }
        if (!seen.insert(ref.id).second) {
            manifestError(path, lineNo,
                          "duplicate machine id '" + ref.id + "'");
        }
        fleet.push_back(std::move(ref));
    }
    if (!ended) {
        manifestError(path, lineNo,
                      "truncated fleet manifest (missing 'end')");
    }
    return fleet;
}

std::vector<FleetMachine>
loadFleetModels(const std::string &path)
{
    const std::string base = dirnameOf(path);
    std::vector<FleetMachine> fleet;
    for (const FleetMachineRef &ref : loadFleetManifest(path)) {
        const std::string modelPath =
            (!ref.modelPath.empty() && ref.modelPath.front() == '/')
                ? ref.modelPath
                : base + ref.modelPath;
        fleet.push_back(FleetMachine{
            ref.id, loadMachineModelFile(modelPath)});
    }
    return fleet;
}

} // namespace chaos::serve
