/**
 * @file
 * Fleet manifest persistence: which model file serves which machine.
 *
 * A manifest is the deployment unit of a served fleet — a small text
 * file mapping machine ids to machine-model files (model_store
 * format), versioned and end-marked like the model files themselves.
 * Loading validates the manifest shape (unique, non-empty machine
 * ids) before any model file is touched, and reports every error as a
 * RecoverableError citing the file and line.
 *
 * Format:
 *
 *     chaos-fleet 1
 *     machine <id> <model-path>
 *     ...
 *     end
 */
#ifndef CHAOS_SERVE_FLEET_STORE_HPP
#define CHAOS_SERVE_FLEET_STORE_HPP

#include <string>
#include <vector>

#include "core/cluster_model.hpp"

namespace chaos::serve {

/** One manifest line: machine id -> model file. */
struct FleetMachineRef
{
    std::string id;
    std::string modelPath;
};

/** A loaded fleet member: machine id + its deployable model. */
struct FleetMachine
{
    std::string id;
    MachinePowerModel model;
};

/** Write a manifest; raises RecoverableError on I/O failure. */
void saveFleetManifest(const std::string &path,
                       const std::vector<FleetMachineRef> &fleet);

/**
 * Parse a manifest. Raises RecoverableError (with file:line) on bad
 * magic/version, malformed or truncated records, duplicate or empty
 * machine ids, or a missing end marker.
 */
std::vector<FleetMachineRef>
loadFleetManifest(const std::string &path);

/**
 * loadFleetManifest() plus loading every referenced model file.
 * Relative model paths resolve against the manifest's directory.
 */
std::vector<FleetMachine> loadFleetModels(const std::string &path);

} // namespace chaos::serve

#endif // CHAOS_SERVE_FLEET_STORE_HPP
