#include "serve/registry.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace chaos::serve {

void
MachineEntry::engageQuarantine(
    std::shared_ptr<const MachinePowerModel> substitute)
{
    std::lock_guard<std::mutex> lock(mu_);
    quarantined_ = true;
    substituteModel_ = std::move(substitute);
    // Until the next sample arrives, serve the last-known-good level:
    // the running mean estimate when the machine has history, else
    // NaN so servedWattsLocked falls back to the raw estimate.
    substituteW_ = estimator_.samples() > 0
                       ? estimator_.meanEstimateW()
                       : std::numeric_limits<double>::quiet_NaN();
    // Restart the reference window: a retrain must fit the drifted
    // regime, not the pre-drift samples that trained the incumbent.
    ref_.head = 0;
    ref_.fill = 0;
}

void
MachineEntry::liftQuarantine()
{
    std::lock_guard<std::mutex> lock(mu_);
    quarantined_ = false;
    substituteModel_.reset();
    substituteW_ = std::numeric_limits<double>::quiet_NaN();
}

bool
MachineEntry::quarantined()
{
    std::lock_guard<std::mutex> lock(mu_);
    return quarantined_;
}

void
MachineEntry::beginShadow(MachinePowerModel candidate)
{
    std::lock_guard<std::mutex> lock(mu_);
    shadow_ = std::make_unique<ShadowState>(std::move(candidate));
}

void
MachineEntry::endShadow()
{
    std::lock_guard<std::mutex> lock(mu_);
    shadow_.reset();
}

MachineEntry::ShadowReport
MachineEntry::shadowReport()
{
    std::lock_guard<std::mutex> lock(mu_);
    ShadowReport report;
    if (shadow_ == nullptr)
        return report;
    report.active = true;
    report.refSamples = shadow_->refSamples;
    if (shadow_->refSamples > 0) {
        const double n = static_cast<double>(shadow_->refSamples);
        report.candidateRmseW =
            std::sqrt(std::max(shadow_->candidateSumSq, 0.0) / n);
        report.incumbentRmseW =
            std::sqrt(std::max(shadow_->incumbentSumSq, 0.0) / n);
    }
    return report;
}

MachinePowerModel
MachineEntry::shadowModel()
{
    std::lock_guard<std::mutex> lock(mu_);
    raiseIf(shadow_ == nullptr,
            "registry: no shadow candidate on machine '" + id_ + "'");
    return shadow_->candidate;
}

void
MachineEntry::enableReferenceWindow(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    ref_ = ReferenceRing{};
    ref_.cap = capacity;
    if (capacity > 0) {
        ref_.rows.resize(capacity);
        ref_.watts.resize(capacity, 0.0);
    }
}

std::size_t
MachineEntry::referenceFill()
{
    std::lock_guard<std::mutex> lock(mu_);
    return ref_.fill;
}

MachineEntry::ReferenceData
MachineEntry::referenceData()
{
    std::lock_guard<std::mutex> lock(mu_);
    ReferenceData out;
    out.features = estimator_.deployedModel().featureSet();
    const std::size_t n = ref_.fill;
    const std::size_t p = out.features.counters.size();
    out.x = Matrix(n, p);
    out.y.resize(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        // Oldest first: the ring's head points at the next write, so
        // with a full ring the oldest sample lives at head.
        const std::size_t src =
            (ref_.head + ref_.cap - n + i) % ref_.cap;
        const std::vector<double> &row = ref_.rows[src];
        for (std::size_t j = 0; j < p && j < row.size(); ++j)
            out.x(i, j) = row[j];
        out.y[i] = ref_.watts[src];
    }
    return out;
}

void
MachineEntry::recordSampleLocked(
    const std::vector<double> &catalogRow, double estimateW,
    double meteredW)
{
    if (quarantined_ && substituteModel_ != nullptr)
        substituteW_ = substituteModel_->predictFromCatalogRow(
            catalogRow);
    const bool metered = std::isfinite(meteredW);
    if (shadow_ != nullptr && metered) {
        const double candW =
            shadow_->candidate.predictFromCatalogRow(catalogRow);
        const double cd = meteredW - candW;
        const double id = meteredW - estimateW;
        shadow_->candidateSumSq += cd * cd;
        shadow_->incumbentSumSq += id * id;
        ++shadow_->refSamples;
    }
    if (ref_.cap > 0 && metered) {
        // Project the catalog row through the deployed model's
        // feature indices at capture time: reference rows stay tiny
        // and already feature-ordered for retraining.
        const std::vector<size_t> &idx =
            estimator_.deployedModel().catalogIndices();
        std::vector<double> &slot = ref_.rows[ref_.head];
        slot.resize(idx.size());
        for (std::size_t j = 0; j < idx.size(); ++j)
            slot[j] =
                idx[j] < catalogRow.size() ? catalogRow[idx[j]] : 0.0;
        ref_.watts[ref_.head] = meteredW;
        if (++ref_.head == ref_.cap)
            ref_.head = 0;
        if (ref_.fill < ref_.cap)
            ++ref_.fill;
    }
}

double
MachineEntry::servedWattsLocked() const
{
    if (quarantined_ && std::isfinite(substituteW_))
        return substituteW_;
    return estimator_.lastEstimateW();
}

void
MachineEntry::onModelSwappedLocked()
{
    shadow_.reset();
    ref_.head = 0;
    ref_.fill = 0;
}

EstimatorRegistry::EstimatorRegistry(std::size_t numShards)
    : shards(std::max<std::size_t>(numShards, 1))
{}

std::size_t
EstimatorRegistry::shardOf(const std::string &machineId) const
{
    return std::hash<std::string>{}(machineId) % shards.size();
}

MachineEntry &
EstimatorRegistry::add(const std::string &machineId,
                       MachinePowerModel model,
                       OnlineEstimatorConfig config)
{
    raiseIf(machineId.empty(), "registry: empty machine id");
    if (config.sourceLabel.empty())
        config.sourceLabel = machineId;

    Shard &shard = shards[shardOf(machineId)];
    auto entry = std::make_unique<MachineEntry>(
        machineId, std::move(model), std::move(config));

    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] =
        shard.entries.try_emplace(machineId, std::move(entry));
    raiseIf(!inserted,
            "registry: duplicate machine id '" + machineId + "'");
    return *it->second;
}

MachineEntry *
EstimatorRegistry::find(const std::string &machineId)
{
    Shard &shard = shards[shardOf(machineId)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(machineId);
    return it == shard.entries.end() ? nullptr : it->second.get();
}

void
EstimatorRegistry::swapModel(const std::string &machineId,
                             MachinePowerModel model)
{
    MachineEntry *entry = find(machineId);
    raiseIf(entry == nullptr,
            "registry: cannot swap model of unknown machine '" +
                machineId + "'");
    entry->withEstimator([&](OnlinePowerEstimator &estimator) {
        estimator.swapModel(std::move(model));
        entry->onModelSwappedLocked();
    });
    static auto &swaps =
        obs::Registry::instance().counter("chaos.serve.model_swaps");
    swaps.add();
    obs::EventLog::instance().emit(obs::EventKind::HealthTransition,
                                   machineId, "model hot-swapped");
}

std::size_t
EstimatorRegistry::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.entries.size();
    }
    return total;
}

std::vector<std::string>
EstimatorRegistry::ids() const
{
    std::vector<std::string> out;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[id, entry] : shard.entries)
            out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<MachineEntry *>
EstimatorRegistry::entriesById()
{
    std::vector<MachineEntry *> out;
    for (Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (auto &[id, entry] : shard.entries)
            out.push_back(entry.get());
    }
    std::sort(out.begin(), out.end(),
              [](const MachineEntry *a, const MachineEntry *b) {
                  return a->id() < b->id();
              });
    return out;
}

} // namespace chaos::serve
