#include "serve/registry.hpp"

#include <algorithm>
#include <functional>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace chaos::serve {

EstimatorRegistry::EstimatorRegistry(std::size_t numShards)
    : shards(std::max<std::size_t>(numShards, 1))
{}

std::size_t
EstimatorRegistry::shardOf(const std::string &machineId) const
{
    return std::hash<std::string>{}(machineId) % shards.size();
}

MachineEntry &
EstimatorRegistry::add(const std::string &machineId,
                       MachinePowerModel model,
                       OnlineEstimatorConfig config)
{
    raiseIf(machineId.empty(), "registry: empty machine id");
    if (config.sourceLabel.empty())
        config.sourceLabel = machineId;

    Shard &shard = shards[shardOf(machineId)];
    auto entry = std::make_unique<MachineEntry>(
        machineId, std::move(model), std::move(config));

    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] =
        shard.entries.try_emplace(machineId, std::move(entry));
    raiseIf(!inserted,
            "registry: duplicate machine id '" + machineId + "'");
    return *it->second;
}

MachineEntry *
EstimatorRegistry::find(const std::string &machineId)
{
    Shard &shard = shards[shardOf(machineId)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(machineId);
    return it == shard.entries.end() ? nullptr : it->second.get();
}

void
EstimatorRegistry::swapModel(const std::string &machineId,
                             MachinePowerModel model)
{
    MachineEntry *entry = find(machineId);
    raiseIf(entry == nullptr,
            "registry: cannot swap model of unknown machine '" +
                machineId + "'");
    entry->withEstimator([&](OnlinePowerEstimator &estimator) {
        estimator.swapModel(std::move(model));
    });
    static auto &swaps =
        obs::Registry::instance().counter("chaos.serve.model_swaps");
    swaps.add();
    obs::EventLog::instance().emit(obs::EventKind::HealthTransition,
                                   machineId, "model hot-swapped");
}

std::size_t
EstimatorRegistry::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.entries.size();
    }
    return total;
}

std::vector<std::string>
EstimatorRegistry::ids() const
{
    std::vector<std::string> out;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[id, entry] : shard.entries)
            out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<MachineEntry *>
EstimatorRegistry::entriesById()
{
    std::vector<MachineEntry *> out;
    for (Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (auto &[id, entry] : shard.entries)
            out.push_back(entry.get());
    }
    std::sort(out.begin(), out.end(),
              [](const MachineEntry *a, const MachineEntry *b) {
                  return a->id() < b->id();
              });
    return out;
}

} // namespace chaos::serve
