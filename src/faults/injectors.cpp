#include "faults/injectors.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace chaos {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/**
 * Activation tallies per fault class. Stable: the injectors are
 * seeded and run serially, so counts are work-proportional.
 */
struct FaultMetrics {
    obs::Counter &meterDropouts;
    obs::Counter &meterSpikes;
    obs::Counter &machineOutages;
    obs::Counter &jitterRepeats;
    obs::Counter &stuckOnsets;
    obs::Counter &counterNans;

    static FaultMetrics &
    get()
    {
        auto &registry = obs::Registry::instance();
        static FaultMetrics m{
            registry.counter("chaos.faults.meter_dropouts"),
            registry.counter("chaos.faults.meter_spikes"),
            registry.counter("chaos.faults.machine_outages"),
            registry.counter("chaos.faults.jitter_repeats"),
            registry.counter("chaos.faults.stuck_onsets"),
            registry.counter("chaos.faults.counter_nans"),
        };
        return m;
    }
};

/** Episode length in whole seconds with the given mean (>= 1). */
double
episodeSeconds(Rng &rng, double meanSeconds)
{
    const double mean = std::max(meanSeconds, 1.0);
    return std::max(1.0, std::ceil(rng.exponential(1.0 / mean)));
}

} // namespace

MeterFaultInjector::MeterFaultInjector(const FaultProfile &profile,
                                       Rng rng)
    : profile(profile), rng(rng)
{}

double
MeterFaultInjector::apply(double readingW)
{
    if (profile.meterDropoutRate > 0 &&
        rng.bernoulli(profile.meterDropoutRate)) {
        FaultMetrics::get().meterDropouts.add();
        return kNan;
    }
    if (profile.meterSpikeRate > 0 &&
        rng.bernoulli(profile.meterSpikeRate)) {
        FaultMetrics::get().meterSpikes.add();
        // Transient glitch: up to the full relative magnitude, either
        // direction, never below zero watts.
        const double swing = profile.meterSpikeRelMagnitude *
                             rng.uniform(0.5, 1.0);
        const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
        readingW = std::max(0.0, readingW * (1.0 + sign * swing));
    }
    if (profile.meterQuantizationW > 0) {
        readingW = std::round(readingW / profile.meterQuantizationW) *
                   profile.meterQuantizationW;
    }
    return readingW;
}

CounterFaultInjector::CounterFaultInjector(const FaultProfile &profile,
                                           Rng rng)
    : profile(profile), rng(rng)
{}

void
CounterFaultInjector::reset()
{
    outageSecondsLeft = 0.0;
    stuckSecondsLeft.clear();
    heldValues.clear();
    lastVector.clear();
    haveLastVector = false;
}

std::vector<double>
CounterFaultInjector::apply(std::vector<double> values)
{
    // Whole-machine outage: every counter is gone until the episode
    // ends. Episodes cannot overlap; a new onset is drawn only while
    // telemetry is up.
    if (outageSecondsLeft > 0.0) {
        outageSecondsLeft -= 1.0;
        std::fill(values.begin(), values.end(), kNan);
        return values;
    }
    if (profile.machineLossRate > 0 &&
        rng.bernoulli(profile.machineLossRate)) {
        outageSecondsLeft =
            episodeSeconds(rng, profile.machineLossMeanSeconds) - 1.0;
        FaultMetrics::get().machineOutages.add();
        obs::EventLog::instance().emit(
            obs::EventKind::FaultActivation, "counter_injector",
            "machine outage for " +
                std::to_string(static_cast<long>(outageSecondsLeft) + 1) +
                "s");
        std::fill(values.begin(), values.end(), kNan);
        return values;
    }

    // Sample-interval jitter: the collector missed its tick and the
    // previous vector repeats (values one second stale).
    if (profile.sampleJitterRate > 0 && haveLastVector &&
        lastVector.size() == values.size() &&
        rng.bernoulli(profile.sampleJitterRate)) {
        FaultMetrics::get().jitterRepeats.add();
        return lastVector;
    }

    const bool anyStuck =
        profile.stuckOnsetRate > 0 ||
        std::any_of(stuckSecondsLeft.begin(), stuckSecondsLeft.end(),
                    [](double s) { return s > 0.0; });
    if (anyStuck) {
        stuckSecondsLeft.resize(values.size(), 0.0);
        heldValues.resize(values.size(), 0.0);
        for (size_t i = 0; i < values.size(); ++i) {
            if (stuckSecondsLeft[i] > 0.0) {
                stuckSecondsLeft[i] -= 1.0;
                values[i] = heldValues[i];
            } else if (profile.stuckOnsetRate > 0 &&
                       rng.bernoulli(profile.stuckOnsetRate)) {
                heldValues[i] = values[i];
                stuckSecondsLeft[i] =
                    episodeSeconds(rng, profile.stuckMeanSeconds);
                FaultMetrics::get().stuckOnsets.add();
            }
        }
    }

    if (profile.counterNanRate > 0) {
        for (double &v : values) {
            if (rng.bernoulli(profile.counterNanRate)) {
                v = kNan;
                FaultMetrics::get().counterNans.add();
            }
        }
    }

    lastVector = values;
    haveLastVector = true;
    return values;
}

FaultyPowerMeter::FaultyPowerMeter(PowerMeter meter,
                                   const FaultProfile &profile, Rng rng)
    : inner(std::move(meter)), injector(profile, rng)
{}

double
FaultyPowerMeter::sample(double truePowerW)
{
    return injector.apply(inner.sample(truePowerW));
}

FaultyCounterSampler::FaultyCounterSampler(CounterSampler sampler,
                                           const FaultProfile &profile,
                                           Rng rng)
    : inner(std::move(sampler)), injector(profile, rng)
{}

std::vector<double>
FaultyCounterSampler::sample(const MachineState &state)
{
    return injector.apply(inner.sample(state));
}

void
FaultyCounterSampler::reset()
{
    inner.reset();
    injector.reset();
}

void
injectFaults(std::vector<EtwRecord> &records,
             const FaultProfile &profile, Rng rng)
{
    CounterFaultInjector counterInjector(profile, rng.fork(0x5eed));
    MeterFaultInjector meterInjector(profile, rng.fork(0x7a77));
    for (auto &record : records) {
        record.counters = counterInjector.apply(std::move(record.counters));
        record.measuredPowerW = meterInjector.apply(record.measuredPowerW);
    }
}

} // namespace chaos
