/**
 * @file
 * Composed fault scenarios for robustness testing.
 *
 * A DriftStorm orchestrates the canonical model-drift trigger —
 * stuck counters under a moving workload — across many machines at
 * once, with per-machine staggered onsets: machine m's telemetry is
 * healthy until its onset tick, then freezes (the stuck injector
 * holds the last pre-onset vector) while the metered power keeps
 * tracking the true load. Replayed through the monitor this raises a
 * ModelDrift per affected machine; fed to the autopilot it proves N
 * concurrent remediations stay bounded. Everything is seeded, so one
 * (config, seed) pair reproduces the same storm bit-for-bit.
 */
#ifndef CHAOS_FAULTS_SCENARIOS_HPP
#define CHAOS_FAULTS_SCENARIOS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "faults/injectors.hpp"

namespace chaos {

/** Shape of one staggered multi-machine stuck-counter storm. */
struct DriftStormConfig
{
    /** Machines hit by the storm (indices 0..machines-1). */
    std::size_t machines = 1;
    /** Tick at which machine 0's counters freeze. */
    std::size_t onsetTick = 0;
    /** Extra onset delay per machine index (0 = simultaneous). */
    std::size_t staggerTicks = 0;
    /** Seed for the per-machine injector streams. */
    std::uint64_t seed = 2012;
};

/**
 * The profile a storm wraps around each machine: counters freeze the
 * moment the fault arms and never recover within the scenario.
 */
FaultProfile stuckCounterStormProfile();

/** Per-machine staggered stuck-counter fault (see file comment). */
class DriftStorm
{
  public:
    explicit DriftStorm(DriftStormConfig config);

    /**
     * Pass machine @p machine's tick-@p tick catalog vector through
     * its injector. Before the machine's onset the vector is returned
     * untouched; from the onset on, the values freeze at the last
     * pre-onset vector. Ticks must be fed in order per machine.
     */
    std::vector<double> apply(std::size_t machine, std::size_t tick,
                              std::vector<double> row);

    /** The tick machine @p machine's counters freeze at. */
    std::size_t
    onsetOf(std::size_t machine) const
    {
        return cfg.onsetTick + machine * cfg.staggerTicks;
    }

    /** True when @p machine's fault is active at @p tick. */
    bool
    active(std::size_t machine, std::size_t tick) const
    {
        return machine < cfg.machines && tick >= onsetOf(machine);
    }

    /** The storm's configuration. */
    const DriftStormConfig &config() const { return cfg; }

  private:
    DriftStormConfig cfg;
    std::vector<CounterFaultInjector> injectors;
};

} // namespace chaos

#endif // CHAOS_FAULTS_SCENARIOS_HPP
