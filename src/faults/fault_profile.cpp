#include "faults/fault_profile.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace chaos {

const std::vector<FaultClass> &
allFaultClasses()
{
    static const std::vector<FaultClass> classes = {
        FaultClass::MeterDropout, FaultClass::MeterSpike,
        FaultClass::StuckCounter, FaultClass::CounterNan,
        FaultClass::SampleJitter, FaultClass::MachineLoss,
    };
    return classes;
}

std::string
faultClassName(FaultClass faultClass)
{
    switch (faultClass) {
      case FaultClass::MeterDropout: return "MeterDropout";
      case FaultClass::MeterSpike:   return "MeterSpike";
      case FaultClass::StuckCounter: return "StuckCounter";
      case FaultClass::CounterNan:   return "CounterNan";
      case FaultClass::SampleJitter: return "SampleJitter";
      case FaultClass::MachineLoss:  return "MachineLoss";
    }
    panic("unknown fault class");
}

bool
FaultProfile::anyMeterFaults() const
{
    return meterDropoutRate > 0 || meterSpikeRate > 0 ||
           meterQuantizationW > 0;
}

bool
FaultProfile::anyCounterFaults() const
{
    return stuckOnsetRate > 0 || counterNanRate > 0 ||
           sampleJitterRate > 0 || machineLossRate > 0;
}

FaultProfile
FaultProfile::forClass(FaultClass faultClass, double intensity)
{
    const double k = std::clamp(intensity, 0.0, 1.0);
    FaultProfile profile;
    switch (faultClass) {
      case FaultClass::MeterDropout:
        profile.meterDropoutRate = k;
        break;
      case FaultClass::MeterSpike:
        profile.meterSpikeRate = 0.5 * k;
        profile.meterSpikeRelMagnitude = 0.5;
        profile.meterQuantizationW = 2.0 * k;
        break;
      case FaultClass::StuckCounter:
        profile.stuckOnsetRate = 0.02 * k;
        break;
      case FaultClass::CounterNan:
        profile.counterNanRate = 0.05 * k;
        break;
      case FaultClass::SampleJitter:
        profile.sampleJitterRate = 0.5 * k;
        break;
      case FaultClass::MachineLoss:
        profile.machineLossRate = 0.02 * k;
        break;
    }
    return profile;
}

} // namespace chaos
