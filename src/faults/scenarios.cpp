#include "faults/scenarios.hpp"

namespace chaos {

FaultProfile
stuckCounterStormProfile()
{
    FaultProfile profile;
    profile.stuckOnsetRate = 1.0;   // Freeze on the first faulted tick
    profile.stuckMeanSeconds = 1e9; // ...and never recover.
    return profile;
}

DriftStorm::DriftStorm(DriftStormConfig config) : cfg(config)
{
    const FaultProfile profile = stuckCounterStormProfile();
    injectors.reserve(cfg.machines);
    for (std::size_t m = 0; m < cfg.machines; ++m) {
        // One child stream per machine: storms stay reproducible when
        // machine counts change.
        injectors.emplace_back(profile, Rng(cfg.seed + m));
    }
}

std::vector<double>
DriftStorm::apply(std::size_t machine, std::size_t tick,
                  std::vector<double> row)
{
    if (!active(machine, tick))
        return row;
    return injectors[machine].apply(std::move(row));
}

} // namespace chaos
