/**
 * @file
 * Fault injectors wrapping the measurement pipeline.
 *
 * Two composition points mirror how real telemetry degrades:
 *
 *  - live wrappers (FaultyPowerMeter, FaultyCounterSampler) sit where
 *    the physical meter and the Perfmon session sit, corrupting
 *    samples as they are produced;
 *  - injectFaults() replays a fault profile over an already-logged
 *    trace, so any recorded campaign can be re-evaluated under
 *    degraded telemetry without re-simulating the machines.
 *
 * All injectors draw from private seeded Rng streams, so a (profile,
 * seed) pair reproduces the exact same fault pattern bit-for-bit.
 */
#ifndef CHAOS_FAULTS_INJECTORS_HPP
#define CHAOS_FAULTS_INJECTORS_HPP

#include <vector>

#include "faults/fault_profile.hpp"
#include "oscounters/etw_session.hpp"
#include "oscounters/sampler.hpp"
#include "sim/power_meter.hpp"
#include "util/random.hpp"

namespace chaos {

/** Applies meter-path faults to one reading per second. */
class MeterFaultInjector
{
  public:
    /** @param rng Private fault stream (consumed only on fault draws). */
    MeterFaultInjector(const FaultProfile &profile, Rng rng);

    /**
     * Corrupt one metered reading: dropout (NaN), transient spike,
     * then coarse quantization, in that order.
     */
    double apply(double readingW);

  private:
    FaultProfile profile;
    Rng rng;
};

/** Applies counter-path faults to one catalog vector per second. */
class CounterFaultInjector
{
  public:
    /** @param rng Private fault stream. */
    CounterFaultInjector(const FaultProfile &profile, Rng rng);

    /**
     * Corrupt one catalog-ordered counter vector in place:
     * whole-machine outage (all NaN), sample jitter (previous vector
     * repeats), stuck counters (frozen at their held value), and
     * per-counter NaN gaps.
     */
    std::vector<double> apply(std::vector<double> values);

    /** True while a whole-machine outage episode is running. */
    bool inOutage() const { return outageSecondsLeft > 0.0; }

    /** Forget all episode state (new run). */
    void reset();

  private:
    FaultProfile profile;
    Rng rng;
    double outageSecondsLeft = 0.0;
    std::vector<double> stuckSecondsLeft;
    std::vector<double> heldValues;
    std::vector<double> lastVector;
    bool haveLastVector = false;
};

/** A wall meter whose output passes through a fault injector. */
class FaultyPowerMeter
{
  public:
    /**
     * @param meter The wrapped meter (by value; meters are small).
     * @param rng Private fault stream, independent of the meter's own
     *        noise stream.
     */
    FaultyPowerMeter(PowerMeter meter, const FaultProfile &profile,
                     Rng rng);

    /** Measure true power, then corrupt the reading. */
    double sample(double truePowerW);

    /** The wrapped fault-free meter. */
    const PowerMeter &meter() const { return inner; }

  private:
    PowerMeter inner;
    MeterFaultInjector injector;
};

/** A counter sampler whose output passes through a fault injector. */
class FaultyCounterSampler
{
  public:
    FaultyCounterSampler(CounterSampler sampler,
                         const FaultProfile &profile, Rng rng);

    /** Sample the catalog, then corrupt the vector. */
    std::vector<double> sample(const MachineState &state);

    /** True while a whole-machine outage episode is running. */
    bool inOutage() const { return injector.inOutage(); }

    /** Reset sampler and injector state (new run). */
    void reset();

  private:
    CounterSampler inner;
    CounterFaultInjector injector;
};

/**
 * Replay-mode injection: corrupt an already-logged trace in place
 * according to @p profile. Counter vectors and metered power are
 * faulted with independent child streams of @p rng.
 */
void injectFaults(std::vector<EtwRecord> &records,
                  const FaultProfile &profile, Rng rng);

} // namespace chaos

#endif // CHAOS_FAULTS_INJECTORS_HPP
