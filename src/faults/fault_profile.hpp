/**
 * @file
 * Composable fault profiles for degraded-telemetry experiments.
 *
 * Real deployments of the paper's measurement pipeline lose data in
 * characteristic ways: wall meters drop readings or spike, Perfmon
 * providers freeze a counter at its last value or return NaN after a
 * restart, the sampling interval slips under load, and whole machines
 * fall off the collection network. A FaultProfile describes such an
 * environment as a set of per-second probabilities; injectors in
 * injectors.hpp apply it to live samplers or to already-logged traces
 * so any campaign can be re-run under a configurable fault profile
 * with full seeded determinism.
 */
#ifndef CHAOS_FAULTS_FAULT_PROFILE_HPP
#define CHAOS_FAULTS_FAULT_PROFILE_HPP

#include <string>
#include <vector>

namespace chaos {

/** The fault classes the harness can inject. */
enum class FaultClass
{
    MeterDropout,   ///< Metered reading lost (NaN).
    MeterSpike,     ///< Transient spike plus coarse quantization.
    StuckCounter,   ///< A counter freezes at its last value.
    CounterNan,     ///< A counter reads NaN (provider gap).
    SampleJitter,   ///< Interval slips; the stale vector repeats.
    MachineLoss,    ///< Whole-machine telemetry outage.
};

/** All fault classes, in declaration order. */
const std::vector<FaultClass> &allFaultClasses();

/** Human-readable fault-class name. */
std::string faultClassName(FaultClass faultClass);

/**
 * Per-second fault probabilities describing one degraded telemetry
 * environment. All rates default to zero (no faults); profiles
 * compose by simply setting several rates at once.
 */
struct FaultProfile
{
    // --- Wall-meter faults ---
    double meterDropoutRate = 0.0;   ///< P(reading lost -> NaN) per s.
    double meterSpikeRate = 0.0;     ///< P(transient spike) per second.
    double meterSpikeRelMagnitude = 0.5; ///< Spike size vs. reading.
    double meterQuantizationW = 0.0; ///< Extra quantization step (W).

    // --- Per-counter faults ---
    double stuckOnsetRate = 0.0;     ///< P(freeze) per counter-second.
    double stuckMeanSeconds = 8.0;   ///< Mean frozen-episode length.
    double counterNanRate = 0.0;     ///< P(NaN gap) per counter-second.

    // --- Whole-vector faults ---
    double sampleJitterRate = 0.0;   ///< P(stale repeat) per second.
    double machineLossRate = 0.0;    ///< P(outage starts) per second.
    double machineLossMeanSeconds = 12.0; ///< Mean outage length.

    /** True if any meter-path fault can fire. */
    bool anyMeterFaults() const;

    /** True if any counter-path fault can fire. */
    bool anyCounterFaults() const;

    /**
     * Profile exercising exactly one fault class, scaled by
     * @p intensity in [0, 1] (clamped). Intensity 0 is fault-free;
     * intensity 1 is the harshest setting the robustness benchmark
     * sweeps to.
     */
    static FaultProfile forClass(FaultClass faultClass,
                                 double intensity);
};

} // namespace chaos

#endif // CHAOS_FAULTS_FAULT_PROFILE_HPP
