#include "autopilot/autopilot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>

#include "models/factory.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/result.hpp"

namespace chaos::autopilot {

namespace {

/**
 * chaos.autopilot.* registry metrics. Remediation counters are
 * Stable: for a fixed trace replayed with inline retraining their
 * values are bit-identical across thread counts. The in-flight gauge
 * reflects background worker timing, hence Scheduling.
 */
struct AutopilotMetrics
{
    obs::Counter &quarantines;
    obs::Counter &retrains;
    obs::Counter &retrainFailures;
    obs::Counter &promotions;
    obs::Counter &rollbacks;
    obs::Gauge &quarantinedMachines;
    obs::Gauge &retrainsInFlight;

    static AutopilotMetrics &
    get()
    {
        auto &registry = obs::Registry::instance();
        static AutopilotMetrics m{
            registry.counter("chaos.autopilot.quarantines"),
            registry.counter("chaos.autopilot.retrains"),
            registry.counter("chaos.autopilot.retrain_failures"),
            registry.counter("chaos.autopilot.promotions"),
            registry.counter("chaos.autopilot.rollbacks"),
            registry.gauge("chaos.autopilot.quarantined_machines"),
            registry.gauge("chaos.autopilot.retrains_inflight",
                           obs::Stability::Scheduling),
        };
        return m;
    }
};

} // namespace

const char *
remediationStateName(RemediationState state)
{
    switch (state) {
      case RemediationState::Serving:     return "serving";
      case RemediationState::Quarantined: return "quarantined";
      case RemediationState::Retraining:  return "retraining";
      case RemediationState::Canary:      return "canary";
      case RemediationState::Promoted:    return "promoted";
      case RemediationState::RolledBack:  return "rolled_back";
    }
    return "unknown";
}

AutopilotController::AutopilotController(
    serve::FleetServer &server, monitor::FleetMonitor &fleetMonitor,
    AutopilotConfig config)
    : server_(server), monitor_(fleetMonitor), cfg_(config)
{}

AutopilotController::~AutopilotController()
{
    stop();
}

void
AutopilotController::setSubstituteModel(MachinePowerModel pooled)
{
    substitute_ = std::make_shared<const MachinePowerModel>(
        std::move(pooled));
}

void
AutopilotController::setRetrainHook(RetrainFn fn)
{
    retrainHook_ = std::move(fn);
}

void
AutopilotController::start()
{
    raiseIf(armed_, "autopilot: start() while already armed");
    raiseIf(!monitor_.attached(),
            "autopilot: monitor must be attached before start()");
    {
        std::lock_guard<std::mutex> lock(stateMu_);
        machines_.clear();
        for (const std::string &id : server_.machineIds()) {
            serve::MachineEntry *entry = server_.machine(id);
            raiseIf(entry == nullptr,
                    "autopilot: machine '" + id +
                        "' vanished during start");
            entry->enableReferenceWindow(
                cfg_.referenceWindowSamples);
            auto ctl = std::make_unique<MachineCtl>();
            ctl->id = id;
            ctl->entry = entry;
            ctl->view.id = id;
            machines_.push_back(std::move(ctl));
        }
    }
    monitor_.setDriftListener([this](const std::string &id) {
        onDriftFired(id);
    });
    if (cfg_.backgroundRetrain && cfg_.maxConcurrentRetrains > 0) {
        stopping_ = false;
        workers_.reserve(cfg_.maxConcurrentRetrains);
        for (std::size_t i = 0; i < cfg_.maxConcurrentRetrains; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }
    armed_ = true;
}

void
AutopilotController::stop()
{
    if (!armed_)
        return;
    monitor_.setDriftListener(nullptr);
    {
        std::lock_guard<std::mutex> lock(jobMu_);
        stopping_ = true;
        jobQueue_.clear();
    }
    jobCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    armed_ = false;
}

void
AutopilotController::onDriftFired(const std::string &machineId)
{
    // Runs on a drain thread under the machine's entry mutex: only
    // touch the leaf pending queue, never stateMu_ or entry locks.
    std::lock_guard<std::mutex> lock(pendingMu_);
    pendingDrifts_.push_back(machineId);
}

std::size_t
AutopilotController::currentTick() const
{
    std::lock_guard<std::mutex> lock(stateMu_);
    return tick_;
}

AutopilotController::MachineCtl *
AutopilotController::findCtl(const std::string &machineId)
{
    for (const auto &ctl : machines_) {
        if (ctl->id == machineId)
            return ctl.get();
    }
    return nullptr;
}

void
AutopilotController::tick()
{
    obs::Span span("autopilot.tick");

    std::vector<std::string> drifts;
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        drifts.swap(pendingDrifts_);
    }
    std::vector<RetrainResult> results;
    {
        std::lock_guard<std::mutex> lock(resultMu_);
        results.swap(results_);
    }

    std::lock_guard<std::mutex> lock(stateMu_);
    ++tick_;

    for (const std::string &id : drifts) {
        if (MachineCtl *ctl = findCtl(id)) {
            ++ctl->view.driftsSeen;
            handleDrift(*ctl);
        }
    }

    for (const RetrainResult &result : results) {
        MachineCtl *ctl = findCtl(result.machineId);
        // Stale results (a timed-out attempt's fit finishing late, or
        // a machine that moved on) are discarded.
        if (ctl != nullptr &&
            ctl->state == RemediationState::Retraining &&
            ctl->jobSeq == result.jobSeq)
            applyRetrainResult(*ctl, result);
    }

    for (const auto &ctlPtr : machines_) {
        MachineCtl &ctl = *ctlPtr;
        switch (ctl.state) {
          case RemediationState::Serving:
            break;
          case RemediationState::Quarantined:
            if (tick_ >= ctl.notBeforeTick)
                maybeStartRetrain(ctl);
            if (ctl.state == RemediationState::Quarantined &&
                tick_ > ctl.quarantineDeadline) {
                rollBack(ctl,
                         "quarantine timed out before the reference "
                         "window was ready");
            }
            break;
          case RemediationState::Retraining:
            if (tick_ > ctl.attemptDeadline) {
                // The fit wedged past its hard deadline; its late
                // result (if any) is invalidated via jobSeq.
                ctl.jobSeq = 0;
                ++stats_.retrainFailures;
                ++ctl.view.retrainFailures;
                AutopilotMetrics::get().retrainFailures.add();
                if (ctl.attempt < cfg_.retrainMaxAttempts) {
                    ctl.state = RemediationState::Quarantined;
                    ctl.notBeforeTick =
                        tick_ + (cfg_.retrainBackoffTicks
                                 << (ctl.attempt - 1));
                } else {
                    rollBack(ctl, "retrain timed out on the final "
                                  "attempt");
                }
            }
            break;
          case RemediationState::Canary:
            decideCanary(ctl, ctl.entry->shadowReport());
            break;
          case RemediationState::Promoted:
          case RemediationState::RolledBack:
            expireCooldown(ctl);
            break;
        }
    }

    publishGauges();
}

void
AutopilotController::handleDrift(MachineCtl &ctl)
{
    if (ctl.state != RemediationState::Serving) {
        // Mid-remediation firings are expected (e.g. the detector
        // refires while the canary runs); the state machine already
        // covers them.
        ++ctl.view.driftsDeferred;
        return;
    }
    ctl.entry->engageQuarantine(substitute_);
    ctl.state = RemediationState::Quarantined;
    ctl.attempt = 0;
    ctl.notBeforeTick = 0;
    ctl.jobSeq = 0;
    ctl.quarantineDeadline = tick_ + cfg_.quarantineTimeoutTicks;
    ++stats_.quarantines;
    ++ctl.view.quarantines;
    AutopilotMetrics::get().quarantines.add();
    obs::EventLog::instance().emit(
        obs::EventKind::Quarantine, ctl.id,
        std::string("estimate isolated from the cluster sum; "
                    "serving ") +
            (substitute_ ? "class-pooled substitute"
                         : "last-known-good mean"));
}

void
AutopilotController::maybeStartRetrain(MachineCtl &ctl)
{
    const std::size_t fill = ctl.entry->referenceFill();
    if (fill < cfg_.retrainMinSamples)
        return;

    RetrainJob job;
    serve::MachineEntry::ReferenceData data =
        ctl.entry->referenceData();
    job.features = std::move(data.features);
    job.x = std::move(data.x);
    job.y = std::move(data.y);
    job.machineId = ctl.id;
    job.jobSeq = ++nextJobSeq_;
    job.type = ctl.entry->withEstimator(
        [](OnlinePowerEstimator &est) {
            return est.deployedModel().model().type();
        });
    // The switching technique needs a frequency-feature annotation
    // the reference window does not carry; refit with the fallback.
    if (job.type == ModelType::Switching)
        job.type = cfg_.fallbackRetrainType;

    ctl.jobSeq = job.jobSeq;
    ++ctl.attempt;
    ctl.view.attempt = ctl.attempt;
    ctl.state = RemediationState::Retraining;
    ctl.attemptDeadline = tick_ + cfg_.retrainTimeoutTicks;
    ++stats_.retrainsStarted;
    AutopilotMetrics::get().retrains.add();
    {
        std::ostringstream detail;
        detail << "retrain attempt " << ctl.attempt << "/"
               << cfg_.retrainMaxAttempts << " on " << job.y.size()
               << " reference samples ("
               << modelTypeName(job.type) << ")";
        obs::EventLog::instance().emit(obs::EventKind::Retrain,
                                       ctl.id, detail.str());
    }

    if (cfg_.backgroundRetrain && !workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(jobMu_);
            jobQueue_.push_back(std::move(job));
        }
        jobCv_.notify_one();
    } else {
        // Deterministic mode: fit inline, decide this same tick.
        applyRetrainResult(ctl, runRetrain(job));
    }
}

AutopilotController::RetrainResult
AutopilotController::runRetrain(const RetrainJob &job)
{
    obs::Span span("autopilot.retrain");
    RetrainResult result;
    result.jobSeq = job.jobSeq;
    result.machineId = job.machineId;
    try {
        if (retrainHook_) {
            result.model = std::make_shared<MachinePowerModel>(
                retrainHook_(job.machineId, job.features, job.x,
                             job.y));
        } else {
            raiseIf(job.y.size() <
                        job.features.counters.size() + 2,
                    "autopilot: reference window too small to refit");
            std::unique_ptr<PowerModel> model =
                makeModel(job.type, ModelOptions{});
            model->fit(job.x, job.y);
            result.model = std::make_shared<MachinePowerModel>(
                MachinePowerModel::fromParts(job.features,
                                             std::move(model)));
        }
        result.ok = true;
    } catch (const std::exception &e) {
        result.ok = false;
        result.error = e.what();
    }
    return result;
}

void
AutopilotController::applyRetrainResult(MachineCtl &ctl,
                                        const RetrainResult &result)
{
    ctl.jobSeq = 0;
    if (!result.ok) {
        ++stats_.retrainFailures;
        ++ctl.view.retrainFailures;
        AutopilotMetrics::get().retrainFailures.add();
        if (ctl.attempt < cfg_.retrainMaxAttempts) {
            ctl.state = RemediationState::Quarantined;
            ctl.notBeforeTick =
                tick_ +
                (cfg_.retrainBackoffTicks << (ctl.attempt - 1));
        } else {
            rollBack(ctl, "retrain failed: " + result.error);
        }
        return;
    }
    ctl.entry->beginShadow(*result.model);
    ctl.state = RemediationState::Canary;
    ctl.canaryDeadline = tick_ + cfg_.canaryTimeoutTicks;
}

void
AutopilotController::decideCanary(
    MachineCtl &ctl, const serve::MachineEntry::ShadowReport &report)
{
    if (!report.active) {
        // The shadow vanished underneath us (external swap): fall
        // back to a rollback so the machine cannot wedge in Canary.
        rollBack(ctl, "shadow evaluation lost");
        return;
    }
    if (report.refSamples >= cfg_.canaryMinSamples) {
        ctl.view.lastCandidateRmseW = report.candidateRmseW;
        ctl.view.lastIncumbentRmseW = report.incumbentRmseW;
        const double winBar = report.incumbentRmseW *
                              (1.0 - cfg_.canaryMarginPct / 100.0);
        if (report.candidateRmseW < winBar) {
            promote(ctl, report);
        } else {
            std::ostringstream reason;
            reason << std::setprecision(4) << "canary lost: candidate "
                   << report.candidateRmseW << " W rMSE vs incumbent "
                   << report.incumbentRmseW << " W over "
                   << report.refSamples << " samples";
            rollBack(ctl, reason.str());
        }
        return;
    }
    if (tick_ > ctl.canaryDeadline)
        rollBack(ctl, "canary timed out waiting for metered samples");
}

void
AutopilotController::promote(
    MachineCtl &ctl, const serve::MachineEntry::ShadowReport &report)
{
    MachinePowerModel candidate = ctl.entry->shadowModel();
    ctl.entry->endShadow();
    ctl.entry->liftQuarantine();
    // The atomic hot-swap also resets the monitor's tracker (fresh
    // warmup, quality Unknown) and clears the reference window.
    server_.swapModel(ctl.id, std::move(candidate));
    ctl.state = RemediationState::Promoted;
    ctl.cooldownUntil = tick_ + cfg_.cooldownTicks;
    ++stats_.promotions;
    ++ctl.view.promotions;
    AutopilotMetrics::get().promotions.add();
    std::ostringstream detail;
    detail << std::setprecision(4) << "canary won: candidate "
           << report.candidateRmseW << " W rMSE vs incumbent "
           << report.incumbentRmseW << " W over " << report.refSamples
           << " samples; model promoted";
    obs::EventLog::instance().emit(obs::EventKind::Promote, ctl.id,
                                   detail.str());
}

void
AutopilotController::rollBack(MachineCtl &ctl,
                              const std::string &reason)
{
    ctl.entry->endShadow();
    ctl.entry->liftQuarantine();
    // Keep the incumbent but clear the latched verdict: a persisting
    // drift refires quickly (the baseline is retained), a transient
    // one stays quiet.
    monitor_.acknowledgeDrift(ctl.id);
    ctl.state = RemediationState::RolledBack;
    ctl.cooldownUntil = tick_ + cfg_.cooldownTicks;
    ++stats_.rollbacks;
    ++ctl.view.rollbacks;
    AutopilotMetrics::get().rollbacks.add();
    obs::EventLog::instance().emit(obs::EventKind::Rollback, ctl.id,
                                   reason);
}

void
AutopilotController::expireCooldown(MachineCtl &ctl)
{
    if (tick_ < ctl.cooldownUntil)
        return;
    ctl.state = RemediationState::Serving;
    ctl.attempt = 0;
    ctl.view.attempt = 0;
    // A drift that latched again during the cool-down re-enters
    // remediation immediately (its firing was deferred above).
    if (monitor_.machineDrifted(ctl.id))
        handleDrift(ctl);
}

void
AutopilotController::publishGauges()
{
    std::size_t quarantined = 0;
    for (const auto &ctl : machines_) {
        if (ctl->state == RemediationState::Quarantined ||
            ctl->state == RemediationState::Retraining ||
            ctl->state == RemediationState::Canary)
            ++quarantined;
    }
    stats_.quarantinedNow = quarantined;
    std::size_t inFlight = 0;
    {
        std::lock_guard<std::mutex> lock(jobMu_);
        inFlight = jobsExecuting_ + jobQueue_.size();
    }
    stats_.retrainsInFlight = inFlight;
    AutopilotMetrics::get().quarantinedMachines.set(
        static_cast<std::int64_t>(quarantined));
    AutopilotMetrics::get().retrainsInFlight.set(
        static_cast<std::int64_t>(inFlight));
}

void
AutopilotController::workerLoop()
{
    for (;;) {
        RetrainJob job;
        {
            std::unique_lock<std::mutex> lock(jobMu_);
            jobCv_.wait(lock, [this] {
                return stopping_ || !jobQueue_.empty();
            });
            if (stopping_)
                return;
            job = std::move(jobQueue_.front());
            jobQueue_.pop_front();
            ++jobsExecuting_;
        }
        RetrainResult result = runRetrain(job);
        {
            std::lock_guard<std::mutex> lock(resultMu_);
            results_.push_back(std::move(result));
        }
        {
            std::lock_guard<std::mutex> lock(jobMu_);
            --jobsExecuting_;
        }
    }
}

std::vector<MachineRemediation>
AutopilotController::status() const
{
    std::lock_guard<std::mutex> lock(stateMu_);
    std::vector<MachineRemediation> out;
    out.reserve(machines_.size());
    for (const auto &ctl : machines_) {
        MachineRemediation view = ctl->view;
        view.state = ctl->state;
        view.cooldownRemaining =
            (ctl->state == RemediationState::Promoted ||
             ctl->state == RemediationState::RolledBack) &&
                    ctl->cooldownUntil > tick_
                ? ctl->cooldownUntil - tick_
                : 0;
        out.push_back(std::move(view));
    }
    return out;
}

AutopilotStats
AutopilotController::stats() const
{
    std::lock_guard<std::mutex> lock(stateMu_);
    return stats_;
}

} // namespace chaos::autopilot
