/**
 * @file
 * Self-healing serving: the remediation autopilot.
 *
 * The monitor subsystem detects model drift (Page-Hinkley over live
 * residuals) but only reports it — the cluster sum (paper Eq. 5)
 * keeps accumulating a known-bad estimate until someone intervenes.
 * The autopilot closes that loop. It subscribes to the monitor's
 * drift firings and drives every affected machine through an explicit
 * state machine:
 *
 *   Serving ──drift──> Quarantined ──window ready──> Retraining
 *       ^                  │  (substitute model          │
 *       │                  │   serves the sum)           │ fit on the
 *       │                  │                             │ reference
 *       │                  └──timeout──> RolledBack      │ window
 *       │                                    ^           v
 *       ├──cooldown── Promoted <──canary wins── Canary (shadow
 *       └──cooldown── RolledBack <─canary loses──┘  old vs new)
 *
 * Invariants:
 *  - The drain path NEVER blocks on remediation: retrains run on a
 *    bounded background worker pool (or inline in tick() in
 *    deterministic mode); the drain-side hooks are a branch and a few
 *    flops per sample.
 *  - At most maxConcurrentRetrains retrains execute at once — a drift
 *    storm across the fleet queues up instead of fanning out.
 *  - A retrain attempt has a hard tick deadline, bounded retries with
 *    exponential backoff, and a wedged/failed retrain ends in
 *    RolledBack, never in a stuck Quarantined machine.
 *  - Promotion is canary-gated: the candidate must win the rolling
 *    shadow comparison (rMSE over the same metered references, i.e. a
 *    rolling-DRE win — the envelope denominator cancels) before the
 *    atomic swapModel; otherwise the incumbent stays and the drift
 *    verdict is acknowledged so a persisting drift can refire.
 *  - Promoted/RolledBack decay back to Serving only after a cooldown,
 *    which breaks promote/re-drift flap loops.
 *
 * Time is logical: the owner calls tick() at its own cadence (the
 * replay loop once per trace second, a live deployment once per wall
 * second) and every deadline above is measured in ticks.
 */
#ifndef CHAOS_AUTOPILOT_AUTOPILOT_HPP
#define CHAOS_AUTOPILOT_AUTOPILOT_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "monitor/fleet_monitor.hpp"
#include "serve/server.hpp"

namespace chaos::autopilot {

/** Where a machine stands in the remediation loop. */
enum class RemediationState {
    Serving,     ///< Healthy; autopilot idle for this machine.
    Quarantined, ///< Substitute serving; reference window filling.
    Retraining,  ///< Background fit in flight (or backing off).
    Canary,      ///< Candidate shadow-evaluating against incumbent.
    Promoted,    ///< Candidate swapped in; cooling down.
    RolledBack,  ///< Incumbent kept; cooling down.
};

/** @return Stable lowercase name (e.g. "quarantined"). */
const char *remediationStateName(RemediationState state);

/** Autopilot knobs; every *_Ticks deadline is in tick() calls. */
struct AutopilotConfig
{
    /** Background retrains allowed to execute at once. */
    std::size_t maxConcurrentRetrains = 2;
    /** Reference samples kept per machine for retraining. */
    std::size_t referenceWindowSamples = 512;
    /** Reference samples required before a retrain launches. */
    std::size_t retrainMinSamples = 64;
    /** Fit attempts per remediation before giving up. */
    std::size_t retrainMaxAttempts = 3;
    /** Backoff after a failed attempt; doubles per attempt. */
    std::size_t retrainBackoffTicks = 2;
    /** Hard per-attempt deadline; a wedged fit is abandoned. */
    std::size_t retrainTimeoutTicks = 600;
    /** Quarantine deadline when the window never fills. */
    std::size_t quarantineTimeoutTicks = 2000;
    /** Metered shadow samples required for a canary verdict. */
    std::size_t canaryMinSamples = 32;
    /** Canary deadline when references stop arriving. */
    std::size_t canaryTimeoutTicks = 1000;
    /**
     * Promotion margin, percent: the candidate's rolling rMSE must be
     * below (1 - margin/100) x incumbent's. 0 = any strict win.
     */
    double canaryMarginPct = 0.0;
    /** Ticks a Promoted/RolledBack machine rests before Serving. */
    std::size_t cooldownTicks = 120;
    /**
     * Run retrains on background worker threads. False = fit inline
     * inside tick() (single-threaded, deterministic; for replay
     * tooling and tests).
     */
    bool backgroundRetrain = true;
    /**
     * Technique for the refit when the incumbent's cannot be refit
     * from a reference window alone (the switching model needs a
     * frequency-feature annotation that is not carried there).
     */
    ModelType fallbackRetrainType = ModelType::Linear;
};

/** One machine's remediation status (for dashboards/tests). */
struct MachineRemediation
{
    std::string id;
    RemediationState state = RemediationState::Serving;
    std::uint64_t driftsSeen = 0;     ///< Listener firings observed.
    std::uint64_t driftsDeferred = 0; ///< Firings while mid-remediation.
    std::uint64_t quarantines = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t retrainFailures = 0;
    std::size_t attempt = 0;          ///< Current retrain attempt (1-based).
    std::size_t cooldownRemaining = 0;
    double lastCandidateRmseW = 0.0;  ///< From the last canary verdict.
    double lastIncumbentRmseW = 0.0;
};

/** Fleet-wide remediation tallies. */
struct AutopilotStats
{
    std::uint64_t quarantines = 0;
    std::uint64_t retrainsStarted = 0;
    std::uint64_t retrainFailures = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rollbacks = 0;
    std::size_t retrainsInFlight = 0;
    std::size_t quarantinedNow = 0;
};

/** The remediation controller (see file comment). */
class AutopilotController
{
  public:
    /**
     * @param server The serving loop to remediate. Machines must all
     *        be registered before start().
     * @param fleetMonitor The drift detector; must be attach()ed to
     *        @p server (start() installs the drift listener on it).
     */
    AutopilotController(serve::FleetServer &server,
                        monitor::FleetMonitor &fleetMonitor,
                        AutopilotConfig config = {});

    /** Stops workers and unhooks the drift listener. */
    ~AutopilotController();

    AutopilotController(const AutopilotController &) = delete;
    AutopilotController &operator=(const AutopilotController &) =
        delete;

    /**
     * The class-pooled model served while a machine is quarantined
     * (core/pooling fitPooledSubstitute). Without one, quarantine
     * freezes the machine at its last-known-good mean estimate. Set
     * before start().
     */
    void setSubstituteModel(MachinePowerModel pooled);

    /**
     * Custom retrain implementation (tests inject failures/bad
     * models here). Receives the machine id and its reference window
     * (feature-ordered rows, oldest first, with aligned metered
     * watts); returns the candidate model or throws RecoverableError
     * to report a failed attempt. Default: refit the incumbent's
     * technique (or fallbackRetrainType) on the window.
     */
    using RetrainFn = std::function<MachinePowerModel(
        const std::string &machineId, const FeatureSet &features,
        const Matrix &x, const std::vector<double> &y)>;
    void setRetrainHook(RetrainFn fn);

    /**
     * Arm the autopilot: enables every machine's reference window,
     * installs the drift listener, and (in background mode) spawns
     * the retrain workers. Call after the monitor is attached and
     * the fleet registered.
     */
    void start();

    /** Disarm: unhook the listener, drain and join workers. */
    void stop();

    /** True between start() and stop(). */
    bool armed() const { return armed_; }

    /**
     * Advance every machine's state machine by one logical tick:
     * absorb drift firings, launch/collect/time-out retrains, decide
     * canaries, expire cooldowns. Never blocks on a fit in background
     * mode. Safe to call from any single thread.
     */
    void tick();

    /** Ticks elapsed so far. */
    std::size_t currentTick() const;

    /** Per-machine remediation view, sorted by id. */
    std::vector<MachineRemediation> status() const;

    /** Fleet-wide tallies. */
    AutopilotStats stats() const;

    /** The configuration the controller was built with. */
    const AutopilotConfig &config() const { return cfg_; }

  private:
    /** A retrain request handed to a worker. */
    struct RetrainJob
    {
        std::uint64_t jobSeq = 0;
        std::string machineId;
        FeatureSet features;
        Matrix x{0, 0};
        std::vector<double> y;
        ModelType type = ModelType::Linear;
    };

    /** What came back from a worker. */
    struct RetrainResult
    {
        std::uint64_t jobSeq = 0;
        std::string machineId;
        bool ok = false;
        std::string error;
        std::shared_ptr<MachinePowerModel> model;
    };

    /** Controller-side per-machine state (guarded by stateMu_). */
    struct MachineCtl
    {
        std::string id;
        serve::MachineEntry *entry = nullptr;
        RemediationState state = RemediationState::Serving;
        MachineRemediation view; ///< Rolling public counters.
        std::uint64_t jobSeq = 0;       ///< Outstanding retrain job.
        std::size_t attempt = 0;        ///< 1-based attempt number.
        std::size_t notBeforeTick = 0;  ///< Backoff gate.
        std::size_t attemptDeadline = 0;
        std::size_t quarantineDeadline = 0;
        std::size_t canaryDeadline = 0;
        std::size_t cooldownUntil = 0;
    };

    void onDriftFired(const std::string &machineId);
    void handleDrift(MachineCtl &ctl);
    void maybeStartRetrain(MachineCtl &ctl);
    void applyRetrainResult(MachineCtl &ctl,
                            const RetrainResult &result);
    void decideCanary(MachineCtl &ctl,
                      const serve::MachineEntry::ShadowReport &report);
    void promote(MachineCtl &ctl,
                 const serve::MachineEntry::ShadowReport &report);
    void rollBack(MachineCtl &ctl, const std::string &reason);
    void expireCooldown(MachineCtl &ctl);
    RetrainResult runRetrain(const RetrainJob &job);
    void workerLoop();
    MachineCtl *findCtl(const std::string &machineId);
    void publishGauges();

    serve::FleetServer &server_;
    monitor::FleetMonitor &monitor_;
    AutopilotConfig cfg_;
    bool armed_ = false;

    std::shared_ptr<const MachinePowerModel> substitute_;
    RetrainFn retrainHook_;

    /** Guards machines_, tick_, stats_. */
    mutable std::mutex stateMu_;
    std::vector<std::unique_ptr<MachineCtl>> machines_; ///< By id.
    std::size_t tick_ = 0;
    AutopilotStats stats_;
    std::uint64_t nextJobSeq_ = 0;

    /** Leaf lock: drift firings land here from drain threads. */
    std::mutex pendingMu_;
    std::vector<std::string> pendingDrifts_;

    /** Worker pool (background mode). */
    std::mutex jobMu_;
    std::condition_variable jobCv_;
    std::deque<RetrainJob> jobQueue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
    std::size_t jobsExecuting_ = 0; ///< Guarded by jobMu_.

    /** Results travel back on their own leaf lock. */
    std::mutex resultMu_;
    std::vector<RetrainResult> results_;
};

} // namespace chaos::autopilot

#endif // CHAOS_AUTOPILOT_AUTOPILOT_HPP
