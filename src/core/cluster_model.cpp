#include "core/cluster_model.hpp"

#include "oscounters/counter_catalog.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

MachinePowerModel
MachinePowerModel::fit(const Dataset &data, const FeatureSet &featureSet,
                       ModelType type, const MarsConfig &mars)
{
    MachinePowerModel out;
    out.features = featureSet;
    const auto &catalog = CounterCatalog::instance();
    for (const auto &name : featureSet.counters)
        out.catalogIdx.push_back(catalog.indexOf(name));
    out.fitted = fitPooledModel(data, featureSet, type, mars);
    return out;
}

MachinePowerModel
MachinePowerModel::fromParts(FeatureSet featureSet,
                             std::shared_ptr<PowerModel> model)
{
    raiseIf(model == nullptr,
            "MachinePowerModel::fromParts: null model");
    MachinePowerModel out;
    out.features = std::move(featureSet);
    const auto &catalog = CounterCatalog::instance();
    for (const auto &name : out.features.counters)
        out.catalogIdx.push_back(catalog.indexOf(name));
    out.fitted = std::move(model);
    return out;
}

double
MachinePowerModel::predictFromCatalogRow(
    const std::vector<double> &row) const
{
    panicIf(!fitted, "MachinePowerModel used before fit");
    std::vector<double> projected;
    projected.reserve(catalogIdx.size());
    for (size_t idx : catalogIdx) {
        panicIf(idx >= row.size(),
                "catalog row narrower than the model expects");
        projected.push_back(row[idx]);
    }
    return fitted->predict(projected);
}

double
MachinePowerModel::predictFromFeatureRow(
    const std::vector<double> &row) const
{
    panicIf(!fitted, "MachinePowerModel used before fit");
    return fitted->predict(row);
}

void
MachinePowerModel::predictBatchFromFeatureRows(const double *rows,
                                               size_t n, size_t stride,
                                               double *out) const
{
    panicIf(!fitted, "MachinePowerModel used before fit");
    fitted->predictBatch(rows, n, stride, out);
}

void
ClusterPowerModel::setClassModel(MachineClass mc, MachinePowerModel model)
{
    classModels.insert_or_assign(mc, std::move(model));
}

bool
ClusterPowerModel::hasClassModel(MachineClass mc) const
{
    return classModels.count(mc) > 0;
}

double
ClusterPowerModel::predictMachine(
    MachineClass mc, const std::vector<double> &catalogRow) const
{
    const auto it = classModels.find(mc);
    raiseIf(it == classModels.end(),
            "no cluster model registered for class " +
                machineClassName(mc));
    return it->second.predictFromCatalogRow(catalogRow);
}

double
ClusterPowerModel::predictCluster(
    const std::vector<MachineClass> &machineClasses,
    const std::vector<std::vector<double>> &catalogRows) const
{
    panicIf(machineClasses.size() != catalogRows.size(),
            "predictCluster: machine/row count mismatch");
    double total = 0.0;
    for (size_t m = 0; m < machineClasses.size(); ++m)
        total += predictMachine(machineClasses[m], catalogRows[m]);
    return total;
}

} // namespace chaos
