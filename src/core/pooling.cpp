#include "core/pooling.hpp"

#include <map>
#include <set>

#include "models/factory.hpp"
#include "stats/descriptive.hpp"
#include "stats/kfold.hpp"
#include "stats/metrics.hpp"
#include "util/logging.hpp"

namespace chaos {

namespace {

std::optional<size_t>
frequencyIndexIn(const FeatureSet &featureSet)
{
    for (size_t i = 0; i < featureSet.counters.size(); ++i) {
        const auto &name = featureSet.counters[i];
        if (name.find("Frequency") != std::string::npos &&
            name.find("Lag") == std::string::npos) {
            return i;
        }
    }
    return std::nullopt;
}

std::unique_ptr<PowerModel>
build(const FeatureSet &featureSet, ModelType type,
      const MarsConfig &mars)
{
    ModelOptions options;
    options.mars = mars;
    options.frequencyFeature = frequencyIndexIn(featureSet);
    return makeModel(type, options);
}

/** Per-machine DRE average for a prediction vector on a dataset. */
void
accumulateMachineDre(const Dataset &test,
                     const std::vector<double> &predictions,
                     const EnvelopeMap &envelopes,
                     std::vector<double> &machine_dres,
                     std::vector<double> &residuals)
{
    std::set<int> machines(test.machineIds().begin(),
                           test.machineIds().end());
    for (int machine : machines) {
        std::vector<double> mp, ma;
        for (size_t r = 0; r < test.numRows(); ++r) {
            if (test.machineIds()[r] == machine) {
                mp.push_back(predictions[r]);
                ma.push_back(test.powerW()[r]);
                residuals.push_back(test.powerW()[r] -
                                    predictions[r]);
            }
        }
        if (mp.size() < 10)
            continue;
        const auto it = envelopes.find(machine);
        panicIf(it == envelopes.end(), "missing machine envelope");
        machine_dres.push_back(
            rootMeanSquaredError(mp, ma) /
            (it->second.maxPowerW - it->second.idlePowerW));
    }
}

} // namespace

PoolingComparison
comparePooling(const Dataset &data, const FeatureSet &featureSet,
               ModelType type, const EnvelopeMap &envelopes,
               const EvaluationConfig &config,
               double adequacyThreshold)
{
    panicIf(data.numRows() == 0, "comparePooling: empty dataset");
    const Dataset subset =
        data.selectFeaturesByName(featureSet.counters);

    Rng rng(config.seed);
    auto folds = groupedKFold(subset.runIds(), config.folds, rng);

    std::vector<double> pooled_dres, per_machine_dres, partial_dres;
    std::vector<double> pooled_residuals, per_machine_residuals,
        partial_residuals;

    for (auto &fold : folds) {
        const auto &train_rows = config.trainOnSingleFold
                                     ? fold.testIndices
                                     : fold.trainIndices;
        const auto &test_rows = config.trainOnSingleFold
                                    ? fold.trainIndices
                                    : fold.testIndices;
        if (train_rows.size() < featureSet.counters.size() + 5 ||
            test_rows.empty()) {
            continue;
        }
        const Dataset train = subset.selectRows(train_rows);
        const Dataset test = subset.selectRows(test_rows);

        // --- Pooled. ---
        auto pooled = build(featureSet, type, config.mars);
        pooled->fit(train.features(), train.powerW());
        const auto pooled_pred = pooled->predictAll(test.features());
        accumulateMachineDre(test, pooled_pred, envelopes,
                             pooled_dres, pooled_residuals);

        // --- Partial pooling: per-machine intercept offsets from
        // training residuals. ---
        std::map<int, double> offsets;
        {
            const auto train_pred =
                pooled->predictAll(train.features());
            std::map<int, RunningStats> residual_stats;
            for (size_t r = 0; r < train.numRows(); ++r) {
                residual_stats[train.machineIds()[r]].add(
                    train.powerW()[r] - train_pred[r]);
            }
            for (auto &[machine, stats] : residual_stats)
                offsets[machine] = stats.mean();
        }
        std::vector<double> partial_pred(pooled_pred);
        for (size_t r = 0; r < test.numRows(); ++r) {
            const auto it = offsets.find(test.machineIds()[r]);
            if (it != offsets.end())
                partial_pred[r] += it->second;
        }
        accumulateMachineDre(test, partial_pred, envelopes,
                             partial_dres, partial_residuals);

        // --- Per-machine models. ---
        std::set<int> machines(train.machineIds().begin(),
                               train.machineIds().end());
        std::vector<double> pm_pred(test.numRows(), 0.0);
        std::vector<bool> covered(test.numRows(), false);
        for (int machine : machines) {
            const Dataset m_train = train.filterMachine(machine);
            if (m_train.numRows() <
                featureSet.counters.size() + 5) {
                continue;
            }
            auto model = build(featureSet, type, config.mars);
            model->fit(m_train.features(), m_train.powerW());
            for (size_t r = 0; r < test.numRows(); ++r) {
                if (test.machineIds()[r] == machine) {
                    pm_pred[r] = model->predict(
                        test.features().row(r));
                    covered[r] = true;
                }
            }
        }
        // Rows of machines lacking their own model fall back to the
        // pooled prediction (keeps the comparison fair).
        for (size_t r = 0; r < test.numRows(); ++r) {
            if (!covered[r])
                pm_pred[r] = pooled_pred[r];
        }
        accumulateMachineDre(test, pm_pred, envelopes,
                             per_machine_dres,
                             per_machine_residuals);
    }

    panicIf(pooled_dres.empty(),
            "comparePooling: no usable folds");

    PoolingComparison result;
    result.pooledDre = mean(pooled_dres);
    result.perMachineDre = mean(per_machine_dres);
    result.partialDre = mean(partial_dres);
    result.pooledResidualVar = variance(pooled_residuals);
    result.perMachineResidualVar = variance(per_machine_residuals);
    result.varianceRatio =
        result.perMachineResidualVar > 1e-12
            ? result.pooledResidualVar / result.perMachineResidualVar
            : 1.0;
    result.poolingAdequate =
        result.varianceRatio <= adequacyThreshold;
    return result;
}

} // namespace chaos
