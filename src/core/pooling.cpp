#include "core/pooling.hpp"

#include <map>
#include <set>

#include "models/factory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"
#include "stats/kfold.hpp"
#include "stats/metrics.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"
#include "util/parallel.hpp"

namespace chaos {

namespace {

std::optional<size_t>
frequencyIndexIn(const FeatureSet &featureSet)
{
    for (size_t i = 0; i < featureSet.counters.size(); ++i) {
        const auto &name = featureSet.counters[i];
        if (name.find("Frequency") != std::string::npos &&
            name.find("Lag") == std::string::npos) {
            return i;
        }
    }
    return std::nullopt;
}

std::unique_ptr<PowerModel>
build(const FeatureSet &featureSet, ModelType type,
      const MarsConfig &mars)
{
    ModelOptions options;
    options.mars = mars;
    options.frequencyFeature = frequencyIndexIn(featureSet);
    return makeModel(type, options);
}

/** Per-machine DRE average for a prediction vector on a dataset. */
void
accumulateMachineDre(const Dataset &test,
                     const std::vector<double> &predictions,
                     const EnvelopeMap &envelopes,
                     std::vector<double> &machine_dres,
                     std::vector<double> &residuals)
{
    std::set<int> machines(test.machineIds().begin(),
                           test.machineIds().end());
    for (int machine : machines) {
        std::vector<double> mp, ma;
        for (size_t r = 0; r < test.numRows(); ++r) {
            if (test.machineIds()[r] == machine) {
                mp.push_back(predictions[r]);
                ma.push_back(test.powerW()[r]);
                residuals.push_back(test.powerW()[r] -
                                    predictions[r]);
            }
        }
        if (mp.size() < 10)
            continue;
        const auto it = envelopes.find(machine);
        panicIf(it == envelopes.end(), "missing machine envelope");
        machine_dres.push_back(
            rootMeanSquaredError(mp, ma) /
            (it->second.maxPowerW - it->second.idlePowerW));
    }
}

/**
 * All three pooling strategies evaluated on one fold. Folds run
 * concurrently (the assignment is fixed before the parallel region);
 * the caller merges outcomes in fold-index order so the accumulated
 * vectors — and hence every mean and variance — match the serial
 * loop bit-for-bit at any thread count.
 */
struct PoolingFoldOutcome
{
    bool ran = false;
    std::vector<double> pooledDres, perMachineDres, partialDres;
    std::vector<double> pooledResiduals, perMachineResiduals,
        partialResiduals;
};

} // namespace

PoolingComparison
comparePooling(const Dataset &data, const FeatureSet &featureSet,
               ModelType type, const EnvelopeMap &envelopes,
               const EvaluationConfig &config,
               double adequacyThreshold)
{
    obs::Span span("pooling.compare");
    panicIf(data.numRows() == 0, "comparePooling: empty dataset");
    const Dataset subset =
        data.selectFeaturesByName(featureSet.counters);

    Rng rng(config.seed);
    auto folds = groupedKFold(subset.runIds(), config.folds, rng);

    // The rng is fully consumed by the fold assignment above; no task
    // below touches shared generator state.
    const auto per_fold = parallelMap<PoolingFoldOutcome>(
        folds.size(), [&](size_t fi) {
            obs::Span fold_span("pooling.fold");
            PoolingFoldOutcome out;
            const auto &fold = folds[fi];
            const auto &train_rows = config.trainOnSingleFold
                                         ? fold.testIndices
                                         : fold.trainIndices;
            const auto &test_rows = config.trainOnSingleFold
                                        ? fold.trainIndices
                                        : fold.testIndices;
            if (train_rows.size() <
                    featureSet.counters.size() + 5 ||
                test_rows.empty()) {
                return out;
            }
            const Dataset train = subset.selectRows(train_rows);
            const Dataset test = subset.selectRows(test_rows);

            // --- Pooled. ---
            auto pooled = build(featureSet, type, config.mars);
            pooled->fit(train.features(), train.powerW());
            const auto pooled_pred =
                pooled->predictAll(test.features());
            accumulateMachineDre(test, pooled_pred, envelopes,
                                 out.pooledDres,
                                 out.pooledResiduals);

            // --- Partial pooling: per-machine intercept offsets
            // from training residuals. ---
            std::map<int, double> offsets;
            {
                const auto train_pred =
                    pooled->predictAll(train.features());
                std::map<int, RunningStats> residual_stats;
                for (size_t r = 0; r < train.numRows(); ++r) {
                    residual_stats[train.machineIds()[r]].add(
                        train.powerW()[r] - train_pred[r]);
                }
                for (auto &[machine, stats] : residual_stats)
                    offsets[machine] = stats.mean();
            }
            std::vector<double> partial_pred(pooled_pred);
            for (size_t r = 0; r < test.numRows(); ++r) {
                const auto it = offsets.find(test.machineIds()[r]);
                if (it != offsets.end())
                    partial_pred[r] += it->second;
            }
            accumulateMachineDre(test, partial_pred, envelopes,
                                 out.partialDres,
                                 out.partialResiduals);

            // --- Per-machine models, fitted concurrently. Each task
            // writes only the prediction slots of its own machine's
            // test rows (disjoint by construction; `covered` is a
            // char vector so element writes never share a byte the
            // way std::vector<bool> bits would). ---
            const std::set<int> machine_set(
                train.machineIds().begin(), train.machineIds().end());
            const std::vector<int> machines(machine_set.begin(),
                                            machine_set.end());
            std::vector<double> pm_pred(test.numRows(), 0.0);
            std::vector<char> covered(test.numRows(), 0);
            parallelFor(machines.size(), [&](size_t mi) {
                const int machine = machines[mi];
                const Dataset m_train = train.filterMachine(machine);
                if (m_train.numRows() <
                    featureSet.counters.size() + 5) {
                    return;
                }
                auto model = build(featureSet, type, config.mars);
                model->fit(m_train.features(), m_train.powerW());
                static auto &machine_fits =
                    obs::Registry::instance().counter(
                        "chaos.pooling.machine_fits");
                machine_fits.add();
                for (size_t r = 0; r < test.numRows(); ++r) {
                    if (test.machineIds()[r] == machine) {
                        pm_pred[r] = model->predict(
                            test.features().row(r));
                        covered[r] = 1;
                    }
                }
            });
            // Rows of machines lacking their own model fall back to
            // the pooled prediction (keeps the comparison fair).
            for (size_t r = 0; r < test.numRows(); ++r) {
                if (!covered[r])
                    pm_pred[r] = pooled_pred[r];
            }
            accumulateMachineDre(test, pm_pred, envelopes,
                                 out.perMachineDres,
                                 out.perMachineResiduals);
            out.ran = true;
            static auto &folds_run =
                obs::Registry::instance().counter("chaos.pooling.folds_run");
            folds_run.add();
            return out;
        });

    std::vector<double> pooled_dres, per_machine_dres, partial_dres;
    std::vector<double> pooled_residuals, per_machine_residuals,
        partial_residuals;
    auto append = [](std::vector<double> &dst,
                     const std::vector<double> &src) {
        dst.insert(dst.end(), src.begin(), src.end());
    };
    for (const auto &fr : per_fold) {
        if (!fr.ran)
            continue;
        append(pooled_dres, fr.pooledDres);
        append(pooled_residuals, fr.pooledResiduals);
        append(partial_dres, fr.partialDres);
        append(partial_residuals, fr.partialResiduals);
        append(per_machine_dres, fr.perMachineDres);
        append(per_machine_residuals, fr.perMachineResiduals);
    }

    panicIf(pooled_dres.empty(),
            "comparePooling: no usable folds");

    PoolingComparison result;
    result.pooledDre = mean(pooled_dres);
    result.perMachineDre = mean(per_machine_dres);
    result.partialDre = mean(partial_dres);
    result.pooledResidualVar = variance(pooled_residuals);
    result.perMachineResidualVar = variance(per_machine_residuals);
    result.varianceRatio =
        result.perMachineResidualVar > 1e-12
            ? result.pooledResidualVar / result.perMachineResidualVar
            : 1.0;
    result.poolingAdequate =
        result.varianceRatio <= adequacyThreshold;
    return result;
}

MachinePowerModel
fitPooledSubstitute(const Dataset &data, const FeatureSet &featureSet,
                    ModelType type)
{
    raiseIf(data.numRows() == 0,
            "fitPooledSubstitute: empty class dataset");
    return MachinePowerModel::fit(data, featureSet, type,
                                  MarsConfig{});
}

} // namespace chaos
