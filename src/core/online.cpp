#include "core/online.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "oscounters/counter_catalog.hpp"
#include "util/logging.hpp"

namespace chaos {

namespace {

/** Event-source label for estimators that were not given one. */
const std::string kDefaultSource = "machine";

/**
 * Registry mirror of the per-estimator OnlineHealthCounters plus the
 * transition count. The online path is serial per estimator, so the
 * tallies are Stable (work-proportional) metrics.
 */
struct OnlineMetrics {
    obs::Counter &validInputs;
    obs::Counter &rejectedInputs;
    obs::Counter &imputedInputs;
    obs::Counter &substitutedEstimates;
    obs::Counter &clampedEstimates;
    obs::Counter &healthTransitions;

    static OnlineMetrics &
    get()
    {
        auto &registry = obs::Registry::instance();
        static OnlineMetrics m{
            registry.counter("chaos.online.valid_inputs"),
            registry.counter("chaos.online.rejected_inputs"),
            registry.counter("chaos.online.imputed_inputs"),
            registry.counter("chaos.online.substituted_estimates"),
            registry.counter("chaos.online.clamped_estimates"),
            registry.counter("chaos.online.health_transitions"),
        };
        return m;
    }
};

} // namespace

std::string
machineHealthName(MachineHealth health)
{
    switch (health) {
      case MachineHealth::Healthy:  return "Healthy";
      case MachineHealth::Degraded: return "Degraded";
      case MachineHealth::Stale:    return "Stale";
      case MachineHealth::Lost:     return "Lost";
    }
    panic("unknown machine health state");
}

std::string
modelQualityName(ModelQuality quality)
{
    switch (quality) {
      case ModelQuality::Unknown:  return "Unknown";
      case ModelQuality::Ok:       return "Ok";
      case ModelQuality::Drifting: return "Drifting";
    }
    panic("unknown model quality state");
}

OnlineEstimatorConfig
OnlineEstimatorConfig::forSpec(const MachineSpec &spec)
{
    OnlineEstimatorConfig config;
    config.idlePowerW = spec.idlePowerW;
    config.maxPowerW = spec.maxPowerW;
    return config;
}

OnlinePowerEstimator::OnlinePowerEstimator(MachinePowerModel model,
                                           OnlineEstimatorConfig config)
    : model(std::move(model)), config(config)
{
    const auto &catalog = CounterCatalog::instance();
    const auto &indices = this->model.catalogIndices();
    featureStates.resize(indices.size());
    plausibleBounds.reserve(indices.size());
    for (size_t idx : indices)
        plausibleBounds.push_back(catalog.def(idx).maxPlausible);
}

double
OnlinePowerEstimator::substitutePowerW() const
{
    if (!recentTrusted.empty())
        return recentTrustedSum / double(recentTrusted.size());
    if (config.hasEnvelope())
        return 0.5 * (config.idlePowerW + config.maxPowerW);
    return 0.0;
}

void
OnlinePowerEstimator::rememberTrusted(double watts)
{
    const size_t window = std::max<size_t>(config.recentMeanWindow, 1);
    recentTrusted.push_back(watts);
    recentTrustedSum += watts;
    while (recentTrusted.size() > window) {
        recentTrustedSum -= recentTrusted.front();
        recentTrusted.pop_front();
    }
}

double
OnlinePowerEstimator::estimate(const std::vector<double> &catalogRow)
{
    const auto &indices = model.catalogIndices();
    std::vector<double> projected(indices.size(), 0.0);

    auto &metrics = OnlineMetrics::get();
    auto &events = obs::EventLog::instance();
    const std::string &source =
        config.sourceLabel.empty() ? kDefaultSource : config.sourceLabel;

    bool anyValid = false;
    bool anyImputed = false;
    bool anyStale = false;
    std::uint64_t imputedThisSample = 0;
    for (size_t i = 0; i < indices.size(); ++i) {
        const size_t idx = indices[i];
        const double raw = idx < catalogRow.size()
                               ? catalogRow[idx]
                               : std::numeric_limits<double>::quiet_NaN();
        FeatureState &fs = featureStates[i];
        const bool valid = std::isfinite(raw) && raw >= -1e-9 &&
                           raw <= plausibleBounds[i];
        if (valid) {
            const double value = std::max(raw, 0.0);
            fs.lastGood = value;
            fs.ageSeconds = 0.0;
            fs.seen = true;
            projected[i] = value;
            anyValid = true;
            ++tallies.validInputs;
            metrics.validInputs.add();
            continue;
        }
        ++tallies.rejectedInputs;
        metrics.rejectedInputs.add();
        fs.ageSeconds += 1.0;
        if (fs.seen) {
            projected[i] = fs.lastGood;
            ++tallies.imputedInputs;
            metrics.imputedInputs.add();
            ++imputedThisSample;
            anyImputed = true;
            if (fs.ageSeconds > config.stalenessBudgetSeconds)
                anyStale = true;
        } else {
            // Nothing ever observed for this feature: model with 0
            // (the idle reading) and flag the estimate stale.
            projected[i] = 0.0;
            anyStale = true;
        }
    }

    // One aggregated event per sample keeps the log readable under
    // sustained degradation (vs one event per imputed feature).
    if (imputedThisSample > 0) {
        events.emit(obs::EventKind::Imputation, source,
                    "inputs imputed from last-known-good",
                    imputedThisSample);
    }

    const bool allInvalid = !indices.empty() && !anyValid;
    secondsAllInvalid = allInvalid ? secondsAllInvalid + 1.0 : 0.0;

    const MachineHealth previous = healthState;
    if (secondsAllInvalid >= config.lostAfterSeconds)
        healthState = MachineHealth::Lost;
    else if (anyStale)
        healthState = MachineHealth::Stale;
    else if (anyImputed)
        healthState = MachineHealth::Degraded;
    else
        healthState = MachineHealth::Healthy;

    if (healthState != previous) {
        metrics.healthTransitions.add();
        events.emit(obs::EventKind::HealthTransition, source,
                    machineHealthName(previous) + " -> " +
                        machineHealthName(healthState));
    }

    double watts;
    bool trusted = false;
    if (healthState == MachineHealth::Lost) {
        watts = substitutePowerW();
        ++tallies.substitutedEstimates;
        metrics.substitutedEstimates.add();
        events.emit(obs::EventKind::Substitution, source,
                    "machine Lost: estimate substituted");
    } else {
        watts = model.predictFromFeatureRow(projected);
        if (std::isfinite(watts)) {
            trusted = true;
        } else {
            watts = substitutePowerW();
            ++tallies.substitutedEstimates;
            metrics.substitutedEstimates.add();
            events.emit(obs::EventKind::Substitution, source,
                        "non-finite model output: estimate substituted");
        }
    }

    if (config.hasEnvelope()) {
        const double clamped =
            std::clamp(watts, config.idlePowerW, config.maxPowerW);
        if (clamped != watts) {
            ++tallies.clampedEstimates;
            metrics.clampedEstimates.add();
            events.emit(obs::EventKind::Clamp, source,
                        clamped >= watts
                            ? "estimate clamped up to idle power"
                            : "estimate clamped down to max power");
        }
        watts = clamped;
    }

    if (trusted)
        rememberTrusted(watts);

    estimateStats.add(watts);
    lastEstimate = watts;
    ++count;
    return watts;
}

void
OnlinePowerEstimator::swapModel(MachinePowerModel newModel)
{
    const auto &catalog = CounterCatalog::instance();
    const std::vector<size_t> oldIndices = model.catalogIndices();
    const std::vector<FeatureState> oldStates = featureStates;

    model = std::move(newModel);
    quality = ModelQuality::Unknown;
    const auto &indices = model.catalogIndices();
    featureStates.assign(indices.size(), FeatureState{});
    plausibleBounds.clear();
    plausibleBounds.reserve(indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
        plausibleBounds.push_back(catalog.def(indices[i]).maxPlausible);
        // Carry last-known-good state across the swap for counters
        // both models consume, so a swap during degraded telemetry
        // does not discard the imputation history.
        for (size_t j = 0; j < oldIndices.size(); ++j) {
            if (oldIndices[j] == indices[i]) {
                featureStates[i] = oldStates[j];
                break;
            }
        }
    }
}

double
OnlinePowerEstimator::estimateWithReference(
    const std::vector<double> &catalogRow, double meteredW)
{
    const double watts = estimate(catalogRow);
    if (std::isfinite(meteredW))
        residualStats.add(meteredW - watts);
    return watts;
}

size_t
ClusterPowerEstimator::addMachine(MachinePowerModel model,
                                  OnlineEstimatorConfig config)
{
    if (config.sourceLabel.empty())
        config.sourceLabel = "machine" + std::to_string(estimators.size());
    estimators.emplace_back(std::move(model), std::move(config));
    return estimators.size() - 1;
}

OnlinePowerEstimator &
ClusterPowerEstimator::machine(size_t index)
{
    panicIf(index >= estimators.size(),
            "ClusterPowerEstimator: machine index out of range");
    return estimators[index];
}

const OnlinePowerEstimator &
ClusterPowerEstimator::machine(size_t index) const
{
    panicIf(index >= estimators.size(),
            "ClusterPowerEstimator: machine index out of range");
    return estimators[index];
}

MachineHealth
ClusterPowerEstimator::machineHealth(size_t index) const
{
    return machine(index).health();
}

size_t
ClusterPowerEstimator::countInHealth(MachineHealth health) const
{
    size_t n = 0;
    for (const auto &est : estimators) {
        if (est.health() == health)
            ++n;
    }
    return n;
}

double
ClusterPowerEstimator::estimateCluster(
    const std::vector<std::vector<double>> &catalogRows)
{
    panicIf(catalogRows.size() != estimators.size(),
            "estimateCluster: machine/row count mismatch");
    double total = 0.0;
    for (size_t m = 0; m < estimators.size(); ++m)
        total += estimators[m].estimate(catalogRows[m]);
    clusterStats.add(total);
    return total;
}

} // namespace chaos
