#include "core/online.hpp"

namespace chaos {

double
OnlinePowerEstimator::estimate(const std::vector<double> &catalogRow)
{
    const double watts = model.predictFromCatalogRow(catalogRow);
    estimateStats.add(watts);
    ++count;
    return watts;
}

double
OnlinePowerEstimator::estimateWithReference(
    const std::vector<double> &catalogRow, double meteredW)
{
    const double watts = estimate(catalogRow);
    residualStats.add(meteredW - watts);
    return watts;
}

} // namespace chaos
