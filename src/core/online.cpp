#include "core/online.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "oscounters/counter_catalog.hpp"
#include "util/logging.hpp"

namespace chaos {

namespace {

/** Event-source label for estimators that were not given one. */
const std::string kDefaultSource = "machine";

/**
 * Registry mirror of the per-estimator OnlineHealthCounters plus the
 * transition count. The online path is serial per estimator, so the
 * tallies are Stable (work-proportional) metrics.
 */
struct OnlineMetrics {
    obs::Counter &validInputs;
    obs::Counter &rejectedInputs;
    obs::Counter &imputedInputs;
    obs::Counter &substitutedEstimates;
    obs::Counter &clampedEstimates;
    obs::Counter &healthTransitions;

    static OnlineMetrics &
    get()
    {
        auto &registry = obs::Registry::instance();
        static OnlineMetrics m{
            registry.counter("chaos.online.valid_inputs"),
            registry.counter("chaos.online.rejected_inputs"),
            registry.counter("chaos.online.imputed_inputs"),
            registry.counter("chaos.online.substituted_estimates"),
            registry.counter("chaos.online.clamped_estimates"),
            registry.counter("chaos.online.health_transitions"),
        };
        return m;
    }
};

} // namespace

std::string
machineHealthName(MachineHealth health)
{
    switch (health) {
      case MachineHealth::Healthy:  return "Healthy";
      case MachineHealth::Degraded: return "Degraded";
      case MachineHealth::Stale:    return "Stale";
      case MachineHealth::Lost:     return "Lost";
    }
    panic("unknown machine health state");
}

std::string
modelQualityName(ModelQuality quality)
{
    switch (quality) {
      case ModelQuality::Unknown:  return "Unknown";
      case ModelQuality::Ok:       return "Ok";
      case ModelQuality::Drifting: return "Drifting";
    }
    panic("unknown model quality state");
}

OnlineEstimatorConfig
OnlineEstimatorConfig::forSpec(const MachineSpec &spec)
{
    OnlineEstimatorConfig config;
    config.idlePowerW = spec.idlePowerW;
    config.maxPowerW = spec.maxPowerW;
    return config;
}

OnlinePowerEstimator::OnlinePowerEstimator(MachinePowerModel model,
                                           OnlineEstimatorConfig config)
    : model(std::move(model)), config(config)
{
    const auto &catalog = CounterCatalog::instance();
    const auto &indices = this->model.catalogIndices();
    featureStates.resize(indices.size());
    plausibleBounds.reserve(indices.size());
    for (size_t idx : indices)
        plausibleBounds.push_back(catalog.def(idx).maxPlausible);
}

double
OnlinePowerEstimator::substitutePowerW() const
{
    if (!recentTrusted.empty())
        return recentTrustedSum / double(recentTrusted.size());
    if (config.hasEnvelope())
        return 0.5 * (config.idlePowerW + config.maxPowerW);
    return 0.0;
}

void
OnlinePowerEstimator::rememberTrusted(double watts)
{
    const size_t window = std::max<size_t>(config.recentMeanWindow, 1);
    recentTrusted.push_back(watts);
    recentTrustedSum += watts;
    while (recentTrusted.size() > window) {
        recentTrustedSum -= recentTrusted.front();
        recentTrusted.pop_front();
    }
}

bool
OnlinePowerEstimator::prepareSample(const double *row,
                                    std::size_t rowSize,
                                    double *projected,
                                    LocalTallies &local)
{
    const auto &indices = model.catalogIndices();
    auto &events = obs::EventLog::instance();
    const std::string &source =
        config.sourceLabel.empty() ? kDefaultSource : config.sourceLabel;

    bool anyValid = false;
    bool anyImputed = false;
    bool anyStale = false;
    std::uint64_t imputedThisSample = 0;
    for (size_t i = 0; i < indices.size(); ++i) {
        const size_t idx = indices[i];
        const double raw = idx < rowSize
                               ? row[idx]
                               : std::numeric_limits<double>::quiet_NaN();
        FeatureState &fs = featureStates[i];
        const bool valid = std::isfinite(raw) && raw >= -1e-9 &&
                           raw <= plausibleBounds[i];
        if (valid) {
            const double value = std::max(raw, 0.0);
            fs.lastGood = value;
            fs.ageSeconds = 0.0;
            fs.seen = true;
            projected[i] = value;
            anyValid = true;
            ++tallies.validInputs;
            ++local.valid;
            continue;
        }
        ++tallies.rejectedInputs;
        ++local.rejected;
        fs.ageSeconds += 1.0;
        if (fs.seen) {
            projected[i] = fs.lastGood;
            ++tallies.imputedInputs;
            ++local.imputed;
            ++imputedThisSample;
            anyImputed = true;
            if (fs.ageSeconds > config.stalenessBudgetSeconds)
                anyStale = true;
        } else {
            // Nothing ever observed for this feature: model with 0
            // (the idle reading) and flag the estimate stale.
            projected[i] = 0.0;
            anyStale = true;
        }
    }

    // One aggregated event per sample keeps the log readable under
    // sustained degradation (vs one event per imputed feature).
    if (imputedThisSample > 0) {
        events.emit(obs::EventKind::Imputation, source,
                    "inputs imputed from last-known-good",
                    imputedThisSample);
    }

    const bool allInvalid = !indices.empty() && !anyValid;
    secondsAllInvalid = allInvalid ? secondsAllInvalid + 1.0 : 0.0;

    const MachineHealth previous = healthState;
    if (secondsAllInvalid >= config.lostAfterSeconds)
        healthState = MachineHealth::Lost;
    else if (anyStale)
        healthState = MachineHealth::Stale;
    else if (anyImputed)
        healthState = MachineHealth::Degraded;
    else
        healthState = MachineHealth::Healthy;

    if (healthState != previous) {
        ++local.transitions;
        events.emit(obs::EventKind::HealthTransition, source,
                    machineHealthName(previous) + " -> " +
                        machineHealthName(healthState));
    }
    return healthState == MachineHealth::Lost;
}

double
OnlinePowerEstimator::finishSample(double modelWatts, bool lost,
                                   LocalTallies &local)
{
    auto &events = obs::EventLog::instance();
    const std::string &source =
        config.sourceLabel.empty() ? kDefaultSource : config.sourceLabel;

    double watts;
    bool trusted = false;
    if (lost) {
        watts = substitutePowerW();
        ++tallies.substitutedEstimates;
        ++local.substituted;
        events.emit(obs::EventKind::Substitution, source,
                    "machine Lost: estimate substituted");
    } else {
        watts = modelWatts;
        if (std::isfinite(watts)) {
            trusted = true;
        } else {
            watts = substitutePowerW();
            ++tallies.substitutedEstimates;
            ++local.substituted;
            events.emit(obs::EventKind::Substitution, source,
                        "non-finite model output: estimate substituted");
        }
    }

    if (config.hasEnvelope()) {
        const double clamped =
            std::clamp(watts, config.idlePowerW, config.maxPowerW);
        if (clamped != watts) {
            ++tallies.clampedEstimates;
            ++local.clamped;
            events.emit(obs::EventKind::Clamp, source,
                        clamped >= watts
                            ? "estimate clamped up to idle power"
                            : "estimate clamped down to max power");
        }
        watts = clamped;
    }

    if (trusted)
        rememberTrusted(watts);

    estimateStats.add(watts);
    lastEstimate = watts;
    ++count;
    return watts;
}

void
OnlinePowerEstimator::flushTallies(const LocalTallies &local)
{
    auto &metrics = OnlineMetrics::get();
    if (local.valid > 0)
        metrics.validInputs.add(local.valid);
    if (local.rejected > 0)
        metrics.rejectedInputs.add(local.rejected);
    if (local.imputed > 0)
        metrics.imputedInputs.add(local.imputed);
    if (local.substituted > 0)
        metrics.substitutedEstimates.add(local.substituted);
    if (local.clamped > 0)
        metrics.clampedEstimates.add(local.clamped);
    if (local.transitions > 0)
        metrics.healthTransitions.add(local.transitions);
}

double
OnlinePowerEstimator::estimate(const std::vector<double> &catalogRow)
{
    LocalTallies local;
    rowScratch.resize(model.catalogIndices().size());
    const bool lost = prepareSample(catalogRow.data(), catalogRow.size(),
                                    rowScratch.data(), local);
    // The serial path deliberately stays on the scalar virtual
    // predict(): it is the bit-identity oracle the compiled batch
    // plans are verified against.
    double modelWatts = std::numeric_limits<double>::quiet_NaN();
    if (!lost)
        modelWatts = model.predictFromFeatureRow(rowScratch);
    const double watts = finishSample(modelWatts, lost, local);
    flushTallies(local);
    return watts;
}

void
OnlinePowerEstimator::estimateBatch(const SampleView *samples,
                                    std::size_t n, double *wattsOut)
{
    if (n == 0)
        return;
    const size_t width = model.catalogIndices().size();
    LocalTallies local;

    // Phase A: serial validation/imputation/health in arrival order
    // (the health state machine is sequential), packing projected
    // rows into the reused row-major scratch matrix.
    batchRows.resize(n * width);
    batchLost.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        batchLost[i] = prepareSample(samples[i].values, samples[i].size,
                                     batchRows.data() + i * width,
                                     local)
                           ? 1
                           : 0;
    }

    // Phase B: one model pass over the packed rows (the compiled
    // struct-of-arrays plan). Lost samples are evaluated too — their
    // rows hold valid last-known-good projections — but phase C
    // discards those outputs, matching the serial path, which never
    // consults the model once the machine is Lost.
    model.predictBatchFromFeatureRows(batchRows.data(), n, width,
                                      wattsOut);

    // Phase C: serial substitution/clamp/statistics in arrival order
    // (the trusted-estimate window is sequential).
    for (std::size_t i = 0; i < n; ++i) {
        const double watts =
            finishSample(wattsOut[i], batchLost[i] != 0, local);
        wattsOut[i] = watts;
        if (std::isfinite(samples[i].meteredW))
            residualStats.add(samples[i].meteredW - watts);
    }
    flushTallies(local);
}

void
OnlinePowerEstimator::swapModel(MachinePowerModel newModel)
{
    const auto &catalog = CounterCatalog::instance();
    const std::vector<size_t> oldIndices = model.catalogIndices();
    const std::vector<FeatureState> oldStates = featureStates;

    model = std::move(newModel);
    quality = ModelQuality::Unknown;
    const auto &indices = model.catalogIndices();
    featureStates.assign(indices.size(), FeatureState{});
    plausibleBounds.clear();
    plausibleBounds.reserve(indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
        plausibleBounds.push_back(catalog.def(indices[i]).maxPlausible);
        // Carry last-known-good state across the swap for counters
        // both models consume, so a swap during degraded telemetry
        // does not discard the imputation history.
        for (size_t j = 0; j < oldIndices.size(); ++j) {
            if (oldIndices[j] == indices[i]) {
                featureStates[i] = oldStates[j];
                break;
            }
        }
    }
}

double
OnlinePowerEstimator::estimateWithReference(
    const std::vector<double> &catalogRow, double meteredW)
{
    const double watts = estimate(catalogRow);
    if (std::isfinite(meteredW))
        residualStats.add(meteredW - watts);
    return watts;
}

size_t
ClusterPowerEstimator::addMachine(MachinePowerModel model,
                                  OnlineEstimatorConfig config)
{
    if (config.sourceLabel.empty())
        config.sourceLabel = "machine" + std::to_string(estimators.size());
    estimators.emplace_back(std::move(model), std::move(config));
    return estimators.size() - 1;
}

OnlinePowerEstimator &
ClusterPowerEstimator::machine(size_t index)
{
    panicIf(index >= estimators.size(),
            "ClusterPowerEstimator: machine index out of range");
    return estimators[index];
}

const OnlinePowerEstimator &
ClusterPowerEstimator::machine(size_t index) const
{
    panicIf(index >= estimators.size(),
            "ClusterPowerEstimator: machine index out of range");
    return estimators[index];
}

MachineHealth
ClusterPowerEstimator::machineHealth(size_t index) const
{
    return machine(index).health();
}

size_t
ClusterPowerEstimator::countInHealth(MachineHealth health) const
{
    size_t n = 0;
    for (const auto &est : estimators) {
        if (est.health() == health)
            ++n;
    }
    return n;
}

double
ClusterPowerEstimator::estimateCluster(
    const std::vector<std::vector<double>> &catalogRows)
{
    panicIf(catalogRows.size() != estimators.size(),
            "estimateCluster: machine/row count mismatch");
    double total = 0.0;
    for (size_t m = 0; m < estimators.size(); ++m)
        total += estimators[m].estimate(catalogRows[m]);
    clusterStats.add(total);
    return total;
}

} // namespace chaos
