/**
 * @file
 * Named feature sets used in the paper's model sweep: CPU-utilization
 * only, the cluster-specific set from Algorithm 1, the cluster set
 * plus the lagged frequency (the "QCP" variant of Table IV), and the
 * cross-platform general set (Table II's last column).
 */
#ifndef CHAOS_CORE_FEATURE_SETS_HPP
#define CHAOS_CORE_FEATURE_SETS_HPP

#include <string>
#include <vector>

#include "core/feature_selection.hpp"

namespace chaos {

/** A named collection of counter names. */
struct FeatureSet
{
    std::string name;                   ///< "U", "C", "CP", "G".
    std::vector<std::string> counters;  ///< Counter full names.
};

/** Canonical counter names the paper leans on. */
namespace counters {
/** "Processor(_Total)\% Processor Time". */
extern const std::string kCpuUtilization;
/** "Processor Performance\Processor_0 Frequency". */
extern const std::string kCore0Frequency;
/** "Processor Performance\Processor_0 Frequency Lag1". */
extern const std::string kCore0FrequencyLag;
} // namespace counters

/** The single-feature CPU-utilization set ("U"). */
FeatureSet cpuOnlyFeatureSet();

/** Wrap an Algorithm-1 result as the cluster-specific set ("C"). */
FeatureSet clusterFeatureSet(const FeatureSelectionResult &selection);

/** Cluster set plus the lagged core-0 frequency ("CP"). */
FeatureSet clusterPlusLagFeatureSet(
    const FeatureSelectionResult &selection);

/**
 * Cluster set plus a WINDOW of lagged core-0 frequencies
 * ("CPk", k in 1..3) — the extension the paper leaves as future work
 * after finding the single lag (CP) did not significantly help.
 */
FeatureSet clusterPlusLagWindowFeatureSet(
    const FeatureSelectionResult &selection, size_t window);

/**
 * Derive the cross-platform general feature set ("G") from the
 * per-cluster selections (paper Section IV-A2 / V-C): keep counters
 * selected by at least @p minClusters clusters, then make sure every
 * counter category that appears in any cluster set is represented by
 * adding that category's most-selected counter.
 */
FeatureSet deriveGeneralFeatureSet(
    const std::vector<FeatureSelectionResult> &selections,
    size_t minClusters = 3);

/**
 * The general feature set exactly as printed in the paper's Table II
 * (for comparison against the derived one).
 */
FeatureSet paperGeneralFeatureSet();

} // namespace chaos

#endif // CHAOS_CORE_FEATURE_SETS_HPP
