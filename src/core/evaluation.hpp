/**
 * @file
 * Cross-validated evaluation of (model technique, feature set) pairs
 * on cluster datasets — the harness behind the paper's Tables III/IV
 * and Figures 3/4.
 *
 * Follows the paper's protocol: 5-fold cross validation with folds
 * grouped by application run (the scheduler partitions work
 * differently per run) and a training set roughly ten times smaller
 * than the test set — i.e. each fold trains on one run group and
 * tests on the others. Errors are computed per machine against the
 * platform's dynamic range and averaged ("average machine DRE").
 */
#ifndef CHAOS_CORE_EVALUATION_HPP
#define CHAOS_CORE_EVALUATION_HPP

#include <map>
#include <optional>

#include "core/feature_sets.hpp"
#include "models/factory.hpp"
#include "stats/metrics.hpp"
#include "trace/dataset.hpp"

namespace chaos {

/** Per-machine power envelope used for DRE denominators. */
struct MachineEnvelope
{
    double idlePowerW = 0.0;
    double maxPowerW = 0.0;
};

/** machineId -> envelope; heterogeneous clusters differ per id. */
using EnvelopeMap = std::map<int, MachineEnvelope>;

/** Evaluation knobs. */
struct EvaluationConfig
{
    /** Number of run-grouped folds (paper: 5). */
    size_t folds = 5;
    /**
     * Train on a single fold and test on the rest (paper: training
     * set about ten times smaller than test data). False gives
     * conventional k-fold.
     */
    bool trainOnSingleFold = true;
    /** MARS knobs for the piecewise/quadratic techniques. */
    MarsConfig mars;
    /** Seed for the fold assignment. */
    uint64_t seed = 12345;
};

/** Aggregated outcome of one technique/feature-set evaluation. */
struct EvaluationOutcome
{
    bool valid = false;         ///< False if the combo was skipped.
    double avgDre = 0.0;        ///< Mean per-machine DRE over folds.
    double avgRmse = 0.0;       ///< Mean per-machine rMSE (watts).
    double avgPctErr = 0.0;     ///< Mean per-machine rMSE/mean power.
    double medianRelErr = 0.0;  ///< Median relative error, pooled.
    double medianAbsErr = 0.0;  ///< Median absolute error, pooled (W).
    double r2 = 0.0;            ///< Pooled R^2 over all test rows.
    size_t foldsRun = 0;        ///< Folds actually executed.
    size_t avgParameters = 0;   ///< Mean fitted parameter count.
};

/**
 * Evaluate one (technique, feature set) combination on a cluster
 * dataset.
 *
 * Returns an invalid outcome (valid == false) when the combination
 * is undefined: quadratic and switching models require more than one
 * feature (the paper's Figures 3/4 note), and the switching model
 * requires the core-0 frequency counter in the set.
 *
 * @param data Cluster dataset in full catalog feature space.
 * @param featureSet Counters to model with.
 * @param type Modeling technique.
 * @param envelopes Per-machine dynamic ranges for DRE.
 * @param config Protocol knobs.
 */
EvaluationOutcome evaluateTechnique(const Dataset &data,
                                    const FeatureSet &featureSet,
                                    ModelType type,
                                    const EnvelopeMap &envelopes,
                                    const EvaluationConfig &config);

/**
 * Fit one pooled model on an entire dataset (no cross validation);
 * used to produce deployable models and the Fig. 5 style traces.
 * fatal()s on undefined combinations.
 */
std::unique_ptr<PowerModel> fitPooledModel(const Dataset &data,
                                           const FeatureSet &featureSet,
                                           ModelType type,
                                           const MarsConfig &mars);

/** Envelope map for a homogeneous cluster from its spec. */
EnvelopeMap envelopesFromSpec(const MachineSpec &spec,
                              size_t numMachines);

} // namespace chaos

#endif // CHAOS_CORE_EVALUATION_HPP
