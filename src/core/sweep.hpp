/**
 * @file
 * The model-exploration sweep: every modeling technique crossed with
 * every feature set, per workload — the machinery behind the paper's
 * "over 1200 full-system power models per cluster" and the source of
 * Figures 3/4 and Table IV.
 */
#ifndef CHAOS_CORE_SWEEP_HPP
#define CHAOS_CORE_SWEEP_HPP

#include <string>
#include <vector>

#include "core/evaluation.hpp"

namespace chaos {

/** One technique x feature-set evaluation. */
struct SweepCell
{
    ModelType type = ModelType::Linear;
    std::string featureSetName;
    EvaluationOutcome outcome;

    /** Paper-style label, e.g. "QC" (quadratic, cluster features). */
    std::string label() const;
};

/** All cells for one workload. */
struct WorkloadSweep
{
    std::string workload;
    std::vector<SweepCell> cells;

    /** Valid cell with the lowest average DRE (nullptr if none). */
    const SweepCell *best() const;
};

/**
 * Evaluate every (technique, feature set) pair per workload.
 *
 * @param clusterData Full-catalog dataset of one cluster.
 * @param featureSets Feature sets to cross (e.g. U, C, CP, G).
 * @param types Techniques to cross (default: all four).
 * @param envelopes Per-machine dynamic ranges.
 * @param config Evaluation protocol knobs.
 * @param workloads Workload subset; empty = all in the dataset.
 */
std::vector<WorkloadSweep> sweepWorkloads(
    const Dataset &clusterData,
    const std::vector<FeatureSet> &featureSets,
    const std::vector<ModelType> &types, const EnvelopeMap &envelopes,
    const EvaluationConfig &config,
    const std::vector<std::string> &workloads = {});

/** Total number of model fits a sweep performed (for reporting). */
size_t totalModelsFitted(const std::vector<WorkloadSweep> &sweeps);

} // namespace chaos

#endif // CHAOS_CORE_SWEEP_HPP
