/**
 * @file
 * End-to-end CHAOS framework entry points: collect instrumented
 * cluster traces, run Algorithm 1, fit models, and hand back
 * deployable artifacts. This is the automated pipeline the paper
 * describes as runnable during a cluster's burn-in/characterization
 * phase ("training and model building requires up to 2 hours").
 */
#ifndef CHAOS_CORE_FRAMEWORK_HPP
#define CHAOS_CORE_FRAMEWORK_HPP

#include <memory>

#include "core/cluster_model.hpp"
#include "core/feature_selection.hpp"
#include "core/sweep.hpp"
#include "sim/cluster.hpp"
#include "workloads/runner.hpp"

namespace chaos {

/** Knobs for a full data-collection + modeling campaign. */
struct CampaignConfig
{
    size_t numMachines = 5;         ///< Paper: 5-machine clusters.
    size_t runsPerWorkload = 5;     ///< Paper: 5 runs per workload.
    uint64_t seed = 2012;           ///< Base seed for everything.
    RunConfig run;                  ///< Workload run knobs.
    FeatureSelectionConfig featureSelection;  ///< Algorithm 1 knobs.
    EvaluationConfig evaluation;    ///< CV protocol knobs.
};

/** Everything produced for one cluster. */
struct ClusterCampaign
{
    MachineClass machineClass = MachineClass::Atom;
    std::unique_ptr<Cluster> cluster;   ///< The simulated machines.
    std::vector<RunResult> runs;        ///< Raw instrumented runs.
    Dataset data;                       ///< Flattened dataset.
    FeatureSelectionResult selection;   ///< Algorithm 1 output.
    EnvelopeMap envelopes;              ///< DRE denominators.
};

/**
 * Collect traces for one homogeneous cluster: build the cluster, run
 * every standard workload runsPerWorkload times, and flatten the
 * logs. Feature selection is NOT run (see runClusterCampaign).
 */
ClusterCampaign collectClusterData(MachineClass mc,
                                   const CampaignConfig &config);

/**
 * Full campaign for one cluster: collectClusterData() plus
 * Algorithm 1 feature selection.
 */
ClusterCampaign runClusterCampaign(MachineClass mc,
                                   const CampaignConfig &config);

/**
 * Fit a deployable machine model from a finished campaign using the
 * technique/feature-set pair that the paper finds strongest overall
 * (quadratic on the cluster-specific set).
 */
MachinePowerModel fitDefaultModel(const ClusterCampaign &campaign,
                                  const CampaignConfig &config);

} // namespace chaos

#endif // CHAOS_CORE_FRAMEWORK_HPP
