#include "core/feature_sets.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "oscounters/counter_catalog.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

namespace counters {
const std::string kCpuUtilization =
    "Processor(_Total)\\% Processor Time";
const std::string kCore0Frequency =
    "Processor Performance\\Processor_0 Frequency";
const std::string kCore0FrequencyLag =
    "Processor Performance\\Processor_0 Frequency Lag1";
} // namespace counters

namespace {
const char *kLagCounters[] = {
    "Processor Performance\\Processor_0 Frequency Lag1",
    "Processor Performance\\Processor_0 Frequency Lag2",
    "Processor Performance\\Processor_0 Frequency Lag3",
};
} // namespace

FeatureSet
cpuOnlyFeatureSet()
{
    return {"U", {counters::kCpuUtilization}};
}

FeatureSet
clusterFeatureSet(const FeatureSelectionResult &selection)
{
    return {"C", selection.selected};
}

FeatureSet
clusterPlusLagFeatureSet(const FeatureSelectionResult &selection)
{
    FeatureSet set{"CP", selection.selected};
    if (std::find(set.counters.begin(), set.counters.end(),
                  counters::kCore0FrequencyLag) == set.counters.end()) {
        set.counters.push_back(counters::kCore0FrequencyLag);
    }
    return set;
}

FeatureSet
clusterPlusLagWindowFeatureSet(const FeatureSelectionResult &selection,
                               size_t window)
{
    raiseIf(window < 1 || window > 3,
            "lag window must be between 1 and 3");
    FeatureSet set{"CP" + std::to_string(window), selection.selected};
    for (size_t k = 0; k < window; ++k) {
        if (std::find(set.counters.begin(), set.counters.end(),
                      kLagCounters[k]) == set.counters.end()) {
            set.counters.push_back(kLagCounters[k]);
        }
    }
    return set;
}

FeatureSet
deriveGeneralFeatureSet(
    const std::vector<FeatureSelectionResult> &selections,
    size_t minClusters)
{
    raiseIf(selections.empty(),
            "deriveGeneralFeatureSet: no cluster selections");
    const auto &catalog = CounterCatalog::instance();

    // Occurrence count of each counter across cluster selections.
    std::map<std::string, size_t> occurrences;
    for (const auto &selection : selections) {
        for (const auto &name : selection.selected)
            ++occurrences[name];
    }

    FeatureSet general{"G", {}};
    std::set<std::string> chosen;
    for (const auto &[name, count] : occurrences) {
        if (count >= minClusters) {
            general.counters.push_back(name);
            chosen.insert(name);
        }
    }

    // Categories represented across the cluster-specific sets.
    std::set<CounterCategory> wanted_categories;
    for (const auto &selection : selections) {
        for (const auto &name : selection.selected) {
            wanted_categories.insert(
                catalog.def(catalog.indexOf(name)).category);
        }
    }
    std::set<CounterCategory> covered;
    for (const auto &name : general.counters) {
        covered.insert(catalog.def(catalog.indexOf(name)).category);
    }

    // Backfill each missing category with its most-selected counter.
    for (CounterCategory category : wanted_categories) {
        if (covered.count(category))
            continue;
        std::string best;
        size_t best_count = 0;
        for (const auto &[name, count] : occurrences) {
            if (catalog.def(catalog.indexOf(name)).category ==
                    category &&
                count > best_count && !chosen.count(name)) {
                best = name;
                best_count = count;
            }
        }
        if (!best.empty()) {
            general.counters.push_back(best);
            chosen.insert(best);
        }
    }

    raiseIf(general.counters.empty(),
            "general feature set derivation produced nothing");
    return general;
}

FeatureSet
paperGeneralFeatureSet()
{
    // Table II, "General" column.
    return {"G(paper)",
            {
                "Memory\\Cache Faults/sec",
                "Memory\\Pages/sec",
                "Memory\\Pool Nonpaged Allocs",
                "PhysicalDisk(_Total)\\Disk Bytes/sec",
                "Processor(_Total)\\% Processor Time",
                "Cache\\Pin Reads/sec",
                "Job Object Details(_Total)\\Page File Bytes Peak",
                "Processor Performance\\Processor_0 Frequency",
            }};
}

} // namespace chaos
