#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"
#include "stats/kfold.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/result.hpp"

namespace chaos {

namespace {

/** Locate the frequency counter inside a feature set, if present. */
std::optional<size_t>
frequencyFeatureIndex(const FeatureSet &featureSet)
{
    for (size_t i = 0; i < featureSet.counters.size(); ++i) {
        if (featureSet.counters[i] == counters::kCore0Frequency)
            return i;
    }
    // Fall back to any current-frequency counter (e.g. "% of Maximum
    // Frequency") — the indicator only needs the P-state signal.
    for (size_t i = 0; i < featureSet.counters.size(); ++i) {
        const auto &name = featureSet.counters[i];
        if (name.find("Frequency") != std::string::npos &&
            name.find("Lag") == std::string::npos) {
            return i;
        }
    }
    return std::nullopt;
}

/** True if the combination is well defined (paper Figs. 3/4 note). */
bool
combinationDefined(const FeatureSet &featureSet, ModelType type)
{
    const size_t p = featureSet.counters.size();
    if (p == 0)
        return false;
    if ((type == ModelType::Quadratic ||
         type == ModelType::Switching) &&
        p < 2) {
        return false;  // These techniques require multiple features.
    }
    if (type == ModelType::Switching &&
        !frequencyFeatureIndex(featureSet).has_value()) {
        return false;  // No indicator available.
    }
    return true;
}

std::unique_ptr<PowerModel>
buildModel(const FeatureSet &featureSet, ModelType type,
           const MarsConfig &mars)
{
    ModelOptions options;
    options.mars = mars;
    options.frequencyFeature = frequencyFeatureIndex(featureSet);
    return makeModel(type, options);
}

/**
 * Everything one cross-validation fold produces. Folds are trained
 * concurrently (the fold assignment is fixed before the parallel
 * region, so every fold is a pure function of the shared dataset);
 * the caller merges these in fold-index order, which reproduces the
 * serial accumulation bit-for-bit regardless of thread count.
 */
struct FoldOutcome
{
    bool ran = false;
    size_t params = 0;
    std::vector<double> predictions;
    std::vector<double> actual;
    std::vector<double> machineDre;
    std::vector<double> machineRmse;
    std::vector<double> machinePct;
};

} // namespace

EnvelopeMap
envelopesFromSpec(const MachineSpec &spec, size_t numMachines)
{
    EnvelopeMap envelopes;
    for (size_t m = 0; m < numMachines; ++m) {
        envelopes[static_cast<int>(m)] = {spec.idlePowerW,
                                          spec.maxPowerW};
    }
    return envelopes;
}

std::unique_ptr<PowerModel>
fitPooledModel(const Dataset &data, const FeatureSet &featureSet,
               ModelType type, const MarsConfig &mars)
{
    raiseIf(!combinationDefined(featureSet, type),
            "fitPooledModel: model/feature-set combination is undefined");
    const Dataset subset = data.selectFeaturesByName(featureSet.counters);
    auto model = buildModel(featureSet, type, mars);
    model->fit(subset.features(), subset.powerW());
    return model;
}

EvaluationOutcome
evaluateTechnique(const Dataset &data, const FeatureSet &featureSet,
                  ModelType type, const EnvelopeMap &envelopes,
                  const EvaluationConfig &config)
{
    obs::Span span("cv.evaluate");
    static auto &techniques =
        obs::Registry::instance().counter("chaos.eval.techniques_evaluated");
    static auto &undefined =
        obs::Registry::instance().counter("chaos.eval.undefined_combinations");
    techniques.add();

    EvaluationOutcome outcome;
    if (!combinationDefined(featureSet, type)) {
        undefined.add();
        return outcome;
    }
    panicIf(data.numRows() == 0, "evaluateTechnique: empty dataset");

    const Dataset subset =
        data.selectFeaturesByName(featureSet.counters);

    Rng rng(config.seed);
    auto folds = groupedKFold(subset.runIds(), config.folds, rng);

    // The rng is fully consumed by the fold assignment above, so each
    // fold below is independent and can train concurrently.
    const auto per_fold = parallelMap<FoldOutcome>(
        folds.size(), [&](size_t fi) {
            obs::Span fold_span("cv.fold");
            FoldOutcome out;
            const auto &fold = folds[fi];
            // Paper protocol: the small side is the training set.
            const auto &train_rows = config.trainOnSingleFold
                                         ? fold.testIndices
                                         : fold.trainIndices;
            const auto &test_rows = config.trainOnSingleFold
                                        ? fold.trainIndices
                                        : fold.testIndices;
            if (train_rows.size() <
                    featureSet.counters.size() + 5 ||
                test_rows.empty()) {
                return out;
            }

            const Dataset train = subset.selectRows(train_rows);
            const Dataset test = subset.selectRows(test_rows);

            auto model = buildModel(featureSet, type, config.mars);
            model->fit(train.features(), train.powerW());
            out.params = model->numParameters();

            out.predictions = model->predictAll(test.features());
            out.actual = test.powerW();

            // Per-machine metrics against that machine's envelope.
            std::set<int> machines(test.machineIds().begin(),
                                   test.machineIds().end());
            for (int machine : machines) {
                std::vector<double> mp, ma;
                for (size_t r = 0; r < test.numRows(); ++r) {
                    if (test.machineIds()[r] == machine) {
                        mp.push_back(out.predictions[r]);
                        ma.push_back(out.actual[r]);
                    }
                }
                if (mp.size() < 10)
                    continue;
                const auto it = envelopes.find(machine);
                panicIf(it == envelopes.end(),
                        "missing envelope for machine");
                const double rmse = rootMeanSquaredError(mp, ma);
                out.machineRmse.push_back(rmse);
                out.machinePct.push_back(rmse / mean(ma));
                out.machineDre.push_back(
                    rmse /
                    (it->second.maxPowerW - it->second.idlePowerW));
            }
            out.ran = true;
            // Commutative integer add: deterministic for any thread
            // count even though folds finish out of order.
            static auto &folds_run =
                obs::Registry::instance().counter("chaos.eval.folds_run");
            folds_run.add();
            return out;
        });

    std::vector<double> machine_dre, machine_rmse, machine_pct;
    std::vector<double> pooled_pred, pooled_actual;
    size_t total_params = 0;
    for (const auto &fr : per_fold) {
        if (!fr.ran)
            continue;
        total_params += fr.params;
        pooled_pred.insert(pooled_pred.end(), fr.predictions.begin(),
                           fr.predictions.end());
        pooled_actual.insert(pooled_actual.end(), fr.actual.begin(),
                             fr.actual.end());
        machine_dre.insert(machine_dre.end(), fr.machineDre.begin(),
                           fr.machineDre.end());
        machine_rmse.insert(machine_rmse.end(),
                            fr.machineRmse.begin(),
                            fr.machineRmse.end());
        machine_pct.insert(machine_pct.end(), fr.machinePct.begin(),
                           fr.machinePct.end());
        ++outcome.foldsRun;
    }

    if (outcome.foldsRun == 0 || machine_dre.empty())
        return outcome;

    outcome.valid = true;
    outcome.avgDre = mean(machine_dre);
    outcome.avgRmse = mean(machine_rmse);
    outcome.avgPctErr = mean(machine_pct);
    outcome.medianRelErr =
        medianRelativeError(pooled_pred, pooled_actual);
    outcome.medianAbsErr =
        medianAbsoluteError(pooled_pred, pooled_actual);
    outcome.r2 = rSquared(pooled_pred, pooled_actual);
    outcome.avgParameters = total_params / outcome.foldsRun;
    return outcome;
}

} // namespace chaos
