/**
 * @file
 * Energy accounting from model estimates.
 *
 * The paper's motivating applications include power provisioning and
 * power-aware software tuning; both need ENERGY (joules per job),
 * not just instantaneous watts. This module integrates per-second
 * power — metered or model-estimated — into per-run and per-machine
 * energy, so jobs can be billed/compared without meters (e.g. "Sort
 * costs 21 kJ on the mobile cluster").
 */
#ifndef CHAOS_CORE_ENERGY_HPP
#define CHAOS_CORE_ENERGY_HPP

#include <map>
#include <string>
#include <vector>

#include "core/cluster_model.hpp"
#include "workloads/runner.hpp"

namespace chaos {

/** Energy totals for one workload run on one cluster. */
struct RunEnergy
{
    std::string workload;           ///< Workload name.
    int runId = 0;                  ///< Run identifier.
    double durationSeconds = 0.0;   ///< Run length.
    double meteredJ = 0.0;          ///< Energy from the meters.
    double estimatedJ = 0.0;        ///< Energy from the model.
    /** Per-machine estimated energy, joules. */
    std::vector<double> perMachineEstimatedJ;

    /** Relative estimation error (estimated vs metered). */
    double relativeError() const;

    /** Average metered cluster power over the run, watts. */
    double meanPowerW() const;
};

/**
 * Integrates power into energy for finished runs.
 *
 * At 1 Hz sampling each sample is one second, so energy is the plain
 * sum of per-second watts (trapezoidal refinements are below the
 * meter's own error).
 */
class EnergyAccountant
{
  public:
    /**
     * @param model Deployed per-class models used for estimates.
     */
    explicit EnergyAccountant(ClusterPowerModel model);

    /**
     * Account one finished run.
     *
     * @param cluster The cluster it ran on (for machine classes).
     * @param run The instrumented run result.
     * @return Energy totals (also retained internally).
     */
    const RunEnergy &account(const Cluster &cluster,
                             const RunResult &run);

    /** All accounted runs, in order. */
    const std::vector<RunEnergy> &runs() const { return accounted; }

    /**
     * Mean estimated energy per workload, joules (averaged over the
     * accounted runs of that workload).
     */
    std::map<std::string, double> meanEnergyByWorkloadJ() const;

    /** Total estimated energy across all accounted runs, joules. */
    double totalEstimatedJ() const;

    /** Total metered energy across all accounted runs, joules. */
    double totalMeteredJ() const;

  private:
    ClusterPowerModel model;
    std::vector<RunEnergy> accounted;
};

} // namespace chaos

#endif // CHAOS_CORE_ENERGY_HPP
