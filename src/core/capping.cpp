#include "core/capping.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

GuardBand
GuardBand::fromResiduals(const std::vector<double> &residualsW,
                         double sigmas)
{
    raiseIf(residualsW.size() < 10,
            "GuardBand needs at least 10 validation residuals");
    raiseIf(sigmas <= 0.0, "GuardBand needs positive sigmas");

    GuardBand band;
    band.bias = mean(residualsW);
    band.sigma = stddev(residualsW);
    // A positive bias means the model UNDER-estimates power; the
    // band must absorb it. Negative bias (over-estimation) is
    // already conservative and is not credited back.
    band.widthW = std::max(0.0, band.bias) + sigmas * band.sigma;
    return band;
}

double
GuardBand::clusterW(size_t machines) const
{
    panicIf(machines == 0, "GuardBand::clusterW with zero machines");
    const double n = static_cast<double>(machines);
    // Bias adds linearly; independent noise adds in quadrature.
    return std::max(0.0, bias) * n +
           (widthW - std::max(0.0, bias)) * std::sqrt(n);
}

PowerCapController::PowerCapController(double capW,
                                       const GuardBand &band,
                                       size_t machines)
    : cap(capW), threshold(capW - band.clusterW(machines))
{
    raiseIf(capW <= 0.0, "PowerCapController needs a positive cap");
    raiseIf(threshold <= 0.0,
            "guard band leaves no usable capacity under the cap");
}

CapDecision
PowerCapController::evaluate(double estimatedClusterW)
{
    stats.add(estimatedClusterW);

    CapDecision decision;
    decision.estimatedW = estimatedClusterW;
    decision.thresholdW = threshold;
    decision.throttle = estimatedClusterW > threshold;
    decision.headroomW =
        std::max(0.0, threshold - estimatedClusterW);
    if (decision.throttle)
        ++throttles;
    return decision;
}

double
PowerCapController::meanStrandedW() const
{
    // Capacity between the throttle threshold and the cap can never
    // be used, regardless of load.
    return cap - threshold;
}

} // namespace chaos
