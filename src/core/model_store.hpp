/**
 * @file
 * Persistence for deployable machine models: the fitted PowerModel
 * together with the counter names it consumes, so a model file is
 * self-describing and can be applied to raw catalog-ordered counter
 * vectors anywhere.
 */
#ifndef CHAOS_CORE_MODEL_STORE_HPP
#define CHAOS_CORE_MODEL_STORE_HPP

#include <iosfwd>
#include <string>

#include "core/cluster_model.hpp"
#include "util/result.hpp"

namespace chaos {

/** Write a machine model (features + fitted model) to a stream. */
void saveMachineModel(std::ostream &out, const MachinePowerModel &model);

/**
 * Write a machine model to a file; raises RecoverableError on I/O
 * error.
 */
void saveMachineModelFile(const std::string &path,
                          const MachinePowerModel &model);

/**
 * Read a machine model written by saveMachineModel(). Counter names
 * are re-resolved against the catalog; raises RecoverableError if
 * one no longer exists or the stream is malformed.
 */
MachinePowerModel loadMachineModel(std::istream &in);

/**
 * Read a machine model from a file; raises RecoverableError on I/O
 * or format errors.
 */
MachinePowerModel loadMachineModelFile(const std::string &path);

/** loadMachineModelFile() with value-style error handling. */
Result<MachinePowerModel> tryLoadMachineModelFile(
    const std::string &path);

} // namespace chaos

#endif // CHAOS_CORE_MODEL_STORE_HPP
