/**
 * @file
 * Model-based power capping support (paper Section V-D).
 *
 * "In model-based power capping, inaccurate models would result in
 * more conservative power caps and therefore would strand power."
 * This module turns that observation into an API: size a guard band
 * from a model's validation residuals, then drive a cap controller
 * from online estimates. The guard band is the quantitative link
 * between model accuracy (DRE) and stranded capacity.
 */
#ifndef CHAOS_CORE_CAPPING_HPP
#define CHAOS_CORE_CAPPING_HPP

#include <cstddef>
#include <vector>

#include "core/cluster_model.hpp"
#include "stats/descriptive.hpp"

namespace chaos {

/** Guard band derived from model validation residuals. */
class GuardBand
{
  public:
    /**
     * Size a guard band from validation residuals (metered minus
     * estimated watts) so that the cap is exceeded with probability
     * ~alpha per sample under a normal residual approximation.
     *
     * @param residualsW Per-second validation residuals, watts.
     * @param sigmas Width in residual standard deviations
     *        (3 => ~0.1% per-sample exceedance).
     */
    static GuardBand fromResiduals(const std::vector<double> &residualsW,
                                   double sigmas = 3.0);

    /** Guard band width for one machine, watts. */
    double perMachineW() const { return widthW; }

    /**
     * Guard band for a cluster of @p machines machines. Residuals
     * across machines are treated as independent, so the cluster
     * band grows with sqrt(N), not N — one of the practical payoffs
     * of composing per-machine models (Eq. 5).
     */
    double clusterW(size_t machines) const;

    /** Residual bias (mean) that was folded into the band. */
    double biasW() const { return bias; }

    /** Residual standard deviation the band was derived from. */
    double sigmaW() const { return sigma; }

  private:
    double widthW = 0.0;
    double bias = 0.0;
    double sigma = 0.0;
};

/** Decision of the cap controller for one second. */
struct CapDecision
{
    double estimatedW = 0.0;    ///< Model estimate, cluster watts.
    double thresholdW = 0.0;    ///< Cap minus guard band.
    bool throttle = false;      ///< Estimate crossed the threshold.
    double headroomW = 0.0;     ///< Threshold minus estimate (>= 0
                                ///< when not throttling).
};

/**
 * Cap controller: compares model estimates of cluster power against
 * a cap with a guard band, and tracks how much capacity the band
 * strands over time.
 */
class PowerCapController
{
  public:
    /**
     * @param capW Contractual power cap, cluster watts.
     * @param band Guard band (per machine).
     * @param machines Machines under the cap.
     */
    PowerCapController(double capW, const GuardBand &band,
                       size_t machines);

    /** Evaluate one second of estimated cluster power. */
    CapDecision evaluate(double estimatedClusterW);

    /** Cap watts. */
    double capW() const { return cap; }
    /** Throttle threshold (cap minus the cluster guard band). */
    double thresholdW() const { return threshold; }
    /** Seconds evaluated so far. */
    size_t seconds() const { return stats.count(); }
    /** Seconds the controller chose to throttle. */
    size_t throttleSeconds() const { return throttles; }
    /**
     * Mean stranded power: headroom between the estimate and the
     * cap that the guard band forbids using, watts.
     */
    double meanStrandedW() const;

  private:
    double cap;
    double threshold;
    size_t throttles = 0;
    RunningStats stats;         ///< Of estimated cluster power.
};

} // namespace chaos

#endif // CHAOS_CORE_CAPPING_HPP
