#include "core/sweep.hpp"

#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace chaos {

std::string
SweepCell::label() const
{
    return modelTypeCode(type) + featureSetName;
}

const SweepCell *
WorkloadSweep::best() const
{
    const SweepCell *best_cell = nullptr;
    double best_dre = std::numeric_limits<double>::infinity();
    for (const auto &cell : cells) {
        if (cell.outcome.valid && cell.outcome.avgDre < best_dre) {
            best_dre = cell.outcome.avgDre;
            best_cell = &cell;
        }
    }
    return best_cell;
}

std::vector<WorkloadSweep>
sweepWorkloads(const Dataset &clusterData,
               const std::vector<FeatureSet> &featureSets,
               const std::vector<ModelType> &types,
               const EnvelopeMap &envelopes,
               const EvaluationConfig &config,
               const std::vector<std::string> &workloads)
{
    obs::Span span("sweep.workloads");
    static auto &cells_evaluated =
        obs::Registry::instance().counter("chaos.sweep.cells_evaluated");

    const std::vector<std::string> &names =
        workloads.empty() ? clusterData.workloadNames() : workloads;

    std::vector<WorkloadSweep> sweeps;
    for (const auto &workload : names) {
        WorkloadSweep sweep;
        sweep.workload = workload;
        const Dataset slice = clusterData.filterWorkload(workload);
        if (slice.numRows() == 0) {
            warn("sweep: no rows for workload " + workload);
            continue;
        }
        // Evaluate the (technique, feature set) grid concurrently;
        // each cell is an independent cross-validation run, and the
        // flattened index keeps cells in the serial loop's order.
        const size_t grid = types.size() * featureSets.size();
        sweep.cells = parallelMap<SweepCell>(grid, [&](size_t g) {
            obs::Span cell_span("sweep.cell");
            cells_evaluated.add();
            SweepCell cell;
            cell.type = types[g / featureSets.size()];
            const auto &featureSet =
                featureSets[g % featureSets.size()];
            cell.featureSetName = featureSet.name;
            cell.outcome = evaluateTechnique(
                slice, featureSet, cell.type, envelopes, config);
            return cell;
        });
        sweeps.push_back(std::move(sweep));
    }
    return sweeps;
}

size_t
totalModelsFitted(const std::vector<WorkloadSweep> &sweeps)
{
    size_t total = 0;
    for (const auto &sweep : sweeps) {
        for (const auto &cell : sweep.cells)
            total += cell.outcome.foldsRun;
    }
    return total;
}

} // namespace chaos
