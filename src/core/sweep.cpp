#include "core/sweep.hpp"

#include <limits>

#include "util/logging.hpp"

namespace chaos {

std::string
SweepCell::label() const
{
    return modelTypeCode(type) + featureSetName;
}

const SweepCell *
WorkloadSweep::best() const
{
    const SweepCell *best_cell = nullptr;
    double best_dre = std::numeric_limits<double>::infinity();
    for (const auto &cell : cells) {
        if (cell.outcome.valid && cell.outcome.avgDre < best_dre) {
            best_dre = cell.outcome.avgDre;
            best_cell = &cell;
        }
    }
    return best_cell;
}

std::vector<WorkloadSweep>
sweepWorkloads(const Dataset &clusterData,
               const std::vector<FeatureSet> &featureSets,
               const std::vector<ModelType> &types,
               const EnvelopeMap &envelopes,
               const EvaluationConfig &config,
               const std::vector<std::string> &workloads)
{
    const std::vector<std::string> &names =
        workloads.empty() ? clusterData.workloadNames() : workloads;

    std::vector<WorkloadSweep> sweeps;
    for (const auto &workload : names) {
        WorkloadSweep sweep;
        sweep.workload = workload;
        const Dataset slice = clusterData.filterWorkload(workload);
        if (slice.numRows() == 0) {
            warn("sweep: no rows for workload " + workload);
            continue;
        }
        for (ModelType type : types) {
            for (const auto &featureSet : featureSets) {
                SweepCell cell;
                cell.type = type;
                cell.featureSetName = featureSet.name;
                cell.outcome = evaluateTechnique(
                    slice, featureSet, type, envelopes, config);
                sweep.cells.push_back(std::move(cell));
            }
        }
        sweeps.push_back(std::move(sweep));
    }
    return sweeps;
}

size_t
totalModelsFitted(const std::vector<WorkloadSweep> &sweeps)
{
    size_t total = 0;
    for (const auto &sweep : sweeps) {
        for (const auto &cell : sweep.cells)
            total += cell.outcome.foldsRun;
    }
    return total;
}

} // namespace chaos
