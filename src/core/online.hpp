/**
 * @file
 * Online power estimation: stream catalog counter vectors through a
 * deployed machine model and track residual statistics against any
 * available metered readings. This is the "online deployment" mode
 * the paper targets (model as a complement to, or replacement for,
 * physical instrumentation).
 */
#ifndef CHAOS_CORE_ONLINE_HPP
#define CHAOS_CORE_ONLINE_HPP

#include "core/cluster_model.hpp"
#include "stats/descriptive.hpp"

namespace chaos {

/** Streaming estimator for one machine. */
class OnlinePowerEstimator
{
  public:
    /** @param model Deployed machine model. */
    explicit OnlinePowerEstimator(MachinePowerModel model)
        : model(std::move(model))
    {}

    /**
     * Estimate power for one second of counters.
     * @param catalogRow Catalog-ordered counter vector.
     */
    double estimate(const std::vector<double> &catalogRow);

    /**
     * Estimate and, where a metered reading exists, accumulate the
     * residual (meter minus estimate) statistics.
     */
    double estimateWithReference(const std::vector<double> &catalogRow,
                                 double meteredW);

    /** Number of estimates produced. */
    size_t samples() const { return count; }

    /** Residual statistics against metered references so far. */
    const RunningStats &residuals() const { return residualStats; }

    /** Running mean of the estimates (average power draw). */
    double meanEstimateW() const { return estimateStats.mean(); }

  private:
    MachinePowerModel model;
    size_t count = 0;
    RunningStats residualStats;
    RunningStats estimateStats;
};

} // namespace chaos

#endif // CHAOS_CORE_ONLINE_HPP
