/**
 * @file
 * Online power estimation: stream catalog counter vectors through a
 * deployed machine model and track residual statistics against any
 * available metered readings. This is the "online deployment" mode
 * the paper targets (model as a complement to, or replacement for,
 * physical instrumentation).
 *
 * Deployed collectors misbehave in ways training traces never do:
 * counters go NaN when a provider restarts, stick at a frozen value,
 * or arrive corrupted; whole machines drop off the telemetry network
 * for seconds at a time. The estimator therefore validates every
 * input against the catalog's plausibility bounds, imputes rejected
 * values from the last known-good reading within a staleness budget,
 * clamps predictions to the machine's physical power envelope, and
 * tracks an explicit health state so operators can tell a trusted
 * estimate from a substituted one. Cluster composition (paper Eq. 5)
 * then degrades gracefully instead of propagating one machine's NaN
 * into the cluster total.
 */
#ifndef CHAOS_CORE_ONLINE_HPP
#define CHAOS_CORE_ONLINE_HPP

#include <cstdint>
#include <deque>
#include <limits>

#include "core/cluster_model.hpp"
#include "sim/machine_spec.hpp"
#include "stats/descriptive.hpp"

namespace chaos {

/**
 * Borrowed view of one machine-second inside a drain batch: the
 * catalog-ordered counters are read in place (typically straight from
 * the queue slot's vector), so batching adds no per-sample copy. The
 * pointed-to storage must outlive the estimateBatch call.
 */
struct SampleView
{
    const double *values = nullptr; ///< Catalog-ordered counters.
    std::size_t size = 0;           ///< Counters present in the row.
    /** Metered reference power; NaN when the sample carries none. */
    double meteredW = std::numeric_limits<double>::quiet_NaN();
};

/** Telemetry health of one estimated machine, worst to best. */
enum class MachineHealth
{
    Healthy,    ///< All model inputs valid this second.
    Degraded,   ///< Some inputs imputed from recent known-good values.
    Stale,      ///< Imputation exceeded the staleness budget.
    Lost,       ///< No valid telemetry long enough to distrust the model.
};

/** Human-readable health-state name. */
std::string machineHealthName(MachineHealth health);

/**
 * Model-quality verdict for one deployed machine model. Orthogonal to
 * MachineHealth: health describes the *telemetry feeding the model*
 * (are the inputs trustworthy?), quality describes the *model itself*
 * (do its estimates still track the metered reference?). A machine
 * can be Healthy yet Drifting — clean counters through a model the
 * workload has outgrown — or Degraded yet Ok.
 *
 * The verdict is produced by the monitoring layer (src/monitor) from
 * rolling residual statistics; the estimator only stores it so the
 * serving snapshot can report both axes side by side.
 */
enum class ModelQuality
{
    Unknown,  ///< No reference readings observed (or model just swapped).
    Ok,       ///< Residuals consistent with the calibration baseline.
    Drifting, ///< Drift detector fired: estimates no longer trusted.
};

/** Human-readable model-quality name. */
std::string modelQualityName(ModelQuality quality);

/** Knobs for the hardened online estimation path. */
struct OnlineEstimatorConfig
{
    /**
     * Physical power envelope [idlePowerW, maxPowerW] of the machine
     * (Table I "Power Range"). Predictions are clamped to it and the
     * midpoint is the substitution of last resort when telemetry is
     * lost. Clamping is disabled when maxPowerW <= idlePowerW (the
     * default, envelope unknown).
     */
    double idlePowerW = 0.0;
    double maxPowerW = 0.0;

    /**
     * How long a last-known-good value may stand in for a rejected
     * input before the estimate is flagged Stale rather than merely
     * Degraded.
     */
    double stalenessBudgetSeconds = 5.0;

    /**
     * Consecutive seconds with no valid input at all before the
     * machine is declared Lost and model output is replaced by a
     * substitute.
     */
    double lostAfterSeconds = 10.0;

    /**
     * Number of recent trusted estimates averaged for the Lost-state
     * substitute (falls back to the envelope midpoint when none have
     * been produced yet).
     */
    size_t recentMeanWindow = 30;

    /**
     * Label identifying this machine in health events (obs::EventLog).
     * Empty means "machine"; ClusterPowerEstimator::addMachine fills
     * in "machine<index>" when left empty.
     */
    std::string sourceLabel;

    /** True when a physical envelope was provided. */
    bool hasEnvelope() const { return maxPowerW > idlePowerW; }

    /** Config with the envelope of the given platform. */
    static OnlineEstimatorConfig forSpec(const MachineSpec &spec);
};

/** Tallies of what the validation/imputation path did so far. */
struct OnlineHealthCounters
{
    size_t validInputs = 0;       ///< Feature values accepted as-is.
    size_t rejectedInputs = 0;    ///< Feature values failing validation.
    size_t imputedInputs = 0;     ///< Rejected values bridged by
                                  ///< last-known-good imputation.
    size_t substitutedEstimates = 0; ///< Seconds the model was bypassed.
    size_t clampedEstimates = 0;  ///< Predictions pulled into envelope.
};

/** Streaming estimator for one machine. */
class OnlinePowerEstimator
{
  public:
    /**
     * @param model Deployed machine model.
     * @param config Hardening knobs; the default disables envelope
     *        clamping (envelope unknown) but still validates inputs.
     */
    explicit OnlinePowerEstimator(MachinePowerModel model,
                                  OnlineEstimatorConfig config = {});

    /**
     * Estimate power for one second of counters. Never returns NaN or
     * infinity: invalid inputs are imputed or, once the machine is
     * Lost, the whole prediction is substituted (recent mean, then
     * envelope midpoint).
     *
     * @param catalogRow Catalog-ordered counter vector; may be short
     *        or empty (missing columns count as invalid inputs).
     */
    double estimate(const std::vector<double> &catalogRow);

    /**
     * Estimate and, where a finite metered reading exists, accumulate
     * the residual (meter minus estimate) statistics. Non-finite
     * meter readings (dropouts) are skipped, not accumulated.
     */
    double estimateWithReference(const std::vector<double> &catalogRow,
                                 double meteredW);

    /**
     * Estimate a whole drain batch in one call. Sample for sample and
     * bit for bit equivalent to calling estimate() (or, for samples
     * with a finite meteredW, estimateWithReference()) serially in
     * order — health transitions, tallies, residual statistics, and
     * every returned watt match the serial path exactly. The speed
     * comes from the middle of the pipeline: validation/imputation
     * packs projected rows into a reused row-major scratch matrix,
     * the model evaluates all of them in a single predictBatch pass
     * (compiled struct-of-arrays plan, no per-row virtual dispatch),
     * and the registry metrics are flushed once per batch instead of
     * once per feature.
     *
     * @param samples  n sample views (storage must stay valid).
     * @param n        Batch size.
     * @param wattsOut n estimates, in arrival order.
     */
    void estimateBatch(const SampleView *samples, std::size_t n,
                       double *wattsOut);

    /**
     * Replace the deployed model in place (hot-swap). Health state,
     * tallies, and residual/estimate statistics carry over; the
     * last-known-good imputation state survives for every counter the
     * new model shares with the old one (matched by catalog index)
     * and starts fresh for counters only the new model consumes.
     * Model quality resets to Unknown: verdicts about the old model
     * say nothing about the new one.
     */
    void swapModel(MachinePowerModel newModel);

    /** The deployed machine model. */
    const MachinePowerModel &deployedModel() const { return model; }

    /** Health after the most recent sample (Healthy before any). */
    MachineHealth health() const { return healthState; }

    /** Model-quality verdict (Unknown until a monitor produces one). */
    ModelQuality modelQuality() const { return quality; }

    /** Store the monitoring layer's model-quality verdict. */
    void setModelQuality(ModelQuality q) { quality = q; }

    /** The hardening configuration this estimator was built with. */
    const OnlineEstimatorConfig &configuration() const
    {
        return config;
    }

    /** Most recent estimate in watts (0 before any sample). */
    double lastEstimateW() const { return lastEstimate; }

    /** Validation/imputation tallies so far. */
    const OnlineHealthCounters &healthCounters() const
    {
        return tallies;
    }

    /** Number of estimates produced. */
    size_t samples() const { return count; }

    /** Residual statistics against metered references so far. */
    const RunningStats &residuals() const { return residualStats; }

    /** Running mean of the estimates (average power draw). */
    double meanEstimateW() const { return estimateStats.mean(); }

  private:
    /** Imputation bookkeeping for one consumed feature. */
    struct FeatureState
    {
        double lastGood = 0.0;    ///< Most recent valid value.
        double ageSeconds = 0.0;  ///< Seconds since it was observed.
        bool seen = false;        ///< Any valid value yet?
    };

    /**
     * Per-call mirror of the global chaos.online.* registry counters.
     * The hot path accumulates into these plain integers and flushes
     * once per estimate()/estimateBatch() call, so a batched drain
     * performs one atomic add per counter per batch rather than one
     * per feature per sample.
     */
    struct LocalTallies
    {
        std::uint64_t valid = 0;
        std::uint64_t rejected = 0;
        std::uint64_t imputed = 0;
        std::uint64_t substituted = 0;
        std::uint64_t clamped = 0;
        std::uint64_t transitions = 0;
    };

    /**
     * Front half of one sample: validate/impute the inputs, advance
     * the health state machine, and write the projected feature row
     * (model input order) to @p projected. Serial, arrival-order
     * state; must be called exactly once per sample, in order.
     *
     * @return True when the machine is Lost for this sample (the
     *         model output must be discarded and substituted).
     */
    bool prepareSample(const double *row, std::size_t rowSize,
                       double *projected, LocalTallies &local);

    /**
     * Back half of one sample: substitution, envelope clamp, trusted
     * window, and estimate statistics. @p modelWatts is ignored when
     * @p lost. Serial, arrival-order state.
     *
     * @return The final estimate in watts.
     */
    double finishSample(double modelWatts, bool lost,
                        LocalTallies &local);

    /** One atomic add per nonzero local tally. */
    static void flushTallies(const LocalTallies &local);

    /** Stand-in power while the machine is Lost. */
    double substitutePowerW() const;

    /** Record a trusted (model-produced) estimate for substitution. */
    void rememberTrusted(double watts);

    MachinePowerModel model;
    OnlineEstimatorConfig config;
    std::vector<FeatureState> featureStates;
    std::vector<double> plausibleBounds;

    /** Projected-row scratch for the scalar estimate() path (reused
     *  across calls; estimate() used to build this vector per sample,
     *  which dominated the allocator profile under load). */
    std::vector<double> rowScratch;
    /** Packed row-major projected rows for estimateBatch (reused). */
    std::vector<double> batchRows;
    /** Per-sample Lost flags for estimateBatch (reused). */
    std::vector<unsigned char> batchLost;

    MachineHealth healthState = MachineHealth::Healthy;
    ModelQuality quality = ModelQuality::Unknown;
    double secondsAllInvalid = 0.0;
    OnlineHealthCounters tallies;

    std::deque<double> recentTrusted;
    double recentTrustedSum = 0.0;

    size_t count = 0;
    double lastEstimate = 0.0;
    RunningStats residualStats;
    RunningStats estimateStats;
};

/**
 * Cluster-level online estimation (paper Eq. 5): the cluster estimate
 * is the sum of per-machine estimates, with per-machine health
 * composed so one machine losing telemetry degrades the total
 * gracefully instead of poisoning it with NaN.
 */
class ClusterPowerEstimator
{
  public:
    /** Register one machine (returns its index). */
    size_t addMachine(MachinePowerModel model,
                      OnlineEstimatorConfig config = {});

    /** Number of registered machines. */
    size_t numMachines() const { return estimators.size(); }

    /** The per-machine estimator (panic on bad index). */
    OnlinePowerEstimator &machine(size_t index);
    const OnlinePowerEstimator &machine(size_t index) const;

    /** Health of one machine after its most recent sample. */
    MachineHealth machineHealth(size_t index) const;

    /** Number of machines currently in the given health state. */
    size_t countInHealth(MachineHealth health) const;

    /**
     * One cluster-second: estimate every machine and sum. Always
     * finite. @p catalogRows must have one row per registered
     * machine, in registration order.
     */
    double estimateCluster(
        const std::vector<std::vector<double>> &catalogRows);

    /** Running statistics of the cluster totals. */
    const RunningStats &clusterEstimates() const { return clusterStats; }

  private:
    std::vector<OnlinePowerEstimator> estimators;
    RunningStats clusterStats;
};

} // namespace chaos

#endif // CHAOS_CORE_ONLINE_HPP
