/**
 * @file
 * Cluster power model composition (paper Eq. 5): cluster power is the
 * sum of per-machine model predictions. Because the machine models
 * absorb machine-to-machine variability (pooled fitting, pooled
 * feature selection), composing them — including across machine
 * classes in a heterogeneous cluster — is "essentially free".
 */
#ifndef CHAOS_CORE_CLUSTER_MODEL_HPP
#define CHAOS_CORE_CLUSTER_MODEL_HPP

#include <map>
#include <memory>

#include "core/evaluation.hpp"
#include "sim/machine_spec.hpp"

namespace chaos {

/**
 * A deployable per-machine power model: a fitted PowerModel plus the
 * catalog positions of the counters it consumes, so it can be applied
 * directly to raw catalog-ordered counter vectors (what an online
 * collector produces).
 */
class MachinePowerModel
{
  public:
    /**
     * Fit a pooled machine model for one platform.
     *
     * @param data Training dataset in full catalog feature space.
     * @param featureSet Counters to model with.
     * @param type Modeling technique.
     * @param mars MARS knobs for the nonlinear techniques.
     */
    static MachinePowerModel fit(const Dataset &data,
                                 const FeatureSet &featureSet,
                                 ModelType type, const MarsConfig &mars);

    /**
     * Assemble from an already-fitted model and its feature set
     * (e.g. one reloaded from disk); catalog indices are resolved
     * from the counter names.
     */
    static MachinePowerModel fromParts(FeatureSet featureSet,
                                       std::shared_ptr<PowerModel> model);

    /** Predict watts from a catalog-ordered counter vector. */
    double predictFromCatalogRow(const std::vector<double> &row) const;

    /** Predict watts from a row already in feature-set order. */
    double predictFromFeatureRow(const std::vector<double> &row) const;

    /**
     * Batch-predict watts for @p n feature-ordered rows laid out
     * row-major with @p stride doubles between row starts. Routes
     * through PowerModel::predictBatch, so fitted models evaluate
     * their compiled struct-of-arrays plan (one pass over contiguous
     * memory) instead of dispatching per row; results are bit-wise
     * identical to predictFromFeatureRow on each row.
     */
    void predictBatchFromFeatureRows(const double *rows, size_t n,
                                     size_t stride, double *out) const;

    /** Number of counters the model consumes (the row width). */
    size_t numFeatures() const { return catalogIdx.size(); }

    /** The feature set this model consumes. */
    const FeatureSet &featureSet() const { return features; }

    /**
     * Catalog positions of the consumed counters, aligned with
     * featureSet().counters; online validation uses these to check
     * exactly the inputs the model reads.
     */
    const std::vector<size_t> &catalogIndices() const
    {
        return catalogIdx;
    }

    /** The underlying fitted model. */
    const PowerModel &model() const { return *fitted; }

  private:
    FeatureSet features;
    std::vector<size_t> catalogIdx;
    std::shared_ptr<PowerModel> fitted;
};

/** Composed cluster model: one machine model per machine class. */
class ClusterPowerModel
{
  public:
    /** Register the model used for all machines of @p mc. */
    void setClassModel(MachineClass mc, MachinePowerModel model);

    /** True if a model is registered for @p mc. */
    bool hasClassModel(MachineClass mc) const;

    /**
     * Per-machine prediction; raises RecoverableError if the class
     * is unknown.
     */
    double predictMachine(MachineClass mc,
                          const std::vector<double> &catalogRow) const;

    /**
     * Eq. 5: sum of per-machine predictions over one cluster-second.
     *
     * @param machineClasses Class of each machine.
     * @param catalogRows One catalog-ordered counter vector per
     *        machine, aligned with @p machineClasses.
     */
    double predictCluster(
        const std::vector<MachineClass> &machineClasses,
        const std::vector<std::vector<double>> &catalogRows) const;

  private:
    std::map<MachineClass, MachinePowerModel> classModels;
};

} // namespace chaos

#endif // CHAOS_CORE_CLUSTER_MODEL_HPP
