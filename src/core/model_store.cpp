#include "core/model_store.hpp"

#include <fstream>

#include "models/serialize.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

void
saveMachineModel(std::ostream &out, const MachinePowerModel &model)
{
    const auto &features = model.featureSet();
    out << "chaos-machine-model 1\n";
    out << "feature-set " << features.name << ' '
        << features.counters.size() << '\n';
    for (const auto &name : features.counters)
        out << name << '\n';
    saveModel(out, model.model());
}

void
saveMachineModelFile(const std::string &path,
                     const MachinePowerModel &model)
{
    std::ofstream out(path);
    raiseIf(!out, "cannot open machine model file for writing: " + path);
    saveMachineModel(out, model);
    raiseIf(!out.good(), "I/O error writing machine model: " + path);
}

MachinePowerModel
loadMachineModel(std::istream &in)
{
    std::string magic;
    int version = 0;
    raiseIf(!(in >> magic >> version) ||
                magic != "chaos-machine-model",
            "not a chaos machine model file");
    raiseIf(version != 1, "unsupported machine model file version");

    std::string token;
    raiseIf(!(in >> token) || token != "feature-set",
            "machine model file: missing feature set");
    FeatureSet features;
    size_t count = 0;
    raiseIf(!(in >> features.name >> count),
            "machine model file: bad feature-set header");
    in.ignore();  // Consume the end of the header line.
    for (size_t i = 0; i < count; ++i) {
        std::string line;
        raiseIf(!std::getline(in, line),
                "machine model file: truncated counter list");
        features.counters.push_back(line);
    }
    auto model = std::shared_ptr<PowerModel>(loadModel(in));
    return MachinePowerModel::fromParts(std::move(features),
                                        std::move(model));
}

MachinePowerModel
loadMachineModelFile(const std::string &path)
{
    std::ifstream in(path);
    raiseIf(!in, "cannot open machine model file for reading: " + path);
    try {
        return loadMachineModel(in);
    } catch (const RecoverableError &e) {
        raise(path + ": " + e.message());
    }
}

Result<MachinePowerModel>
tryLoadMachineModelFile(const std::string &path)
{
    return tryInvoke([&] { return loadMachineModelFile(path); });
}

} // namespace chaos
