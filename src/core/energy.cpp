#include "core/energy.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace chaos {

double
RunEnergy::relativeError() const
{
    if (meteredJ <= 0.0)
        return 0.0;
    return std::fabs(estimatedJ - meteredJ) / meteredJ;
}

double
RunEnergy::meanPowerW() const
{
    return durationSeconds > 0.0 ? meteredJ / durationSeconds : 0.0;
}

EnergyAccountant::EnergyAccountant(ClusterPowerModel model_)
    : model(std::move(model_))
{
}

const RunEnergy &
EnergyAccountant::account(const Cluster &cluster, const RunResult &run)
{
    panicIf(run.machineRecords.size() != cluster.size(),
            "EnergyAccountant: run does not match the cluster");

    RunEnergy energy;
    energy.workload = run.workloadName;
    energy.runId = run.runId;
    energy.durationSeconds = run.durationSeconds;
    energy.perMachineEstimatedJ.assign(cluster.size(), 0.0);

    for (size_t m = 0; m < cluster.size(); ++m) {
        const MachineClass mc = cluster.machine(m).spec().machineClass;
        for (const auto &record : run.machineRecords[m]) {
            // 1 Hz sampling: one sample is one joule per watt.
            energy.meteredJ += record.measuredPowerW;
            const double estimated =
                model.predictMachine(mc, record.counters);
            energy.estimatedJ += estimated;
            energy.perMachineEstimatedJ[m] += estimated;
        }
    }
    accounted.push_back(std::move(energy));
    return accounted.back();
}

std::map<std::string, double>
EnergyAccountant::meanEnergyByWorkloadJ() const
{
    std::map<std::string, double> totals;
    std::map<std::string, size_t> counts;
    for (const auto &energy : accounted) {
        totals[energy.workload] += energy.estimatedJ;
        ++counts[energy.workload];
    }
    for (auto &[workload, total] : totals)
        total /= static_cast<double>(counts[workload]);
    return totals;
}

double
EnergyAccountant::totalEstimatedJ() const
{
    double total = 0.0;
    for (const auto &energy : accounted)
        total += energy.estimatedJ;
    return total;
}

double
EnergyAccountant::totalMeteredJ() const
{
    double total = 0.0;
    for (const auto &energy : accounted)
        total += energy.meteredJ;
    return total;
}

} // namespace chaos
