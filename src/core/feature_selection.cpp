#include "core/feature_selection.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "models/lasso.hpp"
#include "models/stepwise.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "oscounters/counter_catalog.hpp"
#include "stats/correlation.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

namespace {

/** Uniform-stride subsample of row indices up to @p cap rows. */
std::vector<size_t>
strideRows(size_t total, size_t cap)
{
    std::vector<size_t> rows;
    if (total <= cap) {
        rows.resize(total);
        for (size_t i = 0; i < total; ++i)
            rows[i] = i;
    } else {
        const double stride = static_cast<double>(total) /
                              static_cast<double>(cap);
        rows.reserve(cap);
        for (size_t i = 0; i < cap; ++i)
            rows.push_back(static_cast<size_t>(i * stride));
    }
    return rows;
}

} // namespace

std::vector<size_t>
screenCounters(const Dataset &data,
               const FeatureSelectionConfig &config, Rng &rng,
               FeatureSelectionResult *funnel)
{
    (void)rng;
    obs::Span span("select.screen");
    panicIf(data.numRows() == 0, "screenCounters: empty dataset");

    if (funnel)
        funnel->catalogSize = data.numFeatures();

    // --- Step 0: drop constant and explicitly excluded counters. ---
    std::vector<size_t> alive;
    {
        obs::Span step_span("select.constant_drop");
        std::set<size_t> dropped;
        for (size_t c : data.constantColumns())
            dropped.insert(c);
        for (const auto &name : config.excludedCounters) {
            for (size_t c = 0; c < data.numFeatures(); ++c) {
                if (data.featureNames()[c] == name)
                    dropped.insert(c);
            }
        }
        for (size_t c = 0; c < data.numFeatures(); ++c) {
            if (!dropped.count(c))
                alive.push_back(c);
        }
    }
    if (funnel)
        funnel->afterConstantDrop = alive.size();

    // --- Step 1: prune |r| > threshold pairs. Within a correlated
    // pair, keep the counter more correlated with measured power
    // (a deterministic, power-aware representative choice). ---
    obs::Span prune_span("select.correlation_prune");
    const auto sample_rows =
        strideRows(data.numRows(), config.maxCorrelationRows);
    const Dataset sampled = data.selectRows(sample_rows);
    const Matrix sub = sampled.features().selectColumns(alive);
    const Matrix corr = correlationMatrix(sub);

    // Correlation of each surviving column with power. Canonical
    // counters (the well-understood Perfmon names the paper's Table
    // II reports) get a small bonus so that, within a correlated
    // group, the familiar representative wins near-ties — e.g.
    // "Processor_0 Frequency" over "% of Maximum Frequency".
    const std::set<std::string> canonical = {
        "Processor(_Total)\\% Processor Time",
        "Processor Performance\\Processor_0 Frequency",
        "Memory\\Cache Faults/sec",
        "Memory\\Pages/sec",
        "Memory\\Page Faults/sec",
        "Memory\\Committed Bytes",
        "Memory\\Page Reads/sec",
        "Memory\\Pool Nonpaged Allocs",
        "PhysicalDisk(_Total)\\% Disk Time",
        "PhysicalDisk(_Total)\\Disk Bytes/sec",
        "Process(_Total)\\Page Faults/sec",
        "Process(_Total)\\IO Data Bytes/sec",
        "Processor(_Total)\\Interrupts/sec",
        "Processor(_Total)\\% DPC Time",
        "Cache\\Data Map Pins/sec",
        "Cache\\Pin Reads/sec",
        "Cache\\Pin Read Hits %",
        "Cache\\Copy Reads/sec",
        "Cache\\Fast Reads Not Possible/sec",
        "Cache\\Lazy Write Flushes/sec",
        "Job Object Details(_Total)\\Page File Bytes Peak",
        "IPv4\\Datagrams/sec",
        "Network Interface(nic0)\\Bytes Total/sec",
    };
    std::vector<double> power_corr(alive.size());
    for (size_t i = 0; i < alive.size(); ++i) {
        power_corr[i] =
            std::fabs(pearson(sub.column(i), sampled.powerW()));
        if (canonical.count(data.featureNames()[alive[i]]))
            power_corr[i] += 0.05;
    }

    // Order candidates by descending power correlation; greedily keep
    // a counter unless it correlates above threshold with one
    // already kept.
    std::vector<size_t> order(alive.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&power_corr](size_t a, size_t b) {
                  if (power_corr[a] != power_corr[b])
                      return power_corr[a] > power_corr[b];
                  return a < b;
              });

    std::vector<size_t> kept_local;  // Indices into `alive`.
    for (size_t cand : order) {
        bool redundant = false;
        for (size_t kept : kept_local) {
            if (std::fabs(corr(cand, kept)) >
                config.correlationThreshold) {
                redundant = true;
                break;
            }
        }
        if (!redundant)
            kept_local.push_back(cand);
    }
    std::sort(kept_local.begin(), kept_local.end());

    std::vector<size_t> survivors;
    survivors.reserve(kept_local.size());
    for (size_t i : kept_local)
        survivors.push_back(alive[i]);
    prune_span.end();
    if (funnel)
        funnel->afterCorrelation = survivors.size();

    // --- Step 2: co-dependent counters (a = b + c): remove the
    // derived counter a and one addend, keeping a single part, per
    // the paper's Algorithm 1 lines 4-6. ---
    obs::Span codep_span("select.co_dependency");
    const auto &catalog = CounterCatalog::instance();
    std::set<std::string> surviving_names;
    for (size_t c : survivors)
        surviving_names.insert(data.featureNames()[c]);

    std::set<std::string> codep_drop;
    for (const auto &dep : catalog.coDependencies()) {
        // Count how many participants are still alive.
        size_t alive_parts = 0;
        for (const auto &part : dep.parts) {
            if (surviving_names.count(part))
                ++alive_parts;
        }
        const bool sum_alive = surviving_names.count(dep.sum) > 0;
        if (sum_alive && alive_parts >= 1) {
            // Keep only the last alive part; drop the sum and the
            // other parts.
            codep_drop.insert(dep.sum);
            bool kept_one = false;
            for (const auto &part : dep.parts) {
                if (!surviving_names.count(part))
                    continue;
                if (!kept_one) {
                    kept_one = true;  // This part survives.
                } else {
                    codep_drop.insert(part);
                }
            }
        }
    }

    std::vector<size_t> final_survivors;
    for (size_t c : survivors) {
        if (!codep_drop.count(data.featureNames()[c]))
            final_survivors.push_back(c);
    }
    if (funnel)
        funnel->afterCoDependency = final_survivors.size();
    return final_survivors;
}

FeatureSelectionResult
selectClusterFeatures(const Dataset &data,
                      const FeatureSelectionConfig &config, Rng &rng)
{
    obs::Span span("select.cluster_features");
    static auto &lasso_fits =
        obs::Registry::instance().counter("chaos.select.lasso_fits");
    static auto &stepwise_runs =
        obs::Registry::instance().counter("chaos.select.stepwise_runs");
    static auto &threshold_iters =
        obs::Registry::instance().counter(
            "chaos.select.threshold_iterations");

    FeatureSelectionResult result;
    const std::vector<size_t> screened =
        screenCounters(data, config, rng, &result);
    panicIf(screened.empty(), "screening removed every counter");

    // Distinct machines and workloads present in the data.
    std::set<int> machine_set(data.machineIds().begin(),
                              data.machineIds().end());
    const auto &workload_names = data.workloadNames();

    // --- Steps 3-4: per machine and workload, L1 then stepwise. ---
    obs::Span slice_span("select.per_machine_slices");
    LassoSolver lasso;
    for (int machine : machine_set) {
        const Dataset machine_data = data.filterMachine(machine);
        for (const auto &workload : workload_names) {
            const Dataset slice =
                machine_data.filterWorkload(workload);
            if (slice.numRows() < 50)
                continue;  // Not enough data to screen.

            const auto rows = strideRows(slice.numRows(),
                                         config.maxScreeningRows);
            const Dataset sub = slice.selectRows(rows);
            const Matrix x = sub.features().selectColumns(screened);
            const auto &y = sub.powerW();

            PerMachineSelection record;
            record.machineId = machine;
            record.workload = workload;

            // Step 3: L1 regularization discards the bulk.
            lasso_fits.add();
            const LassoFit fit = lasso.fitWithTargetSupport(
                x, y, config.lassoMaxSupport);
            const auto support = fit.support();
            if (support.empty())
                continue;
            for (size_t s : support) {
                record.lassoSelected.push_back(
                    data.featureNames()[screened[s]]);
            }

            // Step 4: Wald stepwise on the L1 survivors.
            std::vector<size_t> support_cols;
            for (size_t s : support)
                support_cols.push_back(s);
            const Matrix xs = x.selectColumns(support_cols);
            StepwiseConfig sw;
            sw.alpha = config.stepwiseAlpha;
            stepwise_runs.add();
            const StepwiseResult stepped = stepwiseEliminate(xs, y, sw);
            for (size_t k : stepped.keptFeatures) {
                record.significant.push_back(
                    data.featureNames()[screened[support_cols[k]]]);
            }
            result.perMachine.push_back(std::move(record));
        }
    }
    slice_span.end();
    panicIf(result.perMachine.empty(),
            "no machine/workload slice had enough data");

    // --- Step 5: weighted occurrence histogram across the union. ---
    for (const auto &record : result.perMachine) {
        std::set<std::string> significant(record.significant.begin(),
                                          record.significant.end());
        for (const auto &name : record.lassoSelected) {
            result.histogram[name] += significant.count(name)
                                          ? 1.0
                                          : config.insignificantWeight;
        }
    }

    // --- Step 6: threshold + cluster-level stepwise; raise the
    // threshold until stepwise keeps everything. ---
    obs::Span threshold_span("select.threshold_search");
    const auto pooled_rows = strideRows(
        data.numRows(), config.maxCorrelationRows);
    const Dataset pooled = data.selectRows(pooled_rows);

    double threshold = config.initialThreshold;
    for (;;) {
        threshold_iters.add();
        std::vector<size_t> candidates;
        for (size_t c : screened) {
            const auto it =
                result.histogram.find(data.featureNames()[c]);
            if (it != result.histogram.end() &&
                it->second >= threshold) {
                candidates.push_back(c);
            }
        }
        if (candidates.empty()) {
            // Threshold overshot every feature: back off to the
            // densest non-empty level.
            double best = 0.0;
            for (const auto &[name, weight] : result.histogram)
                best = std::max(best, weight);
            raiseIf(best <= 0.0,
                    "selectClusterFeatures: empty feature histogram");
            threshold = best;
            continue;
        }

        const Matrix x = pooled.features().selectColumns(candidates);
        StepwiseConfig sw;
        sw.alpha = config.stepwiseAlpha;
        stepwise_runs.add();
        const StepwiseResult stepped =
            stepwiseEliminate(x, pooled.powerW(), sw);

        if (stepped.keptFeatures.size() == candidates.size() ||
            stepped.keptFeatures.size() <= 2) {
            result.selected.clear();
            for (size_t k : stepped.keptFeatures) {
                result.selected.push_back(
                    data.featureNames()[candidates[k]]);
            }
            result.finalThreshold = threshold;
            return result;
        }
        threshold += 1.0;
    }
}

} // namespace chaos
