/**
 * @file
 * Umbrella header: the full public API of the CHAOS library.
 *
 * CHAOS (Composable Highly Accurate OS-based power models, Davis et
 * al., IISWC 2012) builds full-system power models from OS-level
 * performance counters only. The typical flow is:
 *
 * @code
 *   using namespace chaos;
 *   CampaignConfig config;
 *   auto campaign = runClusterCampaign(MachineClass::Core2, config);
 *   auto model = fitDefaultModel(campaign, config);
 *   double watts = model.predictFromCatalogRow(counterVector);
 * @endcode
 */
#ifndef CHAOS_CORE_CHAOS_HPP
#define CHAOS_CORE_CHAOS_HPP

#include "core/cluster_model.hpp"
#include "core/evaluation.hpp"
#include "core/feature_selection.hpp"
#include "core/feature_sets.hpp"
#include "core/framework.hpp"
#include "core/online.hpp"
#include "core/sweep.hpp"

#endif // CHAOS_CORE_CHAOS_HPP
