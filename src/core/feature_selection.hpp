/**
 * @file
 * The CHAOS feature reduction pipeline (paper Algorithm 1).
 *
 * Six steps turn the full counter catalog into a small cluster
 * feature set:
 *
 *  1. prune pairwise-correlated counters (|r| > 0.95),
 *  2. remove co-dependent counters (a = b + c, from definitions),
 *  3. per machine & workload: L1 regularization to discard
 *     irrelevant counters in the high-dimensional space,
 *  4. per machine & workload: backward stepwise elimination with the
 *     Wald significance test,
 *  5. union the per-machine/workload survivors into a weighted
 *     occurrence histogram (weight 1 if stepwise kept the feature,
 *     a small weight if only L1 picked it),
 *  6. threshold the histogram and run cluster-level stepwise on the
 *     pooled data, raising the threshold until no insignificant
 *     feature remains (the paper starts at 5 and lands at 7).
 */
#ifndef CHAOS_CORE_FEATURE_SELECTION_HPP
#define CHAOS_CORE_FEATURE_SELECTION_HPP

#include <map>
#include <string>
#include <vector>

#include "trace/dataset.hpp"
#include "util/random.hpp"

namespace chaos {

/** Knobs for Algorithm 1. */
struct FeatureSelectionConfig
{
    /** Step 1 pairwise-correlation threshold (paper: 0.95). */
    double correlationThreshold = 0.95;
    /** Step 3 L1 target support per machine/workload model. */
    size_t lassoMaxSupport = 12;
    /** Step 4/6 Wald significance level. */
    double stepwiseAlpha = 0.05;
    /** Step 5 weight of a feature L1 picked but stepwise dropped. */
    double insignificantWeight = 0.25;
    /** Step 6 starting histogram threshold (paper: 5). */
    double initialThreshold = 5.0;
    /** Row subsample cap for the screening regressions (speed). */
    size_t maxScreeningRows = 800;
    /** Row subsample cap for the correlation matrix (speed). */
    size_t maxCorrelationRows = 5000;
    /** Counters excluded from screening entirely: the lagged
     *  frequency counter (an explicit model add-on, not a screened
     *  feature) and wall-clock counters, which the definitions-based
     *  manual pass (paper step 2) rejects as activity-free. */
    std::vector<std::string> excludedCounters = {
        "Processor Performance\\Processor_0 Frequency Lag1",
        "Processor Performance\\Processor_0 Frequency Lag2",
        "Processor Performance\\Processor_0 Frequency Lag3",
        "System\\System Up Time",
    };
};

/** One machine/workload screening outcome (steps 3-4). */
struct PerMachineSelection
{
    int machineId = 0;
    std::string workload;
    /** Names L1 kept (step 3). */
    std::vector<std::string> lassoSelected;
    /** Names stepwise kept (step 4); subset of lassoSelected. */
    std::vector<std::string> significant;
};

/** Full output of Algorithm 1 on one cluster. */
struct FeatureSelectionResult
{
    /** The final cluster feature set, in catalog order. */
    std::vector<std::string> selected;
    /** Step-5 weighted occurrence histogram (name -> weight). */
    std::map<std::string, double> histogram;
    /** Step-6 threshold that produced the final set. */
    double finalThreshold = 0.0;
    /** Steps 3-4 outcomes, one per (machine, workload). */
    std::vector<PerMachineSelection> perMachine;

    // Funnel sizes for reporting.
    size_t catalogSize = 0;         ///< Counters in the catalog.
    size_t afterConstantDrop = 0;   ///< Non-constant counters.
    size_t afterCorrelation = 0;    ///< After step 1.
    size_t afterCoDependency = 0;   ///< After step 2.
};

/**
 * Run Algorithm 1 on one cluster's dataset (all machines and
 * workloads pooled, full catalog feature space).
 *
 * @param data Cluster dataset in catalog feature space.
 * @param config Algorithm knobs.
 * @param rng Used only for row subsampling in the screening steps.
 */
FeatureSelectionResult selectClusterFeatures(
    const Dataset &data, const FeatureSelectionConfig &config,
    Rng &rng);

/**
 * Steps 1-2 only: screening survivors (indices into data's feature
 * space). Exposed separately for tests and diagnostics.
 */
std::vector<size_t> screenCounters(const Dataset &data,
                                   const FeatureSelectionConfig &config,
                                   Rng &rng,
                                   FeatureSelectionResult *funnel);

} // namespace chaos

#endif // CHAOS_CORE_FEATURE_SELECTION_HPP
