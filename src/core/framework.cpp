#include "core/framework.hpp"

#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

ClusterCampaign
collectClusterData(MachineClass mc, const CampaignConfig &config)
{
    ClusterCampaign campaign;
    campaign.machineClass = mc;
    campaign.cluster = std::make_unique<Cluster>(Cluster::homogeneous(
        mc, config.numMachines, config.seed ^ (static_cast<uint64_t>(mc)
                                               << 32)));
    campaign.runs = runStandardCampaign(
        *campaign.cluster, config.runsPerWorkload,
        config.seed + static_cast<uint64_t>(mc) * 977, config.run);
    campaign.data = Dataset::fromRunResults(campaign.runs);
    campaign.envelopes =
        envelopesFromSpec(machineSpecFor(mc), config.numMachines);
    return campaign;
}

ClusterCampaign
runClusterCampaign(MachineClass mc, const CampaignConfig &config)
{
    ClusterCampaign campaign = collectClusterData(mc, config);
    Rng rng(config.seed ^ 0xfeedfaceULL);
    campaign.selection = selectClusterFeatures(
        campaign.data, config.featureSelection, rng);
    inform("cluster " + machineClassName(mc) + ": selected " +
           std::to_string(campaign.selection.selected.size()) +
           " features (threshold " +
           std::to_string(campaign.selection.finalThreshold) + ")");
    return campaign;
}

MachinePowerModel
fitDefaultModel(const ClusterCampaign &campaign,
                const CampaignConfig &config)
{
    raiseIf(campaign.selection.selected.empty(),
            "fitDefaultModel: campaign has no feature selection");
    const FeatureSet features = clusterFeatureSet(campaign.selection);
    return MachinePowerModel::fit(campaign.data, features,
                                  ModelType::Quadratic,
                                  config.evaluation.mars);
}

} // namespace chaos
