/**
 * @file
 * Pooling ablation (paper Section IV).
 *
 * CHAOS pools counters and power measurements from every machine in
 * the cluster into one model. The paper justifies this against the
 * heavier alternatives — separate per-machine models or hierarchical
 * (mixed) models — by comparing residual variances per the Gelman et
 * al. tests and finding "no significant loss of accuracy". This
 * module reproduces that comparison with three strategies:
 *
 *  - pooled: one model on all machines' data (the CHAOS choice);
 *  - per-machine: an independent model per machine;
 *  - partial pooling: the pooled model plus a per-machine intercept
 *    offset (the simplest mixed model).
 */
#ifndef CHAOS_CORE_POOLING_HPP
#define CHAOS_CORE_POOLING_HPP

#include "core/cluster_model.hpp"
#include "core/evaluation.hpp"

namespace chaos {

/** Cross-validated accuracy of the three pooling strategies. */
struct PoolingComparison
{
    double pooledDre = 0.0;         ///< One model for the cluster.
    double perMachineDre = 0.0;     ///< One model per machine.
    double partialDre = 0.0;        ///< Pooled + machine offsets.

    double pooledResidualVar = 0.0;     ///< Test residual variance.
    double perMachineResidualVar = 0.0; ///< Test residual variance.

    /** pooledResidualVar / perMachineResidualVar. */
    double varianceRatio = 0.0;

    /**
     * True when pooling loses little: variance ratio below the
     * adequacy threshold (default 1.25), the criterion standing in
     * for the paper's "comparing the variances in the different
     * models" test.
     */
    bool poolingAdequate = false;
};

/**
 * Run the three-strategy comparison on one cluster dataset with the
 * standard protocol (run-grouped folds, train on the small side).
 *
 * @param data Cluster dataset in full catalog feature space.
 * @param featureSet Counters to model with.
 * @param type Modeling technique.
 * @param envelopes Per-machine dynamic ranges for DRE.
 * @param config Protocol knobs.
 * @param adequacyThreshold Variance-ratio bound for adequacy.
 */
PoolingComparison comparePooling(const Dataset &data,
                                 const FeatureSet &featureSet,
                                 ModelType type,
                                 const EnvelopeMap &envelopes,
                                 const EvaluationConfig &config,
                                 double adequacyThreshold = 1.25);

/**
 * Fit the class-pooled stand-in model the serving autopilot deploys
 * while a machine's own model sits in quarantine: one model over the
 * whole class dataset (every machine's rows pooled, the CHAOS
 * choice), which cross-architectural transfer studies show is an
 * adequate substitute until a machine-specific refit lands. Raises
 * RecoverableError when @p data is empty.
 *
 * @param data Class training dataset in full catalog feature space.
 * @param featureSet Counters to model with.
 * @param type Modeling technique (default Linear: substitutes favor
 *        robustness over the last percent of accuracy).
 */
MachinePowerModel fitPooledSubstitute(
    const Dataset &data, const FeatureSet &featureSet,
    ModelType type = ModelType::Linear);

} // namespace chaos

#endif // CHAOS_CORE_POOLING_HPP
