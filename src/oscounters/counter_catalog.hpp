/**
 * @file
 * The OS performance counter catalog.
 *
 * Windows Server 2008 R2 exposes roughly 10,000 counters; the paper
 * pre-screens them to ~250 in seven categories (processor, memory,
 * physical disk, process, job object, file system cache, network).
 * This catalog is that pre-screened set: ~220 counters spanning the
 * same categories, expanded per instance (per core, per disk), with
 * the same redundancy structure real Perfmon data has —
 *
 *  - highly correlated siblings (per-core vs _Total utilization,
 *    packets vs bytes) that step 1 of Algorithm 1 must prune,
 *  - co-dependent triples (Disk Bytes/sec = Read + Write) that step 2
 *    eliminates from counter definitions,
 *  - irrelevant counters (up time, object counts) that the L1 and
 *    stepwise passes must reject.
 *
 * The catalog is identical on every platform so cluster datasets from
 * different machine classes share one feature space; counters for
 * hardware a platform lacks (cores 2-7 on a dual-core, disks 1-5 on a
 * single-SSD box) legitimately read ~0 and are dropped as constants.
 */
#ifndef CHAOS_OSCOUNTERS_COUNTER_CATALOG_HPP
#define CHAOS_OSCOUNTERS_COUNTER_CATALOG_HPP

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine_spec.hpp"
#include "sim/machine_state.hpp"
#include "util/random.hpp"

namespace chaos {

/** Perfmon-style counter categories (paper Table II). */
enum class CounterCategory
{
    Processor,
    ProcessorPerformance,
    Memory,
    PhysicalDisk,
    Network,
    FileSystemCache,
    Process,
    JobObjectDetails,
    System,     ///< Housekeeping/irrelevant counters.
};

/** Human-readable category name. */
std::string counterCategoryName(CounterCategory category);

/** Inputs available to a counter's compute function. */
struct SampleContext
{
    const MachineState &state;      ///< Component snapshot.
    const MachineSpec &spec;        ///< Platform description.
    Rng &rng;                       ///< Per-sample observation noise.
    double prevCoreFreqMhz = 0.0;   ///< Core 0 frequency at t-1.
    double prevCoreFreqMhz2 = 0.0;  ///< Core 0 frequency at t-2.
    double prevCoreFreqMhz3 = 0.0;  ///< Core 0 frequency at t-3.
};

/** One counter definition. */
struct CounterDef
{
    std::string name;               ///< Full Perfmon-style path.
    CounterCategory category;       ///< Table II category.
    /** Compute this counter's value for one second. */
    std::function<double(const SampleContext &)> compute;
    /**
     * Upper bound of physically plausible values, derived from the
     * counter name when the catalog is built. Online validation
     * rejects readings above it (or below zero) as corrupt telemetry
     * rather than feeding them to the model.
     */
    double maxPlausible = 1e15;
};

/**
 * A co-dependency known from counter definitions: the counter named
 * @p sum equals the sum of @p parts by construction. Step 2 of the
 * feature reduction algorithm consumes these.
 */
struct CoDependency
{
    std::string sum;                ///< The derived counter.
    std::vector<std::string> parts; ///< Its exact addends.
};

/** The full counter catalog; one global immutable instance. */
class CounterCatalog
{
  public:
    /** The process-wide catalog (built on first use). */
    static const CounterCatalog &instance();

    /** Number of counters. */
    size_t size() const { return defs.size(); }

    /** Definition of counter @p index. */
    const CounterDef &def(size_t index) const;

    /** All definitions in index order. */
    const std::vector<CounterDef> &all() const { return defs; }

    /**
     * Index of the counter with the given full name; raises
     * RecoverableError if absent (counter names arrive in user data
     * such as saved model files).
     */
    size_t indexOf(const std::string &name) const;

    /** True if a counter with the given full name exists. */
    bool contains(const std::string &name) const;

    /** Known a-equals-b-plus-c relationships (for step 2). */
    const std::vector<CoDependency> &coDependencies() const
    {
        return coDeps;
    }

    /** Indices of all counters in a category. */
    std::vector<size_t> inCategory(CounterCategory category) const;

  private:
    CounterCatalog();

    void add(std::string name, CounterCategory category,
             std::function<double(const SampleContext &)> compute);

    std::vector<CounterDef> defs;
    std::vector<CoDependency> coDeps;
};

} // namespace chaos

#endif // CHAOS_OSCOUNTERS_COUNTER_CATALOG_HPP
