#include "oscounters/counter_catalog.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

std::string
counterCategoryName(CounterCategory category)
{
    switch (category) {
      case CounterCategory::Processor:            return "Processor";
      case CounterCategory::ProcessorPerformance:
        return "Processor Performance";
      case CounterCategory::Memory:               return "Memory";
      case CounterCategory::PhysicalDisk:         return "Physical Disk";
      case CounterCategory::Network:              return "Network";
      case CounterCategory::FileSystemCache:
        return "File System Cache";
      case CounterCategory::Process:              return "Process";
      case CounterCategory::JobObjectDetails:
        return "Job Object Details";
      case CounterCategory::System:               return "System";
    }
    panic("unknown counter category");
}

const CounterCatalog &
CounterCatalog::instance()
{
    static const CounterCatalog catalog;
    return catalog;
}

namespace {

/**
 * Physically plausible upper bound for a counter, derived from its
 * name. Percent counters cannot exceed 100 plus sampling slack; the
 * Process object's CPU time sums across processes and tops out at
 * 100 x cores; frequencies are bounded well below 10 GHz on every
 * platform in Table I. Everything else (bytes, event rates) gets a
 * bound generous enough to never reject legitimate data while still
 * catching corrupted values such as reinterpreted garbage.
 */
double
plausibleUpperBound(const std::string &name)
{
    if (name == "Process(_Total)\\% Processor Time")
        return 900.0; // 100% x up to 8 cores, plus slack.
    if (name.find('%') != std::string::npos)
        return 110.0;
    if (name.find("Frequency") != std::string::npos)
        return 10000.0; // MHz.
    return 1e15;
}

} // namespace

void
CounterCatalog::add(std::string name, CounterCategory category,
                    std::function<double(const SampleContext &)> compute)
{
    const double bound = plausibleUpperBound(name);
    defs.push_back(
        {std::move(name), category, std::move(compute), bound});
}

const CounterDef &
CounterCatalog::def(size_t index) const
{
    panicIf(index >= defs.size(), "counter index out of range");
    return defs[index];
}

size_t
CounterCatalog::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < defs.size(); ++i) {
        if (defs[i].name == name)
            return i;
    }
    raise("unknown counter name: " + name);
}

bool
CounterCatalog::contains(const std::string &name) const
{
    for (const auto &d : defs) {
        if (d.name == name)
            return true;
    }
    return false;
}

std::vector<size_t>
CounterCatalog::inCategory(CounterCategory category) const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < defs.size(); ++i) {
        if (defs[i].category == category)
            out.push_back(i);
    }
    return out;
}

namespace {

constexpr size_t kMaxCores = 8;
constexpr size_t kMaxDisks = 6;

/** Per-core utilization, 0 for cores the platform lacks. */
double
coreUtil(const SampleContext &ctx, size_t core)
{
    if (core >= ctx.state.coreUtilization.size())
        return 0.0;
    return ctx.state.coreUtilization[core];
}

/** Per-core frequency in MHz, 0 for cores the platform lacks. */
double
coreFreq(const SampleContext &ctx, size_t core)
{
    if (core >= ctx.state.coreFrequencyMhz.size())
        return 0.0;
    return ctx.state.coreFrequencyMhz[core];
}

/** Kernel share of CPU time this second (drawn once per tick in the
 *  machine model, so all privileged-time counters stay coherent). */
double
privilegedShare(const SampleContext &ctx)
{
    return ctx.state.privilegedShare;
}

const DiskState *
disk(const SampleContext &ctx, size_t index)
{
    if (index >= ctx.state.disks.size())
        return nullptr;
    return &ctx.state.disks[index];
}

} // namespace

CounterCatalog::CounterCatalog()
{
    using CC = CounterCategory;

    // ------------------------------------------------------------
    // Processor object: per-core and _Total utilization breakdowns.
    // ------------------------------------------------------------
    for (size_t c = 0; c < kMaxCores; ++c) {
        const std::string inst = "Processor(" + std::to_string(c) + ")";
        add(inst + "\\% Processor Time", CC::Processor,
            [c](const SampleContext &ctx) {
                return 100.0 * coreUtil(ctx, c);
            });
        add(inst + "\\% Privileged Time", CC::Processor,
            [c](const SampleContext &ctx) {
                return 100.0 * coreUtil(ctx, c) * privilegedShare(ctx);
            });
        add(inst + "\\% User Time", CC::Processor,
            [c](const SampleContext &ctx) {
                return 100.0 * coreUtil(ctx, c) *
                       (1.0 - privilegedShare(ctx));
            });
        add(inst + "\\% Idle Time", CC::Processor,
            [c](const SampleContext &ctx) {
                if (c >= ctx.spec.numCores)
                    return 100.0;
                return 100.0 * (1.0 - coreUtil(ctx, c));
            });
        add(inst + "\\% C1 Time", CC::Processor,
            [c](const SampleContext &ctx) {
                if (!ctx.spec.hasC1 || c >= ctx.spec.numCores)
                    return 0.0;
                return ctx.state.inC1
                           ? 100.0
                           : 55.0 * (1.0 - coreUtil(ctx, c));
            });
        add(inst + "\\C1 Transitions/sec", CC::Processor,
            [c](const SampleContext &ctx) {
                if (!ctx.spec.hasC1 || c >= ctx.spec.numCores)
                    return 0.0;
                return (1.0 - coreUtil(ctx, c)) * 400.0 *
                       ctx.rng.uniform(0.8, 1.2);
            });
    }
    add("Processor(_Total)\\% Processor Time", CC::Processor,
        [](const SampleContext &ctx) {
            return 100.0 * ctx.state.meanUtilization();
        });
    add("Processor(_Total)\\% Privileged Time", CC::Processor,
        [](const SampleContext &ctx) {
            return 100.0 * ctx.state.meanUtilization() *
                   privilegedShare(ctx);
        });
    add("Processor(_Total)\\% User Time", CC::Processor,
        [](const SampleContext &ctx) {
            return 100.0 * ctx.state.meanUtilization() *
                   (1.0 - privilegedShare(ctx));
        });
    add("Processor(_Total)\\Interrupts/sec", CC::Processor,
        [](const SampleContext &ctx) {
            return ctx.state.interruptsPerSec;
        });
    add("Processor(_Total)\\% DPC Time", CC::Processor,
        [](const SampleContext &ctx) { return ctx.state.dpcTimePct; });
    add("Processor(_Total)\\% Interrupt Time", CC::Processor,
        [](const SampleContext &ctx) {
            return 0.4 * ctx.state.dpcTimePct *
                   ctx.rng.uniform(0.9, 1.1);
        });
    add("Processor(_Total)\\DPCs Queued/sec", CC::Processor,
        [](const SampleContext &ctx) {
            return 60.0 * ctx.state.dpcTimePct *
                   ctx.rng.uniform(0.9, 1.1);
        });

    // ------------------------------------------------------------
    // Processor Performance object: per-core frequency (the counter
    // whose availability in Server 2008 R2 the paper highlights).
    // ------------------------------------------------------------
    for (size_t c = 0; c < kMaxCores; ++c) {
        add("Processor Performance\\Processor_" + std::to_string(c) +
                " Frequency",
            CC::ProcessorPerformance,
            [c](const SampleContext &ctx) { return coreFreq(ctx, c); });
    }
    add("Processor Performance\\% of Maximum Frequency",
        CC::ProcessorPerformance, [](const SampleContext &ctx) {
            return 100.0 * coreFreq(ctx, 0) /
                   ctx.spec.maxFrequencyMhz();
        });
    add("Processor Performance\\Processor_0 Frequency Lag1",
        CC::ProcessorPerformance, [](const SampleContext &ctx) {
            return ctx.prevCoreFreqMhz;
        });
    add("Processor Performance\\Processor_0 Frequency Lag2",
        CC::ProcessorPerformance, [](const SampleContext &ctx) {
            return ctx.prevCoreFreqMhz2;
        });
    add("Processor Performance\\Processor_0 Frequency Lag3",
        CC::ProcessorPerformance, [](const SampleContext &ctx) {
            return ctx.prevCoreFreqMhz3;
        });

    // ------------------------------------------------------------
    // Memory object.
    // ------------------------------------------------------------
    add("Memory\\Pages/sec", CC::Memory, [](const SampleContext &ctx) {
        return ctx.state.pagesPerSec;
    });
    add("Memory\\Page Faults/sec", CC::Memory,
        [](const SampleContext &ctx) {
            return ctx.state.pageFaultsPerSec;
        });
    add("Memory\\Cache Faults/sec", CC::Memory,
        [](const SampleContext &ctx) {
            return ctx.state.cacheFaultsPerSec;
        });
    add("Memory\\Page Reads/sec", CC::Memory,
        [](const SampleContext &ctx) {
            return ctx.state.pageReadsPerSec;
        });
    add("Memory\\Page Writes/sec", CC::Memory,
        [](const SampleContext &ctx) {
            return std::max(0.0, ctx.state.pagesPerSec -
                                     ctx.state.pageReadsPerSec);
        });
    add("Memory\\Pages Input/sec", CC::Memory,
        [](const SampleContext &ctx) {
            // Pages read in: nearly proportional to Page Reads/sec
            // (a correlated sibling for step 1 to prune).
            return ctx.state.pageReadsPerSec * 3.8 *
                   ctx.rng.uniform(0.98, 1.02);
        });
    add("Memory\\Pages Output/sec", CC::Memory,
        [](const SampleContext &ctx) {
            return std::max(0.0, ctx.state.pagesPerSec -
                                     ctx.state.pageReadsPerSec) *
                   3.8 * ctx.rng.uniform(0.98, 1.02);
        });
    add("Memory\\Committed Bytes", CC::Memory,
        [](const SampleContext &ctx) {
            return ctx.state.committedBytes;
        });
    add("Memory\\% Committed Bytes In Use", CC::Memory,
        [](const SampleContext &ctx) {
            const double limit =
                ctx.spec.memoryGB * 1e9 * 1.5;  // RAM + pagefile.
            return 100.0 * ctx.state.committedBytes / limit;
        });
    add("Memory\\Available Bytes", CC::Memory,
        [](const SampleContext &ctx) {
            const double ram = ctx.spec.memoryGB * 1e9;
            return std::max(0.05 * ram,
                            ram - ctx.state.committedBytes * 0.8);
        });
    add("Memory\\Pool Nonpaged Allocs", CC::Memory,
        [](const SampleContext &ctx) {
            return ctx.state.poolNonpagedAllocs;
        });
    add("Memory\\Pool Nonpaged Bytes", CC::Memory,
        [](const SampleContext &ctx) {
            return ctx.state.poolNonpagedAllocs * 512.0 *
                   ctx.rng.uniform(0.99, 1.01);
        });
    add("Memory\\Pool Paged Bytes", CC::Memory,
        [](const SampleContext &ctx) {
            return 6.0e7 + ctx.state.committedBytes * 0.01;
        });
    add("Memory\\Cache Bytes", CC::Memory,
        [](const SampleContext &ctx) {
            return 1.5e8 + 3.0e4 * ctx.state.copyReadsPerSec;
        });
    add("Memory\\Demand Zero Faults/sec", CC::Memory,
        [](const SampleContext &ctx) {
            return 0.45 * ctx.state.pageFaultsPerSec *
                   ctx.rng.uniform(0.95, 1.05);
        });
    add("Memory\\Transition Faults/sec", CC::Memory,
        [](const SampleContext &ctx) {
            return 0.30 * ctx.state.pageFaultsPerSec *
                   ctx.rng.uniform(0.95, 1.05);
        });
    add("Memory\\Write Copies/sec", CC::Memory,
        [](const SampleContext &ctx) {
            return 20.0 * ctx.rng.uniform(0.5, 1.5);
        });
    add("Memory\\Free System Page Table Entries", CC::Memory,
        [](const SampleContext &ctx) {
            return 3.3e7 * ctx.rng.uniform(0.999, 1.001);
        });
    add("Memory\\System Cache Resident Bytes", CC::Memory,
        [](const SampleContext &ctx) {
            return 2.0e8 + 2.0e4 * ctx.state.copyReadsPerSec;
        });
    add("Memory\\System Code Resident Bytes", CC::Memory,
        [](const SampleContext &ctx) {
            return 2.5e6 * ctx.rng.uniform(0.999, 1.001);
        });

    // ------------------------------------------------------------
    // PhysicalDisk object: per-disk and _Total.
    // ------------------------------------------------------------
    for (size_t d = 0; d < kMaxDisks; ++d) {
        const std::string inst =
            "PhysicalDisk(" + std::to_string(d) + ")";
        add(inst + "\\% Disk Time", CC::PhysicalDisk,
            [d](const SampleContext &ctx) {
                const DiskState *ds = disk(ctx, d);
                return ds ? 100.0 * ds->utilization : 0.0;
            });
        add(inst + "\\Disk Bytes/sec", CC::PhysicalDisk,
            [d](const SampleContext &ctx) {
                const DiskState *ds = disk(ctx, d);
                return ds ? ds->readBytes + ds->writeBytes : 0.0;
            });
        add(inst + "\\Disk Read Bytes/sec", CC::PhysicalDisk,
            [d](const SampleContext &ctx) {
                const DiskState *ds = disk(ctx, d);
                return ds ? ds->readBytes : 0.0;
            });
        add(inst + "\\Disk Write Bytes/sec", CC::PhysicalDisk,
            [d](const SampleContext &ctx) {
                const DiskState *ds = disk(ctx, d);
                return ds ? ds->writeBytes : 0.0;
            });
        add(inst + "\\Avg. Disk Queue Length", CC::PhysicalDisk,
            [d](const SampleContext &ctx) {
                const DiskState *ds = disk(ctx, d);
                if (!ds)
                    return 0.0;
                const double u = ds->utilization;
                return u < 0.98 ? u / (1.0 - u + 0.02) : 50.0;
            });
        coDeps.push_back({inst + "\\Disk Bytes/sec",
                          {inst + "\\Disk Read Bytes/sec",
                           inst + "\\Disk Write Bytes/sec"}});
    }
    add("PhysicalDisk(_Total)\\% Disk Time", CC::PhysicalDisk,
        [](const SampleContext &ctx) {
            return 100.0 * ctx.state.meanDiskUtilization();
        });
    add("PhysicalDisk(_Total)\\Disk Bytes/sec", CC::PhysicalDisk,
        [](const SampleContext &ctx) {
            return ctx.state.totalDiskBytes();
        });
    add("PhysicalDisk(_Total)\\Disk Read Bytes/sec", CC::PhysicalDisk,
        [](const SampleContext &ctx) {
            double acc = 0.0;
            for (const auto &ds : ctx.state.disks)
                acc += ds.readBytes;
            return acc;
        });
    add("PhysicalDisk(_Total)\\Disk Write Bytes/sec", CC::PhysicalDisk,
        [](const SampleContext &ctx) {
            double acc = 0.0;
            for (const auto &ds : ctx.state.disks)
                acc += ds.writeBytes;
            return acc;
        });
    coDeps.push_back({"PhysicalDisk(_Total)\\Disk Bytes/sec",
                      {"PhysicalDisk(_Total)\\Disk Read Bytes/sec",
                       "PhysicalDisk(_Total)\\Disk Write Bytes/sec"}});
    add("PhysicalDisk(_Total)\\Disk Reads/sec", CC::PhysicalDisk,
        [](const SampleContext &ctx) {
            double acc = 0.0;
            for (const auto &ds : ctx.state.disks)
                acc += ds.readBytes;
            return acc / 65536.0 * ctx.rng.uniform(0.97, 1.03);
        });
    add("PhysicalDisk(_Total)\\Disk Writes/sec", CC::PhysicalDisk,
        [](const SampleContext &ctx) {
            double acc = 0.0;
            for (const auto &ds : ctx.state.disks)
                acc += ds.writeBytes;
            return acc / 65536.0 * ctx.rng.uniform(0.97, 1.03);
        });
    add("PhysicalDisk(_Total)\\Disk Transfers/sec", CC::PhysicalDisk,
        [](const SampleContext &ctx) {
            return ctx.state.totalDiskBytes() / 65536.0 *
                   ctx.rng.uniform(0.97, 1.03);
        });
    add("PhysicalDisk(_Total)\\Avg. Disk sec/Transfer",
        CC::PhysicalDisk, [](const SampleContext &ctx) {
            const double u = ctx.state.meanDiskUtilization();
            return (0.002 + 0.02 * u) * ctx.rng.uniform(0.9, 1.1);
        });
    add("PhysicalDisk(_Total)\\Split IO/sec", CC::PhysicalDisk,
        [](const SampleContext &ctx) {
            double seeks = 0.0;
            for (const auto &ds : ctx.state.disks)
                seeks += ds.seekRate;
            return 0.1 * seeks * ctx.rng.uniform(0.8, 1.2);
        });

    // ------------------------------------------------------------
    // Network objects (interface + protocol stacks).
    // ------------------------------------------------------------
    add("Network Interface(nic0)\\Bytes Total/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.state.netRxBytes + ctx.state.netTxBytes;
        });
    add("Network Interface(nic0)\\Bytes Received/sec", CC::Network,
        [](const SampleContext &ctx) { return ctx.state.netRxBytes; });
    add("Network Interface(nic0)\\Bytes Sent/sec", CC::Network,
        [](const SampleContext &ctx) { return ctx.state.netTxBytes; });
    coDeps.push_back(
        {"Network Interface(nic0)\\Bytes Total/sec",
         {"Network Interface(nic0)\\Bytes Received/sec",
          "Network Interface(nic0)\\Bytes Sent/sec"}});
    add("Network Interface(nic0)\\Packets/sec", CC::Network,
        [](const SampleContext &ctx) {
            const double bytes =
                ctx.state.netRxBytes + ctx.state.netTxBytes;
            return bytes / 1200.0 * ctx.rng.uniform(0.97, 1.03);
        });
    add("Network Interface(nic0)\\Packets Received/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.state.netRxBytes / 1200.0 *
                   ctx.rng.uniform(0.97, 1.03);
        });
    add("Network Interface(nic0)\\Packets Sent/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.state.netTxBytes / 1200.0 *
                   ctx.rng.uniform(0.97, 1.03);
        });
    add("Network Interface(nic0)\\Output Queue Length", CC::Network,
        [](const SampleContext &ctx) {
            const double load = ctx.state.netTxBytes / 125e6;
            return load > 0.9 ? (load - 0.9) * 40.0 : 0.0;
        });
    add("Network Interface(nic0)\\Current Bandwidth", CC::Network,
        [](const SampleContext &) { return 1.0e9; });
    add("IPv4\\Datagrams/sec", CC::Network,
        [](const SampleContext &ctx) {
            const double bytes =
                ctx.state.netRxBytes + ctx.state.netTxBytes;
            return bytes / 1350.0 * ctx.rng.uniform(0.96, 1.04);
        });
    add("IPv4\\Datagrams Received/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.state.netRxBytes / 1350.0 *
                   ctx.rng.uniform(0.96, 1.04);
        });
    add("IPv4\\Datagrams Sent/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.state.netTxBytes / 1350.0 *
                   ctx.rng.uniform(0.96, 1.04);
        });
    add("TCPv4\\Segments/sec", CC::Network,
        [](const SampleContext &ctx) {
            const double bytes =
                ctx.state.netRxBytes + ctx.state.netTxBytes;
            return bytes / 1400.0 * ctx.rng.uniform(0.96, 1.04);
        });
    add("TCPv4\\Segments Received/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.state.netRxBytes / 1400.0 *
                   ctx.rng.uniform(0.96, 1.04);
        });
    add("TCPv4\\Segments Sent/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.state.netTxBytes / 1400.0 *
                   ctx.rng.uniform(0.96, 1.04);
        });
    add("TCPv4\\Connections Established", CC::Network,
        [](const SampleContext &ctx) {
            return 12.0 + 30.0 * ctx.state.netRxBytes / 125e6 +
                   ctx.rng.uniform(0.0, 3.0);
        });
    // Mostly-dead protocol stacks: legitimate near-zero counters.
    add("UDPv6\\Datagrams/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.rng.uniform(0.0, 2.0);
        });
    add("TCPv6\\Segments/sec", CC::Network,
        [](const SampleContext &ctx) {
            return ctx.rng.uniform(0.0, 1.0);
        });

    // ------------------------------------------------------------
    // Cache object (file system cache).
    // ------------------------------------------------------------
    add("Cache\\Data Map Pins/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.dataMapPinsPerSec;
        });
    add("Cache\\Pin Reads/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.pinReadsPerSec;
        });
    add("Cache\\Pin Read Hits %", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.pinReadHitPct;
        });
    add("Cache\\Copy Reads/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.copyReadsPerSec;
        });
    add("Cache\\Copy Read Hits %", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return std::clamp(ctx.state.pinReadHitPct -
                                  ctx.rng.uniform(0.0, 4.0),
                              50.0, 100.0);
        });
    add("Cache\\Fast Reads/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return 0.7 * ctx.state.copyReadsPerSec *
                   ctx.rng.uniform(0.95, 1.05);
        });
    add("Cache\\Fast Reads Not Possible/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.fastReadsNotPossiblePerSec;
        });
    add("Cache\\Lazy Write Flushes/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.lazyWriteFlushesPerSec;
        });
    add("Cache\\Lazy Write Pages/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.lazyWriteFlushesPerSec * 14.0 *
                   ctx.rng.uniform(0.9, 1.1);
        });
    add("Cache\\Data Flushes/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.lazyWriteFlushesPerSec * 1.6 *
                   ctx.rng.uniform(0.9, 1.1);
        });
    add("Cache\\Data Flush Pages/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return ctx.state.lazyWriteFlushesPerSec * 22.0 *
                   ctx.rng.uniform(0.9, 1.1);
        });
    add("Cache\\Read Aheads/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            double reads = 0.0;
            for (const auto &ds : ctx.state.disks)
                reads += ds.readBytes;
            return reads / 2.6e5 * ctx.rng.uniform(0.9, 1.1);
        });
    add("Cache\\MDL Reads/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return 0.15 * ctx.state.copyReadsPerSec *
                   ctx.rng.uniform(0.9, 1.1);
        });
    add("Cache\\Async Copy Reads/sec", CC::FileSystemCache,
        [](const SampleContext &ctx) {
            return 0.25 * ctx.state.copyReadsPerSec *
                   ctx.rng.uniform(0.9, 1.1);
        });

    // ------------------------------------------------------------
    // Process object (_Total across all processes).
    // ------------------------------------------------------------
    add("Process(_Total)\\% Processor Time", CC::Process,
        [](const SampleContext &ctx) {
            return 100.0 * ctx.state.meanUtilization() *
                   static_cast<double>(ctx.spec.numCores);
        });
    add("Process(_Total)\\Page Faults/sec", CC::Process,
        [](const SampleContext &ctx) {
            return ctx.state.processPageFaultsPerSec;
        });
    add("Process(_Total)\\IO Data Bytes/sec", CC::Process,
        [](const SampleContext &ctx) {
            return ctx.state.processIoDataBytesPerSec;
        });
    add("Process(_Total)\\IO Read Bytes/sec", CC::Process,
        [](const SampleContext &ctx) {
            return 0.6 * ctx.state.processIoDataBytesPerSec;
        });
    add("Process(_Total)\\IO Write Bytes/sec", CC::Process,
        [](const SampleContext &ctx) {
            return 0.4 * ctx.state.processIoDataBytesPerSec;
        });
    coDeps.push_back({"Process(_Total)\\IO Data Bytes/sec",
                      {"Process(_Total)\\IO Read Bytes/sec",
                       "Process(_Total)\\IO Write Bytes/sec"}});
    add("Process(_Total)\\IO Other Bytes/sec", CC::Process,
        [](const SampleContext &ctx) {
            return 1.0e4 * ctx.rng.uniform(0.5, 1.5);
        });
    add("Process(_Total)\\Working Set", CC::Process,
        [](const SampleContext &ctx) {
            return ctx.state.committedBytes * 0.85;
        });
    add("Process(_Total)\\Private Bytes", CC::Process,
        [](const SampleContext &ctx) {
            return ctx.state.committedBytes * 0.9;
        });
    add("Process(_Total)\\Virtual Bytes", CC::Process,
        [](const SampleContext &ctx) {
            return ctx.state.committedBytes * 2.6;
        });
    add("Process(_Total)\\Thread Count", CC::Process,
        [](const SampleContext &ctx) {
            return 800.0 +
                   120.0 * ctx.state.meanUtilization() *
                       static_cast<double>(ctx.spec.numCores) +
                   ctx.rng.uniform(0.0, 10.0);
        });
    add("Process(_Total)\\Handle Count", CC::Process,
        [](const SampleContext &ctx) {
            return 21000.0 + ctx.rng.uniform(0.0, 500.0);
        });

    // ------------------------------------------------------------
    // Job Object Details (_Total).
    // ------------------------------------------------------------
    add("Job Object Details(_Total)\\Page File Bytes Peak",
        CC::JobObjectDetails, [](const SampleContext &ctx) {
            return ctx.state.pageFileBytesPeak;
        });
    add("Job Object Details(_Total)\\Page File Bytes",
        CC::JobObjectDetails, [](const SampleContext &ctx) {
            return ctx.state.committedBytes * 1.05;
        });
    add("Job Object Details(_Total)\\Working Set Peak",
        CC::JobObjectDetails, [](const SampleContext &ctx) {
            return ctx.state.pageFileBytesPeak * 0.8;
        });
    add("Job Object Details(_Total)\\Working Set",
        CC::JobObjectDetails, [](const SampleContext &ctx) {
            return ctx.state.committedBytes * 0.8;
        });

    // ------------------------------------------------------------
    // System / housekeeping counters: mostly irrelevant to power;
    // the L1/stepwise passes must reject these.
    // ------------------------------------------------------------
    add("System\\Context Switches/sec", CC::System,
        [](const SampleContext &ctx) {
            return 2000.0 +
                   9000.0 * ctx.state.meanUtilization() +
                   ctx.state.interruptsPerSec * 0.5 +
                   ctx.rng.normal(0.0, 300.0);
        });
    add("System\\System Calls/sec", CC::System,
        [](const SampleContext &ctx) {
            return 15000.0 + 60000.0 * ctx.state.meanUtilization() +
                   ctx.rng.normal(0.0, 2000.0);
        });
    add("System\\Processes", CC::System, [](const SampleContext &ctx) {
        return 60.0 + ctx.rng.uniform(0.0, 4.0);
    });
    add("System\\Threads", CC::System, [](const SampleContext &ctx) {
        return 850.0 + ctx.rng.uniform(0.0, 40.0);
    });
    add("System\\System Up Time", CC::System,
        [](const SampleContext &ctx) {
            return 86400.0 + ctx.state.uptimeSeconds;
        });
    add("System\\Processor Queue Length", CC::System,
        [](const SampleContext &ctx) {
            const double u = ctx.state.meanUtilization();
            return u > 0.9 ? (u - 0.9) * 30.0 + ctx.rng.uniform(0, 2)
                           : ctx.rng.uniform(0.0, 1.0);
        });
    add("System\\File Read Operations/sec", CC::System,
        [](const SampleContext &ctx) {
            double reads = 0.0;
            for (const auto &ds : ctx.state.disks)
                reads += ds.readBytes;
            return reads / 60000.0 * ctx.rng.uniform(0.9, 1.1);
        });
    add("System\\File Write Operations/sec", CC::System,
        [](const SampleContext &ctx) {
            double writes = 0.0;
            for (const auto &ds : ctx.state.disks)
                writes += ds.writeBytes;
            return writes / 60000.0 * ctx.rng.uniform(0.9, 1.1);
        });
    add("Objects\\Events", CC::System, [](const SampleContext &ctx) {
        return 4200.0 + ctx.rng.uniform(0.0, 100.0);
    });
    add("Objects\\Mutexes", CC::System, [](const SampleContext &ctx) {
        return 900.0 + ctx.rng.uniform(0.0, 30.0);
    });
    add("Objects\\Semaphores", CC::System,
        [](const SampleContext &ctx) {
            return 1500.0 + ctx.rng.uniform(0.0, 50.0);
        });
    add("Objects\\Sections", CC::System, [](const SampleContext &ctx) {
        return 3100.0 + ctx.rng.uniform(0.0, 80.0);
    });
    add("Paging File(_Total)\\% Usage", CC::System,
        [](const SampleContext &ctx) {
            const double pagefile = ctx.spec.memoryGB * 1e9;
            return 100.0 *
                   std::min(0.9, 0.02 + 0.15 * ctx.state.committedBytes /
                                            pagefile);
        });
    add("Paging File(_Total)\\% Usage Peak", CC::System,
        [](const SampleContext &ctx) {
            const double pagefile = ctx.spec.memoryGB * 1e9;
            return 100.0 * std::min(0.95,
                                    0.02 + 0.15 *
                                               ctx.state.pageFileBytesPeak /
                                               pagefile);
        });
}

} // namespace chaos
