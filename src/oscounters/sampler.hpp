/**
 * @file
 * Per-machine counter sampling (the Perfmon/ETW role).
 */
#ifndef CHAOS_OSCOUNTERS_SAMPLER_HPP
#define CHAOS_OSCOUNTERS_SAMPLER_HPP

#include <vector>

#include "oscounters/counter_catalog.hpp"
#include "sim/machine_spec.hpp"
#include "sim/machine_state.hpp"
#include "util/random.hpp"

namespace chaos {

/**
 * Samples the full counter catalog for one machine once per second.
 *
 * Holds the small amount of cross-second sampling state (the lagged
 * core-0 frequency) and a private noise stream, mirroring a Perfmon
 * logging session attached to one host.
 */
class CounterSampler
{
  public:
    /**
     * @param spec Platform of the sampled machine.
     * @param rng Private observation-noise stream.
     */
    CounterSampler(const MachineSpec &spec, Rng rng);

    /**
     * Sample every counter in the catalog for the given second.
     *
     * @param state Machine component snapshot.
     * @return One value per catalog counter, in catalog order.
     */
    std::vector<double> sample(const MachineState &state);

    /** Reset cross-second sampling state (new logging session). */
    void reset();

  private:
    const MachineSpec spec;
    Rng rng;
    double prevCoreFreqMhz;
    double prevCoreFreqMhz2;
    double prevCoreFreqMhz3;
};

} // namespace chaos

#endif // CHAOS_OSCOUNTERS_SAMPLER_HPP
