/**
 * @file
 * ETW-style low-overhead logging session for one machine.
 *
 * Couples a CounterSampler with the machine's power meter and
 * accumulates (timestamp, counter vector, metered watts) records —
 * the exact data product the paper's measurement infrastructure
 * produces (Perfmon logging software counters and the WattsUp reading
 * once per second).
 */
#ifndef CHAOS_OSCOUNTERS_ETW_SESSION_HPP
#define CHAOS_OSCOUNTERS_ETW_SESSION_HPP

#include <vector>

#include "oscounters/sampler.hpp"
#include "sim/machine.hpp"
#include "sim/power_meter.hpp"

namespace chaos {

/** One logged second: counters plus metered power. */
struct EtwRecord
{
    double timeSeconds = 0.0;         ///< Timestamp within the run.
    std::vector<double> counters;     ///< Catalog-ordered values.
    double measuredPowerW = 0.0;      ///< Metered wall power.
};

/** Event-tracing session bound to one instrumented machine. */
class EtwSession
{
  public:
    /**
     * @param machine Machine being traced (not owned).
     * @param meter Its power meter (not owned).
     * @param seed Seed for the sampler's observation noise.
     */
    EtwSession(Machine &machine, PowerMeter &meter, uint64_t seed);

    /**
     * Drive the machine one second under @p demand and log a record.
     * @return The record just logged (also retained internally).
     */
    const EtwRecord &tick(const ActivityDemand &demand);

    /** All records logged so far, in time order. */
    const std::vector<EtwRecord> &records() const { return log; }

    /** Clear the log and reset sampler state (new run). */
    void startNewRun();

  private:
    Machine &machine;
    PowerMeter &meter;
    CounterSampler sampler;
    std::vector<EtwRecord> log;
};

} // namespace chaos

#endif // CHAOS_OSCOUNTERS_ETW_SESSION_HPP
