#include "oscounters/sampler.hpp"

namespace chaos {

CounterSampler::CounterSampler(const MachineSpec &spec_, Rng rng_)
    : spec(spec_), rng(std::move(rng_)),
      prevCoreFreqMhz(spec_.maxFrequencyMhz()),
      prevCoreFreqMhz2(spec_.maxFrequencyMhz()),
      prevCoreFreqMhz3(spec_.maxFrequencyMhz())
{
}

void
CounterSampler::reset()
{
    prevCoreFreqMhz = spec.maxFrequencyMhz();
    prevCoreFreqMhz2 = spec.maxFrequencyMhz();
    prevCoreFreqMhz3 = spec.maxFrequencyMhz();
}

std::vector<double>
CounterSampler::sample(const MachineState &state)
{
    const CounterCatalog &catalog = CounterCatalog::instance();
    SampleContext ctx{state, spec, rng, prevCoreFreqMhz,
                      prevCoreFreqMhz2, prevCoreFreqMhz3};

    std::vector<double> values;
    values.reserve(catalog.size());
    for (const auto &def : catalog.all())
        values.push_back(def.compute(ctx));

    prevCoreFreqMhz3 = prevCoreFreqMhz2;
    prevCoreFreqMhz2 = prevCoreFreqMhz;
    prevCoreFreqMhz =
        state.coreFrequencyMhz.empty() ? 0.0 : state.coreFrequencyMhz[0];
    return values;
}

} // namespace chaos
