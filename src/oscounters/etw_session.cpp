#include "oscounters/etw_session.hpp"

namespace chaos {

EtwSession::EtwSession(Machine &machine_, PowerMeter &meter_,
                       uint64_t seed)
    : machine(machine_), meter(meter_),
      sampler(machine_.spec(), Rng(seed))
{
}

const EtwRecord &
EtwSession::tick(const ActivityDemand &demand)
{
    const MachineTick tick = machine.step(demand);

    EtwRecord record;
    record.timeSeconds = tick.state.timeSeconds;
    record.counters = sampler.sample(tick.state);
    record.measuredPowerW = meter.sample(tick.truePowerW);
    log.push_back(std::move(record));
    return log.back();
}

void
EtwSession::startNewRun()
{
    log.clear();
    sampler.reset();
    machine.resetRunState();
}

} // namespace chaos
