#include "trace/trace_io.hpp"

#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace chaos {

namespace {
const std::string kPowerCol = "__power_w";
const std::string kRunCol = "__run_id";
const std::string kMachineCol = "__machine_id";
const std::string kWorkloadCol = "__workload_id";
} // namespace

void
saveDataset(const std::string &path, const Dataset &dataset)
{
    obs::Span span("trace_io.save");
    CsvTable table;
    table.header = dataset.featureNames();
    table.header.push_back(kPowerCol);
    table.header.push_back(kRunCol);
    table.header.push_back(kMachineCol);
    table.header.push_back(kWorkloadCol);

    table.rows.reserve(dataset.numRows());
    for (size_t r = 0; r < dataset.numRows(); ++r) {
        std::vector<double> row = dataset.features().row(r);
        row.push_back(dataset.powerW()[r]);
        row.push_back(static_cast<double>(dataset.runIds()[r]));
        row.push_back(static_cast<double>(dataset.machineIds()[r]));
        row.push_back(static_cast<double>(dataset.workloadIds()[r]));
        table.rows.push_back(std::move(row));
    }
    writeCsv(path, table);

    std::ofstream names(path + ".workloads");
    raiseIf(!names, "cannot write workload sidecar for " + path);
    for (const auto &name : dataset.workloadNames())
        names << name << "\n";

    static auto &rows_written =
        obs::Registry::instance().counter("chaos.trace_io.rows_written");
    rows_written.add(dataset.numRows());
}

Dataset
loadDataset(const std::string &path)
{
    obs::Span span("trace_io.load");
    const CsvTable table = readCsv(path);
    raiseIf(table.header.size() < 5,
            path + ":1: dataset CSV missing metadata columns (have " +
                std::to_string(table.header.size()) +
                ", need counters plus 4)");

    // Counter columns are everything before the "__" metadata block.
    std::vector<std::string> feature_names;
    for (const auto &name : table.header) {
        if (startsWith(name, "__"))
            break;
        feature_names.push_back(name);
    }
    const size_t p = feature_names.size();
    raiseIf(table.header.size() != p + 4,
            path + ":1: dataset CSV has unexpected metadata layout (" +
                std::to_string(table.header.size() - p) +
                " metadata columns, expected 4)");

    std::vector<std::string> workload_names;
    {
        std::ifstream names(path + ".workloads");
        raiseIf(!names, "missing workload sidecar for " + path);
        std::string line;
        while (std::getline(names, line)) {
            line = trim(line);
            if (!line.empty())
                workload_names.push_back(line);
        }
    }

    Dataset ds(feature_names);
    for (size_t r = 0; r < table.rows.size(); ++r) {
        const auto &row = table.rows[r];
        std::vector<double> features(row.begin(), row.begin() + p);
        const double power = row[p];
        const int run = static_cast<int>(row[p + 1]);
        const int machine = static_cast<int>(row[p + 2]);
        const auto workload_id = static_cast<size_t>(row[p + 3]);
        raiseIf(workload_id >= workload_names.size(),
                path + ":" + std::to_string(table.lineOfRow(r)) +
                    ": workload id " + std::to_string(workload_id) +
                    " out of range (sidecar lists " +
                    std::to_string(workload_names.size()) + ")");
        ds.addRow(features, power, run, machine,
                  workload_names[workload_id]);
    }
    static auto &rows_read =
        obs::Registry::instance().counter("chaos.trace_io.rows_read");
    rows_read.add(ds.numRows());
    return ds;
}

Result<Dataset>
tryLoadDataset(const std::string &path)
{
    return tryInvoke([&] { return loadDataset(path); });
}

} // namespace chaos
