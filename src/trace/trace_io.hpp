/**
 * @file
 * Dataset persistence: save collected traces to CSV and reload them,
 * so expensive collection campaigns can be separated from modeling
 * experiments.
 */
#ifndef CHAOS_TRACE_TRACE_IO_HPP
#define CHAOS_TRACE_TRACE_IO_HPP

#include <string>

#include "trace/dataset.hpp"

namespace chaos {

/**
 * Write @p dataset to @p path as CSV. Metadata columns (power, run,
 * machine, workload id) are prefixed with "__" to stay clear of
 * counter names; a sidecar "<path>.workloads" file maps workload ids
 * to names.
 */
void saveDataset(const std::string &path, const Dataset &dataset);

/** Reload a dataset written by saveDataset(); fatal() on format errors. */
Dataset loadDataset(const std::string &path);

} // namespace chaos

#endif // CHAOS_TRACE_TRACE_IO_HPP
