/**
 * @file
 * Dataset persistence: save collected traces to CSV and reload them,
 * so expensive collection campaigns can be separated from modeling
 * experiments.
 */
#ifndef CHAOS_TRACE_TRACE_IO_HPP
#define CHAOS_TRACE_TRACE_IO_HPP

#include <string>

#include "trace/dataset.hpp"
#include "util/result.hpp"

namespace chaos {

/**
 * Write @p dataset to @p path as CSV. Metadata columns (power, run,
 * machine, workload id) are prefixed with "__" to stay clear of
 * counter names; a sidecar "<path>.workloads" file maps workload ids
 * to names. Raises RecoverableError on I/O failure.
 */
void saveDataset(const std::string &path, const Dataset &dataset);

/**
 * Reload a dataset written by saveDataset(). Raises RecoverableError
 * on format errors, citing the offending file and line.
 */
Dataset loadDataset(const std::string &path);

/** loadDataset() with value-style error handling. */
Result<Dataset> tryLoadDataset(const std::string &path);

} // namespace chaos

#endif // CHAOS_TRACE_TRACE_IO_HPP
