/**
 * @file
 * Model-ready datasets assembled from ETW run logs.
 *
 * A Dataset row is one machine-second: the full counter vector as
 * features and the metered wall power as the target, tagged with the
 * machine, run, and workload it came from so that cross-validation
 * can fold on runs and feature selection can iterate per machine and
 * per workload.
 */
#ifndef CHAOS_TRACE_DATASET_HPP
#define CHAOS_TRACE_DATASET_HPP

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "workloads/runner.hpp"

namespace chaos {

/** Feature matrix + power target with per-row provenance. */
class Dataset
{
  public:
    /** Empty dataset with the full catalog feature space. */
    Dataset();

    /** Empty dataset with explicit feature names. */
    explicit Dataset(std::vector<std::string> featureNames);

    /**
     * Flatten run results into a dataset. Every machine-second of
     * every run becomes a row; feature names come from the counter
     * catalog.
     */
    static Dataset fromRunResults(const std::vector<RunResult> &runs);

    /** Number of rows (machine-seconds). */
    size_t numRows() const { return target.size(); }
    /** Number of feature columns. */
    size_t numFeatures() const { return names.size(); }

    /** Feature matrix (numRows x numFeatures). */
    const Matrix &features() const { return x; }
    /** Metered power per row, watts. */
    const std::vector<double> &powerW() const { return target; }
    /** Per-row run id (cross-validation group). */
    const std::vector<int> &runIds() const { return runs; }
    /** Per-row machine id. */
    const std::vector<int> &machineIds() const { return machines; }
    /** Per-row workload name index (into workloadNames()). */
    const std::vector<int> &workloadIds() const { return workloads; }
    /** Distinct workload names, indexed by workloadIds(). */
    const std::vector<std::string> &workloadNames() const
    {
        return workloadNameTable;
    }
    /** Feature (counter) names, one per column. */
    const std::vector<std::string> &featureNames() const
    {
        return names;
    }

    /** Index of a named feature; raises RecoverableError if absent. */
    size_t featureIndex(const std::string &name) const;

    /** Append one row (used by builders and tests). */
    void addRow(const std::vector<double> &features, double powerW,
                int runId, int machineId, const std::string &workload);

    /** Dataset restricted to the given feature columns. */
    Dataset selectFeatures(const std::vector<size_t> &columns) const;

    /** Dataset restricted to features with the given names. */
    Dataset selectFeaturesByName(
        const std::vector<std::string> &wanted) const;

    /** Dataset restricted to the given rows. */
    Dataset selectRows(const std::vector<size_t> &rows) const;

    /** Rows belonging to one workload. */
    Dataset filterWorkload(const std::string &workload) const;

    /** Rows belonging to one machine. */
    Dataset filterMachine(int machineId) const;

    /** Concatenate another dataset with an identical feature space. */
    void append(const Dataset &other);

    /**
     * Columns that are (numerically) constant over this dataset;
     * such counters carry no information and are dropped before
     * correlation screening.
     */
    std::vector<size_t> constantColumns(double tol = 1e-9) const;

  private:
    int workloadIdFor(const std::string &workload);

    std::vector<std::string> names;
    Matrix x;
    std::vector<double> target;
    std::vector<int> runs;
    std::vector<int> machines;
    std::vector<int> workloads;
    std::vector<std::string> workloadNameTable;
};

} // namespace chaos

#endif // CHAOS_TRACE_DATASET_HPP
