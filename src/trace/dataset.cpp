#include "trace/dataset.hpp"

#include <algorithm>

#include "oscounters/counter_catalog.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"

namespace chaos {

namespace {

std::vector<std::string>
catalogNames()
{
    const auto &catalog = CounterCatalog::instance();
    std::vector<std::string> names;
    names.reserve(catalog.size());
    for (const auto &def : catalog.all())
        names.push_back(def.name);
    return names;
}

} // namespace

Dataset::Dataset() : Dataset(catalogNames()) {}

Dataset::Dataset(std::vector<std::string> featureNames)
    : names(std::move(featureNames)),
      x(0, names.size())
{
}

Dataset
Dataset::fromRunResults(const std::vector<RunResult> &runs)
{
    Dataset ds;
    for (const auto &run : runs) {
        for (size_t m = 0; m < run.machineRecords.size(); ++m) {
            for (const auto &record : run.machineRecords[m]) {
                ds.addRow(record.counters, record.measuredPowerW,
                          run.runId, static_cast<int>(m),
                          run.workloadName);
            }
        }
    }
    return ds;
}

size_t
Dataset::featureIndex(const std::string &name) const
{
    for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return i;
    }
    raise("dataset feature not found: " + name);
}

int
Dataset::workloadIdFor(const std::string &workload)
{
    for (size_t i = 0; i < workloadNameTable.size(); ++i) {
        if (workloadNameTable[i] == workload)
            return static_cast<int>(i);
    }
    workloadNameTable.push_back(workload);
    return static_cast<int>(workloadNameTable.size() - 1);
}

void
Dataset::addRow(const std::vector<double> &features, double powerW,
                int runId, int machineId, const std::string &workload)
{
    panicIf(features.size() != names.size(),
            "Dataset::addRow feature width mismatch");
    x.appendRow(features);
    target.push_back(powerW);
    runs.push_back(runId);
    machines.push_back(machineId);
    workloads.push_back(workloadIdFor(workload));
}

Dataset
Dataset::selectFeatures(const std::vector<size_t> &columns) const
{
    std::vector<std::string> new_names;
    new_names.reserve(columns.size());
    for (size_t c : columns) {
        panicIf(c >= names.size(), "selectFeatures column range");
        new_names.push_back(names[c]);
    }
    Dataset out(std::move(new_names));
    out.x = x.selectColumns(columns);
    out.target = target;
    out.runs = runs;
    out.machines = machines;
    out.workloads = workloads;
    out.workloadNameTable = workloadNameTable;
    return out;
}

Dataset
Dataset::selectFeaturesByName(
    const std::vector<std::string> &wanted) const
{
    std::vector<size_t> columns;
    columns.reserve(wanted.size());
    for (const auto &name : wanted)
        columns.push_back(featureIndex(name));
    return selectFeatures(columns);
}

Dataset
Dataset::selectRows(const std::vector<size_t> &rows) const
{
    Dataset out(names);
    out.x = x.selectRows(rows);
    out.workloadNameTable = workloadNameTable;
    out.target.reserve(rows.size());
    for (size_t r : rows) {
        panicIf(r >= numRows(), "selectRows row range");
        out.target.push_back(target[r]);
        out.runs.push_back(runs[r]);
        out.machines.push_back(machines[r]);
        out.workloads.push_back(workloads[r]);
    }
    return out;
}

Dataset
Dataset::filterWorkload(const std::string &workload) const
{
    std::vector<size_t> rows;
    for (size_t i = 0; i < workloadNameTable.size(); ++i) {
        if (workloadNameTable[i] == workload) {
            const int id = static_cast<int>(i);
            for (size_t r = 0; r < numRows(); ++r) {
                if (workloads[r] == id)
                    rows.push_back(r);
            }
            break;
        }
    }
    return selectRows(rows);
}

Dataset
Dataset::filterMachine(int machineId) const
{
    std::vector<size_t> rows;
    for (size_t r = 0; r < numRows(); ++r) {
        if (machines[r] == machineId)
            rows.push_back(r);
    }
    return selectRows(rows);
}

void
Dataset::append(const Dataset &other)
{
    panicIf(other.names != names,
            "Dataset::append feature space mismatch");
    for (size_t r = 0; r < other.numRows(); ++r) {
        addRow(other.x.row(r), other.target[r], other.runs[r],
               other.machines[r],
               other.workloadNameTable[other.workloads[r]]);
    }
}

std::vector<size_t>
Dataset::constantColumns(double tol) const
{
    std::vector<size_t> out;
    if (numRows() == 0)
        return out;
    for (size_t c = 0; c < numFeatures(); ++c) {
        double lo = x(0, c), hi = x(0, c);
        for (size_t r = 1; r < numRows(); ++r) {
            lo = std::min(lo, x(r, c));
            hi = std::max(hi, x(r, c));
        }
        // Relative spread against the magnitude of the column.
        const double scale = std::max({std::abs(lo), std::abs(hi), 1.0});
        if (hi - lo <= tol * scale)
            out.push_back(c);
    }
    return out;
}

} // namespace chaos
